//! Ablation benches for the design choices DESIGN.md calls out:
//! node-limited routing (M sweep), the FP8 promotion interval, pipeline
//! schedule families, PXN plane count, and EPLB redundancy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsv3_core::collectives::failures::alltoall_with_failed_planes;
use dsv3_core::collectives::{Cluster, ClusterConfig, FabricKind};
use dsv3_core::model::eplb::{place, zipf_loads};
use dsv3_core::model::moe::{route, MoeGateConfig};
use dsv3_core::numerics::gemm::{gemm_fp8, Fp8GemmConfig};
use dsv3_core::numerics::Matrix;
use dsv3_core::parallel::dualpipe::{dualpipe, zb1p};
use dsv3_core::parallel::schedule::{one_f_one_b, ChunkTimes};
use std::hint::black_box;

fn ablation_node_limit(c: &mut Criterion) {
    // How expensive is routing as the node limit loosens?
    let mut g = c.benchmark_group("ablation_node_limit");
    let scores: Vec<f32> =
        Matrix::random(1, 256, 1.0, 3).data.iter().map(|v| 1.0 / (1.0 + (-v).exp())).collect();
    for m in [1usize, 2, 4, 8] {
        let cfg = MoeGateConfig { experts: 256, groups: 8, top_groups: m, top_k: 8 };
        g.bench_with_input(BenchmarkId::from_parameter(m), &cfg, |b, cfg| {
            b.iter(|| black_box(route(&scores, None, cfg)))
        });
    }
    g.finish();
}

fn ablation_promotion_interval(c: &mut Criterion) {
    // DeepGEMM promotes FP22 partials to FP32 every 128 MACs; sweep the
    // interval (= tile size) to see the accuracy/overhead design point.
    let mut g = c.benchmark_group("ablation_fp8_chunk");
    g.sample_size(10);
    let a = Matrix::random(4, 4096, 1.0, 7);
    let b = Matrix::random(4096, 4, 1.0, 8);
    for chunk in [32usize, 128, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |bench, &chunk| {
            bench.iter(|| {
                black_box(gemm_fp8(&a, &b, Fp8GemmConfig { chunk, ..Fp8GemmConfig::default() }))
            })
        });
    }
    g.finish();
}

fn ablation_schedules(c: &mut Criterion) {
    // Print the bubble comparison once, then benchmark the simulators.
    let t = ChunkTimes { f: 1.0, b: 1.0, w: 0.33 };
    let (s, m) = (16usize, 120usize);
    let classic = one_f_one_b(s, m, t);
    let zb = zb1p(s, m, t);
    let dp = dualpipe(s, m, t);
    println!("schedule ablation (PP=16, M=120, f=b=1, w=0.33):");
    println!("  1F1B:     total {:.1}, bubble {:.1}", classic.total_time, classic.bubble_time);
    println!("  ZB1P:     total {:.1}, bubble {:.1}", zb.total_time, zb.bubble_time);
    println!("  DualPipe: total {:.1}, bubble {:.1}", dp.total_time, dp.bubble_time);
    let mut g = c.benchmark_group("ablation_schedules");
    g.bench_function("one_f_one_b", |b| b.iter(|| black_box(one_f_one_b(s, m, t))));
    g.bench_function("zb1p", |b| b.iter(|| black_box(zb1p(s, m, t))));
    g.bench_function("dualpipe", |b| b.iter(|| black_box(dualpipe(s, m, t))));
    g.finish();
}

fn ablation_plane_failures(c: &mut Criterion) {
    let cluster = Cluster::new(ClusterConfig::h800(4, FabricKind::MultiPlane));
    let mut g = c.benchmark_group("ablation_plane_failures");
    g.sample_size(10);
    for k in [0usize, 1, 4] {
        let failed: Vec<usize> = (0..k).collect();
        g.bench_with_input(BenchmarkId::from_parameter(k), &failed, |b, failed| {
            b.iter(|| black_box(alltoall_with_failed_planes(&cluster, 262_144.0, failed)))
        });
    }
    g.finish();
}

fn ablation_eplb(c: &mut Criterion) {
    let loads = zipf_loads(256, 1.1, 1_000_000.0);
    println!("EPLB ablation (256 experts, zipf 1.1, 32 GPUs):");
    for r in [0usize, 16, 32, 64] {
        let p = place(&loads, 32, r);
        println!("  +{r:>2} replicas: imbalance {:.3}", p.imbalance());
    }
    let mut g = c.benchmark_group("ablation_eplb");
    for r in [0usize, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| black_box(place(&loads, 32, r)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_node_limit,
    ablation_promotion_interval,
    ablation_schedules,
    ablation_plane_failures,
    ablation_eplb
);
criterion_main!(benches);
