//! Benchmark the fault-injection layer: plan generation, the serving
//! engine under a fault timeline (against its healthy baseline, to price
//! the hook overhead), and the checkpoint/restart goodput walk.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsv3_core::experiments::fault_drill;
use dsv3_core::faults::{simulate_goodput, FaultPlan, FaultPlanConfig, RecoveryPolicy};
use dsv3_core::model::availability::AvailabilityModel;
use dsv3_core::serving::{run, run_with_faults, ArrivalProcess, RouterPolicy, ServingSimConfig};
use std::hint::black_box;

fn drill_plan(seed: u64) -> FaultPlan {
    FaultPlan::generate(&FaultPlanConfig {
        seed,
        horizon_ms: 60_000.0,
        crash_mtbf_ms: 15_000.0,
        crash_repair_ms: 4_000.0,
        flap_mtbf_ms: 20_000.0,
        flap_repair_ms: 5_000.0,
        straggler_mtbf_ms: 25_000.0,
        sdc_mtbf_ms: 20_000.0,
        ..FaultPlanConfig::default()
    })
}

fn bench_faults(c: &mut Criterion) {
    println!("{}", fault_drill::render());

    let mut g = c.benchmark_group("faults");
    g.sample_size(10);

    g.bench_function("plan_generate_60s", |b| b.iter(|| black_box(drill_plan(7))));

    let cfg = ServingSimConfig::h800_baseline(
        ArrivalProcess::Poisson { rate_per_s: 10.0 },
        300,
        RouterPolicy::Unified,
    );
    let empty = FaultPlan::healthy();
    let plan = drill_plan(7);
    g.bench_function("serve_300_healthy", |b| b.iter(|| black_box(run(&cfg))));
    g.bench_with_input(BenchmarkId::new("serve_300_with_faults", "empty"), &empty, |b, p| {
        b.iter(|| black_box(run_with_faults(&cfg, p, &RecoveryPolicy::default())))
    });
    g.bench_with_input(BenchmarkId::new("serve_300_with_faults", "drill"), &plan, |b, p| {
        b.iter(|| black_box(run_with_faults(&cfg, p, &RecoveryPolicy::hedged())))
    });

    let av = AvailabilityModel { mtbf_s: 3_600.0, checkpoint_write_s: 60.0, restart_s: 180.0 };
    let timeline = FaultPlan::generate(&FaultPlanConfig {
        seed: 3,
        horizon_ms: av.mtbf_s * 8_000.0 * 1_000.0,
        replicas: 1,
        planes: 1,
        crash_mtbf_ms: av.mtbf_s * 1_000.0,
        crash_repair_ms: 0.0,
        ..FaultPlanConfig::default()
    })
    .crash_times_s();
    let tau = av.young_daly_interval_s();
    g.bench_function("goodput_walk_2000_failures", |b| {
        b.iter(|| black_box(simulate_goodput(&av, tau, &timeline, av.mtbf_s * 2_000.0).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
