//! Regenerate and benchmark Figures 5–8.

use criterion::{criterion_group, criterion_main, Criterion};
use dsv3_core::experiments::{fig5, fig6, fig7, fig8};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    println!("{}", fig5::render());
    println!("{}", fig6::render());
    // Full paper scale: 4096 tokens per GPU.
    println!("{}", fig7::render(4096));
    println!("{}", fig8::render());

    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig5_alltoall", |b| b.iter(|| black_box(fig5::run())));
    g.bench_function("fig6_latency", |b| b.iter(|| black_box(fig6::run())));
    g.bench_function("fig7_deepep", |b| b.iter(|| black_box(fig7::run(512))));
    g.bench_function("fig8_routing", |b| b.iter(|| black_box(fig8::run())));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
