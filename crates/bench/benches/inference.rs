//! Regenerate and benchmark the inference-side analyses.

use criterion::{criterion_group, criterion_main, Criterion};
use dsv3_core::experiments::{local_deploy, mtp, node_limited, speed_limits};
use dsv3_core::inference::kvcache::KvCacheManager;
use dsv3_core::inference::overlap::{simulate, LayerPhases};
use dsv3_core::model::zoo;
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    println!("{}", speed_limits::render());
    println!("{}", mtp::render());
    println!("{}", node_limited::render());
    println!("{}", local_deploy::render());

    let mut g = c.benchmark_group("inference");
    g.bench_function("speed_limits", |b| b.iter(|| black_box(speed_limits::run())));
    g.bench_function("mtp_simulation", |b| {
        b.iter(|| black_box(dsv3_core::model::mtp::simulate(0.85, 1, 10_000, 7)))
    });
    g.bench_function("overlap_61_layers", |b| {
        let p = LayerPhases { attn_us: 60.0, dispatch_us: 121.0, moe_us: 40.0, combine_us: 121.0 };
        b.iter(|| black_box(simulate(61, p)))
    });
    g.bench_function("kvcache_admit_release", |b| {
        b.iter(|| {
            let mut m = KvCacheManager::new(&zoo::deepseek_v3(), 2, 40_000_000_000);
            for i in 0..100 {
                m.admit(i, 1000).unwrap();
                m.append_token(i).unwrap();
            }
            for i in 0..100 {
                m.release(i).unwrap();
            }
            black_box(m.live_requests())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
