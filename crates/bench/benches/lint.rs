//! Benchmark the linter itself: the full two-pass workspace analysis
//! (lex, item parse, expression analysis, call graph, P3 reachability)
//! and the parser-only throughput over every workspace source. Writes
//! `BENCH_lint.json` at the repo root in the shared
//! `{"bench", "metrics"}` schema.

use criterion::{criterion_group, criterion_main, Criterion};
use dsv3_core::lint::config::LintConfig;
use dsv3_core::lint::{analyze_workspace, lexer, parser};
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Best-of-`samples` per-iteration nanoseconds for `f`.
fn time_ns<O>(samples: u32, iters: u32, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
        if ns < best {
            best = ns;
        }
    }
    best
}

fn workspace_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn bench_lint(c: &mut Criterion) {
    let root = workspace_root();
    let cfg = LintConfig::default_config();

    // Pre-read every source once so the parser-only row measures
    // parsing, not the filesystem.
    let work = dsv3_core::lint::walk::collect(&root).expect("walk workspace");
    let sources: Vec<String> = work
        .sources
        .iter()
        .map(|(_, abs)| std::fs::read_to_string(abs).expect("read source"))
        .collect();
    let total_bytes: usize = sources.iter().map(String::len).sum();

    let mut g = c.benchmark_group("lint");
    g.sample_size(10);
    g.bench_function("workspace_scan", |b| {
        b.iter(|| black_box(analyze_workspace(&root, &cfg).expect("scan")))
    });
    g.bench_function("parse_all_sources", |b| {
        b.iter(|| {
            let mut fns = 0usize;
            for src in &sources {
                let lexed = lexer::lex(src);
                fns += parser::parse_items(&lexed.toks, &lexed.comments).fns.len();
            }
            black_box(fns)
        })
    });
    g.finish();

    let scan_ns = time_ns(5, 2, || analyze_workspace(&root, &cfg).expect("scan"));
    let parse_ns = time_ns(5, 2, || {
        let mut fns = 0usize;
        for src in &sources {
            let lexed = lexer::lex(src);
            fns += parser::parse_items(&lexed.toks, &lexed.comments).fns.len();
        }
        fns
    });
    let parse_mb_per_s = (total_bytes as f64 / 1e6) / (parse_ns / 1e9);

    let mut json = String::from("{\n  \"bench\": \"lint\",\n  \"metrics\": {\n");
    let _ = writeln!(json, "    \"workspace_scan_ns\": {scan_ns:.0},");
    let _ = writeln!(json, "    \"parse_all_sources_ns\": {parse_ns:.0},");
    let _ = writeln!(json, "    \"source_files\": {},", sources.len());
    let _ = writeln!(json, "    \"source_bytes\": {total_bytes},");
    let _ = writeln!(json, "    \"parser_throughput_mb_per_s\": {parse_mb_per_s:.1}");
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lint.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_lint);
criterion_main!(benches);
