//! Benchmark the memory timeline walker: production-shaped 61-layer ×
//! PP16 timelines under both schedules, plus the 2048-GPU frontier
//! search. Besides the criterion-style console lines, this bench writes
//! `BENCH_memtl.json` at the repo root — a small machine-readable
//! events/sec artifact so timeline-walker regressions show up in diffs.

use criterion::{criterion_group, criterion_main, Criterion};
use dsv3_core::memtl::{largest_fitting, simulate, FrontierQuery, GpuSpec, MemPlan, ScheduleKind};
use dsv3_core::model::zoo;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`samples` per-iteration nanoseconds for `f`.
fn time_ns<O>(samples: u32, iters: u32, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
        if ns < best {
            best = ns;
        }
    }
    best
}

fn bench_memtl(c: &mut Criterion) {
    let cfg = zoo::deepseek_v3();
    let dualpipe = MemPlan::deepseek_v3_production();
    let one_f_one_b = MemPlan { schedule: ScheduleKind::OneFOneB, ..dualpipe };
    let query = FrontierQuery { gpus: 2048, spec: GpuSpec::h800() };

    // Criterion-style console lines.
    let mut g = c.benchmark_group("memtl");
    g.sample_size(10);
    g.bench_function("dualpipe_61l_pp16_120micro", |b| {
        b.iter(|| black_box(simulate(&cfg, &dualpipe)))
    });
    g.bench_function("1f1b_61l_pp16_120micro", |b| {
        b.iter(|| black_box(simulate(&cfg, &one_f_one_b)))
    });
    g.bench_function("frontier_2048_gpus", |b| {
        b.iter(|| black_box(largest_fitting(&cfg, &dualpipe, &query)))
    });
    g.finish();

    // Machine-readable artifact: events walked per second per scenario.
    let mut rows = Vec::new();
    for (name, plan) in
        [("dualpipe_61l_pp16_120micro", &dualpipe), ("1f1b_61l_pp16_120micro", &one_f_one_b)]
    {
        let events = simulate(&cfg, plan).chunk_events;
        let ns = time_ns(5, 8, || simulate(&cfg, plan));
        rows.push((name, events, ns, events as f64 / (ns / 1e9)));
    }
    let frontier_ns = time_ns(3, 2, || largest_fitting(&cfg, &dualpipe, &query));

    let mut json = String::from("{\n  \"bench\": \"memtl\",\n  \"metrics\": {\n");
    for (name, events, ns, eps) in &rows {
        let _ = writeln!(json, "    \"{name}_chunk_events\": {events},");
        let _ = writeln!(json, "    \"{name}_walk_ns\": {ns:.0},");
        let _ = writeln!(json, "    \"{name}_events_per_sec\": {eps:.0},");
    }
    let _ = writeln!(json, "    \"frontier_2048_gpus_ns\": {frontier_ns:.0}");
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_memtl.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_memtl);
criterion_main!(benches);
