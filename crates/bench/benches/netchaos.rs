//! Benchmark the chaos flow simulator: ChaosSim vs FlowSim on an
//! identical fault-free workload (pricing the retransmit machinery, with
//! a bit-identity assert first so the comparison is honest), ChaosSim
//! under a flapping schedule, and the full net-chaos registry sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use dsv3_core::experiments::net_chaos;
use dsv3_core::netsim::chaos::{ChaosConfig, LinkFlap, LinkSchedule, ReroutePolicy};
use dsv3_core::netsim::{ChaosSim, FlowSim, Link};
use std::collections::BTreeSet;
use std::hint::black_box;

const LINKS: usize = 64;
const FLOWS: usize = 128;
const BYTES: f64 = 25e6;

fn links() -> Vec<Link> {
    (0..LINKS).map(|l| Link { capacity_gbps: 40.0 + (l % 5) as f64 * 20.0 }).collect()
}

/// Deterministic 3-hop paths with distinct links (a path must not cross
/// the same link twice or load accounting double-counts).
fn path(f: usize) -> Vec<usize> {
    let set: BTreeSet<usize> =
        [f % LINKS, (f * 7 + 3) % LINKS, (f * 13 + 11) % LINKS].into_iter().collect();
    set.into_iter().collect()
}

fn flow_sim() -> FlowSim {
    let mut sim = FlowSim::new(links());
    for f in 0..FLOWS {
        sim.add_flow(path(f), BYTES, 0.0, 2.0);
    }
    sim
}

fn chaos_sim() -> ChaosSim {
    let mut sim = ChaosSim::new(links());
    for f in 0..FLOWS {
        sim.add_flow(vec![path(f)], BYTES, 0.0, 2.0);
    }
    sim
}

/// `Stall` on the home path with an empty schedule: the configuration
/// under which ChaosSim promises bit-identity with FlowSim.
fn fault_free() -> ChaosConfig {
    ChaosConfig { policy: ReroutePolicy::Stall, ..ChaosConfig::default() }
}

fn flapping() -> ChaosConfig {
    let flaps = (0..16)
        .map(|i| LinkFlap {
            link: (i * 11 + 5) % LINKS,
            down_at_us: 50.0 + i as f64 * 40.0,
            repair_us: 300.0,
        })
        .collect();
    ChaosConfig { schedule: LinkSchedule { flaps }, ..ChaosConfig::default() }
}

fn bench_netchaos(c: &mut Criterion) {
    println!("{}", net_chaos::render());

    // Byte-identity gate: a fault-free ChaosSim run must reproduce the
    // FlowSim result bit-for-bit, or the overhead comparison below is
    // comparing different physics.
    let base = flow_sim().run();
    let chaos = chaos_sim().run(&fault_free());
    let chaos_as_sim = chaos.to_sim_report().expect("fault-free run completes every flow");
    assert_eq!(base.makespan_us.to_bits(), chaos_as_sim.makespan_us.to_bits());
    assert_eq!(base.finish_us.len(), chaos_as_sim.finish_us.len());
    for (a, b) in base.finish_us.iter().zip(&chaos_as_sim.finish_us) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    let mut g = c.benchmark_group("netchaos");
    g.sample_size(10);
    g.bench_function("flowsim_128_flows", |b| b.iter(|| black_box(flow_sim().run())));
    g.bench_function("chaossim_128_flows_fault_free", |b| {
        let cfg = fault_free();
        b.iter(|| black_box(chaos_sim().run(&cfg)))
    });
    g.bench_function("chaossim_128_flows_flapping", |b| {
        let cfg = flapping();
        b.iter(|| black_box(chaos_sim().run(&cfg)))
    });
    g.bench_function("net_chaos_full_sweep", |b| b.iter(|| black_box(net_chaos::run())));
    g.finish();
}

criterion_group!(benches, bench_netchaos);
criterion_main!(benches);
