//! Regenerate and benchmark the §3 low-precision experiments.

use criterion::{criterion_group, criterion_main, Criterion};
use dsv3_core::experiments::{fp8_gemm, fp8_training, logfmt};
use dsv3_core::numerics::gemm::{gemm_fp8, Fp8GemmConfig, MainAccumulator};
use dsv3_core::numerics::logfmt::logfmt_quantize;
use dsv3_core::numerics::minifloat::Format;
use dsv3_core::numerics::Matrix;
use std::hint::black_box;

fn bench_numerics(c: &mut Criterion) {
    println!("{}", fp8_gemm::render());
    println!("{}", logfmt::render());
    println!("{}", fp8_training::render());

    let mut g = c.benchmark_group("numerics");
    g.sample_size(10);
    let a = Matrix::random(8, 2048, 1.0, 1);
    let b = Matrix::random(2048, 8, 1.0, 2);
    for (name, acc) in [
        ("gemm_fp8_fp22", MainAccumulator::Fp22),
        ("gemm_fp8_split_fp32", MainAccumulator::Fp32),
        ("gemm_fp8_exact", MainAccumulator::Exact),
    ] {
        g.bench_function(name, |bench| {
            bench.iter(|| {
                black_box(gemm_fp8(
                    &a,
                    &b,
                    Fp8GemmConfig { main_acc: acc, ..Fp8GemmConfig::default() },
                ))
            })
        });
    }
    let acts = logfmt::activations(8192, 3);
    g.bench_function("logfmt8_roundtrip", |b| b.iter(|| black_box(logfmt_quantize(&acts, 8))));
    g.bench_function("e4m3_quantize_8k", |b| {
        b.iter(|| {
            let mut acc = 0f64;
            for v in &acts {
                acc += Format::E4M3.quantize(f64::from(*v));
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_numerics);
criterion_main!(benches);
