//! Benchmark the overload-robustness layer: a fault-aware baseline run,
//! the same run through `run_overload` with every subsystem disabled
//! (the zero-cost-when-off claim), and the full admission + ladder +
//! clients + autoscale stack. Besides the criterion-style console
//! lines, this bench writes `BENCH_overload.json` at the repo root and
//! asserts the disabled path stays within 1.2x of the baseline — the
//! overload layer must be free when it is off.

use criterion::{criterion_group, criterion_main, Criterion};
use dsv3_core::faults::{FaultPlan, RecoveryPolicy};
use dsv3_core::serving::{
    run_overload, run_with_faults, AdmissionConfig, ArrivalProcess, AutoscaleConfig, ClientConfig,
    LadderConfig, OverloadConfig, RateLimitConfig, RouterPolicy, ServingSimConfig,
};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`samples` per-iteration nanoseconds for `f`.
fn time_ns<O>(samples: u32, iters: u32, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
        if ns < best {
            best = ns;
        }
    }
    best
}

fn full_stack() -> OverloadConfig {
    OverloadConfig {
        admission: Some(AdmissionConfig {
            queue_cap: 256,
            deadline_headroom: 1.0,
            rate_limit: Some(RateLimitConfig { rate_per_s_per_replica: 2.5, burst: 24.0 }),
        }),
        ladder: Some(LadderConfig::default()),
        clients: Some(ClientConfig::default()),
        autoscale: Some(AutoscaleConfig::reactive(4, 4)),
        priority_classes: 4,
        timeline_window_ms: 5_000.0,
    }
}

fn bench_overload(c: &mut Criterion) {
    let cfg = ServingSimConfig::h800_baseline(
        ArrivalProcess::Poisson { rate_per_s: 12.0 },
        300,
        RouterPolicy::Disaggregated { prefill_fraction: 0.25 },
    );
    let plan = FaultPlan { replicas: 4, planes: 8, links: 0, events: Vec::new() };
    let policy = RecoveryPolicy::default();
    let disabled = OverloadConfig::disabled();
    let full = full_stack();

    let mut g = c.benchmark_group("overload");
    g.sample_size(10);
    g.bench_function("baseline_300", |b| {
        b.iter(|| black_box(run_with_faults(&cfg, &plan, &policy)))
    });
    g.bench_function("disabled_overload_300", |b| {
        b.iter(|| black_box(run_overload(&cfg, &plan, &policy, &disabled)))
    });
    g.bench_function("full_stack_300", |b| {
        b.iter(|| black_box(run_overload(&cfg, &plan, &policy, &full)))
    });
    g.finish();

    // Machine-readable artifact plus the zero-cost-when-off gate.
    let base_ns = time_ns(5, 4, || run_with_faults(&cfg, &plan, &policy));
    let off_ns = time_ns(5, 4, || run_overload(&cfg, &plan, &policy, &disabled));
    let full_ns = time_ns(5, 4, || run_overload(&cfg, &plan, &policy, &full));
    let off_ratio = off_ns / base_ns;
    let full_ratio = full_ns / base_ns;

    let mut json = String::from("{\n  \"bench\": \"overload\",\n  \"metrics\": {\n");
    let _ = writeln!(json, "    \"baseline_ns\": {base_ns:.0},");
    let _ = writeln!(json, "    \"disabled_overload_ns\": {off_ns:.0},");
    let _ = writeln!(json, "    \"full_stack_ns\": {full_ns:.0},");
    let _ = writeln!(json, "    \"disabled_overhead_ratio\": {off_ratio:.3},");
    let _ = writeln!(json, "    \"full_stack_overhead_ratio\": {full_ratio:.3}");
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_overload.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }

    assert!(
        off_ratio <= 1.2,
        "disabled overload layer must cost <= 1.2x the baseline, measured {off_ratio:.3}x"
    );
}

criterion_group!(benches, bench_overload);
criterion_main!(benches);
