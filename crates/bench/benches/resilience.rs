//! Benchmark the fleet-scale resilience walker against the legacy
//! single-tier goodput simulator it generalises. Three rows: the
//! degenerate configuration (one synchronous remote tier, cold
//! restart, no SDC) on the *same* failure timeline `simulate_goodput`
//! walks, the full-feature tiered + spare-pool + SDC configuration,
//! and the fleet timeline generator itself. Writes
//! `BENCH_resilience.json` at the repo root in the shared
//! `{"bench", "metrics"}` schema and asserts the degenerate path stays
//! within 1.2x of `simulate_goodput` — the generalisation must not tax
//! the case the old API already handled.

use criterion::{criterion_group, criterion_main, Criterion};
use dsv3_core::faults::{
    generate_failures, simulate_goodput, simulate_resilience, system_mtbf_s, CheckpointBytes,
    CheckpointStack, ComponentMtbf, FleetSpec, RecoveryKind, ResilienceConfig, SdcConfig,
};
use dsv3_core::model::availability::AvailabilityModel;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`samples` per-iteration nanoseconds for `f`.
fn time_ns<O>(samples: u32, iters: u32, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
        if ns < best {
            best = ns;
        }
    }
    best
}

fn bench_resilience(c: &mut Criterion) {
    let spec = FleetSpec::with_gpus(16_384);
    let mtbf = ComponentMtbf::production();
    let mtbf_s = system_mtbf_s(&spec, &mtbf);
    let horizon_s = 86_400.0 * 30.0;
    let failures = generate_failures(&spec, &mtbf, 42, horizon_s);
    let times: Vec<f64> = failures.iter().map(|f| f.at_s).collect();

    // The degenerate configuration and its analytic-era equivalent walk
    // the same physics: one synchronous remote tier, cold restart, the
    // restore read folded into the restart term.
    let ckpt = CheckpointBytes { write_bytes: 30e9, restore_bytes: 30e9 };
    let stack = CheckpointStack::single_sync_remote(2.0);
    let av = AvailabilityModel {
        mtbf_s,
        checkpoint_write_s: stack.blocking_write_s(ckpt.write_bytes),
        restart_s: 180.0 + stack.tiers[0].restore_s(ckpt.restore_bytes),
    };
    let interval_s = av.young_daly_interval_s();
    let degenerate = ResilienceConfig {
        interval_s,
        ckpt,
        stack,
        recovery: RecoveryKind::ColdRestart,
        sdc: SdcConfig::disabled(),
        restart_s: 180.0,
        repair_s: 21_600.0,
        gpus_per_failure: 8,
        horizon_s,
        seed: 42,
    };
    // The full-feature path: async tiers, hot spares, SDC verification.
    let full = ResilienceConfig {
        stack: CheckpointStack::tiered(),
        recovery: RecoveryKind::SparePool { spares: 512, provision_s: 30.0 },
        sdc: SdcConfig {
            mtbf_s: 86_400.0,
            detection_mean_s: 7_200.0,
            verify_every: 20,
            verify_cost_s: 30.0,
        },
        ..degenerate.clone()
    };

    let mut g = c.benchmark_group("resilience");
    g.sample_size(10);
    g.bench_function("goodput_30d_16k", |b| {
        b.iter(|| black_box(simulate_goodput(&av, interval_s, &times, horizon_s)))
    });
    g.bench_function("degenerate_30d_16k", |b| {
        b.iter(|| black_box(simulate_resilience(&degenerate, &failures)))
    });
    g.bench_function("tiered_spare_sdc_30d_16k", |b| {
        b.iter(|| black_box(simulate_resilience(&full, &failures)))
    });
    g.bench_function("generate_failures_30d_16k", |b| {
        b.iter(|| black_box(generate_failures(&spec, &mtbf, 42, horizon_s)))
    });
    g.finish();

    // Machine-readable artifact plus the no-generalisation-tax gate.
    let goodput_ns = time_ns(5, 8, || simulate_goodput(&av, interval_s, &times, horizon_s));
    let degen_ns = time_ns(5, 8, || simulate_resilience(&degenerate, &failures));
    let full_ns = time_ns(5, 8, || simulate_resilience(&full, &failures));
    let gen_ns = time_ns(5, 8, || generate_failures(&spec, &mtbf, 42, horizon_s));
    let ratio = degen_ns / goodput_ns;

    let mut json = String::from("{\n  \"bench\": \"resilience\",\n  \"metrics\": {\n");
    let _ = writeln!(json, "    \"simulate_goodput_ns\": {goodput_ns:.0},");
    let _ = writeln!(json, "    \"degenerate_ns\": {degen_ns:.0},");
    let _ = writeln!(json, "    \"tiered_spare_sdc_ns\": {full_ns:.0},");
    let _ = writeln!(json, "    \"generate_failures_ns\": {gen_ns:.0},");
    let _ = writeln!(json, "    \"degenerate_vs_goodput_ratio\": {ratio:.3}");
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_resilience.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }

    assert!(
        ratio <= 1.2,
        "degenerate resilience walk must cost <= 1.2x simulate_goodput, measured {ratio:.3}x"
    );
}

criterion_group!(benches, bench_resilience);
criterion_main!(benches);
