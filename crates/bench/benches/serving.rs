//! Benchmark the request-level serving simulator: workload generation,
//! a full unified-pool run, and the policy-comparison experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsv3_core::experiments::serving as serving_experiment;
use dsv3_core::serving::{run, workload, ArrivalProcess, RouterPolicy, ServingSimConfig};
use std::hint::black_box;

fn bench_serving(c: &mut Criterion) {
    println!("{}", serving_experiment::render());

    let mut g = c.benchmark_group("serving");
    g.sample_size(10);

    let cfg = ServingSimConfig::h800_baseline(
        ArrivalProcess::Poisson { rate_per_s: 12.0 },
        300,
        RouterPolicy::Unified,
    );
    g.bench_function("workload_300", |b| b.iter(|| black_box(workload::generate(&cfg.workload))));
    for rate in [6.0, 12.0, 24.0] {
        let swept = ServingSimConfig::h800_baseline(
            ArrivalProcess::Poisson { rate_per_s: rate },
            300,
            RouterPolicy::Unified,
        );
        g.bench_with_input(BenchmarkId::new("simulate_300", rate), &swept, |b, cfg| {
            b.iter(|| black_box(run(cfg)))
        });
    }
    g.bench_function("experiment_comparison", |b| b.iter(|| black_box(serving_experiment::run())));
    g.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
