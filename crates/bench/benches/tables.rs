//! Regenerate and benchmark Tables 1–5.

use criterion::{criterion_group, criterion_main, Criterion};
use dsv3_core::experiments::{table1, table2, table3, table4, table5};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    // Print each regenerated table once so `cargo bench` output contains the
    // paper's rows.
    println!("{}", table1::render());
    println!("{}", table2::render());
    println!("{}", table3::render());
    println!("{}", table4::render());
    println!("{}", table5::render());

    let mut g = c.benchmark_group("tables");
    g.bench_function("table1_kv_cache", |b| b.iter(|| black_box(table1::run())));
    g.bench_function("table2_flops", |b| b.iter(|| black_box(table2::run())));
    g.bench_function("table3_topology", |b| b.iter(|| black_box(table3::run())));
    g.bench_function("table4_training", |b| b.iter(|| black_box(table4::run())));
    g.bench_function("table5_latency", |b| b.iter(|| black_box(table5::run())));
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
