//! Benchmark the telemetry layer: a disabled recorder threaded through
//! the serving engine must cost (essentially) nothing over the plain
//! path, an enabled recorder prices the full tracing overhead, and the
//! recorder primitives themselves are measured in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use dsv3_core::serving::{
    run, run_with_faults_traced, ArrivalProcess, RouterPolicy, ServingSimConfig,
};
use dsv3_core::telemetry::Recorder;
use dsv3_core::{faults::FaultPlan, faults::RecoveryPolicy};
use std::hint::black_box;

/// Coarse guard on the disabled-recorder contract: threading a disabled
/// recorder through the engine must not meaningfully slow it down. The
/// 2x bound is generous (measured ratio ≈ 1.0) so scheduler noise on a
/// loaded CI box cannot trip it; real regressions (accidental `format!`
/// on the disabled path) are order-of-magnitude.
fn assert_disabled_overhead_negligible(
    cfg: &ServingSimConfig,
    empty: &FaultPlan,
    policy: &RecoveryPolicy,
) {
    let iters = 20;
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        black_box(run(cfg));
    }
    let plain = t0.elapsed();
    let t1 = std::time::Instant::now();
    for _ in 0..iters {
        let mut rec = Recorder::disabled();
        black_box(run_with_faults_traced(cfg, empty, policy, &mut rec, "bench"));
    }
    let disabled = t1.elapsed();
    let ratio = disabled.as_secs_f64() / plain.as_secs_f64().max(1e-9);
    println!("disabled-recorder overhead ratio: {ratio:.3}");
    assert!(ratio < 2.0, "disabled recorder must be (near) free, measured {ratio:.3}x");
}

fn bench_telemetry(c: &mut Criterion) {
    let cfg = ServingSimConfig::h800_baseline(
        ArrivalProcess::Poisson { rate_per_s: 10.0 },
        300,
        RouterPolicy::Unified,
    );
    let empty = FaultPlan::healthy();
    let policy = RecoveryPolicy::default();
    assert_disabled_overhead_negligible(&cfg, &empty, &policy);

    let mut g = c.benchmark_group("telemetry");
    g.sample_size(10);

    // The three-way comparison the disabled-recorder contract rests on:
    // plain ≈ disabled ≪ enabled is acceptable; plain ≪ disabled is not.
    g.bench_function("serve_300_plain", |b| b.iter(|| black_box(run(&cfg))));
    g.bench_function("serve_300_disabled_recorder", |b| {
        b.iter(|| {
            let mut rec = Recorder::disabled();
            black_box(run_with_faults_traced(&cfg, &empty, &policy, &mut rec, "bench"))
        })
    });
    g.bench_function("serve_300_enabled_recorder", |b| {
        b.iter(|| {
            let mut rec = Recorder::new();
            black_box(run_with_faults_traced(&cfg, &empty, &policy, &mut rec, "bench"))
        })
    });

    // Primitives: what one event costs on each path.
    g.bench_function("primitives_disabled_10k", |b| {
        b.iter(|| {
            let mut rec = Recorder::disabled();
            for i in 0..10_000u64 {
                let t = i as f64;
                rec.span(0, 0, "c", "s", t, t + 1.0);
                rec.counter_add("n", 1);
                rec.observe("h", t);
            }
            black_box(rec.events().len())
        })
    });
    g.bench_function("primitives_enabled_10k", |b| {
        b.iter(|| {
            let mut rec = Recorder::new();
            let pid = rec.process("bench");
            let tid = rec.thread(pid, "t");
            for i in 0..10_000u64 {
                let t = i as f64;
                rec.span(pid, tid, "c", "s", t, t + 1.0);
                rec.counter_add("n", 1);
                rec.observe("h", t);
            }
            black_box(rec.events().len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
