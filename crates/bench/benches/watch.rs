//! Benchmark the observability layer around the serving engine: the
//! plain fault-aware run, the same run with a *disabled* recorder (the
//! watch-off path every production run takes), the fully traced run
//! with series recording on, and the detector evaluation itself.
//! Writes `BENCH_watch.json` at the repo root in the shared
//! `{"bench", "metrics"}` schema and asserts the disabled-recorder
//! path stays within 1.1x of the plain baseline — observability must
//! be free when it is off.

use criterion::{criterion_group, criterion_main, Criterion};
use dsv3_core::faults::{FaultPlan, RecoveryPolicy};
use dsv3_core::serving::{
    run_overload_traced, run_with_faults, ArrivalProcess, ClientConfig, OverloadConfig,
    RouterPolicy, ServingSimConfig,
};
use dsv3_core::telemetry::{evaluate, Recorder, WatchConfig};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`samples` per-iteration nanoseconds for `f`.
fn time_ns<O>(samples: u32, iters: u32, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
        if ns < best {
            best = ns;
        }
    }
    best
}

fn bench_watch(c: &mut Criterion) {
    let cfg = ServingSimConfig::h800_baseline(
        ArrivalProcess::Poisson { rate_per_s: 12.0 },
        300,
        RouterPolicy::Disaggregated { prefill_fraction: 0.25 },
    );
    let plan = FaultPlan { replicas: 4, planes: 8, links: 0, events: Vec::new() };
    let policy = RecoveryPolicy::default();
    // The off-path gate compares identical work: every overload feature
    // disabled, so the only difference vs `run_with_faults` is the
    // telemetry plumbing behind a disabled recorder.
    let off = OverloadConfig::disabled();
    // The traced rows use closed-loop clients so the recording carries
    // the full series family the detectors consume.
    let ov = OverloadConfig {
        clients: Some(ClientConfig::default()),
        timeline_window_ms: 5_000.0,
        ..OverloadConfig::disabled()
    };

    let mut g = c.benchmark_group("watch");
    g.sample_size(10);
    g.bench_function("baseline_300", |b| {
        b.iter(|| black_box(run_with_faults(&cfg, &plan, &policy)))
    });
    g.bench_function("disabled_recorder_300", |b| {
        b.iter(|| {
            let mut rec = Recorder::disabled();
            black_box(run_overload_traced(&cfg, &plan, &policy, &off, &mut rec, "bench"))
        })
    });
    g.bench_function("traced_300", |b| {
        b.iter(|| {
            let mut rec = Recorder::new();
            black_box(run_overload_traced(&cfg, &plan, &policy, &ov, &mut rec, "bench"))
        })
    });
    let mut traced = Recorder::new();
    let _ = run_overload_traced(&cfg, &plan, &policy, &ov, &mut traced, "bench");
    g.bench_function("evaluate_300", |b| {
        b.iter(|| black_box(evaluate("bench", &traced, &WatchConfig::default())))
    });
    g.finish();

    // Machine-readable artifact plus the free-when-off gate.
    let base_ns = time_ns(5, 4, || run_with_faults(&cfg, &plan, &policy));
    let off_ns = time_ns(5, 4, || {
        let mut rec = Recorder::disabled();
        run_overload_traced(&cfg, &plan, &policy, &off, &mut rec, "bench")
    });
    let on_ns = time_ns(5, 4, || {
        let mut rec = Recorder::new();
        run_overload_traced(&cfg, &plan, &policy, &ov, &mut rec, "bench")
    });
    let eval_ns = time_ns(5, 4, || evaluate("bench", &traced, &WatchConfig::default()));
    let off_ratio = off_ns / base_ns;

    let mut json = String::from("{\n  \"bench\": \"watch\",\n  \"metrics\": {\n");
    let _ = writeln!(json, "    \"baseline_ns\": {base_ns:.0},");
    let _ = writeln!(json, "    \"disabled_recorder_ns\": {off_ns:.0},");
    let _ = writeln!(json, "    \"traced_ns\": {on_ns:.0},");
    let _ = writeln!(json, "    \"evaluate_ns\": {eval_ns:.0},");
    let _ = writeln!(json, "    \"disabled_overhead_ratio\": {off_ratio:.3}");
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_watch.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }

    assert!(
        off_ratio <= 1.1,
        "disabled observability must cost <= 1.1x the plain baseline, measured {off_ratio:.3}x"
    );
}

criterion_group!(benches, bench_watch);
criterion_main!(benches);
