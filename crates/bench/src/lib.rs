//! Benchmark support for the DeepSeek-V3 reproduction.
//!
//! The Criterion benches live in `benches/`:
//!
//! * `tables` — regenerates Tables 1–5 (printing each once) and benchmarks
//!   the runners.
//! * `figures` — regenerates Figures 5–8.
//! * `numerics` — FP8 GEMM strategies, quantization and LogFMT codecs.
//! * `inference` — speed limits, MTP simulation, overlap and the KV cache.
//! * `ablations` — design-choice sweeps: node limit, FP8 promotion
//!   interval, schedule families, plane failures, EPLB redundancy.
//!
//! Run with `cargo bench --workspace`.

#![forbid(unsafe_code)]
