//! NCCL-style all-to-all with PXN NVLink forwarding (Figures 5–6).
//!
//! Under PXN, a message from GPU `(a, i)` to GPU `(b, q)` is first forwarded
//! over NVLink to the source node's GPU `(a, q)` — the GPU whose NIC lives
//! on the destination's plane — and then crosses the network on plane `q`,
//! landing directly in the destination GPU's memory. Inter-node traffic for
//! a given destination GPU therefore aggregates into a single per-plane
//! node-to-node flow, which is why the multi-plane topology matches the
//! multi-rail one: the flow patterns coincide.

use crate::{Cluster, CollectiveReport};
use dsv3_netsim::chaos::ChaosConfig;
use serde::{Deserialize, Serialize};

/// Run an all-to-all where every GPU sends `bytes_per_peer` to every other
/// GPU. Returns nccl-tests-style bandwidths (`algbw = per-rank buffer /
/// time`, `busbw = algbw · (n−1)/n`).
///
/// ```
/// use dsv3_collectives::{alltoall::alltoall_pxn, Cluster, ClusterConfig, FabricKind};
///
/// let cluster = Cluster::new(ClusterConfig::h800(2, FabricKind::MultiPlane));
/// let report = alltoall_pxn(&cluster, 1024.0 * 1024.0);
/// assert!(report.busbw_gbps > 30.0);
/// ```
///
/// # Panics
///
/// Panics if the cluster has fewer than 2 GPUs or `bytes_per_peer < 0`.
#[must_use]
pub fn alltoall_pxn(cluster: &Cluster, bytes_per_peer: f64) -> CollectiveReport {
    let g = cluster.cfg.gpus();
    assert!(g >= 2, "all-to-all needs at least two GPUs");
    assert!(bytes_per_peer >= 0.0, "negative message size");
    let nodes = cluster.cfg.nodes;
    let locals = cluster.cfg.gpus_per_node;
    let mut sim = cluster.sim();

    for a in 0..nodes {
        // Intra-node exchange over NVLink.
        for i in 0..locals {
            for j in 0..locals {
                if i != j {
                    let (path, lat) = cluster.nvlink_path(cluster.gpu(a, i), cluster.gpu(a, j));
                    sim.add_flow(path, bytes_per_peer, 0.0, lat);
                }
            }
        }
        if nodes == 1 {
            continue;
        }
        // PXN source-side forwarding: GPU (a,i)'s traffic for remote GPUs of
        // local index q funnels over NVLink to (a,q) — aggregated across all
        // remote nodes.
        for i in 0..locals {
            for q in 0..locals {
                if i != q {
                    let (path, lat) = cluster.nvlink_path(cluster.gpu(a, i), cluster.gpu(a, q));
                    sim.add_flow(path, bytes_per_peer * (nodes - 1) as f64, 0.0, lat);
                }
            }
        }
        // Inter-node flows: plane q carries all of node a's traffic for GPU
        // (b, q) — `locals` senders worth of bytes.
        for b in 0..nodes {
            if a != b {
                for q in 0..locals {
                    let (path, lat) = cluster.plane_path(a, b, q);
                    sim.add_flow(path, bytes_per_peer * locals as f64, 0.0, lat);
                }
            }
        }
    }

    let report = sim.run();
    let time_us = report.makespan_us;
    let per_rank_buffer = bytes_per_peer * g as f64;
    let algbw = per_rank_buffer / (time_us * 1000.0); // bytes/µs/1000 = GB/s
    CollectiveReport { time_us, algbw_gbps: algbw, busbw_gbps: algbw * (g as f64 - 1.0) / g as f64 }
}

/// Outcome of an all-to-all over a failing fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosAllToAllReport {
    /// Fault-free baseline (same cluster, same bytes).
    pub healthy: CollectiveReport,
    /// Completion time over the failing fabric (makespan of completed
    /// flows, µs).
    pub chaos_time_us: f64,
    /// `chaos_time_us / healthy.time_us`.
    pub slowdown: f64,
    /// Total simulated flows (NVLink exchange + PXN forwarding + chunked
    /// inter-node).
    pub total_flows: usize,
    /// Flows stranded by retry exhaustion or deadline.
    pub stranded_flows: usize,
    /// Bytes lost on failed links and re-sent.
    pub retransmitted_bytes: f64,
    /// Path changes across all flows.
    pub reroutes: u64,
    /// Failed attempts across all flows.
    pub retries: u64,
    /// Per-flow byte-conservation check (`sent ≈ delivered + lost`).
    pub bytes_balanced: bool,
}

/// [`alltoall_pxn`] over a failing fabric: the same PXN flow pattern, with
/// every inter-node flow split into `chunks` independent sub-flows (the
/// chunked retry granularity — a failure loses and re-sends at most one
/// chunk's window) and given the full per-plane ECMP path set so the
/// [`ChaosConfig`]'s reroute policy can retarget a surviving plane.
///
/// With `chunks == 1`, an empty schedule, and the `Stall` policy the
/// simulation is bit-identical to [`alltoall_pxn`]'s.
///
/// # Panics
///
/// Panics if the cluster has fewer than 2 GPUs, `bytes_per_peer < 0`, or
/// `chunks == 0`.
#[must_use]
pub fn alltoall_pxn_chaos(
    cluster: &Cluster,
    bytes_per_peer: f64,
    chunks: usize,
    cfg: &ChaosConfig,
) -> ChaosAllToAllReport {
    let g = cluster.cfg.gpus();
    assert!(g >= 2, "all-to-all needs at least two GPUs");
    assert!(bytes_per_peer >= 0.0, "negative message size");
    assert!(chunks > 0, "need at least one chunk");
    let healthy = alltoall_pxn(cluster, bytes_per_peer);
    let nodes = cluster.cfg.nodes;
    let locals = cluster.cfg.gpus_per_node;
    let mut sim = cluster.chaos_sim();
    let mut expected = Vec::new();

    // Same flow order as `alltoall_pxn`; NVLink legs keep their single
    // path (a GPU cannot swap NVSwitch ports), inter-node legs are chunked
    // and carry the per-plane path set.
    for a in 0..nodes {
        for i in 0..locals {
            for j in 0..locals {
                if i != j {
                    let (path, lat) = cluster.nvlink_path(cluster.gpu(a, i), cluster.gpu(a, j));
                    sim.add_flow(vec![path], bytes_per_peer, 0.0, lat);
                    expected.push(bytes_per_peer);
                }
            }
        }
        if nodes == 1 {
            continue;
        }
        for i in 0..locals {
            for q in 0..locals {
                if i != q {
                    let (path, lat) = cluster.nvlink_path(cluster.gpu(a, i), cluster.gpu(a, q));
                    let bytes = bytes_per_peer * (nodes - 1) as f64;
                    sim.add_flow(vec![path], bytes, 0.0, lat);
                    expected.push(bytes);
                }
            }
        }
        for b in 0..nodes {
            if a != b {
                for q in 0..locals {
                    let (paths, lat) = cluster.plane_path_set(a, b, q);
                    let bytes = bytes_per_peer * locals as f64 / chunks as f64;
                    for _ in 0..chunks {
                        sim.add_flow(paths.clone(), bytes, 0.0, lat);
                        expected.push(bytes);
                    }
                }
            }
        }
    }

    let r = sim.run(cfg);
    ChaosAllToAllReport {
        healthy,
        chaos_time_us: r.makespan_us,
        slowdown: r.makespan_us / healthy.time_us,
        total_flows: r.flows.len(),
        stranded_flows: r.stranded,
        retransmitted_bytes: r.retransmitted_bytes,
        reroutes: r.total_reroutes,
        retries: r.total_retries,
        bytes_balanced: r.bytes_balanced(&expected, 1e-5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, FabricKind};

    fn cluster(nodes: usize, fabric: FabricKind) -> Cluster {
        Cluster::new(ClusterConfig::h800(nodes, fabric))
    }

    #[test]
    fn large_messages_approach_nic_bandwidth() {
        let c = cluster(8, FabricKind::MultiPlane);
        let r = alltoall_pxn(&c, 4.0 * 1024.0 * 1024.0);
        assert!(
            r.busbw_gbps > 0.8 * c.cfg.nic_gbps && r.busbw_gbps < 1.5 * c.cfg.nic_gbps,
            "busbw {}",
            r.busbw_gbps
        );
    }

    #[test]
    fn small_messages_are_latency_bound() {
        let c = cluster(8, FabricKind::MultiPlane);
        let small = alltoall_pxn(&c, 64.0);
        let large = alltoall_pxn(&c, 1024.0 * 1024.0);
        assert!(small.busbw_gbps < 0.1 * large.busbw_gbps);
        // Time floor is the cross-node path latency.
        assert!(small.time_us >= c.cfg.net_latency.same_leaf_us());
    }

    #[test]
    fn mpft_and_mrft_parity() {
        // Figure 5/6: with PXN the two fabrics perform identically.
        for bytes in [4096.0, 262_144.0, 8.0 * 1024.0 * 1024.0] {
            let mp = alltoall_pxn(&cluster(16, FabricKind::MultiPlane), bytes);
            let mr = alltoall_pxn(&cluster(16, FabricKind::MultiRail), bytes);
            let diff = (mp.busbw_gbps - mr.busbw_gbps).abs() / mp.busbw_gbps.max(1e-9);
            assert!(diff < 0.02, "parity broken at {bytes}: {diff}");
        }
    }

    #[test]
    fn single_node_uses_only_nvlink() {
        let c = cluster(1, FabricKind::MultiPlane);
        let r = alltoall_pxn(&c, 1024.0 * 1024.0);
        // 7 peers × 1 MB over 160 GB/s egress ≈ 43.75 µs + latency.
        assert!(r.time_us < 60.0, "{}", r.time_us);
        assert!(r.busbw_gbps > 100.0, "NVLink-only busbw {}", r.busbw_gbps);
    }

    #[test]
    fn scaling_16_to_128_gpus_holds_bandwidth() {
        // Figure 5's x-axis: 32..128 GPUs. Bus bandwidth stays near the NIC
        // limit as the cluster grows.
        let mut last = f64::INFINITY;
        for nodes in [2, 4, 8, 16] {
            let r = alltoall_pxn(&cluster(nodes, FabricKind::MultiPlane), 1024.0 * 1024.0);
            assert!(r.busbw_gbps > 30.0, "{nodes} nodes: {}", r.busbw_gbps);
            last = last.min(r.busbw_gbps);
        }
        assert!(last > 30.0);
    }

    #[test]
    fn zero_bytes_pure_latency() {
        let c = cluster(2, FabricKind::MultiPlane);
        let r = alltoall_pxn(&c, 0.0);
        assert!(r.time_us > 0.0);
        assert_eq!(r.algbw_gbps, 0.0);
    }

    mod chaos {
        use super::*;
        use dsv3_netsim::chaos::{ChaosConfig, LinkSchedule, ReroutePolicy, RetransmitConfig};

        const MB: f64 = 1024.0 * 1024.0;

        fn retransmit() -> RetransmitConfig {
            RetransmitConfig {
                detect_timeout_us: 5.0,
                backoff_base_us: 5.0,
                backoff_factor: 2.0,
                backoff_max_us: 100.0,
                max_retries: 6,
                inflight_window_bytes: 0.25 * MB,
            }
        }

        #[test]
        fn fault_free_chaos_matches_healthy_bitwise() {
            let c = cluster(2, FabricKind::MultiPlane);
            let r = alltoall_pxn_chaos(
                &c,
                MB,
                1,
                &ChaosConfig { policy: ReroutePolicy::Stall, ..ChaosConfig::default() },
            );
            assert_eq!(r.chaos_time_us.to_bits(), r.healthy.time_us.to_bits());
            assert_eq!(r.slowdown, 1.0);
            assert_eq!(r.stranded_flows, 0);
            assert_eq!(r.reroutes, 0);
            assert_eq!(r.retransmitted_bytes, 0.0);
            assert!(r.bytes_balanced);
        }

        #[test]
        fn chunking_does_not_change_fault_free_time() {
            let c = cluster(2, FabricKind::MultiPlane);
            let one = alltoall_pxn_chaos(&c, MB, 1, &ChaosConfig::default());
            let four = alltoall_pxn_chaos(&c, MB, 4, &ChaosConfig::default());
            let diff = (one.chaos_time_us - four.chaos_time_us).abs() / one.chaos_time_us;
            assert!(diff < 1e-6, "chunks share the same links fairly: {diff}");
            assert_eq!(four.total_flows, one.total_flows + 2 * 8 * 3);
        }

        #[test]
        fn adaptive_survives_a_plane_outage_with_bounded_slowdown() {
            // Plane 5 dies mid-transfer and never heals within the run:
            // adaptive reroute retargets the survivors. The paper's claim —
            // degradation ~ failed fraction (8/7), not collapse.
            let c = cluster(2, FabricKind::MultiPlane);
            let sched = LinkSchedule::fail_links(&c.plane_links(5), 50.0, 1e9);
            let cfg = ChaosConfig {
                schedule: sched,
                policy: ReroutePolicy::Adaptive,
                retransmit: retransmit(),
                deadline_us: None,
            };
            let r = alltoall_pxn_chaos(&c, MB, 4, &cfg);
            assert_eq!(r.stranded_flows, 0, "adaptive strands nothing");
            assert!(r.reroutes > 0, "failed-plane flows must retarget");
            assert!(r.retransmitted_bytes > 0.0, "mid-transfer loss costs bytes");
            assert!(r.bytes_balanced);
            assert!(r.slowdown > 1.0, "{}", r.slowdown);
            assert!(r.slowdown < 1.6, "bounded degradation, got {}", r.slowdown);
        }

        #[test]
        fn stall_on_dead_plane_strands_at_deadline() {
            let c = cluster(2, FabricKind::MultiPlane);
            let sched = LinkSchedule::fail_links(&c.plane_links(5), 50.0, 1e9);
            let cfg = ChaosConfig {
                schedule: sched,
                policy: ReroutePolicy::Stall,
                retransmit: retransmit(),
                deadline_us: Some(2_000.0),
            };
            let r = alltoall_pxn_chaos(&c, MB, 2, &cfg);
            // Both directions of plane 5's node-pair flow, both chunks.
            assert_eq!(r.stranded_flows, 4, "stall cannot leave the dead plane");
            assert!(r.bytes_balanced);
        }
    }
}
