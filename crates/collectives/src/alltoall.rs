//! NCCL-style all-to-all with PXN NVLink forwarding (Figures 5–6).
//!
//! Under PXN, a message from GPU `(a, i)` to GPU `(b, q)` is first forwarded
//! over NVLink to the source node's GPU `(a, q)` — the GPU whose NIC lives
//! on the destination's plane — and then crosses the network on plane `q`,
//! landing directly in the destination GPU's memory. Inter-node traffic for
//! a given destination GPU therefore aggregates into a single per-plane
//! node-to-node flow, which is why the multi-plane topology matches the
//! multi-rail one: the flow patterns coincide.

use crate::{Cluster, CollectiveReport};

/// Run an all-to-all where every GPU sends `bytes_per_peer` to every other
/// GPU. Returns nccl-tests-style bandwidths (`algbw = per-rank buffer /
/// time`, `busbw = algbw · (n−1)/n`).
///
/// ```
/// use dsv3_collectives::{alltoall::alltoall_pxn, Cluster, ClusterConfig, FabricKind};
///
/// let cluster = Cluster::new(ClusterConfig::h800(2, FabricKind::MultiPlane));
/// let report = alltoall_pxn(&cluster, 1024.0 * 1024.0);
/// assert!(report.busbw_gbps > 30.0);
/// ```
///
/// # Panics
///
/// Panics if the cluster has fewer than 2 GPUs or `bytes_per_peer < 0`.
#[must_use]
pub fn alltoall_pxn(cluster: &Cluster, bytes_per_peer: f64) -> CollectiveReport {
    let g = cluster.cfg.gpus();
    assert!(g >= 2, "all-to-all needs at least two GPUs");
    assert!(bytes_per_peer >= 0.0, "negative message size");
    let nodes = cluster.cfg.nodes;
    let locals = cluster.cfg.gpus_per_node;
    let mut sim = cluster.sim();

    for a in 0..nodes {
        // Intra-node exchange over NVLink.
        for i in 0..locals {
            for j in 0..locals {
                if i != j {
                    let (path, lat) = cluster.nvlink_path(cluster.gpu(a, i), cluster.gpu(a, j));
                    sim.add_flow(path, bytes_per_peer, 0.0, lat);
                }
            }
        }
        if nodes == 1 {
            continue;
        }
        // PXN source-side forwarding: GPU (a,i)'s traffic for remote GPUs of
        // local index q funnels over NVLink to (a,q) — aggregated across all
        // remote nodes.
        for i in 0..locals {
            for q in 0..locals {
                if i != q {
                    let (path, lat) = cluster.nvlink_path(cluster.gpu(a, i), cluster.gpu(a, q));
                    sim.add_flow(path, bytes_per_peer * (nodes - 1) as f64, 0.0, lat);
                }
            }
        }
        // Inter-node flows: plane q carries all of node a's traffic for GPU
        // (b, q) — `locals` senders worth of bytes.
        for b in 0..nodes {
            if a != b {
                for q in 0..locals {
                    let (path, lat) = cluster.plane_path(a, b, q);
                    sim.add_flow(path, bytes_per_peer * locals as f64, 0.0, lat);
                }
            }
        }
    }

    let report = sim.run();
    let time_us = report.makespan_us;
    let per_rank_buffer = bytes_per_peer * g as f64;
    let algbw = per_rank_buffer / (time_us * 1000.0); // bytes/µs/1000 = GB/s
    CollectiveReport { time_us, algbw_gbps: algbw, busbw_gbps: algbw * (g as f64 - 1.0) / g as f64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, FabricKind};

    fn cluster(nodes: usize, fabric: FabricKind) -> Cluster {
        Cluster::new(ClusterConfig::h800(nodes, fabric))
    }

    #[test]
    fn large_messages_approach_nic_bandwidth() {
        let c = cluster(8, FabricKind::MultiPlane);
        let r = alltoall_pxn(&c, 4.0 * 1024.0 * 1024.0);
        assert!(
            r.busbw_gbps > 0.8 * c.cfg.nic_gbps && r.busbw_gbps < 1.5 * c.cfg.nic_gbps,
            "busbw {}",
            r.busbw_gbps
        );
    }

    #[test]
    fn small_messages_are_latency_bound() {
        let c = cluster(8, FabricKind::MultiPlane);
        let small = alltoall_pxn(&c, 64.0);
        let large = alltoall_pxn(&c, 1024.0 * 1024.0);
        assert!(small.busbw_gbps < 0.1 * large.busbw_gbps);
        // Time floor is the cross-node path latency.
        assert!(small.time_us >= c.cfg.net_latency.same_leaf_us());
    }

    #[test]
    fn mpft_and_mrft_parity() {
        // Figure 5/6: with PXN the two fabrics perform identically.
        for bytes in [4096.0, 262_144.0, 8.0 * 1024.0 * 1024.0] {
            let mp = alltoall_pxn(&cluster(16, FabricKind::MultiPlane), bytes);
            let mr = alltoall_pxn(&cluster(16, FabricKind::MultiRail), bytes);
            let diff = (mp.busbw_gbps - mr.busbw_gbps).abs() / mp.busbw_gbps.max(1e-9);
            assert!(diff < 0.02, "parity broken at {bytes}: {diff}");
        }
    }

    #[test]
    fn single_node_uses_only_nvlink() {
        let c = cluster(1, FabricKind::MultiPlane);
        let r = alltoall_pxn(&c, 1024.0 * 1024.0);
        // 7 peers × 1 MB over 160 GB/s egress ≈ 43.75 µs + latency.
        assert!(r.time_us < 60.0, "{}", r.time_us);
        assert!(r.busbw_gbps > 100.0, "NVLink-only busbw {}", r.busbw_gbps);
    }

    #[test]
    fn scaling_16_to_128_gpus_holds_bandwidth() {
        // Figure 5's x-axis: 32..128 GPUs. Bus bandwidth stays near the NIC
        // limit as the cluster grows.
        let mut last = f64::INFINITY;
        for nodes in [2, 4, 8, 16] {
            let r = alltoall_pxn(&cluster(nodes, FabricKind::MultiPlane), 1024.0 * 1024.0);
            assert!(r.busbw_gbps > 30.0, "{nodes} nodes: {}", r.busbw_gbps);
            last = last.min(r.busbw_gbps);
        }
        assert!(last > 30.0);
    }

    #[test]
    fn zero_bytes_pure_latency() {
        let c = cluster(2, FabricKind::MultiPlane);
        let r = alltoall_pxn(&c, 0.0);
        assert!(r.time_us > 0.0);
        assert_eq!(r.algbw_gbps, 0.0);
    }
}
