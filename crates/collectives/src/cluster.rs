//! The H800 cluster model: nodes, GPUs, NVLink and network planes.

use dsv3_netsim::{ChaosSim, FlowSim, LatencyParams, Link};
use serde::{Deserialize, Serialize};

/// Scale-out fabric arrangement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FabricKind {
    /// Multi-plane fat-tree: NIC `i` of every node joins plane `i`
    /// (DeepSeek-V3's deployment, Figure 3).
    MultiPlane,
    /// Single-plane multi-rail fat-tree: rails share one fabric. With
    /// NCCL's PXN forwarding the flow pattern coincides with MPFT, which is
    /// exactly the parity Figures 5–6 report.
    MultiRail,
}

/// Cluster shape and link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs (= NICs = planes) per node.
    pub gpus_per_node: usize,
    /// Effective per-GPU NVLink bandwidth, GB/s (§4.3: ~160 of 200).
    pub nvlink_gbps: f64,
    /// Effective per-NIC bandwidth, GB/s (§4.3: ~40–50 of a 400 Gbps NIC;
    /// DeepEP saturates ≈46).
    pub nic_gbps: f64,
    /// Hosts (nodes) per leaf switch in each plane.
    pub hosts_per_leaf: usize,
    /// Spine switches per plane.
    pub spines: usize,
    /// Scale-out latency parameters.
    pub net_latency: LatencyParams,
    /// NVLink latency parameters.
    pub nvlink_latency: LatencyParams,
    /// Fabric arrangement.
    pub fabric: FabricKind,
}

impl ClusterConfig {
    /// The paper's H800 cluster shape at `nodes` nodes.
    #[must_use]
    pub fn h800(nodes: usize, fabric: FabricKind) -> Self {
        Self {
            nodes,
            gpus_per_node: 8,
            nvlink_gbps: 160.0,
            nic_gbps: 46.0,
            hosts_per_leaf: 32,
            spines: 32,
            net_latency: LatencyParams::INFINIBAND,
            nvlink_latency: LatencyParams::NVLINK,
            fabric,
        }
    }

    /// Total GPUs.
    #[must_use]
    pub fn gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

/// A cluster with a materialized link table, ready to issue flows.
///
/// Link layout per GPU: an NVLink ingress and egress through the NVSwitch;
/// per (node, plane): NIC egress and ingress; per (plane, leaf, spine): an
/// up and a down link.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Configuration.
    pub cfg: ClusterConfig,
    links: Vec<Link>,
    leaves: usize,
}

impl Cluster {
    /// Build the link table for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (zero nodes/GPUs/bandwidth).
    #[must_use]
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.nodes > 0 && cfg.gpus_per_node > 0, "empty cluster");
        assert!(cfg.nvlink_gbps > 0.0 && cfg.nic_gbps > 0.0, "non-positive bandwidth");
        assert!(cfg.hosts_per_leaf > 0 && cfg.spines > 0, "degenerate fabric");
        let leaves = cfg.nodes.div_ceil(cfg.hosts_per_leaf);
        let g = cfg.gpus();
        let np = cfg.nodes * cfg.gpus_per_node; // NICs
        let ls = cfg.gpus_per_node * leaves * cfg.spines; // per-plane leaf-spine
        let mut links = Vec::with_capacity(2 * g + 2 * np + 2 * ls);
        for _ in 0..2 * g {
            links.push(Link { capacity_gbps: cfg.nvlink_gbps });
        }
        for _ in 0..2 * np {
            links.push(Link { capacity_gbps: cfg.nic_gbps });
        }
        for _ in 0..2 * ls {
            links.push(Link { capacity_gbps: cfg.nic_gbps });
        }
        Self { cfg, links, leaves }
    }

    /// Leaf of a node (within each plane).
    #[must_use]
    pub fn leaf_of(&self, node: usize) -> usize {
        node / self.cfg.hosts_per_leaf
    }

    /// Number of leaves per plane.
    #[must_use]
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// NVLink egress link of a GPU (global index).
    #[must_use]
    pub fn nv_up(&self, gpu: usize) -> usize {
        gpu
    }

    /// NVLink ingress link of a GPU.
    #[must_use]
    pub fn nv_down(&self, gpu: usize) -> usize {
        self.cfg.gpus() + gpu
    }

    /// NIC egress link of `(node, plane)`.
    #[must_use]
    pub fn nic_up(&self, node: usize, plane: usize) -> usize {
        2 * self.cfg.gpus() + node * self.cfg.gpus_per_node + plane
    }

    /// NIC ingress link of `(node, plane)`.
    #[must_use]
    pub fn nic_down(&self, node: usize, plane: usize) -> usize {
        2 * self.cfg.gpus()
            + self.cfg.nodes * self.cfg.gpus_per_node
            + node * self.cfg.gpus_per_node
            + plane
    }

    fn ls_base(&self) -> usize {
        2 * self.cfg.gpus() + 2 * self.cfg.nodes * self.cfg.gpus_per_node
    }

    /// Leaf→spine link of `(plane, leaf, spine)`.
    #[must_use]
    pub fn leaf_up(&self, plane: usize, leaf: usize, spine: usize) -> usize {
        self.ls_base() + ((plane * self.leaves + leaf) * self.cfg.spines + spine)
    }

    /// Spine→leaf link of `(plane, spine, leaf)`.
    #[must_use]
    pub fn leaf_down(&self, plane: usize, leaf: usize, spine: usize) -> usize {
        self.ls_base()
            + self.cfg.gpus_per_node * self.leaves * self.cfg.spines
            + ((plane * self.leaves + leaf) * self.cfg.spines + spine)
    }

    /// Global GPU index of `(node, local)`.
    #[must_use]
    pub fn gpu(&self, node: usize, local: usize) -> usize {
        node * self.cfg.gpus_per_node + local
    }

    /// Node of a global GPU index.
    #[must_use]
    pub fn node_of(&self, gpu: usize) -> usize {
        gpu / self.cfg.gpus_per_node
    }

    /// NVLink path between two GPUs of the same node, with its latency.
    ///
    /// # Panics
    ///
    /// Panics if the GPUs are on different nodes or identical.
    #[must_use]
    pub fn nvlink_path(&self, src: usize, dst: usize) -> (Vec<usize>, f64) {
        assert_eq!(self.node_of(src), self.node_of(dst), "NVLink is intra-node only");
        assert_ne!(src, dst, "no self-path");
        (vec![self.nv_up(src), self.nv_down(dst)], self.cfg.nvlink_latency.same_leaf_us())
    }

    /// Inter-node network path on `plane` from node `a` to node `b`, with
    /// its latency. Spine chosen statically by `(a + b) mod spines` (the
    /// fabrics here are non-blocking for the symmetric patterns we issue).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    #[must_use]
    pub fn plane_path(&self, a: usize, b: usize, plane: usize) -> (Vec<usize>, f64) {
        assert_ne!(a, b, "inter-node path requires distinct nodes");
        let (la, lb) = (self.leaf_of(a), self.leaf_of(b));
        if la == lb {
            (
                vec![self.nic_up(a, plane), self.nic_down(b, plane)],
                self.cfg.net_latency.same_leaf_us(),
            )
        } else {
            let s = (a + b) % self.cfg.spines;
            (
                vec![
                    self.nic_up(a, plane),
                    self.leaf_up(plane, la, s),
                    self.leaf_down(plane, lb, s),
                    self.nic_down(b, plane),
                ],
                self.cfg.net_latency.cross_leaf_us(),
            )
        }
    }

    /// All scale-out link ids of `plane`: every node's NIC pair plus the
    /// plane's leaf↔spine links. This is the blast radius of a plane
    /// failure — the set a plane-level flap takes down at once.
    #[must_use]
    pub fn plane_links(&self, plane: usize) -> Vec<usize> {
        assert!(plane < self.cfg.gpus_per_node, "plane {plane} out of range");
        let mut ids = Vec::new();
        for n in 0..self.cfg.nodes {
            ids.push(self.nic_up(n, plane));
            ids.push(self.nic_down(n, plane));
        }
        for l in 0..self.leaves {
            for s in 0..self.cfg.spines {
                ids.push(self.leaf_up(plane, l, s));
                ids.push(self.leaf_down(plane, l, s));
            }
        }
        ids
    }

    /// Candidate inter-node ECMP path set from node `a` to node `b` for
    /// the chaos engine: the `home_plane` path first (the healthy-fabric
    /// choice), then the same node-pair path on every other plane — the
    /// NVLink forwarding step can retarget a surviving plane's NIC.
    /// Returns the paths and the (plane-independent) latency.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or `home_plane` is out of range.
    #[must_use]
    pub fn plane_path_set(&self, a: usize, b: usize, home_plane: usize) -> (Vec<Vec<usize>>, f64) {
        let planes = self.cfg.gpus_per_node;
        assert!(home_plane < planes, "plane {home_plane} out of range");
        let (_, lat) = self.plane_path(a, b, home_plane);
        let paths =
            (0..planes).map(|k| self.plane_path(a, b, (home_plane + k) % planes).0).collect();
        (paths, lat)
    }

    /// Fresh simulator over this cluster's links.
    #[must_use]
    pub fn sim(&self) -> FlowSim {
        FlowSim::new(self.links.clone())
    }

    /// Fresh fault-tolerant simulator over this cluster's links.
    #[must_use]
    pub fn chaos_sim(&self) -> ChaosSim {
        ChaosSim::new(self.links.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_ids_disjoint() {
        let c = Cluster::new(ClusterConfig::h800(4, FabricKind::MultiPlane));
        let mut ids = Vec::new();
        for g in 0..c.cfg.gpus() {
            ids.push(c.nv_up(g));
            ids.push(c.nv_down(g));
        }
        for n in 0..4 {
            for p in 0..8 {
                ids.push(c.nic_up(n, p));
                ids.push(c.nic_down(n, p));
            }
        }
        for p in 0..8 {
            for l in 0..c.leaves() {
                for s in 0..c.cfg.spines {
                    ids.push(c.leaf_up(p, l, s));
                    ids.push(c.leaf_down(p, l, s));
                }
            }
        }
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "link ids must not collide");
        assert_eq!(*ids.last().unwrap() + 1, c.sim().links(), "ids must cover the table");
    }

    #[test]
    fn paths_and_latencies() {
        let c = Cluster::new(ClusterConfig::h800(64, FabricKind::MultiPlane));
        let (p, l) = c.nvlink_path(c.gpu(0, 0), c.gpu(0, 3));
        assert_eq!(p.len(), 2);
        assert!((l - 3.33).abs() < 1e-9);
        // Same leaf (nodes 0 and 1 under leaf 0).
        let (p, l) = c.plane_path(0, 1, 2);
        assert_eq!(p.len(), 2);
        assert!((l - 2.8).abs() < 1e-9);
        // Cross leaf (nodes 0 and 40).
        let (p, l) = c.plane_path(0, 40, 2);
        assert_eq!(p.len(), 4);
        assert!((l - 3.7).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "intra-node")]
    fn nvlink_cross_node_panics() {
        let c = Cluster::new(ClusterConfig::h800(2, FabricKind::MultiPlane));
        let _ = c.nvlink_path(0, 8);
    }

    #[test]
    fn gpu_indexing_roundtrip() {
        let c = Cluster::new(ClusterConfig::h800(3, FabricKind::MultiPlane));
        assert_eq!(c.gpu(2, 5), 21);
        assert_eq!(c.node_of(21), 2);
    }
}
