//! EP dispatch / combine kernels with node-limited routing (Figure 7, §4.3).
//!
//! Dispatch sends each token's activations (FP8, 1 byte/element) to the
//! nodes hosting its experts — **once per node**, deduplicated, then fanned
//! out over NVLink inside the destination node. Combine returns the expert
//! outputs (BF16, 2 bytes/element) along the reverse path. The inter-node
//! copies per token therefore scale with the number of nodes touched (`M`,
//! capped at 4 by the gate) rather than with the 8 routed experts — the
//! §4.3 bandwidth argument.

use crate::{Cluster, CollectiveReport};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Expert-parallel communication workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpConfig {
    /// Tokens processed per GPU (Figure 7 uses 4096).
    pub tokens_per_gpu: usize,
    /// Hidden size in elements (~7K for DeepSeek-V3).
    pub hidden: usize,
    /// Routed experts per token.
    pub top_k: usize,
    /// Maximum distinct nodes per token (the gate's node limit).
    pub max_nodes: usize,
    /// Routing seed.
    pub seed: u64,
}

impl EpConfig {
    /// DeepSeek-V3 production shape.
    #[must_use]
    pub fn deepseek_v3() -> Self {
        Self { tokens_per_gpu: 4096, hidden: 7168, top_k: 8, max_nodes: 4, seed: 7 }
    }
}

/// Aggregated EP traffic matrices for one dispatch round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpTraffic {
    /// `ib[src_node][dst_node]` = deduplicated token copies crossing IB.
    pub ib_copies: Vec<Vec<u64>>,
    /// `nvl[node][src_local][dst_local]` = intra-node token copies (both
    /// local deliveries and post-IB fan-out).
    pub nvl_copies: Vec<Vec<Vec<u64>>>,
    /// Total token→expert assignments (for conservation checks).
    pub assignments: u64,
    /// Mean nodes touched per token.
    pub mean_nodes_touched: f64,
}

/// Generate node-limited routed traffic for every token on every GPU.
///
/// Each token picks `min(max_nodes, nodes)` distinct target nodes uniformly,
/// then spreads its `top_k` experts across those nodes on uniformly chosen
/// GPUs (each GPU hosts a distinct expert group).
///
/// # Panics
///
/// Panics if `top_k < max_nodes` would leave a chosen node without experts
/// (we require `top_k ≥ max_nodes`) or the config is degenerate.
#[must_use]
// Indices are semantic node/GPU ids shared across several nested matrices;
// iterator rewrites obscure which matrix each id addresses.
#[allow(clippy::needless_range_loop)]
pub fn generate_traffic(cluster: &Cluster, cfg: &EpConfig) -> EpTraffic {
    let nodes = cluster.cfg.nodes;
    let locals = cluster.cfg.gpus_per_node;
    assert!(cfg.top_k >= cfg.max_nodes, "top_k must cover max_nodes");
    assert!(cfg.tokens_per_gpu > 0 && cfg.hidden > 0, "degenerate workload");
    let m = cfg.max_nodes.min(nodes);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ib = vec![vec![0u64; nodes]; nodes];
    let mut nvl = vec![vec![vec![0u64; locals]; locals]; nodes];
    let mut assignments = 0u64;
    let mut nodes_touched_total = 0u64;
    let all_nodes: Vec<usize> = (0..nodes).collect();
    for src_node in 0..nodes {
        for src_local in 0..locals {
            for _ in 0..cfg.tokens_per_gpu {
                // Node-limited target set.
                let mut targets = all_nodes.clone();
                targets.shuffle(&mut rng);
                targets.truncate(m);
                nodes_touched_total += targets.len() as u64;
                // Spread top_k experts: one guaranteed per target node, the
                // rest uniform over targets.
                let mut expert_nodes: Vec<usize> = targets.clone();
                while expert_nodes.len() < cfg.top_k {
                    expert_nodes.push(targets[rng.gen_range(0..targets.len())]);
                }
                // Per distinct destination node: one IB copy (dedup), then
                // NVLink fan-out to each expert GPU.
                for &t in &targets {
                    let landing_local = src_local; // same-plane RDMA landing
                    if t != src_node {
                        ib[src_node][t] += 1;
                    }
                    // The token is copied once per *distinct* expert GPU on
                    // this node (two experts on one GPU share the copy).
                    let mut local_mask = 0u64;
                    for &en in &expert_nodes {
                        if en == t {
                            assignments += 1;
                            let expert_local = rng.gen_range(0..locals);
                            local_mask |= 1 << expert_local;
                        }
                    }
                    for expert_local in 0..locals {
                        if local_mask & (1 << expert_local) != 0 {
                            if t == src_node {
                                // Local delivery straight over NVLink.
                                if expert_local != src_local {
                                    nvl[t][src_local][expert_local] += 1;
                                }
                            } else if expert_local != landing_local {
                                nvl[t][landing_local][expert_local] += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    let tokens = (nodes * locals * cfg.tokens_per_gpu) as f64;
    EpTraffic {
        ib_copies: ib,
        nvl_copies: nvl,
        assignments,
        mean_nodes_touched: nodes_touched_total as f64 / tokens,
    }
}

/// Build an [`EpTraffic`] from explicit per-token destinations (as produced
/// by a real gate): `tokens[gpu]` lists, for each token on that GPU, the
/// `(node, local_gpu)` of every routed expert. Deduplication and NVLink
/// fan-out follow the same rules as [`generate_traffic`].
///
/// # Panics
///
/// Panics if a destination is out of range.
#[must_use]
#[allow(clippy::needless_range_loop)] // same id-addressing pattern as generate_traffic
pub fn traffic_from_routings(cluster: &Cluster, tokens: &[Vec<Vec<(usize, usize)>>]) -> EpTraffic {
    let nodes = cluster.cfg.nodes;
    let locals = cluster.cfg.gpus_per_node;
    assert_eq!(tokens.len(), cluster.cfg.gpus(), "one token list per GPU");
    let mut ib = vec![vec![0u64; nodes]; nodes];
    let mut nvl = vec![vec![vec![0u64; locals]; locals]; nodes];
    let mut assignments = 0u64;
    let mut nodes_touched_total = 0u64;
    let mut n_tokens = 0u64;
    for (gpu, per_gpu) in tokens.iter().enumerate() {
        let src_node = cluster.node_of(gpu);
        let src_local = gpu % locals;
        for dests in per_gpu {
            n_tokens += 1;
            let mut target_nodes: Vec<usize> = dests.iter().map(|&(n, _)| n).collect();
            target_nodes.sort_unstable();
            target_nodes.dedup();
            nodes_touched_total += target_nodes.len() as u64;
            for &t in &target_nodes {
                assert!(t < nodes, "node {t} out of range");
                if t != src_node {
                    ib[src_node][t] += 1;
                }
                let landing_local = src_local;
                let mut mask = 0u64;
                for &(n, l) in dests {
                    assert!(l < locals, "local gpu {l} out of range");
                    if n == t {
                        assignments += 1;
                        mask |= 1 << l;
                    }
                }
                for l in 0..locals {
                    if mask & (1 << l) != 0 {
                        if t == src_node {
                            if l != src_local {
                                nvl[t][src_local][l] += 1;
                            }
                        } else if l != landing_local {
                            nvl[t][landing_local][l] += 1;
                        }
                    }
                }
            }
        }
    }
    EpTraffic {
        ib_copies: ib,
        nvl_copies: nvl,
        assignments,
        mean_nodes_touched: nodes_touched_total as f64 / n_tokens.max(1) as f64,
    }
}

/// Simulate one dispatch (or combine) round and report per-GPU bandwidth.
///
/// `bytes_per_copy` is the per-token message size: `hidden × 1` for FP8
/// dispatch, `hidden × 2` for BF16 combine (combine reverses the traffic
/// matrix, which is statistically symmetric here).
#[must_use]
pub fn run_round(cluster: &Cluster, traffic: &EpTraffic, bytes_per_copy: f64) -> CollectiveReport {
    let nodes = cluster.cfg.nodes;
    let locals = cluster.cfg.gpus_per_node;
    let mut sim = cluster.sim();
    let mut total_ib_bytes = 0f64;
    for a in 0..nodes {
        for b in 0..nodes {
            let copies = traffic.ib_copies[a][b];
            if a != b && copies > 0 {
                // DeepEP stripes a node's traffic across all its NICs/planes.
                let bytes = copies as f64 * bytes_per_copy;
                total_ib_bytes += bytes;
                for p in 0..locals {
                    let (path, lat) = cluster.plane_path(a, b, p);
                    sim.add_flow(path, bytes / locals as f64, 0.0, lat);
                }
            }
        }
    }
    for n in 0..nodes {
        for i in 0..locals {
            for j in 0..locals {
                let copies = traffic.nvl_copies[n][i][j];
                if i != j && copies > 0 {
                    let (path, lat) = cluster.nvlink_path(cluster.gpu(n, i), cluster.gpu(n, j));
                    sim.add_flow(path, copies as f64 * bytes_per_copy, 0.0, lat);
                }
            }
        }
    }
    let r = sim.run();
    let time_us = r.makespan_us;
    let per_gpu = total_ib_bytes / cluster.cfg.gpus() as f64;
    let algbw = per_gpu / (time_us * 1000.0);
    CollectiveReport { time_us, algbw_gbps: algbw, busbw_gbps: algbw }
}

/// Figure 7 point: dispatch and combine bandwidth at one cluster size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeepEpPoint {
    /// GPUs participating.
    pub gpus: usize,
    /// FP8 dispatch per-GPU IB bandwidth (GB/s).
    pub dispatch_gbps: f64,
    /// BF16 combine per-GPU IB bandwidth (GB/s).
    pub combine_gbps: f64,
}

/// Run dispatch + combine at one cluster size.
#[must_use]
pub fn deepep_point(cluster: &Cluster, cfg: &EpConfig) -> DeepEpPoint {
    let traffic = generate_traffic(cluster, cfg);
    let dispatch = run_round(cluster, &traffic, cfg.hidden as f64);
    let combine = run_round(cluster, &traffic, 2.0 * cfg.hidden as f64);
    DeepEpPoint {
        gpus: cluster.cfg.gpus(),
        dispatch_gbps: dispatch.algbw_gbps,
        combine_gbps: combine.algbw_gbps,
    }
}

/// §4.3 analysis: average inter-node copies per token with and without
/// NVLink deduplication. Without dedup every remote *expert* costs an IB
/// transfer; with dedup every remote *node* does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DedupAnalysis {
    /// Mean IB copies per token with node-limited dedup (`≈ M · (n−1)/n`).
    pub with_dedup: f64,
    /// Mean IB copies per token without dedup (`≈ top_k · (n−1)/n`).
    pub without_dedup: f64,
}

/// Compute the dedup factor for a routed traffic sample.
#[must_use]
pub fn dedup_analysis(cluster: &Cluster, cfg: &EpConfig) -> DedupAnalysis {
    let nodes = cluster.cfg.nodes as f64;
    let m = cfg.max_nodes.min(cluster.cfg.nodes) as f64;
    let remote_fraction = (nodes - 1.0) / nodes;
    // Uniform target choice: each of the M nodes is remote w.p. (n-1)/n.
    let with_dedup = m * remote_fraction;
    let without_dedup = cfg.top_k as f64 * remote_fraction;
    DedupAnalysis { with_dedup, without_dedup }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, FabricKind};

    fn cluster(nodes: usize) -> Cluster {
        Cluster::new(ClusterConfig::h800(nodes, FabricKind::MultiPlane))
    }

    fn small_cfg() -> EpConfig {
        EpConfig { tokens_per_gpu: 256, ..EpConfig::deepseek_v3() }
    }

    #[test]
    fn node_limit_respected_in_traffic() {
        let c = cluster(8);
        let t = generate_traffic(&c, &small_cfg());
        assert!(t.mean_nodes_touched <= 4.0 + 1e-9);
        assert!(t.mean_nodes_touched > 3.0, "should use most of the budget");
    }

    #[test]
    fn assignments_conserved() {
        let c = cluster(4);
        let cfg = small_cfg();
        let t = generate_traffic(&c, &cfg);
        let tokens = (c.cfg.gpus() * cfg.tokens_per_gpu) as u64;
        assert_eq!(t.assignments, tokens * cfg.top_k as u64);
    }

    #[test]
    fn ib_copies_scale_with_nodes_not_experts() {
        let c = cluster(8);
        let cfg = small_cfg();
        let t = generate_traffic(&c, &cfg);
        let total_ib: u64 = t.ib_copies.iter().flatten().sum();
        let tokens = (c.cfg.gpus() * cfg.tokens_per_gpu) as f64;
        let per_token = total_ib as f64 / tokens;
        // M=4 targets, 7/8 of them remote on average: ≈ 3.5 copies/token,
        // far below the 8 an expert-per-copy scheme would need (§4.3).
        assert!((per_token - 3.5).abs() < 0.1, "copies/token {per_token}");
        assert!(per_token < cfg.top_k as f64 / 2.0);
    }

    #[test]
    fn figure7_bandwidth_saturates_nic() {
        // At 2 nodes a token's 8 experts concentrate on the single remote
        // node, so the NVLink fan-out (≈6 copies per IB copy) exceeds the
        // 160/46 bandwidth ratio and the kernel is NVLink-bound; from 4
        // nodes on, node-limited routing keeps the fan-out ratio below it
        // and the NIC saturates — Figure 7's regime.
        // 16 nodes (128 GPUs) is covered by the release-mode benches and
        // the workspace integration tests; debug unit tests stay small.
        for nodes in [4, 8] {
            let c = cluster(nodes);
            let p = deepep_point(&c, &small_cfg());
            assert!(
                p.dispatch_gbps > 0.8 * c.cfg.nic_gbps,
                "{nodes} nodes dispatch {}",
                p.dispatch_gbps
            );
            assert!(
                p.combine_gbps > 0.8 * c.cfg.nic_gbps,
                "{nodes} nodes combine {}",
                p.combine_gbps
            );
        }
        let p2 = deepep_point(&cluster(2), &small_cfg());
        assert!(p2.dispatch_gbps > 0.5 * 46.0, "2-node dispatch {}", p2.dispatch_gbps);
    }

    #[test]
    fn combine_moves_twice_the_bytes() {
        let c = cluster(4);
        let t = generate_traffic(&c, &small_cfg());
        let d = run_round(&c, &t, 7168.0);
        let co = run_round(&c, &t, 2.0 * 7168.0);
        assert!(co.time_us > 1.8 * d.time_us, "{} vs {}", co.time_us, d.time_us);
    }

    #[test]
    fn dedup_analysis_matches_sampled_traffic() {
        let c = cluster(8);
        let cfg = small_cfg();
        let a = dedup_analysis(&c, &cfg);
        assert!((a.with_dedup - 3.5).abs() < 1e-9);
        assert!((a.without_dedup - 7.0).abs() < 1e-9);
        let t = generate_traffic(&c, &cfg);
        let total_ib: u64 = t.ib_copies.iter().flatten().sum();
        let tokens = (c.cfg.gpus() * cfg.tokens_per_gpu) as f64;
        assert!((total_ib as f64 / tokens - a.with_dedup).abs() < 0.1);
    }

    #[test]
    fn two_node_cluster_caps_m() {
        let c = cluster(2);
        let t = generate_traffic(&c, &small_cfg());
        assert!(t.mean_nodes_touched <= 2.0 + 1e-9);
    }

    #[test]
    fn traffic_from_explicit_routings_matches_generator_semantics() {
        let c = cluster(2);
        // Two GPUs with one token each: token 0 goes to experts on node 1
        // (GPUs 0 and 3); token on GPU 9 stays local (node 1, GPUs 1 and 2).
        let mut tokens: Vec<Vec<Vec<(usize, usize)>>> = vec![Vec::new(); c.cfg.gpus()];
        tokens[0] = vec![vec![(1, 0), (1, 3)]];
        tokens[9] = vec![vec![(1, 1), (1, 2)]];
        let t = traffic_from_routings(&c, &tokens);
        assert_eq!(t.ib_copies[0][1], 1, "deduplicated: one IB copy for two experts");
        assert_eq!(t.ib_copies[1][0], 0);
        assert_eq!(t.assignments, 4);
        // Token 0 lands on (1,0) and fans to (1,3); token on GPU 9 (local 1)
        // fans to locals 2 only plus stays on 1.
        assert_eq!(t.nvl_copies[1][0][3], 1);
        assert_eq!(t.nvl_copies[1][1][2], 1);
        assert_eq!(t.nvl_copies[1][1][1], 0);
        assert!((t.mean_nodes_touched - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "top_k")]
    fn invalid_topk_panics() {
        let c = cluster(4);
        let cfg = EpConfig { top_k: 2, ..EpConfig::deepseek_v3() };
        let _ = generate_traffic(&c, &cfg);
    }
}
