//! Failure injection: the robustness story of §5.1.1 and §6.1.
//!
//! The multi-plane fabric's planes are independent: a failed plane (NIC
//! port, leaf, or cable) removes 1/P of the scale-out bandwidth while the
//! remaining planes carry the rerouted traffic over NVLink forwarding —
//! degradation, not disconnection. A single-NIC-per-GPU design has no such
//! fallback: its NIC failure severs the GPU from the fabric.

use crate::{Cluster, CollectiveReport};
use serde::{Deserialize, Serialize};

/// Outcome of running an all-to-all with failed planes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradedReport {
    /// Healthy-fabric result.
    pub healthy: CollectiveReport,
    /// Result with the failed planes removed (traffic rerouted).
    pub degraded: CollectiveReport,
    /// Surviving fraction of bus bandwidth.
    pub bandwidth_retention: f64,
}

/// Run a PXN all-to-all with `failed_planes` out of service: flows that
/// would ride a failed plane are spread evenly across the survivors (the
/// NVLink forwarding step retargets a healthy NIC).
///
/// # Panics
///
/// Panics if every plane failed, a plane id is out of range, or the cluster
/// has a single node (no scale-out traffic to reroute).
#[must_use]
pub fn alltoall_with_failed_planes(
    cluster: &Cluster,
    bytes_per_peer: f64,
    failed_planes: &[usize],
) -> DegradedReport {
    let locals = cluster.cfg.gpus_per_node;
    let nodes = cluster.cfg.nodes;
    assert!(nodes > 1, "failures only matter across nodes");
    for &p in failed_planes {
        assert!(p < locals, "plane {p} out of range");
    }
    let healthy = crate::alltoall::alltoall_pxn(cluster, bytes_per_peer);
    let surviving: Vec<usize> = (0..locals).filter(|p| !failed_planes.contains(p)).collect();
    assert!(!surviving.is_empty(), "all planes failed: fabric disconnected");

    let mut sim = cluster.sim();
    for a in 0..nodes {
        for i in 0..locals {
            for j in 0..locals {
                if i != j {
                    let (path, lat) = cluster.nvlink_path(cluster.gpu(a, i), cluster.gpu(a, j));
                    // Intra-node exchange + PXN forwarding (slightly higher
                    // than healthy: rerouted traffic adds NVLink hops).
                    sim.add_flow(path, bytes_per_peer * nodes as f64, 0.0, lat);
                }
            }
        }
        for b in 0..nodes {
            if a != b {
                for q in 0..locals {
                    // Plane q's node-pair flow, retargeted if q failed.
                    let bytes = bytes_per_peer * locals as f64;
                    if failed_planes.contains(&q) {
                        for &s in &surviving {
                            let (path, lat) = cluster.plane_path(a, b, s);
                            sim.add_flow(path, bytes / surviving.len() as f64, 0.0, lat);
                        }
                    } else {
                        let (path, lat) = cluster.plane_path(a, b, q);
                        sim.add_flow(path, bytes, 0.0, lat);
                    }
                }
            }
        }
    }
    let r = sim.run();
    let g = cluster.cfg.gpus();
    let per_rank_buffer = bytes_per_peer * g as f64;
    let algbw = per_rank_buffer / (r.makespan_us * 1000.0);
    let degraded = CollectiveReport {
        time_us: r.makespan_us,
        algbw_gbps: algbw,
        busbw_gbps: algbw * (g as f64 - 1.0) / g as f64,
    };
    DegradedReport {
        healthy,
        degraded,
        bandwidth_retention: degraded.busbw_gbps / healthy.busbw_gbps,
    }
}

/// Expected bandwidth retention when `failed` of `planes` planes are down
/// and the NIC is the bottleneck: the survivors carry everything.
#[must_use]
pub fn expected_retention(planes: usize, failed: usize) -> f64 {
    assert!(failed < planes, "must keep at least one plane");
    (planes - failed) as f64 / planes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, FabricKind};

    fn cluster(nodes: usize) -> Cluster {
        Cluster::new(ClusterConfig::h800(nodes, FabricKind::MultiPlane))
    }

    const MB: f64 = 1024.0 * 1024.0;

    #[test]
    fn one_failed_plane_degrades_to_seven_eighths() {
        let c = cluster(4);
        let r = alltoall_with_failed_planes(&c, MB, &[3]);
        let expect = expected_retention(8, 1);
        assert!((r.bandwidth_retention - expect).abs() < 0.05, "{}", r.bandwidth_retention);
        assert!(r.degraded.busbw_gbps > 0.0, "still connected");
    }

    #[test]
    fn retention_scales_with_failures() {
        let c = cluster(4);
        let one = alltoall_with_failed_planes(&c, MB, &[0]);
        let half = alltoall_with_failed_planes(&c, MB, &[0, 1, 2, 3]);
        assert!(one.bandwidth_retention > half.bandwidth_retention);
        assert!((half.bandwidth_retention - 0.5).abs() < 0.05, "{}", half.bandwidth_retention);
    }

    #[test]
    fn no_failures_is_identity() {
        let c = cluster(2);
        let r = alltoall_with_failed_planes(&c, MB, &[]);
        assert!((r.bandwidth_retention - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "all planes failed")]
    fn total_failure_panics() {
        let c = cluster(2);
        let _ = alltoall_with_failed_planes(&c, MB, &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn seven_failures_still_connected() {
        // The extreme case: one surviving plane carries everything — slow
        // but alive, which is the fault-isolation claim.
        let c = cluster(2);
        let r = alltoall_with_failed_planes(&c, MB, &[0, 1, 2, 3, 4, 5, 6]);
        assert!(r.degraded.busbw_gbps > 0.0);
        assert!((r.bandwidth_retention - 0.125).abs() < 0.05, "{}", r.bandwidth_retention);
    }
}
