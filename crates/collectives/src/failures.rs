//! Failure injection: the robustness story of §5.1.1 and §6.1.
//!
//! The multi-plane fabric's planes are independent: a failed plane (NIC
//! port, leaf, or cable) removes 1/P of the scale-out bandwidth while the
//! remaining planes carry the rerouted traffic over NVLink forwarding —
//! degradation, not disconnection. A single-NIC-per-GPU design has no such
//! fallback: its NIC failure severs the GPU from the fabric.

use crate::{Cluster, CollectiveReport};
use dsv3_netsim::chaos::{LinkFlap, LinkSchedule};
use dsv3_units::ms_to_us;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Outcome of running an all-to-all with failed planes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradedReport {
    /// Healthy-fabric result.
    pub healthy: CollectiveReport,
    /// Result with the failed planes removed (traffic rerouted).
    pub degraded: CollectiveReport,
    /// Surviving fraction of bus bandwidth.
    pub bandwidth_retention: f64,
}

/// Run a PXN all-to-all with `failed_planes` out of service: flows that
/// would ride a failed plane are spread evenly across the survivors (the
/// NVLink forwarding step retargets a healthy NIC).
///
/// # Panics
///
/// Panics if every plane failed, a plane id is out of range, or the cluster
/// has a single node (no scale-out traffic to reroute).
#[must_use]
pub fn alltoall_with_failed_planes(
    cluster: &Cluster,
    bytes_per_peer: f64,
    failed_planes: &[usize],
) -> DegradedReport {
    let locals = cluster.cfg.gpus_per_node;
    let nodes = cluster.cfg.nodes;
    assert!(nodes > 1, "failures only matter across nodes");
    // Dedupe: a plane listed twice is still one failed plane.
    let failed_planes: BTreeSet<usize> = failed_planes.iter().copied().collect();
    for &p in &failed_planes {
        assert!(p < locals, "plane {p} out of range");
    }
    let healthy = crate::alltoall::alltoall_pxn(cluster, bytes_per_peer);
    let surviving: Vec<usize> = (0..locals).filter(|p| !failed_planes.contains(p)).collect();
    assert!(!surviving.is_empty(), "all planes failed: fabric disconnected");

    let mut sim = cluster.sim();
    for a in 0..nodes {
        for i in 0..locals {
            for j in 0..locals {
                if i != j {
                    let (path, lat) = cluster.nvlink_path(cluster.gpu(a, i), cluster.gpu(a, j));
                    // Intra-node exchange + PXN forwarding (slightly higher
                    // than healthy: rerouted traffic adds NVLink hops).
                    sim.add_flow(path, bytes_per_peer * nodes as f64, 0.0, lat);
                }
            }
        }
        for b in 0..nodes {
            if a != b {
                for q in 0..locals {
                    // Plane q's node-pair flow, retargeted if q failed.
                    let bytes = bytes_per_peer * locals as f64;
                    if failed_planes.contains(&q) {
                        for &s in &surviving {
                            let (path, lat) = cluster.plane_path(a, b, s);
                            sim.add_flow(path, bytes / surviving.len() as f64, 0.0, lat);
                        }
                    } else {
                        let (path, lat) = cluster.plane_path(a, b, q);
                        sim.add_flow(path, bytes, 0.0, lat);
                    }
                }
            }
        }
    }
    let r = sim.run();
    let g = cluster.cfg.gpus();
    let per_rank_buffer = bytes_per_peer * g as f64;
    let algbw = per_rank_buffer / (r.makespan_us * 1000.0);
    let degraded = CollectiveReport {
        time_us: r.makespan_us,
        algbw_gbps: algbw,
        busbw_gbps: algbw * (g as f64 - 1.0) / g as f64,
    };
    DegradedReport {
        healthy,
        degraded,
        bandwidth_retention: degraded.busbw_gbps / healthy.busbw_gbps,
    }
}

/// Expected bandwidth retention when `failed` of `planes` planes are down
/// and the NIC is the bottleneck: the survivors carry everything.
///
/// Convention: `failed >= planes` (including `planes == 0`) returns `0.0`
/// — the fabric is fully disconnected and retains nothing. Simulation
/// entry points like [`alltoall_with_failed_planes`] still treat total
/// failure as an error (there is no traffic to route), but the analytic
/// curve is total, so sweeps over failure counts never panic.
#[must_use]
pub fn expected_retention(planes: usize, failed: usize) -> f64 {
    if failed >= planes {
        return 0.0;
    }
    (planes - failed) as f64 / planes as f64
}

/// One plane-down interval in a time-varying flap schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlaneFlap {
    /// Which plane goes down.
    pub plane: usize,
    /// When it goes down, milliseconds.
    pub down_at_ms: f64,
    /// Downtime before repair completes.
    pub repair_ms: f64,
}

impl PlaneFlap {
    /// When the plane comes back, milliseconds.
    #[must_use]
    pub fn up_at_ms(&self) -> f64 {
        self.down_at_ms + self.repair_ms
    }

    /// Whether the plane is down at `t_ms` (down-inclusive, up-exclusive).
    #[must_use]
    pub fn is_down_at(&self, t_ms: f64) -> bool {
        t_ms >= self.down_at_ms && t_ms < self.up_at_ms()
    }
}

/// A time-varying plane-flap schedule: planes drop out and return as
/// repairs complete, so bandwidth retention is a step function of time
/// rather than a single offline count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlapSchedule {
    /// Total planes in the fabric.
    pub planes: usize,
    /// Down intervals; overlapping flaps of the same plane count once.
    pub flaps: Vec<PlaneFlap>,
}

impl FlapSchedule {
    /// A schedule with no flaps: full bandwidth forever.
    #[must_use]
    pub fn healthy(planes: usize) -> Self {
        Self { planes, flaps: Vec::new() }
    }

    /// The sorted, deduplicated set of planes down at `t_ms`.
    #[must_use]
    pub fn failed_planes_at(&self, t_ms: f64) -> Vec<usize> {
        let set: BTreeSet<usize> =
            self.flaps.iter().filter(|f| f.is_down_at(t_ms)).map(|f| f.plane).collect();
        set.into_iter().collect()
    }

    /// Bandwidth retention at `t_ms`, clamped so at least one plane
    /// survives — degradation, not disconnection.
    ///
    /// # Panics
    ///
    /// Panics if the schedule has zero planes.
    #[must_use]
    pub fn retention_at(&self, t_ms: f64) -> f64 {
        assert!(self.planes > 0, "schedule needs at least one plane");
        let failed = self.failed_planes_at(t_ms).len().min(self.planes - 1);
        expected_retention(self.planes, failed)
    }

    /// Times at which the failed-plane set can change (every down and up
    /// edge), sorted and deduplicated — the sample points a study needs
    /// to capture the full retention step function.
    #[must_use]
    pub fn change_points_ms(&self) -> Vec<f64> {
        let mut ts: Vec<f64> =
            self.flaps.iter().flat_map(|f| [f.down_at_ms, f.up_at_ms()]).collect();
        ts.sort_by(f64::total_cmp);
        ts.dedup();
        ts
    }
}

/// Project a plane-level [`FlapSchedule`] (milliseconds) onto the
/// individual links of `cluster` (microseconds): every scale-out link of a
/// flapping plane — the per-node NIC pair plus the plane's leaf↔spine
/// links — goes down and heals together. This is how the plane-granular
/// model of this module drives the link-granular chaos engine
/// ([`dsv3_netsim::chaos::ChaosSim`]).
///
/// # Panics
///
/// Panics if a flap references a plane the cluster does not have.
#[must_use]
pub fn link_schedule(cluster: &Cluster, sched: &FlapSchedule) -> LinkSchedule {
    assert!(sched.planes <= cluster.cfg.gpus_per_node, "schedule has more planes than the cluster");
    let mut flaps = Vec::new();
    for f in &sched.flaps {
        for link in cluster.plane_links(f.plane) {
            flaps.push(LinkFlap {
                link,
                down_at_us: ms_to_us(f.down_at_ms),
                repair_us: ms_to_us(f.repair_ms),
            });
        }
    }
    LinkSchedule { flaps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, FabricKind};

    fn cluster(nodes: usize) -> Cluster {
        Cluster::new(ClusterConfig::h800(nodes, FabricKind::MultiPlane))
    }

    const MB: f64 = 1024.0 * 1024.0;

    #[test]
    fn one_failed_plane_degrades_to_seven_eighths() {
        let c = cluster(4);
        let r = alltoall_with_failed_planes(&c, MB, &[3]);
        let expect = expected_retention(8, 1);
        assert!((r.bandwidth_retention - expect).abs() < 0.05, "{}", r.bandwidth_retention);
        assert!(r.degraded.busbw_gbps > 0.0, "still connected");
    }

    #[test]
    fn retention_scales_with_failures() {
        let c = cluster(4);
        let one = alltoall_with_failed_planes(&c, MB, &[0]);
        let half = alltoall_with_failed_planes(&c, MB, &[0, 1, 2, 3]);
        assert!(one.bandwidth_retention > half.bandwidth_retention);
        assert!((half.bandwidth_retention - 0.5).abs() < 0.05, "{}", half.bandwidth_retention);
    }

    #[test]
    fn no_failures_is_identity() {
        let c = cluster(2);
        let r = alltoall_with_failed_planes(&c, MB, &[]);
        assert!((r.bandwidth_retention - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "all planes failed")]
    fn total_failure_panics() {
        let c = cluster(2);
        let _ = alltoall_with_failed_planes(&c, MB, &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn duplicate_plane_ids_count_once() {
        // Regression: `[3, 3, 3]` is one failed plane, not three.
        let c = cluster(4);
        let once = alltoall_with_failed_planes(&c, MB, &[3]);
        let dup = alltoall_with_failed_planes(&c, MB, &[3, 3, 3]);
        assert_eq!(once, dup);
        let expect = expected_retention(8, 1);
        assert!((dup.bandwidth_retention - expect).abs() < 0.05, "{}", dup.bandwidth_retention);
    }

    #[test]
    fn flap_schedule_steps_through_time() {
        let sched = FlapSchedule {
            planes: 8,
            flaps: vec![
                PlaneFlap { plane: 0, down_at_ms: 10.0, repair_ms: 20.0 },
                PlaneFlap { plane: 1, down_at_ms: 15.0, repair_ms: 10.0 },
                // Overlapping flap of an already-down plane: counts once.
                PlaneFlap { plane: 0, down_at_ms: 12.0, repair_ms: 5.0 },
            ],
        };
        assert_eq!(sched.failed_planes_at(5.0), Vec::<usize>::new());
        assert_eq!(sched.failed_planes_at(11.0), vec![0]);
        assert_eq!(sched.failed_planes_at(16.0), vec![0, 1]);
        assert_eq!(sched.failed_planes_at(26.0), vec![0], "plane 1 repaired at 25");
        assert_eq!(sched.failed_planes_at(31.0), Vec::<usize>::new());
        assert!((sched.retention_at(5.0) - 1.0).abs() < 1e-12);
        assert!((sched.retention_at(16.0) - 6.0 / 8.0).abs() < 1e-12);
        let pts = sched.change_points_ms();
        assert!(pts.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        assert!(pts.contains(&10.0) && pts.contains(&30.0) && pts.contains(&25.0));
    }

    #[test]
    fn expected_retention_is_total() {
        // Convention: failed >= planes retains nothing instead of
        // panicking, so analytic sweeps can run to the disconnected end.
        assert_eq!(expected_retention(8, 8), 0.0);
        assert_eq!(expected_retention(8, 100), 0.0);
        assert_eq!(expected_retention(0, 0), 0.0);
        assert!((expected_retention(8, 7) - 0.125).abs() < 1e-12);
        assert!((expected_retention(8, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlapping_flaps_of_same_plane_count_once() {
        // Regression (schedule-layer twin of `duplicate_plane_ids_count_once`):
        // three overlapping down intervals of plane 2 are one failed plane.
        let sched = FlapSchedule {
            planes: 8,
            flaps: vec![
                PlaneFlap { plane: 2, down_at_ms: 0.0, repair_ms: 30.0 },
                PlaneFlap { plane: 2, down_at_ms: 5.0, repair_ms: 10.0 },
                PlaneFlap { plane: 2, down_at_ms: 10.0, repair_ms: 40.0 },
            ],
        };
        assert_eq!(sched.failed_planes_at(12.0), vec![2], "deduped to one entry");
        assert_eq!(sched.failed_planes_at(12.0).len(), 1);
        assert!((sched.retention_at(12.0) - 7.0 / 8.0).abs() < 1e-12);
        // After the longest flap repairs (t = 50), the plane is healthy.
        assert_eq!(sched.failed_planes_at(50.0), Vec::<usize>::new());
    }

    #[test]
    fn link_schedule_projects_planes_onto_links() {
        let c = cluster(2);
        let sched = FlapSchedule {
            planes: 8,
            flaps: vec![PlaneFlap { plane: 3, down_at_ms: 2.0, repair_ms: 5.0 }],
        };
        let ls = link_schedule(&c, &sched);
        let expect_links = c.plane_links(3);
        assert_eq!(ls.flaps.len(), expect_links.len());
        for (flap, &link) in ls.flaps.iter().zip(&expect_links) {
            assert_eq!(flap.link, link);
            assert_eq!(flap.down_at_us, 2000.0, "ms -> µs");
            assert_eq!(flap.repair_us, 5000.0);
        }
        // Every projected link is down mid-flap and up after repair.
        for &l in &expect_links {
            assert!(ls.is_down(l, 3000.0));
            assert!(!ls.is_down(l, 7000.0));
        }
        // Links of other planes are untouched.
        assert!(!ls.is_down(c.nic_up(0, 0), 3000.0));
    }

    #[test]
    fn flap_retention_clamps_to_one_survivor() {
        let flaps =
            (0..8).map(|p| PlaneFlap { plane: p, down_at_ms: 0.0, repair_ms: 100.0 }).collect();
        let sched = FlapSchedule { planes: 8, flaps };
        assert!((sched.retention_at(50.0) - 1.0 / 8.0).abs() < 1e-12);
        assert!((FlapSchedule::healthy(8).retention_at(50.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn seven_failures_still_connected() {
        // The extreme case: one surviving plane carries everything — slow
        // but alive, which is the fault-isolation claim.
        let c = cluster(2);
        let r = alltoall_with_failed_planes(&c, MB, &[0, 1, 2, 3, 4, 5, 6]);
        assert!(r.degraded.busbw_gbps > 0.0);
        assert!((r.bandwidth_retention - 0.125).abs() < 0.05, "{}", r.bandwidth_retention);
    }
}
