//! In-network computation for EP (§6.5) and the SM-offload argument (§4.4).
//!
//! Dispatch is a small multicast: with switch-level packet replication a
//! source NIC injects each token once per *plane* instead of once per
//! destination node, shrinking egress traffic by the node fan-out. Combine
//! is a small reduction: in-network aggregation delivers one reduced result
//! instead of `M` partial ones, shrinking ingress. This module accounts for
//! those per-link load changes, and models the §4.4 observation that today
//! the forwarding/reduce work instead costs up to 20 of the H800's 132 SMs.

use crate::deepep::EpTraffic;
use crate::Cluster;
use serde::{Deserialize, Serialize};

/// Per-node link loads of one EP round (bytes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpLinkLoads {
    /// NIC egress bytes per node.
    pub egress: Vec<f64>,
    /// NIC ingress bytes per node.
    pub ingress: Vec<f64>,
}

impl EpLinkLoads {
    /// The byte count of the most loaded NIC direction (the flow-level
    /// bottleneck for bandwidth-bound rounds).
    #[must_use]
    pub fn bottleneck_bytes(&self) -> f64 {
        self.egress.iter().chain(self.ingress.iter()).copied().fold(0.0, f64::max)
    }
}

/// Baseline (endpoint-replicated) dispatch loads: every remote copy leaves
/// the source and enters the destination.
#[must_use]
pub fn dispatch_loads(cluster: &Cluster, t: &EpTraffic, bytes_per_copy: f64) -> EpLinkLoads {
    let n = cluster.cfg.nodes;
    let mut egress = vec![0f64; n];
    let mut ingress = vec![0f64; n];
    for (a, eg) in egress.iter_mut().enumerate() {
        for (b, ing) in ingress.iter_mut().enumerate() {
            if a != b {
                let bytes = t.ib_copies[a][b] as f64 * bytes_per_copy;
                *eg += bytes;
                *ing += bytes;
            }
        }
    }
    EpLinkLoads { egress, ingress }
}

/// Dispatch with in-network multicast: the source injects one copy per
/// token toward the fabric (egress = distinct tokens with ≥1 remote
/// destination); switches replicate, so ingress is unchanged.
#[must_use]
pub fn dispatch_loads_multicast(
    cluster: &Cluster,
    t: &EpTraffic,
    bytes_per_copy: f64,
    mean_remote_nodes: f64,
) -> EpLinkLoads {
    assert!(mean_remote_nodes >= 1.0, "multicast needs a fan-out");
    let base = dispatch_loads(cluster, t, bytes_per_copy);
    EpLinkLoads {
        egress: base.egress.iter().map(|e| e / mean_remote_nodes).collect(),
        ingress: base.ingress,
    }
}

/// Combine with in-network reduction: partial results are aggregated in the
/// fabric, so the home node's ingress shrinks by the fan-in while expert
/// egress is unchanged.
#[must_use]
pub fn combine_loads_reduction(
    cluster: &Cluster,
    t: &EpTraffic,
    bytes_per_copy: f64,
    mean_remote_nodes: f64,
) -> EpLinkLoads {
    assert!(mean_remote_nodes >= 1.0, "reduction needs a fan-in");
    // Combine reverses dispatch: expert nodes send partials home.
    let d = dispatch_loads(cluster, t, bytes_per_copy);
    EpLinkLoads {
        egress: d.ingress, // experts' sends
        ingress: d.egress.iter().map(|e| e / mean_remote_nodes).collect(),
    }
}

/// §4.4: fraction of compute recovered by offloading communication from
/// SMs to a dedicated co-processor (H800: up to 20 of 132 SMs are spent on
/// EP communication during training).
#[must_use]
pub fn sm_offload_speedup(total_sms: usize, comm_sms: usize) -> f64 {
    assert!(comm_sms < total_sms, "must keep compute SMs");
    total_sms as f64 / (total_sms - comm_sms) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deepep::{generate_traffic, EpConfig};
    use crate::{ClusterConfig, FabricKind};

    fn setup() -> (Cluster, EpTraffic) {
        let c = Cluster::new(ClusterConfig::h800(8, FabricKind::MultiPlane));
        let cfg = EpConfig { tokens_per_gpu: 128, ..EpConfig::deepseek_v3() };
        let t = generate_traffic(&c, &cfg);
        (c, t)
    }

    #[test]
    fn multicast_cuts_egress_only() {
        let (c, t) = setup();
        let base = dispatch_loads(&c, &t, 7168.0);
        let mc = dispatch_loads_multicast(&c, &t, 7168.0, 3.5);
        for (b, m) in base.egress.iter().zip(&mc.egress) {
            assert!((m - b / 3.5).abs() < 1e-6);
        }
        assert_eq!(base.ingress, mc.ingress);
    }

    #[test]
    fn symmetric_workload_bottleneck_stays_at_ingress() {
        // §6.5's honest caveat in our accounting: for a uniform all-to-all
        // the ingress equals the egress, so multicast alone moves the
        // bottleneck to ingress rather than shrinking it…
        let (c, t) = setup();
        let base = dispatch_loads(&c, &t, 7168.0);
        let mc = dispatch_loads_multicast(&c, &t, 7168.0, 3.5);
        assert!(mc.bottleneck_bytes() >= base.bottleneck_bytes() * 0.95);
        // …but combine-side reduction attacks the other direction, and the
        // two together halve nothing less than each side's own load.
        let red = combine_loads_reduction(&c, &t, 14336.0, 3.5);
        let combine_base_ingress: f64 = base.egress.iter().copied().fold(0.0, f64::max) * 2.0;
        assert!(red.ingress.iter().copied().fold(0.0, f64::max) < combine_base_ingress / 3.0);
    }

    #[test]
    fn loads_are_conserved() {
        let (c, t) = setup();
        let d = dispatch_loads(&c, &t, 1.0);
        let total_out: f64 = d.egress.iter().sum();
        let total_in: f64 = d.ingress.iter().sum();
        assert!((total_out - total_in).abs() < 1e-6, "bytes conserve");
    }

    #[test]
    fn sm_offload_paper_numbers() {
        // 20 of 132 SMs freed → ~18% more compute throughput.
        let s = sm_offload_speedup(132, 20);
        assert!((s - 1.1786).abs() < 0.001, "{s}");
        assert!(sm_offload_speedup(132, 0) == 1.0);
    }

    #[test]
    #[should_panic(expected = "keep compute")]
    fn all_sms_for_comm_panics() {
        let _ = sm_offload_speedup(10, 10);
    }
}
