//! Collective communication over the flow-level network simulator.
//!
//! Reproduces the paper's communication experiments:
//!
//! * [`cluster`] — the H800 cluster model: nodes of 8 GPUs joined by
//!   NVSwitch (§4.1's 160 GB/s effective NVLink) with one 400 Gbps NIC per
//!   GPU, each NIC on its own network plane (Figure 3).
//! * [`alltoall`] — NCCL-style all-to-all with PXN NVLink forwarding
//!   (Figures 5 and 6: MPFT vs MRFT bandwidth and latency parity).
//! * [`ring`] — ring AllGather / ReduceScatter on a leaf-spine fabric under
//!   ECMP / adaptive / static routing (Figure 8).
//! * [`deepep`] — EP dispatch & combine with node-limited routing and
//!   NVLink deduplication (Figure 7 and the §4.3 traffic analysis).

#![forbid(unsafe_code)]

pub mod alltoall;
pub mod cluster;
pub mod deepep;
pub mod failures;
pub mod innetwork;
pub mod ring;

pub use cluster::{Cluster, ClusterConfig, FabricKind};

use serde::{Deserialize, Serialize};

/// Timing and bandwidth outcome of one collective operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveReport {
    /// Completion time of the slowest participant (µs).
    pub time_us: f64,
    /// Algorithm bandwidth: bytes moved per rank / time (GB/s).
    pub algbw_gbps: f64,
    /// Bus bandwidth (nccl-tests convention), comparable across algorithms.
    pub busbw_gbps: f64,
}
