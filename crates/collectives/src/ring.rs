//! Ring AllGather / ReduceScatter on a leaf-spine fabric under different
//! routing policies (Figure 8).
//!
//! Each of `groups` communicator groups of `size` ranks runs a ring
//! collective; all groups run concurrently (the mixed-workload situation of
//! §5.2.2). A ring step moves `total/size` bytes from every rank to its
//! successor; ECMP can hash several of those flows onto one uplink while
//! adaptive routing spreads them.

use crate::CollectiveReport;
use dsv3_netsim::{FlowSim, LatencyParams, Link};
use dsv3_topology::fattree::LeafSpine;
use dsv3_topology::routing::{assign_spines, FlowSpec, RoutePolicy};
use serde::{Deserialize, Serialize};

/// How communicator groups map onto hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Rank `j` of group `g` on host `g·size + j` (groups packed under
    /// leaves; ring edges mostly stay intra-leaf).
    Consecutive,
    /// Rank `j` of group `g` on host `j·groups + g` (groups interleaved;
    /// every ring edge crosses leaves — the congestion-prone layout).
    Strided,
}

/// A leaf-spine network instance for ring collectives.
#[derive(Debug, Clone)]
pub struct RingNet {
    /// Switch fabric shape.
    pub fabric: LeafSpine,
    /// Per-host NIC bandwidth (GB/s).
    pub nic_gbps: f64,
    /// Per-hop latency parameters (RoCE for Figure 8).
    pub latency: LatencyParams,
}

impl RingNet {
    /// A RoCE fabric of `leaves × hosts_per_leaf` hosts.
    #[must_use]
    pub fn roce(leaves: usize, hosts_per_leaf: usize, spines: usize) -> Self {
        Self {
            fabric: LeafSpine { leaves, spines, hosts_per_leaf },
            nic_gbps: 46.0,
            latency: LatencyParams::ROCE,
        }
    }

    fn hosts(&self) -> usize {
        self.fabric.endpoints()
    }

    // Link table: host up, host down, leaf up (leaf×spine), spine down.
    fn host_up(&self, h: usize) -> usize {
        h
    }
    fn host_down(&self, h: usize) -> usize {
        self.hosts() + h
    }
    fn leaf_up(&self, leaf: usize, spine: usize) -> usize {
        2 * self.hosts() + leaf * self.fabric.spines + spine
    }
    fn leaf_down(&self, leaf: usize, spine: usize) -> usize {
        2 * self.hosts()
            + self.fabric.leaves * self.fabric.spines
            + leaf * self.fabric.spines
            + spine
    }

    fn links(&self) -> Vec<Link> {
        let n = 2 * self.hosts() + 2 * self.fabric.leaves * self.fabric.spines;
        vec![Link { capacity_gbps: self.nic_gbps }; n]
    }

    /// Time (µs) for one ring step where every listed flow moves `bytes`.
    fn step_time(&self, flows: &[FlowSpec], spines: &[Option<usize>], bytes: f64) -> f64 {
        let mut sim = FlowSim::new(self.links());
        for (f, s) in flows.iter().zip(spines) {
            let (path, lat) = match s {
                None => {
                    (vec![self.host_up(f.src), self.host_down(f.dst)], self.latency.same_leaf_us())
                }
                Some(s) => (
                    vec![
                        self.host_up(f.src),
                        self.leaf_up(self.fabric.leaf_of(f.src), *s),
                        self.leaf_down(self.fabric.leaf_of(f.dst), *s),
                        self.host_down(f.dst),
                    ],
                    self.latency.cross_leaf_us(),
                ),
            };
            sim.add_flow(path, bytes, 0.0, lat);
        }
        sim.run().makespan_us
    }
}

/// Host of rank `j` in group `g`.
#[must_use]
pub fn host_of(
    placement: Placement,
    group: usize,
    rank: usize,
    size: usize,
    groups: usize,
) -> usize {
    match placement {
        Placement::Consecutive => group * size + rank,
        Placement::Strided => rank * groups + group,
    }
}

/// Ring AllGather of `total_bytes` per rank-result across `groups`
/// concurrent groups of `size` ranks each.
///
/// # Panics
///
/// Panics if the groups do not fit the fabric, or `size < 2`.
#[must_use]
pub fn allgather(
    net: &RingNet,
    size: usize,
    groups: usize,
    total_bytes: f64,
    placement: Placement,
    policy: RoutePolicy,
) -> CollectiveReport {
    assert!(size >= 2, "ring needs at least 2 ranks");
    assert!(size * groups <= net.hosts(), "groups exceed fabric capacity");
    // Ring edges: rank j -> j+1 within each group (fixed across all steps,
    // so the spine assignment — one NCCL connection per edge — is fixed too).
    let flows: Vec<FlowSpec> = (0..groups)
        .flat_map(|g| {
            (0..size).map(move |j| FlowSpec {
                src: host_of(placement, g, j, size, groups),
                dst: host_of(placement, g, (j + 1) % size, size, groups),
            })
        })
        .collect();
    let spines = assign_spines(&net.fabric, &flows, policy);
    let chunk = total_bytes / size as f64;
    let step = net.step_time(&flows, &spines, chunk);
    let time_us = step * (size as f64 - 1.0);
    let algbw = total_bytes / (time_us * 1000.0);
    CollectiveReport {
        time_us,
        algbw_gbps: algbw,
        busbw_gbps: algbw * (size as f64 - 1.0) / size as f64,
    }
}

/// Ring ReduceScatter: identical traffic pattern to [`allgather`] (the
/// reduction itself is free in this model).
#[must_use]
pub fn reduce_scatter(
    net: &RingNet,
    size: usize,
    groups: usize,
    total_bytes: f64,
    placement: Placement,
    policy: RoutePolicy,
) -> CollectiveReport {
    allgather(net, size, groups, total_bytes, placement, policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> RingNet {
        RingNet::roce(8, 8, 8)
    }

    const MB: f64 = 1024.0 * 1024.0;

    #[test]
    fn single_group_full_bandwidth() {
        let n = net();
        let r = allgather(&n, 8, 1, 64.0 * MB, Placement::Consecutive, RoutePolicy::Adaptive);
        // One ring inside one leaf: each step is a clean shift permutation.
        assert!(r.busbw_gbps > 0.85 * n.nic_gbps, "busbw {}", r.busbw_gbps);
    }

    #[test]
    fn figure8_routing_ordering() {
        // Strided groups force every ring edge across leaves; ECMP hash
        // collisions then halve (or worse) the bandwidth while adaptive
        // routing stays near line rate.
        let n = net();
        let run = |policy| allgather(&n, 8, 8, 64.0 * MB, Placement::Strided, policy).busbw_gbps;
        let ecmp = run(RoutePolicy::Ecmp { seed: 1 });
        let adaptive = run(RoutePolicy::Adaptive);
        let stat = run(RoutePolicy::StaticBySource);
        assert!(adaptive > 1.3 * ecmp, "adaptive {adaptive} vs ecmp {ecmp}");
        assert!(stat >= ecmp, "static {stat} vs ecmp {ecmp}");
        assert!(adaptive > 0.8 * n.nic_gbps, "adaptive near line rate: {adaptive}");
    }

    #[test]
    fn reduce_scatter_matches_allgather() {
        let n = net();
        let a = allgather(&n, 4, 4, MB, Placement::Strided, RoutePolicy::Adaptive);
        let r = reduce_scatter(&n, 4, 4, MB, Placement::Strided, RoutePolicy::Adaptive);
        assert_eq!(a, r);
    }

    #[test]
    fn ecmp_varies_with_seed() {
        let n = net();
        let bws: Vec<f64> = (0..5)
            .map(|s| {
                allgather(&n, 8, 8, 64.0 * MB, Placement::Strided, RoutePolicy::Ecmp { seed: s })
                    .busbw_gbps
            })
            .collect();
        let min = bws.iter().copied().fold(f64::INFINITY, f64::min);
        let max = bws.iter().copied().fold(0.0, f64::max);
        assert!(max > min, "hash luck must vary: {bws:?}");
    }

    #[test]
    fn consecutive_placement_mostly_avoids_spines() {
        let n = net();
        // Groups aligned with leaves: ECMP ≈ adaptive because almost no flow
        // crosses a spine.
        let e =
            allgather(&n, 8, 8, 64.0 * MB, Placement::Consecutive, RoutePolicy::Ecmp { seed: 3 });
        let a = allgather(&n, 8, 8, 64.0 * MB, Placement::Consecutive, RoutePolicy::Adaptive);
        let diff = (e.busbw_gbps - a.busbw_gbps).abs() / a.busbw_gbps;
        assert!(diff < 0.05, "{} vs {}", e.busbw_gbps, a.busbw_gbps);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversubscribed_panics() {
        let n = net();
        let _ = allgather(&n, 16, 8, MB, Placement::Consecutive, RoutePolicy::Adaptive);
    }
}
