//! Property-based tests for the collectives layer.

use dsv3_collectives::alltoall::alltoall_pxn;
use dsv3_collectives::deepep::{generate_traffic, EpConfig};
use dsv3_collectives::{Cluster, ClusterConfig, FabricKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All-to-all time scales linearly with message size once above the
    /// latency floor, and busbw is monotone in message size.
    #[test]
    fn alltoall_scaling(nodes in 1usize..5, kb in 64usize..512) {
        let c = Cluster::new(ClusterConfig::h800(nodes, FabricKind::MultiPlane));
        let bytes = (kb * 1024) as f64;
        let small = alltoall_pxn(&c, bytes);
        let large = alltoall_pxn(&c, bytes * 4.0);
        prop_assert!(large.time_us > small.time_us);
        prop_assert!(large.busbw_gbps >= small.busbw_gbps * 0.99);
        // 4× the bytes takes at most 4× the time (latency amortizes).
        prop_assert!(large.time_us <= small.time_us * 4.0 + 1e-6);
    }

    /// MPFT and MRFT produce identical flow patterns under PXN for any
    /// cluster size and message size.
    #[test]
    fn fabric_parity(nodes in 1usize..6, kb in 1usize..256) {
        let bytes = (kb * 1024) as f64;
        let mp = alltoall_pxn(&Cluster::new(ClusterConfig::h800(nodes, FabricKind::MultiPlane)), bytes);
        let mr = alltoall_pxn(&Cluster::new(ClusterConfig::h800(nodes, FabricKind::MultiRail)), bytes);
        prop_assert!((mp.time_us - mr.time_us).abs() < 1e-6 * mp.time_us.max(1.0));
    }

    /// EP traffic generation conserves assignments and respects the node
    /// limit for every shape.
    #[test]
    fn ep_traffic_conservation(nodes in 2usize..6, tokens in 8usize..64, seed in 0u64..100) {
        let c = Cluster::new(ClusterConfig::h800(nodes, FabricKind::MultiPlane));
        let cfg = EpConfig { tokens_per_gpu: tokens, seed, ..EpConfig::deepseek_v3() };
        let t = generate_traffic(&c, &cfg);
        let total_tokens = (c.cfg.gpus() * tokens) as u64;
        prop_assert_eq!(t.assignments, total_tokens * cfg.top_k as u64);
        prop_assert!(t.mean_nodes_touched <= cfg.max_nodes.min(nodes) as f64 + 1e-9);
        // No self-traffic on IB.
        for (a, row) in t.ib_copies.iter().enumerate() {
            prop_assert_eq!(row[a], 0);
        }
        // IB copies per token can never exceed the node limit.
        let total_ib: u64 = t.ib_copies.iter().flatten().sum();
        prop_assert!(total_ib <= total_tokens * cfg.max_nodes as u64);
    }
}
