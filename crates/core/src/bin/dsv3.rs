//! `dsv3` — command-line driver for every experiment in the reproduction.
//!
//! ```sh
//! dsv3 list                 # enumerate experiments
//! dsv3 table1               # print one table
//! dsv3 all                  # print everything
//! dsv3 table3 --json        # machine-readable rows
//! ```

use dsv3_core::experiments::*;
use dsv3_core::report::Table;
use std::process::ExitCode;

struct Entry {
    name: &'static str,
    about: &'static str,
    render: fn() -> Table,
    json: fn() -> String,
}

fn to_json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string_pretty(v).expect("experiment rows serialize")
}

fn registry() -> Vec<Entry> {
    vec![
        Entry { name: "table1", about: "KV cache per token (Table 1)", render: table1::render, json: || to_json(&table1::run()) },
        Entry { name: "table2", about: "training GFLOPs per token (Table 2)", render: table2::render, json: || to_json(&table2::run()) },
        Entry { name: "table3", about: "topology cost comparison (Table 3)", render: table3::render, json: || to_json(&table3::run()) },
        Entry { name: "table4", about: "MPFT vs MRFT training metrics (Table 4)", render: table4::render, json: || to_json(&table4::run()) },
        Entry { name: "table5", about: "64B end-to-end latency (Table 5)", render: table5::render, json: || to_json(&table5::run()) },
        Entry { name: "fig5", about: "all-to-all bandwidth sweep (Figure 5)", render: fig5::render, json: || to_json(&fig5::run()) },
        Entry { name: "fig6", about: "all-to-all latency sweep (Figure 6)", render: fig6::render, json: || to_json(&fig6::run()) },
        Entry { name: "fig7", about: "DeepEP throughput (Figure 7)", render: || fig7::render(1024), json: || to_json(&fig7::run(1024)) },
        Entry { name: "fig8", about: "RoCE routing-policy study (Figure 8)", render: fig8::render, json: || to_json(&fig8::run()) },
        Entry { name: "speed-limits", about: "EP decode speed limits (§2.3.2)", render: speed_limits::render, json: || to_json(&speed_limits::run()) },
        Entry { name: "combine-formats", about: "combine-stage compression (§6.5)", render: speed_limits::render_combine_formats, json: || to_json(&speed_limits::run_combine_formats()) },
        Entry { name: "mtp", about: "MTP speculative decoding (§2.3.3)", render: mtp::render, json: || to_json(&mtp::run()) },
        Entry { name: "fp8-gemm", about: "FP8 accumulation error (§3.1)", render: fp8_gemm::render, json: || to_json(&fp8_gemm::run(&fp8_gemm::default_ks())) },
        Entry { name: "logfmt", about: "LogFMT quality (§3.2)", render: logfmt::render, json: || to_json(&logfmt::run()) },
        Entry { name: "fp8-training", about: "FP8 vs BF16 training (§2.4)", render: fp8_training::render, json: || to_json(&fp8_training::run(dsv3_core::model::train::TrainConfig::default())) },
        Entry { name: "node-limited", about: "node-limited routing traffic (§4.3)", render: node_limited::render, json: || to_json(&node_limited::run(2000)) },
        Entry { name: "local-deploy", about: "local deployment TPS (§2.2.2)", render: local_deploy::render, json: || to_json(&local_deploy::run()) },
        Entry { name: "robustness", about: "plane failures & SDC detection (§6.1)", render: robustness::render, json: || to_json(&robustness::plane_failures()) },
        Entry { name: "future-hardware", about: "hardware-recommendation payoffs (§6)", render: future_hardware::render, json: || to_json(&future_hardware::run()) },
    ]
}

fn usage(entries: &[Entry]) {
    println!("dsv3 — reproduce 'Insights into DeepSeek-V3' (ISCA '25)\n");
    println!("usage: dsv3 <experiment> [--json] | dsv3 all | dsv3 list\n");
    println!("experiments:");
    for e in entries {
        println!("  {:<16} {}", e.name, e.about);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let entries = registry();
    let json = args.iter().any(|a| a == "--json");
    let cmd = args.iter().find(|a| !a.starts_with("--")).map(String::as_str);
    match cmd {
        None | Some("list") | Some("help") => {
            usage(&entries);
            ExitCode::SUCCESS
        }
        Some("all") => {
            for e in &entries {
                if json {
                    println!("{}", (e.json)());
                } else {
                    println!("{}", (e.render)());
                }
            }
            ExitCode::SUCCESS
        }
        Some(name) => match entries.iter().find(|e| e.name == name) {
            Some(e) => {
                if json {
                    println!("{}", (e.json)());
                } else {
                    println!("{}", (e.render)());
                }
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment '{name}'\n");
                usage(&entries);
                ExitCode::FAILURE
            }
        },
    }
}
