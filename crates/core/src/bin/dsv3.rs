//! `dsv3` — command-line driver for every experiment in the reproduction.
//!
//! ```sh
//! dsv3 list                 # enumerate experiments
//! dsv3 table1               # print one table
//! dsv3 all                  # print everything
//! dsv3 table3 --json        # machine-readable rows
//! ```
//!
//! The experiment table itself lives in [`dsv3_core::registry`] so tests
//! can drive the exact same entry points.

use dsv3_core::registry::{registry, Entry};
use std::process::ExitCode;

fn usage(entries: &[Entry]) {
    println!("dsv3 — reproduce 'Insights into DeepSeek-V3' (ISCA '25)\n");
    println!("usage: dsv3 <experiment> [--json] | dsv3 all | dsv3 list\n");
    println!("experiments:");
    for e in entries {
        println!("  {:<16} {}", e.name, e.about);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let entries = registry();
    let json = args.iter().any(|a| a == "--json");
    let cmd = args.iter().find(|a| !a.starts_with("--")).map(String::as_str);
    match cmd {
        None | Some("list") | Some("help") => {
            usage(&entries);
            ExitCode::SUCCESS
        }
        Some("all") => {
            for e in &entries {
                if json {
                    println!("{}", (e.json)());
                } else {
                    println!("{}", (e.render)());
                }
            }
            ExitCode::SUCCESS
        }
        // Accept `fault_drill` for `fault-drill` etc.: experiment names
        // use hyphens, but underscores are a natural thing to type.
        Some(name) => {
            match entries.iter().find(|e| e.name.replace('-', "_") == name.replace('-', "_")) {
                Some(e) => {
                    if json {
                        println!("{}", (e.json)());
                    } else {
                        println!("{}", (e.render)());
                    }
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown experiment '{name}'\n");
                    usage(&entries);
                    ExitCode::FAILURE
                }
            }
        }
    }
}
