//! `dsv3` — command-line driver for every experiment in the reproduction.
//!
//! ```sh
//! dsv3 list                         # enumerate experiments
//! dsv3 table1                       # print one table
//! dsv3 all                          # print everything
//! dsv3 table3 --json                # machine-readable rows
//! dsv3 serving --trace-out t.json   # Chrome-trace of the simulation
//! dsv3 serving --metrics-out m.json # counters/gauges/histograms + manifest
//! dsv3 check-trace t.json           # validate an emitted trace file
//! dsv3 check-metrics m.json         # validate an emitted metrics document
//! dsv3 audit overload               # run + SLO watchdog + incident report
//! dsv3 lint                         # invariant lint; nonzero exit on errors
//! ```
//!
//! The experiment table itself lives in [`dsv3_core::registry`] so tests
//! can drive the exact same entry points. Telemetry flags route through
//! each entry's `instrumented` hook; without them the plain path runs and
//! output is byte-identical to pre-telemetry builds.

use dsv3_core::registry::{registry, Entry};
use dsv3_core::telemetry::{
    validate_chrome_trace, validate_metrics_document, MetricsDocument, Recorder, RunManifest,
    WatchConfig,
};
use std::process::ExitCode;

fn usage(entries: &[Entry]) {
    println!("dsv3 — reproduce 'Insights into DeepSeek-V3' (ISCA '25)\n");
    println!("usage: dsv3 <experiment> [--json] [--trace-out <path>] [--metrics-out <path>]");
    println!("       dsv3 audit <experiment> [--json] [--incidents-out <path>]");
    println!("       dsv3 all [--json] | dsv3 list");
    println!("       dsv3 check-trace <path> | dsv3 check-metrics <path>");
    println!("       dsv3 lint [--rules <R1,R2,..>] [--baseline <path>] [--readiness]\n");
    println!("experiments:");
    for e in entries {
        let tag = if e.instrumented.is_some() { " [traceable]" } else { "" };
        println!("  {:<16} {}{}", e.name, e.about, tag);
    }
}

/// Parsed command line: positional words plus the recognized flags.
struct Cli {
    positional: Vec<String>,
    json: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    incidents_out: Option<String>,
    rules: Option<String>,
    baseline: Option<String>,
    readiness: bool,
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        positional: Vec::new(),
        json: false,
        trace_out: None,
        metrics_out: None,
        incidents_out: None,
        rules: None,
        baseline: None,
        readiness: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => cli.json = true,
            "--readiness" => cli.readiness = true,
            "--rules" | "--baseline" => {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i) else {
                    return Err(format!("{flag} requires an argument"));
                };
                match flag.as_str() {
                    "--rules" => cli.rules = Some(value.clone()),
                    _ => cli.baseline = Some(value.clone()),
                }
            }
            "--trace-out" | "--metrics-out" | "--incidents-out" => {
                let flag = args[i].clone();
                i += 1;
                let Some(path) = args.get(i) else {
                    return Err(format!("{flag} requires a path argument"));
                };
                match flag.as_str() {
                    "--trace-out" => cli.trace_out = Some(path.clone()),
                    "--metrics-out" => cli.metrics_out = Some(path.clone()),
                    _ => cli.incidents_out = Some(path.clone()),
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            word => cli.positional.push(word.to_string()),
        }
        i += 1;
    }
    Ok(cli)
}

fn check_trace(path: &str) -> ExitCode {
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("check-trace: cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_chrome_trace(&json) {
        Ok(stats) => {
            println!(
                "{path}: valid Chrome trace — {} events ({} spans, {} instants, {} counter samples, {} metadata)",
                stats.events, stats.spans, stats.instants, stats.counters, stats.metadata
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check-trace: '{path}' is not a valid Chrome trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn check_metrics(path: &str) -> ExitCode {
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("check-metrics: cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_metrics_document(&json) {
        Ok(stats) => {
            println!(
                "{path}: valid metrics document — {} counters, {} gauges, {} histograms, {} dropped events",
                stats.counters, stats.gauges, stats.histograms, stats.dropped_events
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check-metrics: '{path}' is not a valid metrics document: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Shared tail of `run_instrumented` and `run_audit`: write the optional
/// trace/metrics artifacts for a completed recording.
fn write_telemetry(rec: &Recorder, manifest: &RunManifest, cli: &Cli) -> Result<(), ExitCode> {
    if let Some(path) = &cli.trace_out {
        let trace = rec.export_trace().to_json();
        if let Err(err) = std::fs::write(path, trace) {
            eprintln!("cannot write trace to '{path}': {err}");
            return Err(ExitCode::FAILURE);
        }
    }
    if let Some(path) = &cli.metrics_out {
        let doc = MetricsDocument { manifest: manifest.clone(), metrics: rec.snapshot() };
        let body = serde_json::to_string_pretty(&doc).expect("metrics document serializes");
        if let Err(err) = std::fs::write(path, body) {
            eprintln!("cannot write metrics to '{path}': {err}");
            return Err(ExitCode::FAILURE);
        }
    }
    Ok(())
}

/// `dsv3 audit <experiment>`: run instrumented, evaluate the watch
/// detectors over everything recorded, and print (or export) the
/// incident report alongside the usual experiment output.
fn run_audit(e: &Entry, cli: &Cli) -> ExitCode {
    let mut rec = Recorder::new();
    let Some(w) = e.run_watched(&mut rec, &WatchConfig::default()) else {
        eprintln!("audit: '{}' is analytic (no simulation loop); nothing to watch", e.name);
        return ExitCode::FAILURE;
    };
    let manifest = RunManifest::capture(e.name, w.run.seed, &w.run.config_json, &rec);
    if let Err(code) = write_telemetry(&rec, &manifest, cli) {
        return code;
    }
    if let Some(path) = &cli.incidents_out {
        if let Err(err) = std::fs::write(path, w.incidents.to_json()) {
            eprintln!("cannot write incidents to '{path}': {err}");
            return ExitCode::FAILURE;
        }
    }
    if cli.json {
        let report: serde_json::Value =
            serde_json::from_str(&w.run.json).unwrap_or(serde_json::Value::Null);
        let manifest_value: serde_json::Value = serde_json::to_string(&manifest)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or(serde_json::Value::Null);
        let incidents: serde_json::Value =
            serde_json::from_str(&w.incidents.to_json()).unwrap_or(serde_json::Value::Null);
        let doc = serde_json::Value::Object(vec![
            (String::from("manifest"), manifest_value),
            (String::from("report"), report),
            (String::from("incidents"), incidents),
        ]);
        println!("{}", serde_json::to_string_pretty(&doc).unwrap_or_else(|_| String::from("null")));
    } else {
        println!("{}", w.run.table);
        println!("{}", w.incidents.render());
    }
    ExitCode::SUCCESS
}

/// Run one entry with telemetry and honor `--trace-out`/`--metrics-out`.
fn run_instrumented(e: &Entry, cli: &Cli) -> ExitCode {
    let mut rec = Recorder::new();
    let (table, json, seed, config_json) = match e.instrumented {
        Some(run) => {
            let r = run(&mut rec);
            (r.table.to_string(), r.json, r.seed, r.config_json)
        }
        None => {
            eprintln!(
                "note: '{}' is analytic (no simulation loop); the trace will only carry metadata",
                e.name
            );
            ((e.render)().to_string(), (e.json)(), 0, String::from("null"))
        }
    };
    let manifest = RunManifest::capture(e.name, seed, &config_json, &rec);
    if let Err(code) = write_telemetry(&rec, &manifest, cli) {
        return code;
    }
    if cli.json {
        println!("{}", dsv3_core::telemetry::manifest_wrap(&manifest, &json));
    } else {
        println!("{table}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let entries = registry();
    let cli = match parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n");
            usage(&entries);
            return ExitCode::FAILURE;
        }
    };
    let telemetry = cli.trace_out.is_some() || cli.metrics_out.is_some();
    if cli.incidents_out.is_some() && cli.positional.first().map(String::as_str) != Some("audit") {
        eprintln!("--incidents-out only applies to the audit subcommand");
        return ExitCode::FAILURE;
    }
    match cli.positional.first().map(String::as_str) {
        None | Some("list") | Some("help") => {
            usage(&entries);
            ExitCode::SUCCESS
        }
        Some("check-trace") => match cli.positional.get(1) {
            Some(path) => check_trace(path),
            None => {
                eprintln!("check-trace requires a path argument");
                ExitCode::FAILURE
            }
        },
        Some("check-metrics") => match cli.positional.get(1) {
            Some(path) => check_metrics(path),
            None => {
                eprintln!("check-metrics requires a path argument");
                ExitCode::FAILURE
            }
        },
        Some("audit") => {
            let Some(name) = cli.positional.get(1) else {
                eprintln!("audit requires an experiment name (try 'dsv3 audit overload')");
                return ExitCode::FAILURE;
            };
            match entries.iter().find(|e| e.name.replace('-', "_") == name.replace('-', "_")) {
                Some(e) => run_audit(e, &cli),
                None => {
                    eprintln!("unknown experiment '{name}'\n");
                    usage(&entries);
                    ExitCode::FAILURE
                }
            }
        }
        // `lint` is special: unlike the experiments it has a pass/fail
        // verdict, so a clean CI gate needs the exit code to carry it.
        Some("lint") => {
            let opts = dsv3_core::experiments::lint::LintOptions {
                rules: cli.rules.clone(),
                baseline: cli.baseline.clone(),
            };
            let (report, readiness) = dsv3_core::experiments::lint::run_with(&opts);
            let rec = Recorder::new();
            let manifest =
                RunManifest::capture("lint", 0, &dsv3_core::experiments::lint::config_json(), &rec);
            if telemetry {
                eprintln!(
                    "note: 'lint' is analytic (no simulation loop); the trace will only carry \
                     metadata"
                );
            }
            if let Some(path) = &cli.trace_out {
                if let Err(err) = std::fs::write(path, rec.export_trace().to_json()) {
                    eprintln!("cannot write trace to '{path}': {err}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some(path) = &cli.metrics_out {
                let doc = MetricsDocument { manifest: manifest.clone(), metrics: rec.snapshot() };
                let body = serde_json::to_string_pretty(&doc).expect("metrics document serializes");
                if let Err(err) = std::fs::write(path, body) {
                    eprintln!("cannot write metrics to '{path}': {err}");
                    return ExitCode::FAILURE;
                }
            }
            if cli.readiness {
                if cli.json {
                    println!(
                        "{}",
                        dsv3_core::telemetry::manifest_wrap(&manifest, &readiness.render_json())
                    );
                } else {
                    print!("{}", readiness.render_text());
                }
            } else if cli.json {
                let body =
                    serde_json::to_string_pretty(&report).unwrap_or_else(|_| String::from("null"));
                println!("{}", dsv3_core::telemetry::manifest_wrap(&manifest, &body));
            } else {
                for f in &report.findings {
                    println!("{}:{}: {}[{}]: {}", f.path, f.line, f.severity, f.rule, f.message);
                }
                println!("{}", dsv3_core::experiments::lint::render_report(&report));
            }
            if report.errors > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some("all") => {
            if telemetry {
                eprintln!("--trace-out/--metrics-out need a single experiment, not 'all'");
                return ExitCode::FAILURE;
            }
            for e in &entries {
                if cli.json {
                    println!("{}", (e.json)());
                } else {
                    println!("{}", (e.render)());
                }
            }
            ExitCode::SUCCESS
        }
        // Accept `fault_drill` for `fault-drill` etc.: experiment names
        // use hyphens, but underscores are a natural thing to type.
        Some(name) => {
            match entries.iter().find(|e| e.name.replace('-', "_") == name.replace('-', "_")) {
                Some(e) if telemetry => run_instrumented(e, &cli),
                Some(e) => {
                    if cli.json {
                        println!("{}", (e.json)());
                    } else {
                        println!("{}", (e.render)());
                    }
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown experiment '{name}'\n");
                    usage(&entries);
                    ExitCode::FAILURE
                }
            }
        }
    }
}
