//! §5.1.1/§6.1 dynamic: a seeded fault drill across serving,
//! collectives, and training.
//!
//! Where [`super::robustness`] studies *static* failure counts (k planes
//! down, offline GEMM audits), this drill generates a deterministic
//! `FaultPlan` timeline — replica crashes, plane flaps, stragglers, SDC
//! strikes — and drives three layers through it:
//!
//! 1. **Serving**: the continuous-batching engine under the plan, with
//!    requeue-and-re-prefill recovery and (separately) request hedging;
//!    the empty plan is checked to reproduce the healthy report
//!    byte-for-byte.
//! 2. **Collectives**: the plan's plane flaps projected onto a
//!    time-varying bandwidth-retention step function.
//! 3. **Training**: checkpoint/restart goodput simulated against Poisson
//!    failure timelines at several MTBFs, validated against the
//!    Young/Daly analytic model (the drill's acceptance bar is < 5%
//!    relative error).

use crate::report::{fmt, Table};
use dsv3_faults::{simulate_goodput, FaultPlan, FaultPlanConfig, RecoveryPolicy};
use dsv3_model::availability::AvailabilityModel;
use dsv3_serving::{
    run_with_faults, run_with_faults_traced, ArrivalProcess, FaultyServingReport, RouterPolicy,
    ServingReport, ServingSimConfig,
};
use dsv3_telemetry::Recorder;
use dsv3_units::s_to_ms;
use serde::{Deserialize, Serialize};

/// One MTBF point of the training-availability validation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityRow {
    /// Mean time between failures, hours.
    pub mtbf_h: f64,
    /// Young/Daly optimal checkpoint interval, seconds.
    pub interval_s: f64,
    /// Analytic goodput fraction at that interval.
    pub analytic_goodput: f64,
    /// Goodput of the discrete simulation over a seeded Poisson timeline.
    pub simulated_goodput: f64,
    /// `|simulated − analytic| / analytic`.
    pub rel_err: f64,
}

/// One step of the time-varying bandwidth-retention function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionSample {
    /// Sample time, ms.
    pub t_ms: f64,
    /// Planes down at that instant.
    pub failed_planes: usize,
    /// Surviving bandwidth fraction.
    pub retention: f64,
}

/// Everything the drill measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultDrillReport {
    /// Seed the fault plan was generated from.
    pub seed: u64,
    /// Fault events in the generated plan.
    pub plan_events: usize,
    /// Fault-free serving baseline.
    pub healthy: ServingReport,
    /// Whether `run_with_faults` under an empty plan reproduced the
    /// healthy report byte-for-byte (serialized-JSON equality).
    pub empty_plan_identical: bool,
    /// Serving under the fault plan, default recovery (retry + backoff).
    pub faulty: FaultyServingReport,
    /// Serving under the same plan with hedging enabled.
    pub hedged: FaultyServingReport,
    /// Training goodput validation across MTBFs.
    pub availability: Vec<AvailabilityRow>,
    /// Bandwidth-retention step function of the plan's plane flaps.
    pub retention: Vec<RetentionSample>,
}

/// The serving scenario every arm shares: steady Poisson load at the
/// H800 baseline, unified routing.
fn scenario() -> ServingSimConfig {
    ServingSimConfig::h800_baseline(
        ArrivalProcess::Poisson { rate_per_s: 10.0 },
        500,
        RouterPolicy::Unified,
    )
}

/// The drill's fault climate: every class enabled at rates that land
/// several events of each kind inside the ~1-minute serving run.
fn plan_config(seed: u64) -> FaultPlanConfig {
    FaultPlanConfig {
        seed,
        horizon_ms: 60_000.0,
        replicas: 4,
        planes: 8,
        crash_mtbf_ms: 15_000.0,
        crash_repair_ms: 4_000.0,
        flap_mtbf_ms: 20_000.0,
        flap_repair_ms: 5_000.0,
        straggler_mtbf_ms: 25_000.0,
        straggler_slowdown: 1.8,
        straggler_duration_ms: 3_000.0,
        sdc_mtbf_ms: 20_000.0,
        sdc_detection_rate: 0.7,
        // Link-granular faults stay disabled here; `net_chaos` owns them.
        ..FaultPlanConfig::default()
    }
}

/// Run the drill at the default seed.
#[must_use]
pub fn run() -> FaultDrillReport {
    run_seeded(20_250_805)
}

/// The drill's default seed.
#[must_use]
pub fn seed() -> u64 {
    20_250_805
}

/// Serialized configuration of the drill, for the run manifest.
#[must_use]
pub fn config_json() -> String {
    let cfg = crate::report::json_or_null(&scenario());
    let plan = crate::report::json_or_null(&plan_config(seed()));
    format!("[{cfg},{plan}]")
}

/// [`run`] with telemetry: the healthy, faulty, and hedged serving arms
/// trace into `rec` under matching scopes (the empty-plan identity arm
/// stays untraced — its whole point is byte-identity with [`run`]'s
/// path). Returns the same report as [`run`], enforced by test.
#[must_use]
pub fn run_instrumented(rec: &mut Recorder) -> FaultDrillReport {
    run_seeded_traced(seed(), rec)
}

/// Run the drill at an explicit seed (equal seeds → identical reports).
#[must_use]
pub fn run_seeded(seed: u64) -> FaultDrillReport {
    run_seeded_traced(seed, &mut Recorder::disabled())
}

/// [`run_seeded`] with telemetry into `rec`.
#[must_use]
pub fn run_seeded_traced(seed: u64, rec: &mut Recorder) -> FaultDrillReport {
    let cfg = scenario();
    let healthy = run_with_faults_traced(
        &cfg,
        &FaultPlan::healthy(),
        &RecoveryPolicy::default(),
        rec,
        "healthy",
    )
    .serving;
    let empty = run_with_faults(&cfg, &FaultPlan::healthy(), &RecoveryPolicy::default());
    let empty_plan_identical =
        crate::report::json_or_null(&healthy) == crate::report::json_or_null(&empty.serving);

    let plan = FaultPlan::generate(&plan_config(seed));
    let faulty = run_with_faults_traced(&cfg, &plan, &RecoveryPolicy::default(), rec, "faulty");
    let hedged = run_with_faults_traced(&cfg, &plan, &RecoveryPolicy::hedged(), rec, "hedged");

    let availability = [1.0, 6.0, 24.0]
        .iter()
        .enumerate()
        .map(|(i, &mtbf_h)| availability_point(seed.wrapping_add(i as u64 + 1), mtbf_h))
        .collect();

    let sched = plan.flap_schedule();
    let retention = std::iter::once(0.0)
        .chain(sched.change_points_ms())
        .map(|t_ms| RetentionSample {
            t_ms,
            failed_planes: sched.failed_planes_at(t_ms).len(),
            retention: sched.retention_at(t_ms),
        })
        .collect();

    FaultDrillReport {
        seed,
        plan_events: plan.events.len(),
        healthy,
        empty_plan_identical,
        faulty,
        hedged,
        availability,
        retention,
    }
}

/// Validate one MTBF point: simulate ~2000 expected failures' worth of
/// checkpointed training over a seeded Poisson timeline and compare
/// goodput with the Young/Daly analytic expression.
fn availability_point(seed: u64, mtbf_h: f64) -> AvailabilityRow {
    let av =
        AvailabilityModel { mtbf_s: mtbf_h * 3_600.0, checkpoint_write_s: 60.0, restart_s: 180.0 };
    let interval_s = av.young_daly_interval_s();
    let horizon_s = av.mtbf_s * 2_000.0;
    // Generate the failure timeline well past the horizon so the walk
    // never runs out of failures early (which would inflate goodput).
    let timeline = FaultPlan::generate(&FaultPlanConfig {
        seed,
        horizon_ms: s_to_ms(horizon_s * 4.0),
        replicas: 1,
        planes: 1,
        crash_mtbf_ms: s_to_ms(av.mtbf_s),
        crash_repair_ms: 0.0,
        ..FaultPlanConfig::default()
    });
    // The Young/Daly interval is positive and FaultPlan timelines are
    // sorted, so the Err arms are unreachable; report a NaN row rather
    // than panicking if that invariant ever breaks upstream.
    match simulate_goodput(&av, interval_s, &timeline.crash_times_s(), horizon_s) {
        Ok(g) => AvailabilityRow {
            mtbf_h,
            interval_s,
            analytic_goodput: g.analytic_goodput,
            simulated_goodput: g.goodput,
            rel_err: (g.goodput - g.analytic_goodput).abs() / g.analytic_goodput,
        },
        Err(_) => AvailabilityRow {
            mtbf_h,
            interval_s,
            analytic_goodput: f64::NAN,
            simulated_goodput: f64::NAN,
            rel_err: f64::NAN,
        },
    }
}

/// Render.
#[must_use]
pub fn render() -> Table {
    render_report(&run())
}

/// Render an already-computed drill report (the instrumented CLI path
/// reuses the run instead of drilling twice).
#[must_use]
pub fn render_report(r: &FaultDrillReport) -> Table {
    let mut t = Table::new(
        "§5.1.1/§6.1: seeded fault drill — crashes, flaps, stragglers, SDC during a run",
        &["study", "setting", "outcome"],
    );
    t.row(&[
        "serving baseline".into(),
        "healthy, Poisson 10 req/s × 500".into(),
        format!(
            "completed {}, TPOT p99 {} ms, attain {}",
            r.healthy.completed,
            fmt(r.healthy.tpot_ms.p99, 2),
            fmt(r.healthy.slo_attainment, 3)
        ),
    ]);
    t.row(&[
        "empty-plan identity".into(),
        "run_with_faults(∅) vs run".into(),
        format!("byte-identical: {}", r.empty_plan_identical),
    ]);
    t.row(&[
        "fault drill".into(),
        format!("{} events (seed {})", r.plan_events, r.seed),
        format!(
            "crashes {}, flaps {}, stragglers {}, SDC {} ({} caught)",
            r.faulty.faults.crash_events,
            r.faulty.faults.plane_flap_events,
            r.faulty.faults.straggler_events,
            r.faulty.faults.sdc_events,
            r.faulty.faults.sdc_detected
        ),
    ]);
    t.row(&[
        "recovery: retry+backoff".into(),
        format!(
            "{} jobs lost, {} retries",
            r.faulty.faults.jobs_lost_to_crashes, r.faulty.faults.retries
        ),
        format!(
            "completed {}, rejected {}, TPOT p99 {} ms, attain {}",
            r.faulty.serving.completed,
            r.faulty.faults.rejected,
            fmt(r.faulty.serving.tpot_ms.p99, 2),
            fmt(r.faulty.serving.slo_attainment, 3)
        ),
    ]);
    t.row(&[
        "recovery: + hedging".into(),
        format!("{} hedges, {} wins", r.hedged.faults.hedges_spawned, r.hedged.faults.hedge_wins),
        format!(
            "completed {}, e2e p99 {} vs {} ms",
            r.hedged.serving.completed,
            fmt(r.hedged.serving.e2e_ms.p99, 1),
            fmt(r.faulty.serving.e2e_ms.p99, 1)
        ),
    ]);
    t.row(&[
        "plane-flap retention".into(),
        format!("{} step changes", r.retention.len().saturating_sub(1)),
        format!(
            "min retention {} ({} degraded steps)",
            fmt(r.faulty.faults.min_bandwidth_retention, 3),
            r.faulty.faults.degraded_steps
        ),
    ]);
    for a in &r.availability {
        t.row(&[
            "training goodput".into(),
            format!("MTBF {} h, τ* = {} s", fmt(a.mtbf_h, 0), fmt(a.interval_s, 0)),
            format!(
                "sim {} vs Young/Daly {} (rel err {})",
                fmt(a.simulated_goodput, 4),
                fmt(a.analytic_goodput, 4),
                fmt(a.rel_err, 4)
            ),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_reproduces_healthy_report() {
        let r = run();
        assert!(r.empty_plan_identical, "empty FaultPlan must be a byte-for-byte no-op");
    }

    #[test]
    fn drill_exercises_every_fault_class() {
        let r = run();
        assert!(r.plan_events > 0);
        assert!(r.faulty.faults.crash_events > 0, "{:?}", r.faulty.faults);
        assert!(r.faulty.faults.plane_flap_events > 0, "{:?}", r.faulty.faults);
        assert!(r.faulty.faults.straggler_events > 0, "{:?}", r.faulty.faults);
        assert!(r.faulty.faults.sdc_events > 0, "{:?}", r.faulty.faults);
        assert!(r.faulty.faults.min_bandwidth_retention < 1.0);
    }

    #[test]
    fn faults_degrade_but_do_not_disconnect() {
        let r = run();
        let total = r.faulty.serving.completed
            + r.faulty.serving.dropped
            + r.faulty.faults.rejected
            + r.faulty.faults.unfinished;
        assert_eq!(total, r.healthy.requests, "conservation");
        assert!(
            r.faulty.serving.completed > r.healthy.requests / 2,
            "the cluster must keep serving through the drill: {}",
            r.faulty.serving.completed
        );
        assert!(
            r.faulty.serving.slo_attainment <= r.healthy.slo_attainment,
            "faults cannot improve attainment"
        );
    }

    #[test]
    fn simulated_goodput_matches_young_daly_within_5_percent() {
        let r = run();
        assert_eq!(r.availability.len(), 3);
        for a in &r.availability {
            assert!(
                a.rel_err < 0.05,
                "MTBF {} h: sim {} vs analytic {} (rel err {})",
                a.mtbf_h,
                a.simulated_goodput,
                a.analytic_goodput,
                a.rel_err
            );
        }
    }

    #[test]
    fn drill_is_deterministic_per_seed() {
        let a = run_seeded(7);
        let b = run_seeded(7);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "byte-reproducible per seed"
        );
        let c = run_seeded(8);
        assert_ne!(a.faulty, c.faulty, "different seeds produce different drills");
    }

    #[test]
    fn render_covers_all_studies() {
        let t = render();
        assert!(t.rows.len() >= 8, "rows: {}", t.rows.len());
        assert!(t.rows.iter().any(|r| r[0] == "empty-plan identity"));
        assert!(t.rows.iter().any(|r| r[0] == "training goodput"));
    }

    #[test]
    fn instrumented_drill_reproduces_plain_report_with_fault_instants() {
        let mut rec = Recorder::new();
        let instrumented = run_instrumented(&mut rec);
        assert_eq!(
            serde_json::to_string(&instrumented).unwrap(),
            serde_json::to_string(&run()).unwrap(),
            "telemetry must not perturb the drill"
        );
        let events = rec.events();
        assert!(
            events.iter().any(|e| e.ph == "i" && e.name.starts_with("inject")),
            "drill trace must contain fault injections"
        );
        assert!(events.iter().any(|e| e.ph == "X" && e.name == "decode"));
        assert!(rec.counters().keys().any(|k| k.starts_with("faulty.faults.inject.")));
        assert!(rec.counters().contains_key("healthy.completed"));
    }
}
