//! Figure 5: NCCL-style all-to-all bandwidth, 32–128 GPUs, MPFT vs MRFT.

use crate::report::{fmt, Table};
use dsv3_collectives::alltoall::alltoall_pxn;
use dsv3_collectives::{Cluster, ClusterConfig, FabricKind};
use serde::{Deserialize, Serialize};

/// One measured point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// GPUs participating.
    pub gpus: usize,
    /// Message size per peer (bytes).
    pub bytes_per_peer: f64,
    /// MPFT bus bandwidth (GB/s).
    pub mpft_busbw: f64,
    /// MRFT bus bandwidth (GB/s).
    pub mrft_busbw: f64,
}

/// Message sizes swept (per peer).
#[must_use]
pub fn message_sizes() -> Vec<f64> {
    vec![4096.0, 65_536.0, 1_048_576.0, 8_388_608.0]
}

/// Run the sweep over 32–128 GPUs.
#[must_use]
pub fn run() -> Vec<Point> {
    let mut out = Vec::new();
    for nodes in [4usize, 8, 16] {
        let mp = Cluster::new(ClusterConfig::h800(nodes, FabricKind::MultiPlane));
        let mr = Cluster::new(ClusterConfig::h800(nodes, FabricKind::MultiRail));
        for bytes in message_sizes() {
            out.push(Point {
                gpus: nodes * 8,
                bytes_per_peer: bytes,
                mpft_busbw: alltoall_pxn(&mp, bytes).busbw_gbps,
                mrft_busbw: alltoall_pxn(&mr, bytes).busbw_gbps,
            });
        }
    }
    out
}

/// Render the series.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "Figure 5: all-to-all bus bandwidth, MPFT vs MRFT (GB/s)",
        &["GPUs", "msg/peer", "MPFT", "MRFT"],
    );
    for p in run() {
        t.row(&[
            p.gpus.to_string(),
            format!("{}", p.bytes_per_peer as u64),
            fmt(p.mpft_busbw, 1),
            fmt(p.mrft_busbw, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_and_saturation() {
        for p in run() {
            let rel = (p.mpft_busbw - p.mrft_busbw).abs() / p.mpft_busbw.max(1e-9);
            assert!(rel < 0.02, "parity at {} GPUs / {}B: {rel}", p.gpus, p.bytes_per_peer);
            if p.bytes_per_peer >= 1_048_576.0 {
                assert!(p.mpft_busbw > 30.0, "large-message busbw {}", p.mpft_busbw);
            }
        }
    }
}
