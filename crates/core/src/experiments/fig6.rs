//! Figure 6: all-to-all latency vs message size (16 GPUs), MPFT vs MRFT.

use crate::report::{fmt, Table};
use dsv3_collectives::alltoall::alltoall_pxn;
use dsv3_collectives::{Cluster, ClusterConfig, FabricKind};
use serde::{Deserialize, Serialize};

/// One measured point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Message size per peer (bytes).
    pub bytes_per_peer: f64,
    /// MPFT completion time (µs).
    pub mpft_us: f64,
    /// MRFT completion time (µs).
    pub mrft_us: f64,
}

/// Small-message sweep.
#[must_use]
pub fn run() -> Vec<Point> {
    let mp = Cluster::new(ClusterConfig::h800(2, FabricKind::MultiPlane));
    let mr = Cluster::new(ClusterConfig::h800(2, FabricKind::MultiRail));
    [128.0, 1024.0, 8192.0, 65_536.0, 524_288.0, 1_048_576.0]
        .into_iter()
        .map(|bytes| Point {
            bytes_per_peer: bytes,
            mpft_us: alltoall_pxn(&mp, bytes).time_us,
            mrft_us: alltoall_pxn(&mr, bytes).time_us,
        })
        .collect()
}

/// Render the series.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "Figure 6: 16-GPU all-to-all latency, MPFT vs MRFT (µs)",
        &["msg/peer", "MPFT", "MRFT"],
    );
    for p in run() {
        t.row(&[format!("{}", p.bytes_per_peer as u64), fmt(p.mpft_us, 2), fmt(p.mrft_us, 2)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_floor_and_parity() {
        let pts = run();
        for p in &pts {
            assert!((p.mpft_us - p.mrft_us).abs() / p.mpft_us < 0.02, "parity");
        }
        // Small messages sit near the path-latency floor; larger ones grow.
        assert!(pts[0].mpft_us < 10.0, "{}", pts[0].mpft_us);
        assert!(pts.last().unwrap().mpft_us > 10.0 * pts[0].mpft_us);
    }
}
