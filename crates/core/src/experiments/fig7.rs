//! Figure 7: DeepEP dispatch/combine throughput on MPFT, 16–128 GPUs.

use crate::report::{fmt, Table};
use dsv3_collectives::deepep::{deepep_point, DeepEpPoint, EpConfig};
use dsv3_collectives::{Cluster, ClusterConfig, FabricKind};

/// Run the sweep. `tokens_per_gpu` = 4096 reproduces the figure; smaller
/// values keep debug-mode tests quick (bandwidths are size-stable).
#[must_use]
pub fn run(tokens_per_gpu: usize) -> Vec<DeepEpPoint> {
    let cfg = EpConfig { tokens_per_gpu, ..EpConfig::deepseek_v3() };
    [2usize, 4, 8, 16]
        .into_iter()
        .map(|nodes| {
            let c = Cluster::new(ClusterConfig::h800(nodes, FabricKind::MultiPlane));
            deepep_point(&c, &cfg)
        })
        .collect()
}

/// Render the series.
#[must_use]
pub fn render(tokens_per_gpu: usize) -> Table {
    let mut t = Table::new(
        "Figure 7: DeepEP per-GPU RDMA bandwidth on MPFT (GB/s)",
        &["GPUs", "dispatch (FP8)", "combine (BF16)"],
    );
    for p in run(tokens_per_gpu) {
        t.row(&[p.gpus.to_string(), fmt(p.dispatch_gbps, 1), fmt(p.combine_gbps, 1)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_holds_up_to_128_gpus() {
        let pts = run(128);
        assert_eq!(pts.last().unwrap().gpus, 128);
        for p in &pts[1..] {
            assert!(p.dispatch_gbps > 36.0, "{} GPUs: {}", p.gpus, p.dispatch_gbps);
            assert!(p.combine_gbps > 36.0, "{} GPUs: {}", p.gpus, p.combine_gbps);
        }
    }
}
