//! Figure 8: RoCE AllGather/ReduceScatter bandwidth vs routing policy.

use crate::report::{fmt, Table};
use dsv3_collectives::ring::{allgather, reduce_scatter, Placement, RingNet};
use dsv3_topology::routing::RoutePolicy;
use serde::{Deserialize, Serialize};

/// One measured point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Collective name.
    pub collective: String,
    /// Ranks per group (the "TP dimension").
    pub tp: usize,
    /// Routing policy label.
    pub policy: String,
    /// Bus bandwidth (GB/s).
    pub busbw_gbps: f64,
}

fn policies() -> Vec<(&'static str, RoutePolicy)> {
    vec![
        ("ECMP", RoutePolicy::Ecmp { seed: 1 }),
        ("AR", RoutePolicy::Adaptive),
        ("Static", RoutePolicy::StaticBySource),
    ]
}

/// Run the sweep: strided groups on an 8-leaf RoCE fabric, TP ∈ {4, 8, 16}.
#[must_use]
pub fn run() -> Vec<Point> {
    let net = RingNet::roce(8, 8, 8);
    let bytes = 64.0 * 1024.0 * 1024.0;
    let mut out = Vec::new();
    for tp in [4usize, 8, 16] {
        let groups = 64 / tp;
        for (name, policy) in policies() {
            let ag = allgather(&net, tp, groups, bytes, Placement::Strided, policy);
            out.push(Point {
                collective: "AllGather".into(),
                tp,
                policy: name.into(),
                busbw_gbps: ag.busbw_gbps,
            });
            let rs = reduce_scatter(&net, tp, groups, bytes, Placement::Strided, policy);
            out.push(Point {
                collective: "ReduceScatter".into(),
                tp,
                policy: name.into(),
                busbw_gbps: rs.busbw_gbps,
            });
        }
    }
    out
}

/// Render the series.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "Figure 8: RoCE collective bandwidth vs routing (GB/s)",
        &["Collective", "TP", "ECMP", "AR", "Static"],
    );
    let pts = run();
    for coll in ["AllGather", "ReduceScatter"] {
        for tp in [4usize, 8, 16] {
            let get = |policy: &str| {
                pts.iter()
                    .find(|p| p.collective == coll && p.tp == tp && p.policy == policy)
                    .map_or_else(|| String::from("-"), |p| fmt(p.busbw_gbps, 1))
            };
            t.row(&[coll.to_string(), tp.to_string(), get("ECMP"), get("AR"), get("Static")]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_routing_wins() {
        let pts = run();
        for tp in [8usize, 16] {
            let by = |policy: &str| {
                pts.iter()
                    .find(|p| p.collective == "AllGather" && p.tp == tp && p.policy == policy)
                    .unwrap()
                    .busbw_gbps
            };
            assert!(by("AR") > by("ECMP"), "tp={tp}: AR {} ECMP {}", by("AR"), by("ECMP"));
            assert!(by("Static") >= by("ECMP"), "tp={tp}");
        }
    }
}
