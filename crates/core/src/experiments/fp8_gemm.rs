//! §3.1: FP8 GEMM accumulation and quantization error.
//!
//! Sweeps the inner dimension K and compares the relative error of the
//! emulated Hopper pipeline under three main-accumulator strategies, plus
//! the per-tensor (coarse) quantization baseline.

use crate::report::{fmt, Table};
use dsv3_numerics::gemm::{gemm_fp8, gemm_fp8_per_tensor, Fp8GemmConfig, MainAccumulator};
use dsv3_numerics::metrics::relative_frobenius_error;
use dsv3_numerics::minifloat::Format;
use dsv3_numerics::Matrix;
use serde::{Deserialize, Serialize};

/// One K point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Inner dimension.
    pub k: usize,
    /// Relative error, FP22 end-to-end accumulation.
    pub err_fp22: f64,
    /// Relative error, DeepGEMM split accumulation (FP32 promotion / 128).
    pub err_split_fp32: f64,
    /// Relative error, exact accumulation (pure quantization error).
    pub err_exact: f64,
    /// Relative error, per-tensor scaling (coarse) with exact accumulation.
    pub err_per_tensor: f64,
    /// Accumulation-only error of FP22 (vs the same quantized inputs with
    /// exact accumulation).
    pub acc_err_fp22: f64,
    /// Accumulation-only error of the split/FP32 strategy.
    pub acc_err_split: f64,
    /// Relative error of fine-grained scaling on *outlier-bearing*
    /// activations (one huge channel per 256).
    pub outlier_err_fine: f64,
    /// Relative error of per-tensor scaling on the same outlier data.
    pub outlier_err_per_tensor: f64,
}

/// Run the K sweep. Positive-mean operands make the accumulator grow with K
/// (the regime where FP22 visibly degrades).
#[must_use]
pub fn run(ks: &[usize]) -> Vec<Row> {
    ks.iter()
        .map(|&k| {
            let mut a = Matrix::random(4, k, 1.0, 100 + k as u64);
            let mut b = Matrix::random(k, 4, 1.0, 200 + k as u64);
            for v in a.data.iter_mut().chain(b.data.iter_mut()) {
                *v = v.abs() + 0.05;
            }
            let reference = a.matmul(&b);
            // Outlier study: tiny activations with one huge channel; judge on
            // the rows the outlier does not dominate.
            let outlier = {
                let mut ao = Matrix::random(8, 256, 5e-4, 300 + k as u64);
                ao.set(0, 0, 300.0);
                let bo = Matrix::random(256, 8, 1.0, 400 + k as u64);
                let ro = ao.matmul(&bo);
                let fine = gemm_fp8(&ao, &bo, Fp8GemmConfig::default());
                let coarse = gemm_fp8_per_tensor(&ao, &bo, Format::E4M3);
                let tail = |m: &Matrix| m.data[m.cols..].to_vec();
                (
                    relative_frobenius_error(&tail(&ro), &tail(&fine)),
                    relative_frobenius_error(&tail(&ro), &tail(&coarse)),
                )
            };
            let out =
                |acc| gemm_fp8(&a, &b, Fp8GemmConfig { main_acc: acc, ..Fp8GemmConfig::default() });
            let exact_q = out(MainAccumulator::Exact);
            let fp22 = out(MainAccumulator::Fp22);
            let split = out(MainAccumulator::Fp32);
            Row {
                k,
                err_fp22: relative_frobenius_error(&reference.data, &fp22.data),
                err_split_fp32: relative_frobenius_error(&reference.data, &split.data),
                err_exact: relative_frobenius_error(&reference.data, &exact_q.data),
                err_per_tensor: relative_frobenius_error(
                    &reference.data,
                    &gemm_fp8_per_tensor(&a, &b, Format::E4M3).data,
                ),
                acc_err_fp22: relative_frobenius_error(&exact_q.data, &fp22.data),
                acc_err_split: relative_frobenius_error(&exact_q.data, &split.data),
                outlier_err_fine: outlier.0,
                outlier_err_per_tensor: outlier.1,
            }
        })
        .collect()
}

/// Default K sweep.
#[must_use]
pub fn default_ks() -> Vec<usize> {
    vec![512, 2048, 8192, 32_768]
}

/// Render.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "§3.1: FP8 GEMM relative error vs accumulation strategy",
        &[
            "K",
            "FP22 acc",
            "split->FP32 (DeepGEMM)",
            "exact acc",
            "per-tensor scale",
            "FP22 acc-only",
            "outliers: fine",
            "outliers: per-tensor",
        ],
    );
    for r in run(&default_ks()) {
        t.row(&[
            r.k.to_string(),
            format!("{:.2e}", r.err_fp22),
            format!("{:.2e}", r.err_split_fp32),
            format!("{:.2e}", r.err_exact),
            format!("{:.2e}", r.err_per_tensor),
            format!("{:.2e}", r.acc_err_fp22),
            format!("{:.2e}", r.outlier_err_fine),
            format!("{:.2e}", r.outlier_err_per_tensor),
        ]);
    }
    let _ = fmt(0.0, 0);
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn fp22_error_grows_with_k_and_split_fixes_it() {
        let rows = super::run(&[512, 8192]);
        assert!(
            rows[1].acc_err_fp22 > rows[0].acc_err_fp22,
            "fp22 accumulation error grows with K: {} vs {}",
            rows[0].acc_err_fp22,
            rows[1].acc_err_fp22
        );
        for r in &rows {
            assert!(r.acc_err_split < r.acc_err_fp22, "split beats fp22 at K={}", r.k);
            assert!(r.err_split_fp32 < 2.0 * r.err_exact + 1e-6, "split ~ quantization floor");
            assert!(
                r.outlier_err_fine < 0.3 * r.outlier_err_per_tensor,
                "fine-grained must survive outliers: {} vs {}",
                r.outlier_err_fine,
                r.outlier_err_per_tensor
            );
        }
    }
}
