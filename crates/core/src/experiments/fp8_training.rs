//! §2.4: FP8 vs BF16 training accuracy at laptop scale.

use crate::report::{fmt, Table};
use dsv3_model::train::{gradient_probe, relative_loss_gap, train, Precision, TrainConfig};
use serde::{Deserialize, Serialize};

/// One backend's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Backend label.
    pub precision: String,
    /// Final eval loss.
    pub final_loss: f64,
    /// Relative gap vs the BF16 run.
    pub gap_vs_bf16: f64,
    /// Gradient fidelity under activation outliers (relative error of
    /// ∂L/∂W₁ vs f32; lower is better).
    pub gradient_error: f64,
}

/// Train all four backends on the same task.
#[must_use]
pub fn run(cfg: TrainConfig) -> Vec<Row> {
    let backends = [
        ("F32", Precision::F32),
        ("BF16", Precision::Bf16),
        ("FP8 fine-grained", Precision::Fp8Fine),
        ("FP8 per-tensor", Precision::Fp8Coarse),
    ];
    let reports: Vec<_> = backends.iter().map(|(_, p)| train(*p, cfg)).collect();
    let bf16 = reports[1].clone();
    backends
        .iter()
        .zip(&reports)
        .map(|((name, p), r)| Row {
            precision: (*name).to_string(),
            final_loss: r.final_loss,
            gap_vs_bf16: relative_loss_gap(&bf16, r),
            gradient_error: gradient_probe(*p, 1e5, 11),
        })
        .collect()
}

/// Render with the default config.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "§2.4: training-accuracy comparison across precision backends",
        &["Backend", "final loss", "gap vs BF16", "grad err (outliers)"],
    );
    for r in run(TrainConfig::default()) {
        t.row(&[
            r.precision.clone(),
            fmt(r.final_loss, 4),
            format!("{:+.2}%", r.gap_vs_bf16 * 100.0),
            format!("{:.3}", r.gradient_error),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fine_fp8_tracks_bf16_and_coarse_gradients_break() {
        let rows = run(TrainConfig { steps: 150, ..TrainConfig::default() });
        let by = |n: &str| rows.iter().find(|r| r.precision.contains(n)).unwrap();
        assert!(by("fine").gap_vs_bf16.abs() < 0.15, "{}", by("fine").gap_vs_bf16);
        assert!(
            by("per-tensor").gradient_error > 2.0 * by("fine").gradient_error,
            "{} vs {}",
            by("per-tensor").gradient_error,
            by("fine").gradient_error
        );
    }
}
