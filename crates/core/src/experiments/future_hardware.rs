//! §4.4/§4.5/§6: quantified payoffs of the paper's hardware suggestions.
//!
//! Each row takes one recommendation and reports the gain our models assign
//! to it on the H800 baseline: SM offload via scale-up/scale-out
//! convergence (§4.4), PCIe traffic prioritization (§4.5), hardware
//! memory-ordering (RAR, §6.4), in-network combine compression (§6.5), and
//! higher-precision accumulation (§3.1, from the GEMM experiment).

use crate::report::{fmt, Table};
use dsv3_collectives::innetwork::sm_offload_speedup;
use dsv3_inference::contention::{decode_step, IoContentionConfig};
use dsv3_netsim::ordering::{simulate, MessageGroup, OrderingMode};
use serde::{Deserialize, Serialize};

/// One recommendation's quantified payoff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Paper section.
    pub section: String,
    /// Recommendation.
    pub recommendation: String,
    /// Metric name.
    pub metric: String,
    /// Gain factor (≥ 1 = improvement).
    pub gain: f64,
}

/// Evaluate all recommendations.
#[must_use]
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    // §4.4: dedicated communication co-processor frees up to 20/132 SMs.
    rows.push(Row {
        section: "§4.4".into(),
        recommendation: "offload EP comm from SMs to a co-processor".into(),
        metric: "training compute throughput".into(),
        gain: sm_offload_speedup(132, 20),
    });
    // §4.5: PCIe traffic classes remove the KV-transfer-induced EP spike.
    let cfg = IoContentionConfig::h800_decode_step();
    let shared = decode_step(&cfg, false);
    let prio = decode_step(&cfg, true);
    rows.push(Row {
        section: "§4.5".into(),
        recommendation: "dynamic PCIe/NVLink traffic prioritization".into(),
        metric: "EP step time under KV-transfer bursts".into(),
        gain: shared.ep_time_us / prio.ep_time_us,
    });
    // §6.4: RAR removes one RTT of fence stall per notification.
    let groups = vec![MessageGroup { payload_us: 2.4, one_way_us: 3.7 }; 61];
    let fenced = simulate(&groups, OrderingMode::SenderFence);
    let rar = simulate(&groups, OrderingMode::RegionAcquireRelease);
    rows.push(Row {
        section: "§6.4".into(),
        recommendation: "hardware Region Acquire/Release ordering".into(),
        metric: "small-message notification stream time".into(),
        gain: fenced.total_us / rar.total_us,
    });
    // §6.5: native LogFMT-8 combine compression halves combine bytes.
    let base = dsv3_inference::tpot::SpeedLimitConfig::h800_ib().evaluate();
    let mut compressed = dsv3_inference::tpot::SpeedLimitConfig::h800_ib();
    compressed.combine_bytes = 1.0;
    let comp = compressed.evaluate();
    rows.push(Row {
        section: "§6.5".into(),
        recommendation: "in-network LogFMT combine compression".into(),
        metric: "decode tokens/s".into(),
        gain: comp.tokens_per_second / base.tokens_per_second,
    });
    rows
}

/// Render the summary.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "§6: quantified payoffs of the paper's hardware recommendations",
        &["Section", "Recommendation", "Metric", "Gain"],
    );
    for r in run() {
        t.row(&[
            r.section.clone(),
            r.recommendation.clone(),
            r.metric.clone(),
            format!("{}x", fmt(r.gain, 2)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_recommendation_pays_off() {
        let rows = super::run();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.gain > 1.05, "{}: {}", r.recommendation, r.gain);
        }
        // SM offload lands at the 132/112 arithmetic.
        assert!((rows[0].gain - 1.1786).abs() < 0.01);
        // Combine compression is exactly 1.5×.
        assert!((rows[3].gain - 1.5).abs() < 0.01);
    }
}
