//! The `lint` runner: drives [`dsv3_lint`] over this workspace and
//! renders the result through [`crate::report`] like every other
//! experiment — because the linter *is* part of the reproduction: the
//! determinism, panic-freedom, and vendor invariants it enforces are
//! what make every table in the paper reproducible bit-for-bit.

use crate::report::Table;
use dsv3_lint::config::LintConfig;
use dsv3_lint::diag::Report;
use dsv3_lint::rules::RuleId;
use serde::Serialize;
use std::path::{Path, PathBuf};

/// One finding, serializable for `--json`.
#[derive(Debug, Clone, Serialize)]
pub struct LintFinding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D1` … `W2`).
    pub rule: String,
    /// `error` or `warning`.
    pub severity: String,
    /// What and why.
    pub message: String,
}

/// The whole scan, serializable for `--json`.
#[derive(Debug, Clone, Serialize)]
pub struct LintReport {
    /// Rust sources scanned.
    pub files_scanned: usize,
    /// Manifests scanned (workspace + vendor).
    pub manifests_scanned: usize,
    /// Waivers that suppressed at least one finding.
    pub waivers_honored: usize,
    /// Findings suppressed by a `--baseline` file.
    pub baseline_suppressed: usize,
    /// Error-severity findings.
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
    /// All findings in (path, line, rule) order.
    pub findings: Vec<LintFinding>,
}

/// Knobs for one lint invocation, mirrored from the CLI flags.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// `--rules U2,F2`: run only these families (comma-separated ids).
    pub rules: Option<String>,
    /// `--baseline <path>`: suppress findings whose rendered line
    /// appears verbatim in this file.
    pub baseline: Option<String>,
}

/// Locate the workspace root. The compile-time manifest dir of this
/// crate is `<root>/crates/core`; walking up two levels lands on the
/// root. Falls back to the current directory when the build tree moved.
#[must_use]
pub fn workspace_root() -> PathBuf {
    let baked = Path::new(env!("CARGO_MANIFEST_DIR"));
    if let Some(root) = baked.ancestors().nth(2) {
        if root.join("Cargo.toml").is_file() {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn convert(report: &Report) -> LintReport {
    LintReport {
        files_scanned: report.files_scanned,
        manifests_scanned: report.manifests_scanned,
        waivers_honored: report.waivers_honored,
        baseline_suppressed: 0,
        errors: report.errors(),
        warnings: report.warnings(),
        findings: report
            .diagnostics
            .iter()
            .map(|d| LintFinding {
                path: d.path.clone(),
                line: d.line,
                rule: d.rule.as_str().to_string(),
                severity: d.severity.as_str().to_string(),
                message: d.message.clone(),
            })
            .collect(),
    }
}

fn error_report(message: String) -> LintReport {
    LintReport {
        files_scanned: 0,
        manifests_scanned: 0,
        waivers_honored: 0,
        baseline_suppressed: 0,
        errors: 1,
        warnings: 0,
        findings: vec![LintFinding {
            path: String::from("<workspace>"),
            line: 0,
            rule: String::from("IO"),
            severity: String::from("error"),
            message,
        }],
    }
}

/// Scan the workspace under the default policy.
#[must_use]
pub fn run() -> LintReport {
    match dsv3_lint::scan(&workspace_root()) {
        Ok(report) => convert(&report),
        Err(e) => error_report(format!("cannot scan workspace: {e}")),
    }
}

/// Parse a `--rules` comma list into rule ids; unknown names are errors.
pub fn parse_rules(spec: &str) -> Result<Vec<RuleId>, String> {
    let mut out = Vec::new();
    for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match RuleId::parse(name) {
            Some(r) => out.push(r),
            None => return Err(format!("unknown rule '{name}' in --rules")),
        }
    }
    if out.is_empty() {
        return Err(String::from("--rules names no rules"));
    }
    Ok(out)
}

/// Scan the workspace with CLI options: an optional `--rules` family
/// filter, an optional `--baseline` suppression file, and always the
/// P3 parallel-readiness report alongside the findings.
#[must_use]
pub fn run_with(opts: &LintOptions) -> (LintReport, dsv3_lint::ReadinessReport) {
    let mut cfg = LintConfig::default_config();
    if let Some(spec) = &opts.rules {
        match parse_rules(spec) {
            Ok(rules) => cfg.only = Some(rules),
            Err(e) => return (error_report(e), dsv3_lint::ReadinessReport::default()),
        }
    }
    match dsv3_lint::analyze_workspace(&workspace_root(), &cfg) {
        Ok(mut analysis) => {
            let mut suppressed = 0;
            if let Some(path) = &opts.baseline {
                match std::fs::read_to_string(path) {
                    Ok(base) => {
                        suppressed = dsv3_lint::apply_baseline(&mut analysis.report, &base);
                    }
                    Err(e) => {
                        return (
                            error_report(format!("cannot read baseline '{path}': {e}")),
                            dsv3_lint::ReadinessReport::default(),
                        )
                    }
                }
            }
            let mut report = convert(&analysis.report);
            report.baseline_suppressed = suppressed;
            (report, analysis.readiness)
        }
        Err(e) => (
            error_report(format!("cannot scan workspace: {e}")),
            dsv3_lint::ReadinessReport::default(),
        ),
    }
}

/// Render a report: the per-rule policy table with finding counts, plus
/// scan totals.
#[must_use]
pub fn render_report(report: &LintReport) -> Table {
    let mut t = Table::new(
        "Invariant lint — determinism, panic-freedom, and vendor policy",
        &["rule", "invariant", "severity", "findings"],
    );
    for rule in RuleId::ALL {
        let n = report.findings.iter().filter(|f| f.rule == rule.as_str()).count();
        t.row(&[
            rule.as_str().to_string(),
            rule.invariant().to_string(),
            rule.severity().as_str().to_string(),
            n.to_string(),
        ]);
    }
    t.row(&[
        String::from("—"),
        format!(
            "{} source files, {} manifests scanned",
            report.files_scanned, report.manifests_scanned
        ),
        String::from("—"),
        format!("{} waived", report.waivers_honored),
    ]);
    t
}

/// Render a fresh scan.
#[must_use]
pub fn render() -> Table {
    render_report(&run())
}

/// The lint policy as JSON, hashed into the run manifest so a policy
/// change shows up as a config-hash change.
#[must_use]
pub fn config_json() -> String {
    #[derive(Serialize)]
    struct RulePolicy {
        rule: &'static str,
        invariant: &'static str,
        severity: &'static str,
        allow_paths: Vec<&'static str>,
    }
    let cfg = LintConfig::default_config();
    let policy: Vec<RulePolicy> = RuleId::ALL
        .into_iter()
        .map(|rule| RulePolicy {
            rule: rule.as_str(),
            invariant: rule.invariant(),
            severity: rule.severity().as_str(),
            allow_paths: cfg
                .rules
                .iter()
                .find(|r| r.rule == rule)
                .map(|r| r.allow_paths.clone())
                .unwrap_or_default(),
        })
        .collect();
    serde_json::to_string(&policy).unwrap_or_else(|_| String::from("null"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_a_cargo_workspace() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn workspace_scan_is_deterministic() {
        let a = serde_json::to_string(&run()).unwrap();
        let b = serde_json::to_string(&run()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn policy_json_names_every_rule() {
        let j = config_json();
        for rule in RuleId::ALL {
            assert!(j.contains(rule.as_str()), "policy missing {}", rule.as_str());
        }
    }
}
