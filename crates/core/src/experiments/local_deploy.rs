//! §2.2.2: local deployment decode speed, MoE vs dense.

use crate::report::{fmt, Table};
use dsv3_inference::local::{dense_70b, LocalHardware};
use dsv3_model::zoo;
use serde::{Deserialize, Serialize};

/// One (hardware, model) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Hardware label.
    pub hardware: String,
    /// Model label.
    pub model: String,
    /// Activated parameters, billions.
    pub activated_b: f64,
    /// Single-request decode TPS.
    pub tps: f64,
}

/// Evaluate the paper's scenarios.
#[must_use]
pub fn run() -> Vec<Row> {
    let hw = [LocalHardware::ai_soc_pc(), LocalHardware::ktransformers_server()];
    let models = [zoo::deepseek_v2(), zoo::deepseek_v3(), dense_70b()];
    let mut out = Vec::new();
    for h in &hw {
        for m in &models {
            out.push(Row {
                hardware: h.name.clone(),
                model: m.name.clone(),
                activated_b: dsv3_model::flops::param_counts(m).activated as f64 / 1e9,
                tps: h.tps(m),
            });
        }
    }
    out
}

/// Render.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "§2.2.2: single-request decode TPS on local hardware (Q4 weights)",
        &["Hardware", "Model", "activated (B)", "TPS"],
    );
    for r in run() {
        t.row(&[r.hardware.clone(), r.model.clone(), fmt(r.activated_b, 1), fmt(r.tps, 1)]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn moe_vs_dense_shape() {
        let rows = super::run();
        let tps = |h: &str, m: &str| {
            rows.iter().find(|r| r.hardware.contains(h) && r.model.contains(m)).unwrap().tps
        };
        assert!(tps("AI-SoC", "V2") > 15.0);
        assert!(tps("AI-SoC", "Dense-70B") < 10.0);
        assert!(tps("KTransformers", "V3") > 15.0);
    }
}
