//! §3.2: LogFMT quality vs FP8 and BF16 on activation-shaped data.

use crate::report::{fmt, Table};
use dsv3_numerics::logfmt::logfmt_quantize;
use dsv3_numerics::metrics::{mean_bias, relative_rmse, sqnr_db};
use dsv3_numerics::minifloat::Format;
use serde::{Deserialize, Serialize};

/// One format's quality on the benchmark tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Format label.
    pub format: String,
    /// Bits per element.
    pub bits: u32,
    /// SQNR in dB (higher is better; tail-dominated on heavy-tailed data).
    pub sqnr_db: f64,
    /// RMS relative error (precision across the whole distribution —
    /// LogFMT's design target; lower is better).
    pub rel_rmse: f64,
    /// Relative mean bias (unbiasedness probe).
    pub rel_bias: f64,
}

/// Log-normal activations (the distribution LogFMT targets), per-128 tiles.
#[must_use]
pub fn activations(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
            let mag = (u * 6.0 - 3.0).exp();
            let sign = if state & 4 == 0 { 1.0 } else { -1.0 };
            (sign * mag) as f32
        })
        .collect()
}

/// Tile-scaled minifloat quantization (1×128 scales, same as production).
fn minifloat_tiled(values: &[f32], format: Format) -> Vec<f32> {
    let mut out = Vec::with_capacity(values.len());
    for tile in values.chunks(128) {
        let amax = tile.iter().map(|v| v.abs() as f64).fold(0.0, f64::max);
        let scale = if amax > 0.0 { amax / format.max_finite() } else { 1.0 };
        out.extend(tile.iter().map(|&v| (format.quantize(f64::from(v) / scale) * scale) as f32));
    }
    out
}

/// Evaluate every format on the same tensor.
#[must_use]
pub fn run() -> Vec<Row> {
    let x = activations(65_536, 9);
    let mean_abs: f64 = x.iter().map(|v| f64::from(v.abs())).sum::<f64>() / x.len() as f64;
    let eval = |name: &str, bits: u32, q: Vec<f32>| Row {
        format: name.to_string(),
        bits,
        sqnr_db: sqnr_db(&x, &q),
        rel_rmse: relative_rmse(&x, &q),
        rel_bias: mean_bias(&x, &q).abs() / mean_abs,
    };
    vec![
        eval("E4M3 (1x128 scaled)", 8, minifloat_tiled(&x, Format::E4M3)),
        eval("E5M2 (1x128 scaled)", 8, minifloat_tiled(&x, Format::E5M2)),
        eval("LogFMT-8", 8, logfmt_quantize(&x, 8)),
        eval("LogFMT-10", 10, logfmt_quantize(&x, 10)),
        eval("E5M6", 12, minifloat_tiled(&x, Format::E5M6)),
        eval("BF16", 16, minifloat_tiled(&x, Format::BF16)),
    ]
}

/// Render.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "§3.2: communication-format quality on log-normal activations",
        &["Format", "bits", "SQNR (dB)", "rel RMSE", "|rel bias|"],
    );
    for r in run() {
        t.row(&[
            r.format.clone(),
            r.bits.to_string(),
            fmt(r.sqnr_db, 1),
            format!("{:.2e}", r.rel_rmse),
            format!("{:.2e}", r.rel_bias),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn paper_ordering_holds() {
        let rows = super::run();
        let by = |n: &str| rows.iter().find(|r| r.format.starts_with(n)).unwrap().rel_rmse;
        // §3.2: LogFMT-8 shows superior accuracy to E4M3 / E5M2 at 8 bits.
        assert!(by("LogFMT-8") < by("E4M3"), "{} vs {}", by("LogFMT-8"), by("E4M3"));
        assert!(by("LogFMT-8") < by("E5M2"));
        // §3.2: at n = 10 it is "similar to the BF16 combine stage".
        assert!(by("LogFMT-10") < 4.0 * by("BF16"), "{} vs {}", by("LogFMT-10"), by("BF16"));
        assert!(by("LogFMT-10") < by("LogFMT-8") / 2.0);
    }
}
