//! §2.1's memory wall, resolved over time: the training memory timeline.
//!
//! The steady-state calculator behind [`super::table1`]'s sibling analyses
//! answers what the *average* GPU holds; this experiment walks the actual
//! pipeline schedule ([`dsv3_memtl`]) and reports when each byte is live.
//! Four arms:
//!
//! 1. **Validation** — the event walker must land on the closed-form
//!    per-category curves (arXiv 2502.07846's decomposition) for the
//!    production-shaped 1F1B plan, within 5% (in practice: rounding
//!    error).
//! 2. **Plans** — naive (no recompute, 1F1B, ZeRO-1), selective-1F1B,
//!    the production DualPipe plan, and a min-memory plan (full
//!    recompute, ZeRO-3, optimizer offloaded over PCIe). The production
//!    plan fits an 80 GB H800; the naive one does not — the paper's
//!    memory-wall argument, event by event.
//! 3. **MLA vs MHA** — identical geometry, latent vs full-head
//!    attention, under no/selective recomputation.
//! 4. **Frontier** — the deepest V3-shaped model that fits N × 80 GB.

use crate::report::{fmt, Table};
use dsv3_memtl::{
    analytic_1f1b, frontier_sweep, max_rel_err, simulate, simulate_traced, FrontierQuery,
    FrontierRow, GpuSpec, MemPlan, Offload, Recompute, ScheduleKind, ZeroStage,
};
use dsv3_model::attention::Attention;
use dsv3_model::config::ModelConfig;
use dsv3_model::zoo;
use dsv3_telemetry::Recorder;
use serde::{Deserialize, Serialize};

/// Sweep parameters (serialized into the run manifest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemTimelineParams {
    /// The GPU every rank must fit.
    pub spec: GpuSpec,
    /// Fleet sizes probed by the fit-frontier search.
    pub frontier_gpus: Vec<usize>,
    /// PCIe bandwidth assumed by the min-memory plan's optimizer offload
    /// (GB/s; ≈ PCIe 4.0 ×16).
    pub offload_pcie_gbps: f64,
}

impl Default for MemTimelineParams {
    fn default() -> Self {
        Self {
            spec: GpuSpec::h800(),
            frontier_gpus: vec![16, 128, 512, 2048],
            offload_pcie_gbps: 32.0,
        }
    }
}

/// One plan arm of the comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRow {
    /// Arm label.
    pub label: String,
    /// Peak memory across ranks (GB).
    pub peak_gb: f64,
    /// Rank holding the peak.
    pub peak_rank: usize,
    /// Activation part of the peak rank (GB).
    pub peak_activation_gb: f64,
    /// Persistent floor of the peak rank (GB).
    pub floor_gb: f64,
    /// Step time including optimizer and offload penalty (seconds).
    pub step_time_s: f64,
    /// Offload PCIe penalty inside the step time (seconds).
    pub offload_penalty_s: f64,
    /// Recomputed fraction of forward work.
    pub recompute_overhead_frac: f64,
    /// Whether the peak rank fits the GPU budget.
    pub fits: bool,
}

/// MLA vs MHA at one recomputation policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttnRow {
    /// Attention mechanism label.
    pub attention: String,
    /// Recomputation policy label.
    pub recompute: String,
    /// Peak memory (GB).
    pub peak_gb: f64,
    /// Peak activation stash of the peak rank (GB).
    pub peak_activation_gb: f64,
}

/// Everything the experiment measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemTimelineReport {
    /// Largest sim-vs-closed-form relative error across every rank and
    /// category of the production-shaped 1F1B plan.
    pub analytic_max_rel_err: f64,
    /// Plan comparison, naive → min-memory.
    pub plans: Vec<PlanRow>,
    /// MLA vs MHA peaks.
    pub attention: Vec<AttnRow>,
    /// Fit frontier per fleet size.
    pub frontier: Vec<FrontierRow>,
    /// Chunk events walked by the traced production run.
    pub chunk_events: usize,
}

/// Deterministic run marker for the manifest (the walker draws no
/// randomness).
#[must_use]
pub fn seed() -> u64 {
    20_250_808
}

/// Serialized configuration, for the run manifest.
#[must_use]
pub fn config_json() -> String {
    crate::report::json_or_null(&MemTimelineParams::default())
}

fn plan_arms(p: &MemTimelineParams) -> Vec<(String, MemPlan)> {
    let production = MemPlan::deepseek_v3_production();
    vec![
        ("naive (1F1B, no recompute, Z1)".into(), MemPlan::naive()),
        (
            "1F1B + selective recompute".into(),
            MemPlan { schedule: ScheduleKind::OneFOneB, ..production },
        ),
        ("production (DualPipe, selective, Z1)".into(), production),
        (
            "min-memory (full recompute, Z3, offload)".into(),
            MemPlan {
                recompute: Recompute::Full,
                zero_stage: ZeroStage::Z3,
                offload: Offload::OptimizerCpu { pcie_gbps: p.offload_pcie_gbps },
                ..production
            },
        ),
    ]
}

fn v3_mha() -> ModelConfig {
    let mut mha = zoo::deepseek_v3();
    mha.attention = Attention::Mha { heads: 128, head_dim: 128 };
    mha.name = "V3-geometry MHA".into();
    mha
}

/// Run the experiment.
#[must_use]
pub fn run() -> MemTimelineReport {
    run_traced(&mut Recorder::disabled())
}

/// [`run`] with telemetry: the production DualPipe walk traces into
/// `rec` — per-rank processes, chunk spans on forward/backward/weight-grad
/// threads, and `act_gb`/`ws_gb`/`total_gb` counter tracks.
#[must_use]
pub fn run_instrumented(rec: &mut Recorder) -> MemTimelineReport {
    run_traced(rec)
}

fn run_traced(rec: &mut Recorder) -> MemTimelineReport {
    let p = MemTimelineParams::default();
    let cfg = zoo::deepseek_v3();

    // Arm 1: closed-form validation on the production-shaped 1F1B plan.
    let plan_1f1b =
        MemPlan { schedule: ScheduleKind::OneFOneB, ..MemPlan::deepseek_v3_production() };
    let analytic_max_rel_err =
        max_rel_err(&simulate(&cfg, &plan_1f1b), &analytic_1f1b(&cfg, &plan_1f1b));

    // Arm 2: plan comparison. Only the production arm traces (it is the
    // timeline the Chrome trace is about).
    let mut plans = Vec::new();
    let mut chunk_events = 0;
    for (label, plan) in plan_arms(&p) {
        let traced = plan == MemPlan::deepseek_v3_production();
        let rep = if traced {
            let r = simulate_traced(&cfg, &plan, rec);
            chunk_events = r.chunk_events;
            r
        } else {
            simulate(&cfg, &plan)
        };
        let peak = &rep.ranks[rep.peak_rank];
        plans.push(PlanRow {
            label,
            peak_gb: rep.peak_gb,
            peak_rank: rep.peak_rank,
            peak_activation_gb: peak.peak_activation_gb,
            floor_gb: peak.floor_gb,
            step_time_s: rep.step_time_s,
            offload_penalty_s: rep.offload_penalty_s,
            recompute_overhead_frac: rep.recompute_overhead_frac,
            fits: rep.fits(&p.spec),
        });
    }

    // Arm 3: MLA vs MHA under each recompute policy.
    let mut attention = Vec::new();
    for (cfg, attn) in [(zoo::deepseek_v3(), "MLA"), (v3_mha(), "MHA")] {
        for (recompute, label) in [(Recompute::None, "none"), (Recompute::Selective, "selective")] {
            let rep = simulate(&cfg, &MemPlan { recompute, ..MemPlan::deepseek_v3_production() });
            attention.push(AttnRow {
                attention: attn.into(),
                recompute: label.into(),
                peak_gb: rep.peak_gb,
                peak_activation_gb: rep.ranks[rep.peak_rank].peak_activation_gb,
            });
        }
    }

    // Arm 4: fit frontier.
    let queries: Vec<FrontierQuery> =
        p.frontier_gpus.iter().map(|&gpus| FrontierQuery { gpus, spec: p.spec }).collect();
    let frontier = frontier_sweep(&cfg, &MemPlan::deepseek_v3_production(), &queries);

    MemTimelineReport { analytic_max_rel_err, plans, attention, frontier, chunk_events }
}

/// Render.
#[must_use]
pub fn render() -> Table {
    render_report(&run())
}

/// Render an already-computed report (the instrumented CLI path reuses
/// the run instead of walking twice).
#[must_use]
pub fn render_report(r: &MemTimelineReport) -> Table {
    let mut t = Table::new(
        "§2.1: training memory timeline — schedule-resolved peaks, MLA vs MHA, fit frontier",
        &["arm", "detail", "outcome"],
    );
    t.row(&[
        "validation".into(),
        "sim vs closed form (1F1B)".into(),
        format!("max rel err {:.2e} across ranks × categories", r.analytic_max_rel_err),
    ]);
    for p in &r.plans {
        t.row(&[
            "plan".into(),
            p.label.clone(),
            format!(
                "peak {} GB @ rank {} (act {}, floor {}), step {} s{}, fits 80 GB: {}",
                fmt(p.peak_gb, 1),
                p.peak_rank,
                fmt(p.peak_activation_gb, 1),
                fmt(p.floor_gb, 1),
                fmt(p.step_time_s, 2),
                if p.offload_penalty_s > 0.0 {
                    format!(" (offload +{} ms)", fmt(p.offload_penalty_s * 1e3, 2))
                } else {
                    String::new()
                },
                p.fits
            ),
        ]);
    }
    for a in &r.attention {
        t.row(&[
            "attention".into(),
            format!("{} / {} recompute", a.attention, a.recompute),
            format!("peak {} GB (act {} GB)", fmt(a.peak_gb, 1), fmt(a.peak_activation_gb, 1)),
        ]);
    }
    for f in &r.frontier {
        t.row(&[
            "frontier".into(),
            format!("{} GPUs (ZeRO width {})", f.gpus, f.zero_dp),
            if f.max_layers == 0 {
                "cannot host the PP16 grid".into()
            } else {
                format!(
                    "max {} layers ≈ {} B params, peak {} GB",
                    f.max_layers,
                    fmt(f.params_b, 0),
                    fmt(f.peak_gb, 1)
                )
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_is_inside_the_acceptance_tolerance() {
        let r = run();
        assert!(r.analytic_max_rel_err < 0.05, "{}", r.analytic_max_rel_err);
    }

    #[test]
    fn production_fits_naive_does_not() {
        let r = run();
        let get =
            |needle: &str| r.plans.iter().find(|p| p.label.contains(needle)).expect("arm present");
        assert!(get("production").fits, "production peak {}", get("production").peak_gb);
        assert!(!get("naive").fits, "naive peak {}", get("naive").peak_gb);
        assert!(get("min-memory").fits);
    }

    #[test]
    fn min_memory_pays_time_for_bytes() {
        let r = run();
        let prod = r.plans.iter().find(|p| p.label.contains("production")).expect("arm");
        let min = r.plans.iter().find(|p| p.label.contains("min-memory")).expect("arm");
        assert!(min.peak_gb < prod.peak_gb);
        assert!(min.step_time_s > prod.step_time_s);
        assert!(min.offload_penalty_s > 0.0);
        assert!(min.recompute_overhead_frac > prod.recompute_overhead_frac);
    }

    #[test]
    fn frontier_includes_the_production_point() {
        let r = run();
        let prod = r.frontier.iter().find(|f| f.gpus == 2048).expect("2048-GPU row");
        assert!(prod.max_layers >= 61, "{}", prod.max_layers);
    }

    #[test]
    fn selective_recompute_cuts_both_attention_variants() {
        let r = run();
        let peak = |attn: &str, rc: &str| {
            r.attention
                .iter()
                .find(|a| a.attention == attn && a.recompute == rc)
                .expect("row")
                .peak_activation_gb
        };
        assert!(peak("MLA", "selective") < peak("MLA", "none"));
        assert!(peak("MHA", "selective") < peak("MHA", "none"));
    }

    #[test]
    fn render_covers_every_arm() {
        let r = run();
        let t = render_report(&r);
        assert_eq!(t.rows.len(), 1 + r.plans.len() + r.attention.len() + r.frontier.len());
    }

    #[test]
    fn instrumented_run_reproduces_plain_report_with_memory_trace() {
        let mut rec = Recorder::new();
        let instrumented = run_instrumented(&mut rec);
        assert_eq!(
            serde_json::to_string(&instrumented).unwrap(),
            serde_json::to_string(&run()).unwrap(),
            "telemetry must not perturb the walk"
        );
        assert!(instrumented.chunk_events > 0);
        let events = rec.events();
        assert!(events.iter().any(|e| e.ph == "X" && e.name.starts_with('F')));
        assert!(events.iter().any(|e| e.ph == "C" && e.name == "total_gb"));
    }
}
