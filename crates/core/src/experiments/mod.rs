//! One runner per table/figure of the paper plus the in-text analyses.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`table1`] | Table 1 — KV cache per token |
//! | [`table2`] | Table 2 — training GFLOPs per token |
//! | [`table3`] | Table 3 — network topology cost comparison |
//! | [`table4`] | Table 4 — MPFT vs MRFT training metrics |
//! | [`table5`] | Table 5 — 64B end-to-end latency |
//! | [`fig5`] | Figure 5 — all-to-all bandwidth, 32–128 GPUs |
//! | [`fig6`] | Figure 6 — all-to-all latency vs message size |
//! | [`fig7`] | Figure 7 — DeepEP dispatch/combine throughput |
//! | [`fig8`] | Figure 8 — AllGather/ReduceScatter vs routing policy |
//! | [`speed_limits`] | §2.3.2 — EP inference speed limits |
//! | [`mtp`] | §2.3.3 — multi-token-prediction speedup |
//! | [`fp8_gemm`] | §3.1 — FP8 accumulation / quantization error |
//! | [`logfmt`] | §3.2 — LogFMT vs FP8/BF16 quality |
//! | [`fp8_training`] | §2.4 — FP8 vs BF16 training accuracy |
//! | [`node_limited`] | §4.3 — node-limited routing IB traffic |
//! | [`local_deploy`] | §2.2.2 — local deployment TPS |
//! | [`robustness`] | §5.1.1/§6.1 — plane failures & SDC detection |
//! | [`fault_drill`] | §5.1.1/§6.1 — seeded fault-injection drill |
//! | [`net_chaos`] | §5.1.1 — link chaos: reroute policies per fabric |
//! | [`mem_timeline`] | §2.1 — training memory timeline & fit frontier |
//! | [`overload`] | §2.3 — overload-robust serving: admission, ladder, autoscale |
//! | [`resilience`] | §6.1 — fleet-scale resilience: tiers, spares, elastic, SDC |
//! | [`future_hardware`] | §4.4/§4.5/§6.4/§6.5 — recommendation payoffs |
//! | [`serving`] | §2.3 — request-level serving simulation |
//! | [`lint`] | repo invariants — determinism / panic-freedom / vendor policy |

pub mod fault_drill;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fp8_gemm;
pub mod fp8_training;
pub mod future_hardware;
pub mod lint;
pub mod local_deploy;
pub mod logfmt;
pub mod mem_timeline;
pub mod mtp;
pub mod net_chaos;
pub mod node_limited;
pub mod overload;
pub mod resilience;
pub mod robustness;
pub mod serving;
pub mod speed_limits;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
