//! §2.3.3: multi-token prediction speedup across acceptance rates.

use crate::report::{fmt, Table};
use dsv3_model::mtp::{expected_tokens_per_step, simulate, tps_speedup};
use serde::{Deserialize, Serialize};

/// One acceptance-rate point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Second-token acceptance rate.
    pub acceptance: f64,
    /// Analytic tokens per step.
    pub tokens_per_step: f64,
    /// Monte-Carlo tokens per step.
    pub simulated_tokens_per_step: f64,
    /// TPS speedup (2% verification overhead).
    pub speedup: f64,
}

/// Sweep the paper's 80–90% band (plus margins).
#[must_use]
pub fn run() -> Vec<Row> {
    [0.70, 0.80, 0.85, 0.90, 0.95]
        .into_iter()
        .map(|p| Row {
            acceptance: p,
            tokens_per_step: expected_tokens_per_step(p, 1),
            simulated_tokens_per_step: simulate(p, 1, 100_000, 42).tokens_per_step,
            speedup: tps_speedup(p, 1, 0.02),
        })
        .collect()
}

/// Render.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "§2.3.3: MTP speculative decoding speedup (1 module)",
        &["acceptance", "tokens/step", "simulated", "TPS speedup"],
    );
    for r in run() {
        t.row(&[
            fmt(r.acceptance, 2),
            fmt(r.tokens_per_step, 3),
            fmt(r.simulated_tokens_per_step, 3),
            format!("{}x", fmt(r.speedup, 2)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn paper_band_is_1_8x() {
        for r in super::run() {
            if (0.8..=0.9).contains(&r.acceptance) {
                assert!((1.7..2.0).contains(&r.speedup), "{}", r.speedup);
            }
            assert!((r.tokens_per_step - r.simulated_tokens_per_step).abs() < 0.02);
        }
    }
}
