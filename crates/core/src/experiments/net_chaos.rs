//! §5.1.1 dynamic: link-level chaos across candidate fabrics.
//!
//! Where [`super::fault_drill`] injects *plane*-granular faults into the
//! serving stack, this experiment attacks individual switch-to-switch
//! links and watches flows route around the damage. Each candidate
//! fabric from Table 3 — a two-plane two-layer fat-tree (MPFT), a
//! three-layer fat-tree, a SlimFly, and a Dragonfly — is materialized as
//! a directed-link [`dsv3_netsim::ChaosSim`] carrying a seeded host
//! permutation of bulk flows. A seeded fraction of trunk links then
//! fails mid-transfer, and the three [`ReroutePolicy`] arms race:
//!
//! * **Stall** (no multipathing): recovery is bounded below by the
//!   repair time — completion degrades by orders of magnitude.
//! * **StaticRehash** (oblivious ECMP re-pick): re-picks can land on
//!   other dead paths, burning the retry budget; a nonzero fraction of
//!   flows strands (§5.1.1's argument against static routing).
//! * **Adaptive**: failing over among healthy precomputed paths bounds
//!   the completion-time degradation to roughly the failed fraction of
//!   capacity on the multi-plane fabric.
//!
//! The low-diameter direct networks tell their own story: a
//! Hoffman–Singleton SlimFly has a *unique* minimal path between most
//! switch pairs (girth 5), so minimal-routing adaptivity has nothing to
//! adapt with — matching the paper's note that such fabrics lean on
//! non-minimal adaptive routing.

use crate::report::{fmt, Table};
use dsv3_netsim::chaos::{
    ChaosConfig, ChaosReport, LinkFlap, LinkSchedule, ReroutePolicy, RetransmitConfig,
};
use dsv3_netsim::{ChaosSim, FlowSim, Link};
use dsv3_telemetry::Recorder;
use dsv3_topology::dragonfly::Dragonfly;
use dsv3_topology::fattree::{LeafSpine, ThreeLayerFatTree};
use dsv3_topology::slimfly::SlimFly;
use dsv3_topology::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sweep parameters (serialized into the run manifest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetChaosParams {
    /// Hosts sampled per fabric (one flow out, one flow in, each).
    pub sample_hosts: usize,
    /// Bytes per flow.
    pub flow_bytes: f64,
    /// NIC (host↔switch) capacity, GB/s.
    pub nic_gbps: f64,
    /// Trunk (switch↔switch) capacity, GB/s.
    pub trunk_gbps: f64,
    /// Fixed path latency per flow, µs.
    pub latency_us: f64,
    /// Instant at which the chosen trunks fail, µs.
    pub fail_at_us: f64,
    /// Trunk repair time, µs (far beyond the fault-free makespan).
    pub repair_us: f64,
    /// Failed fractions of the trunk population swept per policy.
    pub fail_fractions: Vec<f64>,
    /// Retry budget before a flow strands.
    pub max_retries: u32,
    /// Equal-cost paths enumerated per plane per host pair.
    pub max_paths_per_plane: usize,
}

impl Default for NetChaosParams {
    fn default() -> Self {
        Self {
            sample_hosts: 16,
            flow_bytes: 25e6,
            nic_gbps: 40.0,
            trunk_gbps: 100.0,
            latency_us: 2.0,
            fail_at_us: 50.0,
            repair_us: 5_000.0,
            fail_fractions: vec![0.125, 0.25],
            max_retries: 2,
            max_paths_per_plane: 4,
        }
    }
}

/// One (fabric, policy, failure-fraction) arm of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetChaosRow {
    /// Fabric name.
    pub fabric: String,
    /// Reroute policy label.
    pub policy: String,
    /// Fraction of trunk links failed.
    pub fail_fraction: f64,
    /// Undirected trunk links failed (both directions die together).
    pub failed_trunks: usize,
    /// Latest completion among finished flows, µs.
    pub makespan_us: f64,
    /// `makespan / healthy makespan` of the same fabric.
    pub slowdown: f64,
    /// Flows that delivered all bytes.
    pub completed: usize,
    /// Flows stranded by retry exhaustion.
    pub stranded: usize,
    /// Total path changes.
    pub reroutes: u64,
    /// Total failed attempts.
    pub retries: u64,
    /// Bytes lost on failed links and re-sent, MB.
    pub retransmitted_mb: f64,
    /// Per-flow byte conservation (`sent ≈ delivered + lost`).
    pub bytes_balanced: bool,
}

/// Static facts about one materialized fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricSummary {
    /// Fabric name.
    pub fabric: String,
    /// Independent planes.
    pub planes: usize,
    /// Directed links (trunks + NICs).
    pub links: usize,
    /// Undirected trunk links (the failure population).
    pub trunks: usize,
    /// Flows simulated.
    pub flows: usize,
    /// Fault-free makespan, µs.
    pub healthy_makespan_us: f64,
    /// Whether the fault-free chaos run is bit-identical to
    /// [`FlowSim::run`] over each flow's home path.
    pub healthy_matches_flowsim: bool,
}

/// Everything the sweep measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetChaosReport {
    /// Seed of the traffic permutation and failure draw.
    pub seed: u64,
    /// Per-fabric baselines.
    pub fabrics: Vec<FabricSummary>,
    /// Sweep rows, fabric-major then policy then fraction.
    pub rows: Vec<NetChaosRow>,
}

/// One plane of a fabric: its switch graph plus directed-link lookup
/// tables into the shared link vector.
struct Plane {
    graph: Graph,
    nic_up: BTreeMap<usize, usize>,
    nic_down: BTreeMap<usize, usize>,
    edge: BTreeMap<(usize, usize), usize>,
}

/// A materialized fabric: every switch edge becomes two directed trunk
/// links; every sampled host gets an up/down NIC pair per plane.
struct Fabric {
    name: &'static str,
    links: Vec<Link>,
    /// (forward, reverse) directed ids per undirected trunk.
    trunk_pairs: Vec<(usize, usize)>,
    hosts: Vec<usize>,
    planes: Vec<Plane>,
}

impl Fabric {
    fn build(name: &'static str, graphs: Vec<Graph>, p: &NetChaosParams) -> Self {
        let total = graphs[0].endpoints();
        assert!(graphs.iter().all(|g| g.endpoints() == total), "planes must be congruent");
        let n = p.sample_hosts.min(total);
        // Evenly spaced sample: strictly increasing (distinct) since
        // total >= n makes consecutive floors differ by >= 1.
        let hosts: Vec<usize> = (0..n).map(|i| i * total / n).collect();
        let mut links = Vec::new();
        let mut trunk_pairs = Vec::new();
        let mut planes = Vec::new();
        for graph in graphs {
            let mut edge = BTreeMap::new();
            for u in 0..graph.switches() {
                for &v in graph.neighbors(u) {
                    if u < v {
                        let fwd = links.len();
                        links.push(Link { capacity_gbps: p.trunk_gbps });
                        let rev = links.len();
                        links.push(Link { capacity_gbps: p.trunk_gbps });
                        edge.insert((u, v), fwd);
                        edge.insert((v, u), rev);
                        trunk_pairs.push((fwd, rev));
                    }
                }
            }
            let mut nic_up = BTreeMap::new();
            let mut nic_down = BTreeMap::new();
            for &h in &hosts {
                links.push(Link { capacity_gbps: p.nic_gbps });
                nic_up.insert(h, links.len() - 1);
                links.push(Link { capacity_gbps: p.nic_gbps });
                nic_down.insert(h, links.len() - 1);
            }
            planes.push(Plane { graph, nic_up, nic_down, edge });
        }
        Self { name, links, trunk_pairs, hosts, planes }
    }

    /// ECMP path set from host `a` to host `b`: per plane (starting at
    /// `home_plane`), every enumerated shortest switch route, bracketed
    /// by the hosts' NICs on that plane.
    fn path_set(
        &self,
        a: usize,
        b: usize,
        home_plane: usize,
        max_per_plane: usize,
    ) -> Vec<Vec<usize>> {
        let mut paths = Vec::new();
        for k in 0..self.planes.len() {
            let plane = &self.planes[(home_plane + k) % self.planes.len()];
            let (sa, sb) = (plane.graph.endpoint_switch(a), plane.graph.endpoint_switch(b));
            for sw in plane.graph.shortest_paths(sa, sb, max_per_plane) {
                let mut path = vec![plane.nic_up[&a]];
                for w in sw.windows(2) {
                    path.push(plane.edge[&(w[0], w[1])]);
                }
                path.push(plane.nic_down[&b]);
                paths.push(path);
            }
        }
        paths
    }

    /// Seeded ring traffic: shuffle the sampled hosts, then each sends to
    /// its successor — every host sources one flow and sinks one flow.
    fn traffic(&self, seed: u64) -> Vec<(usize, usize)> {
        let mut order = self.hosts.clone();
        order.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x7065_726d)); // "perm"
        (0..order.len()).map(|i| (order[i], order[(i + 1) % order.len()])).collect()
    }

    fn chaos_sim(&self, traffic: &[(usize, usize)], p: &NetChaosParams) -> ChaosSim {
        let mut sim = ChaosSim::new(self.links.clone());
        for (i, &(a, b)) in traffic.iter().enumerate() {
            let paths = self.path_set(a, b, i % self.planes.len(), p.max_paths_per_plane);
            sim.add_flow(paths, p.flow_bytes, 0.0, p.latency_us);
        }
        sim
    }

    /// Fail a seeded `fraction` of undirected trunks (both directions) at
    /// `fail_at_us`, each repairing after `repair_us`.
    fn trunk_failures(
        &self,
        fraction: f64,
        seed: u64,
        p: &NetChaosParams,
    ) -> (LinkSchedule, usize) {
        let mut idx: Vec<usize> = (0..self.trunk_pairs.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x6564_6765)); // "edge"
        let n = ((fraction * self.trunk_pairs.len() as f64).round() as usize)
            .min(self.trunk_pairs.len());
        let mut flaps = Vec::new();
        for &i in idx.iter().take(n) {
            let (f, r) = self.trunk_pairs[i];
            for link in [f, r] {
                flaps.push(LinkFlap { link, down_at_us: p.fail_at_us, repair_us: p.repair_us });
            }
        }
        flaps.sort_by_key(|f| f.link);
        (LinkSchedule { flaps }, n)
    }
}

/// The four candidate fabrics, sized to stay fast in debug builds while
/// keeping the structural contrasts that drive the result.
fn fabrics(p: &NetChaosParams) -> Vec<Fabric> {
    let ls = LeafSpine::from_radix(8);
    vec![
        Fabric::build("mpft2", vec![ls.to_graph(), ls.to_graph()], p),
        Fabric::build("ft3", vec![ThreeLayerFatTree::new(4).to_graph()], p),
        Fabric::build("slimfly", vec![SlimFly::new(5).build()], p),
        Fabric::build("dragonfly", vec![Dragonfly { p: 1, a: 4, h: 2, groups: 9 }.build()], p),
    ]
}

fn policy_label(policy: ReroutePolicy) -> &'static str {
    match policy {
        ReroutePolicy::Stall => "stall",
        ReroutePolicy::StaticRehash { .. } => "static-rehash",
        ReroutePolicy::Adaptive => "adaptive",
    }
}

/// The sweep's default seed.
#[must_use]
pub fn seed() -> u64 {
    20_250_806
}

/// Serialized configuration, for the run manifest.
#[must_use]
pub fn config_json() -> String {
    crate::report::json_or_null(&NetChaosParams::default())
}

/// Run the sweep at the default seed.
#[must_use]
pub fn run() -> NetChaosReport {
    run_seeded(seed())
}

/// [`run`] with telemetry: every arm traces into `rec` under
/// `{fabric}.{policy}.f{percent}` scopes (fail/heal instants, per-flow
/// spans, reroute/retransmit counters).
#[must_use]
pub fn run_instrumented(rec: &mut Recorder) -> NetChaosReport {
    run_seeded_traced(seed(), rec)
}

/// Run at an explicit seed (equal seeds → identical reports).
#[must_use]
pub fn run_seeded(seed: u64) -> NetChaosReport {
    run_seeded_traced(seed, &mut Recorder::disabled())
}

/// [`run_seeded`] with telemetry into `rec`.
#[must_use]
pub fn run_seeded_traced(seed: u64, rec: &mut Recorder) -> NetChaosReport {
    let p = NetChaosParams::default();
    let policies =
        [ReroutePolicy::Stall, ReroutePolicy::StaticRehash { seed }, ReroutePolicy::Adaptive];
    let mut fabric_rows = Vec::new();
    let mut rows = Vec::new();
    for fabric in fabrics(&p) {
        let traffic = fabric.traffic(seed);
        let sim = fabric.chaos_sim(&traffic, &p);
        let expected = vec![p.flow_bytes; traffic.len()];

        // Fault-free baseline under Stall: without failures it never
        // leaves the home path, which is exactly what FlowSim simulates
        // (Adaptive would already load-balance across the path set).
        let healthy_cfg = ChaosConfig { policy: ReroutePolicy::Stall, ..ChaosConfig::default() };
        let healthy = sim.run_traced(rec, &format!("{}.healthy", fabric.name), &healthy_cfg);
        let healthy_makespan = healthy.makespan_us;
        // Pin the fault-free path to the pre-chaos simulator: FlowSim over
        // each flow's home path must agree bit-for-bit.
        let mut flow_sim = FlowSim::new(fabric.links.clone());
        for (i, &(a, b)) in traffic.iter().enumerate() {
            let home = fabric.path_set(a, b, i % fabric.planes.len(), p.max_paths_per_plane);
            flow_sim.add_flow(home[0].clone(), p.flow_bytes, 0.0, p.latency_us);
        }
        let plain = flow_sim.run();
        let healthy_matches_flowsim = healthy.to_sim_report().is_some_and(|r| {
            r.makespan_us.to_bits() == plain.makespan_us.to_bits()
                && r.finish_us.len() == plain.finish_us.len()
                && r.finish_us.iter().zip(&plain.finish_us).all(|(a, b)| a.to_bits() == b.to_bits())
        });
        fabric_rows.push(FabricSummary {
            fabric: fabric.name.to_string(),
            planes: fabric.planes.len(),
            links: fabric.links.len(),
            trunks: fabric.trunk_pairs.len(),
            flows: traffic.len(),
            healthy_makespan_us: healthy_makespan,
            healthy_matches_flowsim,
        });

        for &policy in &policies {
            for &fraction in &p.fail_fractions {
                let (schedule, failed_trunks) = fabric.trunk_failures(fraction, seed, &p);
                let cfg = ChaosConfig {
                    schedule,
                    policy,
                    retransmit: RetransmitConfig {
                        max_retries: p.max_retries,
                        ..RetransmitConfig::default()
                    },
                    deadline_us: None,
                };
                let scope =
                    format!("{}.{}.f{:02.0}", fabric.name, policy_label(policy), fraction * 100.0);
                let r = sim.run_traced(rec, &scope, &cfg);
                rows.push(row(
                    &fabric,
                    policy,
                    fraction,
                    failed_trunks,
                    &r,
                    healthy_makespan,
                    &expected,
                ));
            }
        }
    }
    NetChaosReport { seed, fabrics: fabric_rows, rows }
}

fn row(
    fabric: &Fabric,
    policy: ReroutePolicy,
    fraction: f64,
    failed_trunks: usize,
    r: &ChaosReport,
    healthy_makespan: f64,
    expected: &[f64],
) -> NetChaosRow {
    NetChaosRow {
        fabric: fabric.name.to_string(),
        policy: policy_label(policy).to_string(),
        fail_fraction: fraction,
        failed_trunks,
        makespan_us: r.makespan_us,
        slowdown: r.makespan_us / healthy_makespan,
        completed: r.completed,
        stranded: r.stranded,
        reroutes: r.total_reroutes,
        retries: r.total_retries,
        retransmitted_mb: r.retransmitted_bytes / 1e6,
        bytes_balanced: r.bytes_balanced(expected, 1e-5),
    }
}

/// Render.
#[must_use]
pub fn render() -> Table {
    render_report(&run())
}

/// Render an already-computed report (the instrumented CLI path reuses
/// the run instead of sweeping twice).
#[must_use]
pub fn render_report(r: &NetChaosReport) -> Table {
    let mut t = Table::new(
        "§5.1.1: link chaos — reroute policies vs failed trunk fraction per fabric",
        &["fabric", "policy", "failed", "outcome"],
    );
    for f in &r.fabrics {
        t.row(&[
            f.fabric.clone(),
            "(healthy)".into(),
            "0".into(),
            format!(
                "{} flows over {} links, makespan {} µs, FlowSim-identical: {}",
                f.flows,
                f.links,
                fmt(f.healthy_makespan_us, 1),
                f.healthy_matches_flowsim
            ),
        ]);
    }
    for row in &r.rows {
        t.row(&[
            row.fabric.clone(),
            row.policy.clone(),
            format!("{} trunks ({}%)", row.failed_trunks, fmt(row.fail_fraction * 100.0, 1)),
            format!(
                "slowdown {}×, stranded {}, reroutes {}, resent {} MB, balanced {}",
                fmt(row.slowdown, 2),
                row.stranded,
                row.reroutes,
                fmt(row.retransmitted_mb, 1),
                row.bytes_balanced
            ),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_runs_are_bit_identical_to_flowsim() {
        let r = run();
        assert_eq!(r.fabrics.len(), 4);
        for f in &r.fabrics {
            assert!(f.healthy_matches_flowsim, "{}: chaos(∅) must equal FlowSim", f.fabric);
        }
    }

    #[test]
    fn adaptive_on_multiplane_bounds_degradation_to_failed_fraction() {
        let r = run();
        for row in r.rows.iter().filter(|w| w.fabric == "mpft2" && w.policy == "adaptive") {
            let bound = 1.0 / (1.0 - row.fail_fraction);
            assert!(
                row.slowdown <= bound + 0.35,
                "adaptive mpft2 f={}: slowdown {} vs bound {}",
                row.fail_fraction,
                row.slowdown,
                bound
            );
            assert_eq!(row.stranded, 0, "adaptive must not strand on the multi-plane fabric");
            assert!(row.reroutes > 0, "failures must actually hit flows");
        }
    }

    #[test]
    fn static_rehash_strands_flows_where_adaptive_does_not() {
        let r = run();
        let strand_total: usize =
            r.rows.iter().filter(|w| w.policy == "static-rehash").map(|w| w.stranded).sum();
        assert!(strand_total > 0, "oblivious rehash must strand somewhere in the sweep");
        let mpft_static_max = r
            .rows
            .iter()
            .filter(|w| w.fabric == "mpft2" && w.policy == "static-rehash")
            .map(|w| w.stranded)
            .max()
            .unwrap_or(0);
        let mpft_adaptive_max = r
            .rows
            .iter()
            .filter(|w| w.fabric == "mpft2" && w.policy == "adaptive")
            .map(|w| w.stranded)
            .max()
            .unwrap_or(0);
        assert!(
            mpft_static_max > mpft_adaptive_max,
            "same fabric, same failures: static {mpft_static_max} vs adaptive {mpft_adaptive_max}"
        );
    }

    #[test]
    fn stall_pays_the_repair_time() {
        let r = run();
        let p = NetChaosParams::default();
        for row in r.rows.iter().filter(|w| w.fabric == "mpft2" && w.policy == "stall") {
            assert!(
                row.makespan_us > p.repair_us,
                "stalled flows cannot finish before repair: {} µs",
                row.makespan_us
            );
            assert_eq!(row.stranded, 0, "stall waits instead of stranding (no deadline)");
        }
    }

    #[test]
    fn every_arm_conserves_bytes() {
        let r = run();
        assert!(!r.rows.is_empty());
        for row in &r.rows {
            assert!(row.bytes_balanced, "{} {} f={}", row.fabric, row.policy, row.fail_fraction);
            assert_eq!(row.completed + row.stranded, 16, "every flow either completes or strands");
        }
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let a = run_seeded(7);
        let b = run_seeded(7);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "byte-reproducible per seed"
        );
    }

    #[test]
    fn render_covers_every_fabric_and_arm() {
        let r = run();
        let t = render_report(&r);
        assert_eq!(t.rows.len(), r.fabrics.len() + r.rows.len());
        for name in ["mpft2", "ft3", "slimfly", "dragonfly"] {
            assert!(t.rows.iter().any(|row| row[0] == name));
        }
    }

    #[test]
    fn instrumented_sweep_reproduces_plain_report_with_chaos_trace() {
        let mut rec = Recorder::new();
        let instrumented = run_instrumented(&mut rec);
        assert_eq!(
            serde_json::to_string(&instrumented).unwrap(),
            serde_json::to_string(&run()).unwrap(),
            "telemetry must not perturb the sweep"
        );
        let events = rec.events();
        assert!(events.iter().any(|e| e.ph == "i" && e.name.starts_with("fail link")));
        assert!(events.iter().any(|e| e.ph == "i" && e.name.starts_with("heal link")));
        assert!(rec
            .counters()
            .keys()
            .any(|k| k.starts_with("mpft2.adaptive.") && k.ends_with(".chaos.reroutes")));
    }
}
