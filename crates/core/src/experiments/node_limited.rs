//! §4.3: node-limited routing — IB traffic scales with M, not top-k.

use crate::report::{fmt, Table};
use dsv3_model::moe::{route, routing_stats, MoeGateConfig};
use dsv3_numerics::Matrix;
use serde::{Deserialize, Serialize};

/// One node-limit setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Maximum nodes (groups) per token.
    pub max_nodes: usize,
    /// Observed mean nodes touched.
    pub mean_nodes_touched: f64,
    /// Relative per-token IB time (`M·t`, normalized to the unrestricted
    /// top-k baseline of ~`top_k·t` with dedup off).
    pub ib_time_vs_no_dedup: f64,
    /// Observed expert-load imbalance (max/ideal).
    pub load_imbalance: f64,
}

/// Sweep the node limit on the V3 gate shape (256 experts / 8 groups /
/// top-8) with random sigmoid affinities.
#[must_use]
pub fn run(tokens: usize) -> Vec<Row> {
    (1..=8usize)
        .map(|m| {
            let cfg = MoeGateConfig { experts: 256, groups: 8, top_groups: m, top_k: 8 };
            let routings: Vec<_> = (0..tokens)
                .map(|i| {
                    let scores: Vec<f32> = Matrix::random(1, 256, 1.0, 5000 + i as u64)
                        .data
                        .iter()
                        .map(|v| 1.0 / (1.0 + (-v).exp()))
                        .collect();
                    route(&scores, None, &cfg)
                })
                .collect();
            let st = routing_stats(&routings, &cfg);
            Row {
                max_nodes: m,
                mean_nodes_touched: st.mean_nodes_touched,
                // Dedup sends one copy per touched node; without dedup each
                // of the top-8 experts costs one copy.
                ib_time_vs_no_dedup: st.mean_nodes_touched / 8.0,
                load_imbalance: st.load_imbalance,
            }
        })
        .collect()
}

/// Render.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "§4.3: node-limited routing — deduplicated IB traffic",
        &["node limit M", "mean nodes touched", "IB time vs no-dedup", "load imbalance"],
    );
    for r in run(2000) {
        t.row(&[
            r.max_nodes.to_string(),
            fmt(r.mean_nodes_touched, 2),
            format!("{}x", fmt(r.ib_time_vs_no_dedup, 2)),
            fmt(r.load_imbalance, 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn traffic_scales_with_m() {
        let rows = super::run(500);
        for r in &rows {
            assert!(r.mean_nodes_touched <= r.max_nodes as f64 + 1e-9);
        }
        // V3's production point (M=4) halves IB traffic vs no dedup.
        let m4 = &rows[3];
        assert!(m4.ib_time_vs_no_dedup <= 0.5 + 1e-9, "{}", m4.ib_time_vs_no_dedup);
        // Monotone growth in traffic with the limit.
        for w in rows.windows(2) {
            assert!(w[1].mean_nodes_touched >= w[0].mean_nodes_touched - 0.05);
        }
    }
}
