//! Overload-robust serving: admission control, the degradation ladder,
//! closed-loop clients, and reactive autoscaling under load sweeps.
//!
//! The experiment reproduces the failure mode the paper's serving
//! sections circle around without naming: *metastable overload*. A
//! closed-loop client population with timeouts and retries turns a
//! transient 2× load spike into a self-sustaining retry storm — timed-out
//! attempts leave zombie work behind, their retries re-prefill from
//! scratch, and the system stays pinned far below its healthy goodput
//! long after the spike has ended. Four policy arms then defeat it
//! incrementally:
//!
//! 1. **none** — closed-loop clients only (jitter-free backoff, the
//!    worst case): reproduces the goodput cliff past 1× load and the
//!    post-spike metastable plateau.
//! 2. **shed** — bounded admission queue, token-bucket rate limiting,
//!    and deadline-aware shedding (reject when predicted TTFT blows the
//!    SLO): the cliff flattens into a plateau at admission capacity.
//! 3. **ladder** — adds the graceful-degradation ladder (MTP off →
//!    batch/context caps → priority shedding) with dwell hysteresis.
//! 4. **ladder+autoscale** — adds reactive pool scaling with
//!    provisioning lag, so sustained overload buys real capacity while
//!    admission holds the line during the lag.
//!
//! A separate arm drives a crash-looping replica through the autoscaler's
//! circuit breaker. Capacity (the 1× anchor) is calibrated empirically
//! and pinned by test.

use crate::report::{fmt, Table};
use dsv3_faults::{Backoff, FaultEvent, FaultKind, FaultPlan, RecoveryPolicy};
use dsv3_serving::{
    run_overload, run_overload_traced, AdmissionConfig, ArrivalProcess, AutoscaleConfig,
    ClientConfig, GoodputWindow, LadderConfig, OverloadConfig, OverloadServingReport, Phase,
    RateLimitConfig, RouterPolicy, ServingSimConfig,
};
use dsv3_telemetry::Recorder;
use dsv3_units::s_to_ms;
use serde::{Deserialize, Serialize};

/// Steady-state SLO capacity of the scenario (requests/s): the largest
/// Poisson rate the disaggregated H800 baseline serves with ≥ 95% SLO
/// attainment. Calibrated empirically; `capacity_anchor_is_calibrated`
/// re-measures both sides of the knee so drift fails loudly.
pub const CAPACITY_RPS: f64 = 6.0;

/// Decode replicas every arm partitions work across.
const REPLICAS: usize = 4;

/// Goodput-timeline bucket width (ms).
const WINDOW_MS: f64 = 5_000.0;

/// Load multipliers swept against [`CAPACITY_RPS`].
const LOAD_MULTS: [f64; 6] = [0.5, 1.0, 1.5, 2.0, 3.0, 4.0];

/// Seconds of steady arrivals per sweep point.
const STEADY_S: f64 = 45.0;

/// Spike shape: `PRE_S` at 0.9×, `SPIKE_S` at 2×, then 0.9× again for
/// `POST_S` — the post window is where metastability shows (or doesn't).
const PRE_S: f64 = 30.0;
const SPIKE_S: f64 = 30.0;
const POST_S: f64 = 120.0;

/// The four policy arms, weakest first.
const POLICIES: [&str; 4] = ["none", "shed", "ladder", "ladder+autoscale"];

/// One (policy, load-multiplier) point of the steady-load sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Policy arm name (see [`POLICIES`]).
    pub policy: String,
    /// Offered load as a multiple of [`CAPACITY_RPS`].
    pub load_mult: f64,
    /// Offered arrival rate, requests/s.
    pub offered_rps: f64,
    /// Goodput (completions within SLO per second of simulated time).
    pub goodput_rps: f64,
    /// What a robust policy should hold: `min(mult, 1) ×` the 1× anchor.
    pub target_rps: f64,
    /// Requests completed.
    pub completed: usize,
    /// Requests settled as rejected (shed past the retry budget).
    pub rejected: usize,
    /// Attempts shed by admission control (all shed classes).
    pub shed: usize,
    /// Client-side attempt timeouts.
    pub client_timeouts: usize,
    /// Client retries submitted.
    pub client_retries: usize,
    /// TTFT p99 over completed requests, ms.
    pub ttft_p99_ms: f64,
    /// Deepest degradation rung reached.
    pub max_rung: usize,
    /// Peak live decode replicas (base when autoscale is off).
    pub decode_peak: usize,
    /// Peak live prefill replicas (base when autoscale is off).
    pub prefill_peak: usize,
}

/// One policy arm of the 2×-spike study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikeArm {
    /// Policy arm name.
    pub policy: String,
    /// Mean goodput during the spike itself (rps).
    pub spike_goodput_rps: f64,
    /// Mean goodput over the first post-spike minute (rps) — the
    /// metastable plateau, if the arm has one.
    pub plateau_goodput_rps: f64,
    /// Mean goodput over the second post-spike minute (rps).
    pub recovery_goodput_rps: f64,
    /// Plateau below half the healthy anchor a full minute after the
    /// spike ended: the metastable signature.
    pub metastable: bool,
    /// Second post-spike minute back within 25% of the post-spike
    /// offered load: the arm recovered.
    pub recovered: bool,
    /// Full goodput timeline in [`WINDOW_MS`] buckets.
    pub timeline: Vec<GoodputWindow>,
}

/// The crash-loop circuit-breaker arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakerArm {
    /// Replica ejections the breaker performed.
    pub breaker_ejections: usize,
    /// Requests offered.
    pub requests: usize,
    /// Requests completed.
    pub completed: usize,
    /// Goodput over the arm (rps).
    pub goodput_rps: f64,
}

/// Everything the overload experiment measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadReport {
    /// Workload seed.
    pub seed: u64,
    /// The calibrated 1× anchor (rps).
    pub capacity_rps: f64,
    /// Goodput of the full stack at exactly 1× steady load — the
    /// admission-capacity baseline every robustness claim is scored
    /// against.
    pub baseline_goodput_rps: f64,
    /// The (policy × load) sweep.
    pub sweep: Vec<LoadPoint>,
    /// Policy `none` falls off a cliff past 1×: goodput at ≥ 2× below
    /// half the baseline.
    pub cliff: bool,
    /// `ladder+autoscale` holds ≥ 90% of `target_rps` at every load.
    pub robust: bool,
    /// The 2×-spike arms, one per policy.
    pub spike: Vec<SpikeArm>,
    /// The `none` spike arm shows the metastable plateau.
    pub metastable_reproduced: bool,
    /// The `ladder+autoscale` spike arm recovers post-spike.
    pub defense_recovers: bool,
    /// Crash-loop circuit-breaker arm.
    pub breaker: BreakerArm,
}

fn scenario(arrival: ArrivalProcess, requests: usize) -> ServingSimConfig {
    ServingSimConfig::h800_baseline(
        arrival,
        requests,
        RouterPolicy::Disaggregated { prefill_fraction: 0.25 },
    )
}

fn plan() -> FaultPlan {
    FaultPlan { replicas: REPLICAS, planes: 8, links: 0, events: Vec::new() }
}

fn admission() -> AdmissionConfig {
    AdmissionConfig {
        queue_cap: 256,
        deadline_headroom: 1.0,
        // A coarse storm guard at ~10 rps across 4 replicas — well above
        // capacity on purpose. The deadline predictor does the per-request
        // trimming, which leaves enough station backlog for the ladder's
        // pressure signal to see sustained overload.
        rate_limit: Some(RateLimitConfig { rate_per_s_per_replica: 2.5, burst: 24.0 }),
    }
}

fn autoscale() -> AutoscaleConfig {
    AutoscaleConfig {
        // Prefill is this scenario's bottleneck tier (disaggregated
        // station at 0.25× the unified rate), and the deadline shedder
        // caps the station backlog near the TTFT SLO — so the scale-up
        // trigger must sit well below that ceiling to ever fire.
        prefill_up_backlog_ms: 1_000.0,
        prefill_down_backlog_ms: 100.0,
        ..AutoscaleConfig::reactive(REPLICAS, REPLICAS)
    }
}

/// Build a policy arm's overload config by name.
///
/// # Panics
///
/// Panics on a name outside [`POLICIES`] (internal contract).
fn policy_config(name: &str) -> OverloadConfig {
    let mut ov = OverloadConfig {
        timeline_window_ms: WINDOW_MS,
        priority_classes: 4,
        ..OverloadConfig::disabled()
    };
    match name {
        "none" => {
            // Jitter-free backoff synchronizes the retry waves — the
            // worst-case closed-loop client population.
            ov.clients =
                Some(ClientConfig { backoff: Backoff::default(), ..ClientConfig::default() });
        }
        "shed" => {
            ov.clients = Some(ClientConfig::default());
            ov.admission = Some(admission());
        }
        "ladder" => {
            ov.clients = Some(ClientConfig::default());
            ov.admission = Some(admission());
            ov.ladder = Some(LadderConfig::default());
        }
        "ladder+autoscale" => {
            ov.clients = Some(ClientConfig::default());
            ov.admission = Some(admission());
            ov.ladder = Some(LadderConfig::default());
            ov.autoscale = Some(autoscale());
        }
        // lint:allow(P1) — POLICIES is a private constant; an unknown name is a programming error, not an input
        other => unreachable!("unknown policy arm {other}"),
    }
    ov
}

fn run_arm(
    seed: u64,
    arrival: ArrivalProcess,
    requests: usize,
    ov: &OverloadConfig,
    rec: &mut Recorder,
    scope: &str,
) -> OverloadServingReport {
    let mut cfg = scenario(arrival, requests);
    cfg.workload.seed = seed;
    run_overload_traced(&cfg, &plan(), &RecoveryPolicy::default(), ov, rec, scope)
}

fn shed_total(r: &OverloadServingReport) -> usize {
    r.overload.shed_queue_full
        + r.overload.shed_rate_limited
        + r.overload.shed_deadline
        + r.overload.shed_priority
        + r.overload.shed_context
}

/// Mean goodput (rps) over timeline windows starting in `[from_ms, to_ms)`.
fn window_mean_rps(timeline: &[GoodputWindow], from_ms: f64, to_ms: f64) -> f64 {
    let slice: Vec<&GoodputWindow> =
        timeline.iter().filter(|w| w.start_ms >= from_ms && w.start_ms < to_ms).collect();
    if slice.is_empty() {
        // The run drained before this span: the work is long done, which
        // for a goodput question means full post-drain capacity headroom.
        // Score it as the offered post-spike load so "already finished"
        // never reads as a metastable stall.
        return 0.9 * CAPACITY_RPS;
    }
    slice.iter().map(|w| w.goodput_rps).sum::<f64>() / slice.len() as f64
}

/// Run the experiment at the default seed.
#[must_use]
pub fn run() -> OverloadReport {
    run_seeded(seed())
}

/// The experiment's default seed.
#[must_use]
pub fn seed() -> u64 {
    20_250_808
}

/// Serialized configuration for the run manifest.
#[must_use]
pub fn config_json() -> String {
    let cfg =
        crate::report::json_or_null(&scenario(ArrivalProcess::Poisson { rate_per_s: 1.0 }, 0));
    let full = crate::report::json_or_null(&policy_config("ladder+autoscale"));
    format!("[{cfg},{full}]")
}

/// [`run`] with telemetry: the 1× baseline and the two bookend spike
/// arms (`none`, `ladder+autoscale`) trace into `rec`; the sweep grid
/// stays untraced to keep traces reviewable. Returns the same report as
/// [`run`], enforced by test.
#[must_use]
pub fn run_instrumented(rec: &mut Recorder) -> OverloadReport {
    run_seeded_traced(seed(), rec)
}

/// Run at an explicit seed (equal seeds → identical reports).
#[must_use]
pub fn run_seeded(seed: u64) -> OverloadReport {
    run_seeded_traced(seed, &mut Recorder::disabled())
}

/// [`run_seeded`] with telemetry into `rec`.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_seeded_traced(seed: u64, rec: &mut Recorder) -> OverloadReport {
    // Anchor: the full stack at exactly 1× steady load.
    let anchor_n = (CAPACITY_RPS * STEADY_S) as usize;
    let anchor = run_arm(
        seed,
        ArrivalProcess::Poisson { rate_per_s: CAPACITY_RPS },
        anchor_n,
        &policy_config("ladder+autoscale"),
        rec,
        "baseline-1x",
    );
    let baseline_goodput_rps = anchor.serving.goodput_rps;

    // Steady-load sweep: policy × multiplier.
    let mut sweep = Vec::new();
    for policy in POLICIES {
        let ov = policy_config(policy);
        for (i, &mult) in LOAD_MULTS.iter().enumerate() {
            let rate = mult * CAPACITY_RPS;
            let n = (rate * STEADY_S) as usize;
            let r = run_arm(
                seed.wrapping_add(i as u64),
                ArrivalProcess::Poisson { rate_per_s: rate },
                n,
                &ov,
                &mut Recorder::disabled(),
                "",
            );
            sweep.push(LoadPoint {
                policy: policy.to_string(),
                load_mult: mult,
                offered_rps: rate,
                goodput_rps: r.serving.goodput_rps,
                target_rps: mult.min(1.0) * baseline_goodput_rps,
                completed: r.serving.completed,
                rejected: r.overload.rejected,
                shed: shed_total(&r),
                client_timeouts: r.overload.client_timeouts,
                client_retries: r.overload.client_retries,
                ttft_p99_ms: r.serving.ttft_ms.p99,
                max_rung: r.overload.max_rung,
                decode_peak: r.autoscale.decode_peak.max(REPLICAS),
                prefill_peak: r.autoscale.prefill_peak.max(REPLICAS),
            });
        }
    }

    // Spike study: 0.9× — 2× — 0.9×, one arm per policy.
    let pre = Phase { duration_ms: s_to_ms(PRE_S), rate_per_s: 0.9 * CAPACITY_RPS };
    let spike_ph = Phase { duration_ms: s_to_ms(SPIKE_S), rate_per_s: 2.0 * CAPACITY_RPS };
    let post = Phase { duration_ms: s_to_ms(POST_S), rate_per_s: 0.9 * CAPACITY_RPS };
    let spike_n = ((pre.duration_ms * pre.rate_per_s
        + spike_ph.duration_ms * spike_ph.rate_per_s
        + post.duration_ms * post.rate_per_s)
        / 1_000.0) as usize;
    let spike_end_ms = s_to_ms(PRE_S + SPIKE_S);
    let mut spike = Vec::new();
    for policy in POLICIES {
        let arrival = ArrivalProcess::Phased { phases: vec![pre, spike_ph, post] };
        let traced = policy == "none" || policy == "ladder+autoscale";
        let mut disabled = Recorder::disabled();
        let (arm_rec, scope): (&mut Recorder, String) =
            if traced { (rec, format!("spike-{policy}")) } else { (&mut disabled, String::new()) };
        let r = run_arm(seed, arrival, spike_n, &policy_config(policy), arm_rec, &scope);
        let plateau = window_mean_rps(&r.timeline, spike_end_ms, spike_end_ms + 60_000.0);
        let recovery =
            window_mean_rps(&r.timeline, spike_end_ms + 60_000.0, spike_end_ms + 120_000.0);
        spike.push(SpikeArm {
            policy: policy.to_string(),
            spike_goodput_rps: window_mean_rps(&r.timeline, s_to_ms(PRE_S), spike_end_ms),
            plateau_goodput_rps: plateau,
            recovery_goodput_rps: recovery,
            metastable: plateau < 0.5 * baseline_goodput_rps,
            recovered: recovery >= 0.75 * 0.9 * CAPACITY_RPS,
            timeline: r.timeline,
        });
    }

    // Watchdog control arms, traced only — the report never reads them,
    // so the plain (disabled-recorder) path does identical work and stays
    // byte-for-byte. A bare queue (queue_cap only, no deadline shedder or
    // rate limit) sized so the queue wait hovers right at the client
    // timeout puts the system on the metastable boundary: synchronized
    // (jitter-free) retry waves tip it into a self-sustaining storm,
    // while decorrelated jitter — the only difference between the two
    // arms — spreads the same retries thinly enough to drain. `dsv3
    // audit overload` must fire the metastability detector on the
    // jitter-free arms (`spike-none`, `spike-storm`) and stay silent on
    // `spike-storm-jitter`.
    if rec.is_enabled() {
        for (jitter, arm_scope) in [(false, "spike-storm"), (true, "spike-storm-jitter")] {
            let arrival = ArrivalProcess::Phased { phases: vec![pre, spike_ph, post] };
            let mut ov = OverloadConfig {
                timeline_window_ms: WINDOW_MS,
                priority_classes: 4,
                ..OverloadConfig::disabled()
            };
            ov.admission =
                Some(AdmissionConfig { queue_cap: 27, deadline_headroom: 0.0, rate_limit: None });
            ov.clients = Some(if jitter {
                ClientConfig::default()
            } else {
                ClientConfig { backoff: Backoff::default(), ..ClientConfig::default() }
            });
            let _ = run_arm(seed, arrival, spike_n, &ov, rec, arm_scope);
        }
    }

    // Crash-loop arm: replica 2 dies every 10 s; the breaker ejects it.
    let crash_events: Vec<FaultEvent> = (1..=6)
        .map(|k| FaultEvent {
            at_ms: k as f64 * 10_000.0,
            kind: FaultKind::ReplicaCrash { replica: 2, repair_ms: 2_000.0 },
        })
        .collect();
    let crash_plan = FaultPlan { replicas: REPLICAS, planes: 8, links: 0, events: crash_events };
    let mut crash_cfg = scenario(
        ArrivalProcess::Poisson { rate_per_s: CAPACITY_RPS },
        (CAPACITY_RPS * 70.0) as usize,
    );
    crash_cfg.workload.seed = seed;
    let br = run_overload(
        &crash_cfg,
        &crash_plan,
        &RecoveryPolicy::default(),
        &policy_config("ladder+autoscale"),
    );
    let breaker = BreakerArm {
        breaker_ejections: br.autoscale.breaker_ejections,
        requests: br.serving.requests,
        completed: br.serving.completed,
        goodput_rps: br.serving.goodput_rps,
    };

    let none_cliff = sweep
        .iter()
        .filter(|p| p.policy == "none" && p.load_mult >= 2.0)
        .all(|p| p.goodput_rps < 0.5 * baseline_goodput_rps);
    let robust = sweep
        .iter()
        .filter(|p| p.policy == "ladder+autoscale")
        .all(|p| p.goodput_rps >= 0.9 * p.target_rps);
    let metastable_reproduced = spike.iter().any(|a| a.policy == "none" && a.metastable);
    let defense_recovers =
        spike.iter().any(|a| a.policy == "ladder+autoscale" && a.recovered && !a.metastable);

    OverloadReport {
        seed,
        capacity_rps: CAPACITY_RPS,
        baseline_goodput_rps,
        sweep,
        cliff: none_cliff,
        robust,
        spike,
        metastable_reproduced,
        defense_recovers,
        breaker,
    }
}

/// Render.
#[must_use]
pub fn render() -> Table {
    render_report(&run())
}

/// Render an already-computed report.
#[must_use]
pub fn render_report(r: &OverloadReport) -> Table {
    let mut t = Table::new(
        "overload robustness: admission, degradation ladder, autoscaling vs retry storms",
        &["arm", "setting", "outcome"],
    );
    t.row(&[
        "anchor".into(),
        format!("full stack @ 1.0x ({} rps)", fmt(r.capacity_rps, 1)),
        format!("goodput {} rps (baseline)", fmt(r.baseline_goodput_rps, 2)),
    ]);
    for p in &r.sweep {
        t.row(&[
            format!("sweep {}", p.policy),
            format!("{}x load ({} rps)", fmt(p.load_mult, 1), fmt(p.offered_rps, 1)),
            format!(
                "goodput {} rps (target {}), shed {}, timeouts {}, rung {}, pools d{}/p{}",
                fmt(p.goodput_rps, 2),
                fmt(p.target_rps, 2),
                p.shed,
                p.client_timeouts,
                p.max_rung,
                p.decode_peak,
                p.prefill_peak
            ),
        ]);
    }
    for a in &r.spike {
        t.row(&[
            format!("spike {}", a.policy),
            "0.9x / 2.0x 30s / 0.9x".into(),
            format!(
                "spike {} rps, plateau {} rps, recovery {} rps{}{}",
                fmt(a.spike_goodput_rps, 2),
                fmt(a.plateau_goodput_rps, 2),
                fmt(a.recovery_goodput_rps, 2),
                if a.metastable { " [METASTABLE]" } else { "" },
                if a.recovered { " [recovered]" } else { "" }
            ),
        ]);
    }
    t.row(&[
        "crash-loop breaker".into(),
        "replica 2 dies 6x in 60s".into(),
        format!(
            "{} ejections, {}/{} completed, goodput {} rps",
            r.breaker.breaker_ejections,
            r.breaker.completed,
            r.breaker.requests,
            fmt(r.breaker.goodput_rps, 2)
        ),
    ]);
    t.row(&[
        "verdict".into(),
        "cliff / metastable / robust / recovers".into(),
        format!(
            "{} / {} / {} / {}",
            r.cliff, r.metastable_reproduced, r.robust, r.defense_recovers
        ),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_anchor_is_calibrated() {
        // Below the knee: near-perfect attainment. Above: collapse. If
        // engine changes move the knee, CAPACITY_RPS must move with it.
        let below = dsv3_serving::run(&scenario(
            ArrivalProcess::Poisson { rate_per_s: CAPACITY_RPS },
            (CAPACITY_RPS * STEADY_S) as usize,
        ));
        assert!(
            below.slo_attainment > 0.9,
            "at 1.0x the plain engine must hold the SLO: {}",
            below.slo_attainment
        );
        let above = dsv3_serving::run(&scenario(
            ArrivalProcess::Poisson { rate_per_s: 1.5 * CAPACITY_RPS },
            (1.5 * CAPACITY_RPS * STEADY_S) as usize,
        ));
        assert!(
            above.slo_attainment < 0.5,
            "at 1.5x the plain engine must be past the knee: {}",
            above.slo_attainment
        );
    }

    #[test]
    fn acceptance_cliff_and_metastability_reproduced() {
        let r = run();
        assert!(r.cliff, "policy=none must cliff past 1x: {:#?}", r.sweep);
        assert!(
            r.metastable_reproduced,
            "the none arm must plateau below half baseline a minute after the spike: {:#?}",
            r.spike
        );
    }

    #[test]
    fn acceptance_full_stack_is_robust_and_recovers() {
        let r = run();
        assert!(
            r.robust,
            "ladder+autoscale must hold 90% of target at every load: {:#?}",
            r.sweep.iter().filter(|p| p.policy == "ladder+autoscale").collect::<Vec<_>>()
        );
        assert!(r.defense_recovers, "full stack must recover post-spike: {:#?}", r.spike);
    }

    #[test]
    fn ladder_engages_under_overload_and_breaker_ejects() {
        let r = run();
        assert!(
            r.sweep
                .iter()
                .any(|p| p.policy.starts_with("ladder") && p.load_mult >= 2.0 && p.max_rung >= 1),
            "deep overload must climb the ladder"
        );
        assert!(r.breaker.breaker_ejections >= 1, "crash loop must trip the breaker");
        assert!(
            r.breaker.completed >= r.breaker.requests * 9 / 10,
            "service must survive the crash loop: {:?}",
            r.breaker
        );
    }

    #[test]
    fn autoscale_buys_capacity_at_deep_overload() {
        let r = run();
        let deep = |policy: &str| {
            r.sweep
                .iter()
                .find(|p| p.policy == policy && p.load_mult == 4.0)
                .map(|p| p.goodput_rps)
                .unwrap_or_default()
        };
        assert!(
            deep("ladder+autoscale") > deep("none"),
            "at 4x, the full stack must beat the unprotected arm"
        );
        assert!(
            r.sweep.iter().any(|p| p.policy == "ladder+autoscale"
                && p.load_mult >= 2.0
                && p.prefill_peak > REPLICAS),
            "sustained overload must grow the bottleneck (prefill) pool"
        );
    }

    #[test]
    fn experiment_is_deterministic_per_seed() {
        let a = run_seeded(11);
        let b = run_seeded(11);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "byte-reproducible per seed"
        );
    }

    #[test]
    fn instrumented_run_reproduces_plain_report() {
        let mut rec = Recorder::new();
        let instrumented = run_instrumented(&mut rec);
        assert_eq!(
            serde_json::to_string(&instrumented).unwrap(),
            serde_json::to_string(&run()).unwrap(),
            "telemetry must not perturb the experiment"
        );
        let events = rec.events();
        assert!(
            events.iter().any(|e| e.ph == "i" && e.name.starts_with("shed-")),
            "trace must contain shed decisions"
        );
        assert!(
            events.iter().any(|e| e.ph == "i" && e.name == "client-timeout"),
            "trace must contain client timeouts"
        );
        assert!(
            rec.counters().keys().any(|k| k.starts_with("spike-none.ov_")),
            "overload counters must land in the trace"
        );
    }

    #[test]
    fn render_covers_every_arm() {
        let t = render();
        // anchor + 24 sweep points + 4 spike arms + breaker + verdict.
        assert_eq!(t.rows.len(), 1 + POLICIES.len() * LOAD_MULTS.len() + POLICIES.len() + 2);
        assert!(t.rows.iter().any(|row| row[0] == "verdict"));
    }
}
