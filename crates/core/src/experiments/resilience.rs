//! §6.1's fleet-scale resilience sweep: checkpoint tiers, recovery
//! policies, and SDC rollback from 2k to 100k GPUs.
//!
//! Composes per-component MTBFs ([`dsv3_faults::fleet`]) across fleet
//! sizes, sizes per-rank checkpoints from memtl's schedule-resolved
//! footprint (no hand-picked byte constants), and walks every
//! (fleet, policy) cell through [`dsv3_faults::simulate_resilience`].
//! Three arms:
//!
//! 1. **Validation** — the degenerate cell (one synchronous remote
//!    tier, cold restart, no SDC) against the Young/Daly analytic
//!    goodput, within the same 5% gate `fault_drill` enforces.
//! 2. **Frontier** — goodput / ETTR / wasted-work per policy:
//!    synchronous-single-tier cold restart, tiered cold restart,
//!    tiered + spare pool, tiered + elastic shrink (re-planned via
//!    `dsv3-parallel`), and tiered + spares under SDC with periodic
//!    verification replay.
//! 3. **Headline** — at ≥10k GPUs the tiered + spare-pool policy must
//!    strictly dominate cold-restart-single-tier goodput.

use crate::report::{fmt, Table};
use dsv3_faults::{
    generate_failures, simulate_resilience, simulate_resilience_traced, system_mtbf_s,
    CheckpointBytes, CheckpointStack, ComponentMtbf, FleetSpec, RecoveryKind, ResilienceConfig,
    ResilienceReport, SdcConfig, WasteBreakdown,
};
use dsv3_memtl::{checkpoint_footprint, MemPlan};
use dsv3_model::availability::AvailabilityModel;
use dsv3_model::zoo;
use dsv3_parallel::TrainStepConfig;
use dsv3_telemetry::Recorder;
use dsv3_units::bytes_to_gb;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Sweep parameters (serialized into the run manifest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceSweepParams {
    /// Fleet sizes swept, GPUs.
    pub fleet_gpus: Vec<usize>,
    /// Per-component MTBF table.
    pub mtbf: ComponentMtbf,
    /// Frontier wall-clock horizon, days.
    pub horizon_days: f64,
    /// Per-rank remote-store bandwidth, GB/s.
    pub remote_gbps: f64,
    /// Cold reschedule cost, seconds.
    pub restart_s: f64,
    /// Hardware repair turnaround, seconds.
    pub repair_s: f64,
    /// Spare-node swap-in cost, seconds.
    pub provision_s: f64,
    /// Spare pool size as a fraction of the fleet (floor 4 nodes).
    pub spares_per_gpus: usize,
    /// Elastic re-plan cost, seconds.
    pub replan_s: f64,
    /// GPUs lost per failure (host granularity).
    pub gpus_per_failure: usize,
    /// Operational floor on the checkpoint interval, seconds.
    pub min_interval_s: f64,
    /// Validation-arm horizon, in system MTBFs (enough failures that
    /// the Young/Daly comparison is statistical, not anecdotal).
    pub validation_mtbfs: f64,
    /// Corruption process for the SDC arm.
    pub sdc: SdcConfig,
    /// Timeline seed.
    pub seed: u64,
}

impl Default for ResilienceSweepParams {
    fn default() -> Self {
        Self {
            fleet_gpus: vec![2_048, 16_384, 102_400],
            mtbf: ComponentMtbf::production(),
            horizon_days: 30.0,
            remote_gbps: 2.0,
            restart_s: 180.0,
            repair_s: 6.0 * 3_600.0,
            provision_s: 30.0,
            spares_per_gpus: 512,
            replan_s: 60.0,
            gpus_per_failure: 8,
            min_interval_s: 120.0,
            validation_mtbfs: 1_000.0,
            sdc: SdcConfig {
                mtbf_s: 24.0 * 3_600.0,
                detection_mean_s: 2.0 * 3_600.0,
                verify_every: 20,
                verify_cost_s: 30.0,
            },
            seed: 20_250_808,
        }
    }
}

/// Degenerate-cell agreement with the Young/Daly analytic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Fleet size, GPUs.
    pub fleet_gpus: usize,
    /// Composed system MTBF, hours.
    pub system_mtbf_h: f64,
    /// Young/Daly interval used, seconds.
    pub interval_s: f64,
    /// Analytic goodput fraction.
    pub analytic_goodput: f64,
    /// Simulated goodput fraction.
    pub simulated_goodput: f64,
    /// |sim − analytic| / analytic.
    pub rel_err: f64,
}

/// One (fleet, policy) frontier cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyPoint {
    /// Fleet size, GPUs.
    pub fleet_gpus: usize,
    /// Policy label.
    pub policy: String,
    /// Checkpoint interval used, seconds.
    pub interval_s: f64,
    /// Goodput fraction over the horizon.
    pub goodput: f64,
    /// Mean time from interrupt to regained progress, seconds.
    pub mean_ettr_s: f64,
    /// Useful work discarded across the horizon, hours.
    pub wasted_work_h: f64,
    /// Hardware failures that interrupted work.
    pub failures: usize,
    /// Rollbacks forced by detected corruption.
    pub sdc_rollbacks: usize,
    /// Spare swaps taken (spare-pool policy).
    pub spare_swaps: usize,
    /// Shrink re-plans taken (elastic policy).
    pub elastic_events: usize,
}

/// Everything the sweep measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceSweepReport {
    /// Per-rank checkpoint write slice (memtl-derived), GB.
    pub ckpt_write_gb: f64,
    /// Critical-path restore read, GB.
    pub ckpt_restore_gb: f64,
    /// Degenerate-cell validation per fleet size.
    pub validation: Vec<ValidationRow>,
    /// Goodput/ETTR/wasted-work frontier, policy-major per fleet.
    pub frontier: Vec<PolicyPoint>,
}

/// Timeline seed recorded in the run manifest.
#[must_use]
pub fn seed() -> u64 {
    ResilienceSweepParams::default().seed
}

/// Serialized configuration, for the run manifest.
#[must_use]
pub fn config_json() -> String {
    crate::report::json_or_null(&ResilienceSweepParams::default())
}

/// Per-rank checkpoint traffic under the production plan: memtl's
/// weights/optimizer-shard categories, not a constant.
fn production_bytes() -> CheckpointBytes {
    let fp = checkpoint_footprint(&zoo::deepseek_v3(), &MemPlan::deepseek_v3_production());
    CheckpointBytes::from_footprint(&fp)
}

/// The healthy training grid scaled to a fleet (global batch grows with
/// the data-parallel width; per-GPU work is unchanged).
fn train_for(gpus: usize) -> TrainStepConfig {
    let mut t = TrainStepConfig::deepseek_v3(1.0);
    let scale = gpus as f64 / t.gpus as f64;
    t.tokens_per_step *= scale;
    t.gpus = gpus;
    t
}

/// Young/Daly interval for a policy's blocking write cost, floored at
/// the operational minimum.
fn interval_for(
    stack: &CheckpointStack,
    ckpt: &CheckpointBytes,
    sys_mtbf_s: f64,
    floor_s: f64,
) -> f64 {
    let write_s = stack.blocking_write_s(ckpt.write_bytes).max(1e-3);
    (2.0 * write_s * sys_mtbf_s).sqrt().max(floor_s)
}

/// The five policy arms swept per fleet size.
fn policy_arms(
    p: &ResilienceSweepParams,
    gpus: usize,
) -> Vec<(String, CheckpointStack, RecoveryKind, SdcConfig)> {
    let spares = (gpus / p.spares_per_gpus).max(4);
    vec![
        (
            "cold restart / sync single tier".into(),
            CheckpointStack::single_sync_remote(p.remote_gbps),
            RecoveryKind::ColdRestart,
            SdcConfig::disabled(),
        ),
        (
            "cold restart / tiered async".into(),
            CheckpointStack::tiered(),
            RecoveryKind::ColdRestart,
            SdcConfig::disabled(),
        ),
        (
            "spare pool / tiered async".into(),
            CheckpointStack::tiered(),
            RecoveryKind::SparePool { spares, provision_s: p.provision_s },
            SdcConfig::disabled(),
        ),
        (
            "elastic shrink / tiered async".into(),
            CheckpointStack::tiered(),
            RecoveryKind::ElasticShrink {
                replan_s: p.replan_s,
                train: Box::new(train_for(gpus)),
                ep: 64,
            },
            SdcConfig::disabled(),
        ),
        (
            "spare pool + SDC verify / tiered".into(),
            CheckpointStack::tiered(),
            RecoveryKind::SparePool { spares, provision_s: p.provision_s },
            p.sdc,
        ),
    ]
}

fn cell_config(
    p: &ResilienceSweepParams,
    ckpt: CheckpointBytes,
    stack: CheckpointStack,
    recovery: RecoveryKind,
    sdc: SdcConfig,
    sys_mtbf_s: f64,
    horizon_s: f64,
) -> ResilienceConfig {
    let interval_s = interval_for(&stack, &ckpt, sys_mtbf_s, p.min_interval_s);
    ResilienceConfig {
        interval_s,
        ckpt,
        stack,
        recovery,
        sdc,
        restart_s: p.restart_s,
        repair_s: p.repair_s,
        gpus_per_failure: p.gpus_per_failure,
        horizon_s,
        seed: p.seed,
    }
}

/// A zeroed fallback report for the unreachable Err arms (configs are
/// built from validated parameters and sorted generated timelines).
fn empty_report(tiers: usize) -> ResilienceReport {
    ResilienceReport {
        goodput: f64::NAN,
        useful_s: 0.0,
        wall_s: 0.0,
        failures: 0,
        interrupts: 0,
        absorbed: 0,
        sdc_rollbacks: 0,
        checkpoints: 0,
        verifications: 0,
        spare_swaps: 0,
        spare_exhausted: 0,
        elastic_events: 0,
        restores_by_tier: vec![0; tiers + 1],
        mean_ettr_s: f64::NAN,
        waste: WasteBreakdown::default(),
        no_fault_goodput: f64::NAN,
    }
}

/// Run the sweep. The sweep is seeded and deterministic, so the result
/// is computed once per process and cloned thereafter (the registry
/// smoke tests and the CLI's render + JSON paths share it).
#[must_use]
pub fn run() -> ResilienceSweepReport {
    static CACHE: OnceLock<ResilienceSweepReport> = OnceLock::new();
    CACHE.get_or_init(|| run_traced(&mut Recorder::disabled())).clone()
}

/// [`run`] with telemetry: the tiered + spare-pool arm of the mid fleet
/// traces goodput/backlog/fleet-health series, per-failure instants and
/// per-class failure counters into `rec` under the `resilience` scope.
#[must_use]
pub fn run_instrumented(rec: &mut Recorder) -> ResilienceSweepReport {
    run_traced(rec)
}

fn run_traced(rec: &mut Recorder) -> ResilienceSweepReport {
    let p = ResilienceSweepParams::default();
    let ckpt = production_bytes();
    let horizon_s = p.horizon_days * 86_400.0;
    // Trace the tiered + spare-pool arm of the middle fleet size: the
    // headline policy at the headline scale.
    let traced_fleet = p.fleet_gpus.get(p.fleet_gpus.len() / 2).copied();

    let mut validation = Vec::new();
    let mut frontier = Vec::new();
    for &gpus in &p.fleet_gpus {
        let spec = FleetSpec::with_gpus(gpus);
        let sys_mtbf_s = system_mtbf_s(&spec, &p.mtbf);

        // Arm 1: degenerate cell vs Young/Daly, on its own long horizon
        // measured in MTBFs so every fleet size sees enough failures.
        let stack = CheckpointStack::single_sync_remote(p.remote_gbps);
        let av = AvailabilityModel {
            mtbf_s: sys_mtbf_s,
            checkpoint_write_s: stack.blocking_write_s(ckpt.write_bytes),
            restart_s: p.restart_s + stack.tiers[0].restore_s(ckpt.restore_bytes),
        };
        let val_horizon_s = sys_mtbf_s * p.validation_mtbfs;
        let mut cfg = cell_config(
            &p,
            ckpt,
            stack,
            RecoveryKind::ColdRestart,
            SdcConfig::disabled(),
            sys_mtbf_s,
            val_horizon_s,
        );
        cfg.interval_s = av.young_daly_interval_s();
        let failures = generate_failures(&spec, &p.mtbf, p.seed, val_horizon_s * 4.0);
        let r = simulate_resilience(&cfg, &failures)
            .unwrap_or_else(|_| empty_report(cfg.stack.tiers.len()));
        let analytic = av.goodput_fraction(cfg.interval_s);
        validation.push(ValidationRow {
            fleet_gpus: gpus,
            system_mtbf_h: sys_mtbf_s / 3_600.0,
            interval_s: cfg.interval_s,
            analytic_goodput: analytic,
            simulated_goodput: r.goodput,
            rel_err: (r.goodput - analytic).abs() / analytic,
        });

        // Arm 2: the policy frontier over a common horizon and timeline.
        let failures = generate_failures(&spec, &p.mtbf, p.seed, horizon_s * 2.0);
        for (policy, stack, recovery, sdc) in policy_arms(&p, gpus) {
            let is_spare_tiered =
                matches!(recovery, RecoveryKind::SparePool { .. }) && !sdc.enabled();
            let cfg = cell_config(&p, ckpt, stack, recovery, sdc, sys_mtbf_s, horizon_s);
            let r = if rec.is_enabled() && traced_fleet == Some(gpus) && is_spare_tiered {
                simulate_resilience_traced(&cfg, &failures, rec, "resilience")
            } else {
                simulate_resilience(&cfg, &failures)
            }
            .unwrap_or_else(|_| empty_report(cfg.stack.tiers.len()));
            frontier.push(PolicyPoint {
                fleet_gpus: gpus,
                policy,
                interval_s: cfg.interval_s,
                goodput: r.goodput,
                mean_ettr_s: r.mean_ettr_s,
                wasted_work_h: r.waste.lost_work_s / 3_600.0,
                failures: r.failures,
                sdc_rollbacks: r.sdc_rollbacks,
                spare_swaps: r.spare_swaps,
                elastic_events: r.elastic_events,
            });
        }
    }

    ResilienceSweepReport {
        ckpt_write_gb: bytes_to_gb(ckpt.write_bytes),
        ckpt_restore_gb: bytes_to_gb(ckpt.restore_bytes),
        validation,
        frontier,
    }
}

/// Render.
#[must_use]
pub fn render() -> Table {
    render_report(&run())
}

/// Render an already-computed report (the instrumented CLI path reuses
/// the run instead of sweeping twice).
#[must_use]
pub fn render_report(r: &ResilienceSweepReport) -> Table {
    let mut t = Table::new(
        "§6.1: fleet-scale resilience — tiered checkpoints, spares, elastic shrink, SDC rollback",
        &["arm", "setting", "outcome"],
    );
    t.row(&[
        "checkpoint sizing".into(),
        "memtl production plan (PP16×EP64, Z1)".into(),
        format!(
            "per-rank write {} GB, critical restore {} GB",
            fmt(r.ckpt_write_gb, 2),
            fmt(r.ckpt_restore_gb, 2)
        ),
    ]);
    for v in &r.validation {
        t.row(&[
            "validation".into(),
            format!(
                "{} GPUs, sys MTBF {} h, τ {} s",
                v.fleet_gpus,
                fmt(v.system_mtbf_h, 2),
                fmt(v.interval_s, 0)
            ),
            format!(
                "sim {}% vs Young/Daly {}% (rel err {}%)",
                fmt(v.simulated_goodput * 100.0, 2),
                fmt(v.analytic_goodput * 100.0, 2),
                fmt(v.rel_err * 100.0, 2)
            ),
        ]);
    }
    for f in &r.frontier {
        t.row(&[
            format!("{} GPUs", f.fleet_gpus),
            f.policy.clone(),
            format!(
                "goodput {}%, ETTR {} s, wasted {} h, {} fails{}{}{}",
                fmt(f.goodput * 100.0, 2),
                fmt(f.mean_ettr_s, 0),
                fmt(f.wasted_work_h, 1),
                f.failures,
                if f.sdc_rollbacks > 0 {
                    format!(", {} SDC rollbacks", f.sdc_rollbacks)
                } else {
                    String::new()
                },
                if f.spare_swaps > 0 {
                    format!(", {} swaps", f.spare_swaps)
                } else {
                    String::new()
                },
                if f.elastic_events > 0 {
                    format!(", {} shrinks", f.elastic_events)
                } else {
                    String::new()
                },
            ),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [`run`] memoizes the deterministic sweep; tests share it.
    fn report() -> ResilienceSweepReport {
        run()
    }

    #[test]
    fn degenerate_cells_agree_with_young_daly_within_five_percent() {
        let r = report();
        assert_eq!(r.validation.len(), 3);
        for v in &r.validation {
            assert!(
                v.rel_err < 0.05,
                "{} GPUs: rel err {} (sim {} vs analytic {})",
                v.fleet_gpus,
                v.rel_err,
                v.simulated_goodput,
                v.analytic_goodput
            );
        }
    }

    #[test]
    fn checkpoint_bytes_come_from_memtl_not_a_constant() {
        let r = report();
        let fp = checkpoint_footprint(&zoo::deepseek_v3(), &MemPlan::deepseek_v3_production());
        assert!((r.ckpt_write_gb - bytes_to_gb(fp.max_write_bytes)).abs() < 1e-9);
        assert!((r.ckpt_restore_gb - bytes_to_gb(fp.max_restore_bytes)).abs() < 1e-9);
        // ZeRO-1 shards the write across 128 DP lanes but the restore
        // reloads full stage weights: sub-GB writes, multi-GB restores.
        assert!(r.ckpt_write_gb > 0.1, "write slice: {}", r.ckpt_write_gb);
        assert!(r.ckpt_restore_gb > 1.0, "restore slice: {}", r.ckpt_restore_gb);
    }

    #[test]
    fn tiered_spare_pool_dominates_cold_single_tier_at_scale() {
        let r = report();
        for &gpus in &[16_384usize, 102_400] {
            let get = |policy: &str| {
                r.frontier
                    .iter()
                    .find(|f| f.fleet_gpus == gpus && f.policy.starts_with(policy))
                    .map(|f| f.goodput)
                    .unwrap_or(f64::NAN)
            };
            let cold_sync = get("cold restart / sync");
            let spare = get("spare pool / tiered");
            assert!(
                spare > cold_sync,
                "{gpus} GPUs: spare {spare} must strictly dominate cold sync {cold_sync}"
            );
        }
    }

    #[test]
    fn frontier_covers_every_policy_and_fleet() {
        let r = report();
        assert_eq!(r.frontier.len(), 3 * 5);
        let sdc_cell = r
            .frontier
            .iter()
            .find(|f| f.fleet_gpus == 102_400 && f.policy.contains("SDC"))
            .expect("SDC arm present");
        assert!(sdc_cell.sdc_rollbacks > 0, "SDC arm must exercise rollback");
        let elastic = r
            .frontier
            .iter()
            .find(|f| f.fleet_gpus == 102_400 && f.policy.contains("elastic"))
            .expect("elastic arm present");
        assert!(elastic.elastic_events > 0);
    }

    #[test]
    fn instrumented_run_equals_plain_and_feeds_watch_series() {
        let plain = report();
        let mut rec = Recorder::new();
        let traced = run_instrumented(&mut rec);
        assert_eq!(plain, traced, "tracing must not perturb the sweep");
        assert!(rec.series_get("resilience.goodput").is_some());
        assert!(
            rec.counters().keys().any(|k| k.starts_with("resilience.failures.")),
            "per-class failure counters present"
        );
    }
}
