//! §5.1.1 / §6.1: robustness — plane failures, routing failover, and
//! checksum-based silent-data-corruption detection.

use crate::report::{fmt, Table};
use dsv3_collectives::failures::{alltoall_with_failed_planes, expected_retention};
use dsv3_collectives::{Cluster, ClusterConfig, FabricKind};
use dsv3_numerics::integrity::{audit, inject_bit_flip, protected_matmul, IntegrityReport};
use dsv3_numerics::Matrix;
use serde::{Deserialize, Serialize};

/// Bandwidth retention under failed planes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlaneFailureRow {
    /// Planes failed (of 8).
    pub failed: usize,
    /// Measured bus-bandwidth retention.
    pub retention: f64,
    /// Ideal retention (surviving fraction).
    pub ideal: f64,
}

/// Sweep plane failures on a 4-node cluster.
#[must_use]
pub fn plane_failures() -> Vec<PlaneFailureRow> {
    let c = Cluster::new(ClusterConfig::h800(4, FabricKind::MultiPlane));
    let bytes = 1024.0 * 1024.0;
    (0..=4usize)
        .map(|k| {
            let failed: Vec<usize> = (0..k).collect();
            let r = alltoall_with_failed_planes(&c, bytes, &failed);
            PlaneFailureRow {
                failed: k,
                retention: r.bandwidth_retention,
                ideal: expected_retention(8, k),
            }
        })
        .collect()
}

/// SDC detection outcome over a batch of corrupted GEMMs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SdcRow {
    /// Bit position flipped.
    pub bit: u32,
    /// GEMMs audited.
    pub trials: usize,
    /// Corruptions detected *and located* exactly.
    pub located: usize,
    /// Corruptions detected but not singly locatable.
    pub detected_only: usize,
    /// Missed (sub-threshold — indistinguishable from rounding noise).
    pub missed: usize,
}

/// Inject one bit flip per GEMM across bit positions and audit.
#[must_use]
pub fn sdc_detection(trials: usize) -> Vec<SdcRow> {
    [30u32, 27, 23, 16, 8, 0]
        .into_iter()
        .map(|bit| {
            let mut located = 0;
            let mut detected_only = 0;
            let mut missed = 0;
            for seed in 0..trials {
                let a = Matrix::random(16, 32, 1.0, seed as u64 * 3 + 1);
                let b = Matrix::random(32, 12, 1.0, seed as u64 * 3 + 2);
                let (mut c, sums) = protected_matmul(&a, &b);
                let (r, col) = (seed % 16, (seed * 7) % 12);
                inject_bit_flip(&mut c, r, col, bit);
                match audit(&c, &sums) {
                    IntegrityReport::Corrupted { row, col: cc, .. } if row == r && cc == col => {
                        located += 1;
                    }
                    IntegrityReport::Clean => missed += 1,
                    _ => detected_only += 1,
                }
            }
            SdcRow { bit, trials, located, detected_only, missed }
        })
        .collect()
}

/// Render both studies.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "§5.1.1/§6.1: robustness — plane-failure retention & SDC detection",
        &["Study", "setting", "outcome"],
    );
    for r in plane_failures() {
        t.row(&[
            "plane failure".into(),
            format!("{}/8 planes down", r.failed),
            format!(
                "{}% bandwidth (ideal {}%)",
                fmt(r.retention * 100.0, 1),
                fmt(r.ideal * 100.0, 1)
            ),
        ]);
    }
    for r in sdc_detection(24) {
        t.row(&[
            "SDC audit".into(),
            format!("bit {} flipped", r.bit),
            format!("{}/{} located, {} missed", r.located, r.trials, r.missed),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_tracks_ideal() {
        for r in plane_failures() {
            assert!((r.retention - r.ideal).abs() < 0.07, "{} vs {}", r.retention, r.ideal);
        }
    }

    #[test]
    fn high_bits_always_caught_low_bits_harmless() {
        let rows = sdc_detection(16);
        let by = |bit: u32| rows.iter().find(|r| r.bit == bit).unwrap();
        // Exponent and high-mantissa flips: always located.
        assert_eq!(by(30).located, 16);
        assert_eq!(by(27).located, 16);
        assert_eq!(by(23).located, 16);
        // Bit 0 flips are below the rounding-noise floor: harmless misses.
        assert_eq!(by(0).missed, 16);
    }
}
