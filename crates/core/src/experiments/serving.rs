//! §2.3: request-level serving simulation — unified pool vs
//! prefill/decode disaggregation under bursty load.
//!
//! Where `speed_limits` and `mtp` report single-step analytics, this
//! experiment runs whole request streams through the continuous-batching
//! engine of `dsv3-serving` and reports operator-facing SLO metrics. The
//! headline effect reproduces §2.3.1's argument for disaggregation:
//! under bursty prefill traffic the unified pool's decode p99 TPOT blows
//! up while the disaggregated pool holds steady.

use crate::report::{fmt, Table};
use dsv3_faults::{FaultPlan, FaultPlanConfig, RecoveryPolicy};
use dsv3_serving::{
    run as simulate, run_traced, run_with_faults_traced, ArrivalProcess, RouterPolicy,
    ServingReport, ServingSimConfig,
};
use dsv3_telemetry::Recorder;
use serde::{Deserialize, Serialize};

/// Both policies' full reports under the same bursty workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingComparison {
    /// Mean arrival rate of the workload (requests/s).
    pub arrival_rps: f64,
    /// Interarrival squared coefficient of variation.
    pub burstiness: f64,
    /// Unified pool: prefill steals decode step time.
    pub unified: ServingReport,
    /// Disaggregated pools: isolated decode, a dedicated prefill pool
    /// sized for the prompt-heavy load.
    pub disaggregated: ServingReport,
}

/// The workload both policies face: prefill-heavy bursty traffic
/// (1K-token prompts arriving in clumps), the regime §2.3.1 argues
/// disaggregation exists for.
fn scenario(router: RouterPolicy) -> ServingSimConfig {
    let mut cfg = ServingSimConfig::h800_baseline(
        ArrivalProcess::Bursty { rate_per_s: 8.0, burstiness: 32.0 },
        600,
        router,
    );
    cfg.workload.prompt.mean_tokens = 1024.0;
    cfg
}

/// Run both policies on the identical workload (same seed).
#[must_use]
pub fn run() -> ServingComparison {
    ServingComparison {
        arrival_rps: 8.0,
        burstiness: 32.0,
        unified: simulate(&scenario(RouterPolicy::Unified)),
        disaggregated: simulate(&scenario(RouterPolicy::Disaggregated { prefill_fraction: 0.7 })),
    }
}

/// The seed driving this experiment's workload.
#[must_use]
pub fn seed() -> u64 {
    scenario(RouterPolicy::Unified).workload.seed
}

/// Serialized configuration of both arms, for the run manifest.
#[must_use]
pub fn config_json() -> String {
    let unified = crate::report::json_or_null(&scenario(RouterPolicy::Unified));
    let disagg = crate::report::json_or_null(&scenario(RouterPolicy::Disaggregated {
        prefill_fraction: 0.7,
    }));
    format!("[{unified},{disagg}]")
}

/// [`run`] with telemetry: both arms trace into `rec` under the
/// `unified`/`disaggregated` scopes, plus a telemetry-only
/// `fault-overlay` arm — the same unified bursty scenario under a
/// seeded fault climate — whose report is discarded but whose inject and
/// heal instants land in the trace. The returned comparison is identical
/// to [`run`]'s (the overlay never touches it), enforced by test.
#[must_use]
pub fn run_instrumented(rec: &mut Recorder) -> ServingComparison {
    let unified = run_traced(&scenario(RouterPolicy::Unified), rec, "unified");
    let disaggregated = run_traced(
        &scenario(RouterPolicy::Disaggregated { prefill_fraction: 0.7 }),
        rec,
        "disaggregated",
    );
    let overlay_plan = FaultPlan::generate(&FaultPlanConfig {
        seed: seed(),
        horizon_ms: 60_000.0,
        replicas: 4,
        planes: 8,
        crash_mtbf_ms: 15_000.0,
        crash_repair_ms: 4_000.0,
        flap_mtbf_ms: 20_000.0,
        flap_repair_ms: 5_000.0,
        ..FaultPlanConfig::default()
    });
    let _ = run_with_faults_traced(
        &scenario(RouterPolicy::Unified),
        &overlay_plan,
        &RecoveryPolicy::default(),
        rec,
        "fault-overlay",
    );
    ServingComparison { arrival_rps: 8.0, burstiness: 32.0, unified, disaggregated }
}

/// Render.
#[must_use]
pub fn render() -> Table {
    render_report(&run())
}

/// Render an already-computed comparison (the instrumented CLI path
/// reuses the run instead of simulating twice).
#[must_use]
pub fn render_report(c: &ServingComparison) -> Table {
    let mut t = Table::new(
        "§2.3: serving simulation, bursty prefill-heavy load (8 req/s, CV²=32, 1K prompts)",
        &[
            "policy",
            "TTFT p50 (ms)",
            "TTFT p99 (ms)",
            "TPOT p50 (ms)",
            "TPOT p99 (ms)",
            "goodput (req/s)",
            "SLO attain",
            "preempt",
        ],
    );
    for (name, r) in [("unified", &c.unified), ("disaggregated", &c.disaggregated)] {
        t.row(&[
            name.to_string(),
            fmt(r.ttft_ms.p50, 1),
            fmt(r.ttft_ms.p99, 1),
            fmt(r.tpot_ms.p50, 2),
            fmt(r.tpot_ms.p99, 2),
            fmt(r.goodput_rps, 2),
            fmt(r.slo_attainment, 3),
            r.preemptions.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disaggregation_beats_unified_on_decode_tail_under_bursty_prefill() {
        let c = run();
        assert!(
            c.disaggregated.tpot_ms.p99 < 0.6 * c.unified.tpot_ms.p99,
            "disaggregated decode p99 {} must clearly beat unified {}",
            c.disaggregated.tpot_ms.p99,
            c.unified.tpot_ms.p99
        );
        assert!(
            c.disaggregated.slo_attainment > c.unified.slo_attainment,
            "isolation should also win on SLO attainment"
        );
        // Both serve the full workload to completion.
        assert_eq!(c.unified.completed, 600);
        assert_eq!(c.disaggregated.completed, 600);
    }

    #[test]
    fn reports_are_deterministic() {
        assert_eq!(run(), run());
    }

    #[test]
    fn render_has_both_policies() {
        let t = render();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "unified");
        assert_eq!(t.rows[1][0], "disaggregated");
    }

    #[test]
    fn instrumented_run_reproduces_plain_report() {
        let mut rec = Recorder::new();
        let instrumented = run_instrumented(&mut rec);
        assert_eq!(instrumented, run(), "telemetry and the overlay arm must not perturb");
        let events = rec.events();
        assert!(events.iter().any(|e| e.ph == "X" && e.name == "decode"));
        assert!(
            events.iter().any(|e| e.ph == "i" && e.name.starts_with("inject")),
            "the fault-overlay arm must contribute fault instants"
        );
        assert!(rec.counters().contains_key("unified.completed"));
        assert!(rec.counters().contains_key("disaggregated.completed"));
    }

    #[test]
    fn instrumented_traces_are_deterministic() {
        let trace = |()| {
            let mut rec = Recorder::new();
            let _ = run_instrumented(&mut rec);
            rec.export_trace().to_json()
        };
        assert_eq!(trace(()), trace(()));
    }
}
