//! §2.3.2: EP inference speed limits across interconnect generations.

use crate::report::{fmt, Table};
use dsv3_inference::tpot::{SpeedLimit, SpeedLimitConfig};
use serde::{Deserialize, Serialize};

/// One evaluated system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// System label.
    pub system: String,
    /// Speed limit.
    pub limit: SpeedLimit,
}

/// Evaluate the paper's two systems.
#[must_use]
pub fn run() -> Vec<Row> {
    vec![
        Row {
            system: "H800 + CX7 400Gbps IB".into(),
            limit: SpeedLimitConfig::h800_ib().evaluate(),
        },
        Row {
            system: "GB200 NVL72 (900GB/s)".into(),
            limit: SpeedLimitConfig::gb200_nvl72().evaluate(),
        },
    ]
}

/// §3.2 / §6.5 extension: the same H800 system with compressed combine
/// formats (the paper tests FP8, E5M6 and LogFMT for the combine stage; with
/// native in-network compression the bandwidth saving converts directly to
/// decode speed).
#[must_use]
pub fn run_combine_formats() -> Vec<Row> {
    let formats = [
        ("combine BF16 (baseline)", 2.0),
        ("combine E5M6 (12-bit)", 1.5),
        ("combine LogFMT-10", 1.25),
        ("combine FP8 / LogFMT-8", 1.0),
    ];
    formats
        .iter()
        .map(|(name, bytes)| {
            let mut cfg = SpeedLimitConfig::h800_ib();
            cfg.combine_bytes = *bytes;
            Row { system: (*name).to_string(), limit: cfg.evaluate() }
        })
        .collect()
}

/// Render the combine-format sweep.
#[must_use]
pub fn render_combine_formats() -> Table {
    let mut t = Table::new(
        "§6.5: decode speed limit vs combine-stage compression (H800+IB)",
        &["Combine format", "EP comm (µs)", "TPOT (ms)", "tokens/s"],
    );
    for r in run_combine_formats() {
        t.row(&[
            r.system.clone(),
            fmt(r.limit.comm_time_us, 2),
            fmt(r.limit.tpot_ms, 2),
            fmt(r.limit.tokens_per_second, 0),
        ]);
    }
    t
}

/// Render.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "§2.3.2: theoretical EP decode speed limits",
        &["System", "EP comm (µs)", "per-layer (µs)", "TPOT (ms)", "tokens/s"],
    );
    for r in run() {
        t.row(&[
            r.system.clone(),
            fmt(r.limit.comm_time_us, 2),
            fmt(r.limit.per_layer_us, 2),
            fmt(r.limit.tpot_ms, 2),
            fmt(r.limit.tokens_per_second, 0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_systems_match_paper() {
        let rows = super::run();
        assert!((rows[0].limit.tpot_ms - 14.76).abs() < 0.01);
        assert!(rows[1].limit.tokens_per_second > 1190.0);
    }

    #[test]
    fn compressed_combine_speeds_decode() {
        let rows = super::run_combine_formats();
        // FP8/LogFMT-8 combine: (1+1)/(1+2) of the bytes → 1.5× the tokens/s.
        let base = rows[0].limit.tokens_per_second;
        let fp8 = rows.last().unwrap().limit.tokens_per_second;
        assert!((fp8 / base - 1.5).abs() < 0.01, "{}", fp8 / base);
        for w in rows.windows(2) {
            assert!(w[1].limit.tokens_per_second > w[0].limit.tokens_per_second);
        }
    }
}
