//! Table 1: KV cache per token (BF16) across attention designs.

use crate::report::{fmt, Table};
use dsv3_model::zoo;
use serde::{Deserialize, Serialize};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Model + attention label.
    pub model: String,
    /// KV cache per token, KB.
    pub kv_cache_kb: f64,
    /// Multiplier over DeepSeek-V3.
    pub multiplier: f64,
}

/// Compute the table.
#[must_use]
pub fn run() -> Vec<Row> {
    let models = [
        (zoo::deepseek_v3(), "DeepSeek-V3 (MLA)"),
        (zoo::qwen25_72b(), "Qwen-2.5 72B (GQA)"),
        (zoo::llama31_405b(), "LLaMA-3.1 405B (GQA)"),
    ];
    let base = models[0].0.kv_cache_kb_per_token(2);
    models
        .iter()
        .map(|(cfg, label)| {
            let kb = cfg.kv_cache_kb_per_token(2);
            Row { model: (*label).to_string(), kv_cache_kb: kb, multiplier: kb / base }
        })
        .collect()
}

/// Render like the paper.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "Table 1: KV cache size per token (BF16)",
        &["Model", "KV Cache Per Token", "Multiplier"],
    );
    for r in run() {
        t.row(&[
            r.model.clone(),
            format!("{} KB", fmt(r.kv_cache_kb, 3)),
            format!("{}x", fmt(r.multiplier, 2)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper() {
        let rows = run();
        assert!((rows[0].kv_cache_kb - 70.272).abs() < 1e-9);
        assert!((rows[1].kv_cache_kb - 327.680).abs() < 1e-9);
        assert!((rows[2].kv_cache_kb - 516.096).abs() < 1e-9);
        assert!((rows[1].multiplier - 4.66).abs() < 0.01);
    }
}
