//! Table 2: training compute cost per token (seq 4096).

use crate::report::{fmt, Table};
use dsv3_model::flops::training_gflops_per_token;
use dsv3_model::zoo;
use serde::{Deserialize, Serialize};

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Model label.
    pub model: String,
    /// Total parameters, billions.
    pub size_b: f64,
    /// Training GFLOPs per token.
    pub gflops_per_token: f64,
}

/// Compute the table.
#[must_use]
pub fn run() -> Vec<Row> {
    zoo::table_models()
        .into_iter()
        .map(|cfg| Row {
            size_b: dsv3_model::flops::param_counts(&cfg).total as f64 / 1e9,
            gflops_per_token: training_gflops_per_token(&cfg, 4096),
            model: cfg.name,
        })
        .collect()
}

/// Render like the paper.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "Table 2: training cost per token (seq 4096)",
        &["Model", "Size", "Training Cost"],
    );
    for r in run() {
        t.row(&[
            r.model.clone(),
            format!("{}B", fmt(r.size_b, 0)),
            format!("{} GFLOPS/Token", fmt(r.gflops_per_token, 0)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moe_vs_dense_shape() {
        let rows = run();
        let by = |n: &str| rows.iter().find(|r| r.model.contains(n)).unwrap().gflops_per_token;
        let v3 = by("V3");
        assert!((v3 - 250.0).abs() / 250.0 < 0.05);
        assert!((by("V2") - 155.0).abs() / 155.0 < 0.05);
        assert!(by("LLaMA") / v3 > 9.0);
        assert!(by("Qwen") > v3);
    }
}
