//! Table 3: network topology comparison under the calibrated cost model.

use crate::report::{fmt, Table};
pub use dsv3_topology::cost::Table3Row as Row;
use dsv3_topology::cost::{table3_rows, CostModel};

/// Compute the table with the default calibrated prices.
#[must_use]
pub fn run() -> Vec<Row> {
    table3_rows(&CostModel::default())
}

/// Render like the paper.
#[must_use]
pub fn render() -> Table {
    let mut t = Table::new(
        "Table 3: network topology comparison",
        &["Metric", "FT2", "MPFT", "FT3", "SF", "DF"],
    );
    let rows = run();
    let col = |f: &dyn Fn(&Row) -> String| -> Vec<String> { rows.iter().map(f).collect() };
    let mut push = |name: &str, vals: Vec<String>| {
        let mut cells = vec![name.to_string()];
        cells.extend(vals);
        t.row(&cells);
    };
    push("Endpoints", col(&|r| r.endpoints.to_string()));
    push("Switches", col(&|r| r.switches.to_string()));
    push("Links", col(&|r| r.links.to_string()));
    push("Cost [M$]", col(&|r| fmt(r.cost_musd, 0)));
    push("Cost/Endpoint [k$]", col(&|r| fmt(r.cost_per_endpoint_kusd, 2)));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_topologies_rendered() {
        let t = render();
        assert_eq!(t.headers.len(), 6);
        assert_eq!(t.rows.len(), 5);
    }
}
