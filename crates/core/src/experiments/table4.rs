//! Table 4: training metrics, MPFT vs MRFT.
//!
//! The fabric enters through the communication-efficiency factor; Figures
//! 5–6 establish MPFT ≈ MRFT, so both columns use efficiency 1.0 and the
//! remaining differences in the paper are run-to-run noise.

use crate::report::{fmt, Table};
pub use dsv3_parallel::trainstep::Table4Metrics as Metrics;
use dsv3_parallel::trainstep::{table4, TrainStepConfig};

/// Compute both columns.
#[must_use]
pub fn run() -> (Metrics, Metrics) {
    (
        table4("MPFT", &TrainStepConfig::deepseek_v3(1.0)),
        table4("MRFT", &TrainStepConfig::deepseek_v3(1.0)),
    )
}

/// Render like the paper.
#[must_use]
pub fn render() -> Table {
    let (a, b) = run();
    let mut t = Table::new("Table 4: training metrics, MPFT vs MRFT", &["Metric", "MPFT", "MRFT"]);
    let mut push = |name: &str, x: f64, y: f64, d: usize| {
        t.row(&[name.to_string(), fmt(x, d), fmt(y, d)]);
    };
    push("tokens/day (B)", a.tokens_per_day_b, b.tokens_per_day_b, 2);
    push("time/step (s)", a.time_per_step_s, b.time_per_step_s, 3);
    push("1F (s)", a.f1_s, b.f1_s, 2);
    push("bubble (s)", a.bubble_s, b.bubble_s, 2);
    push("1B (s)", a.b1_s, b.b1_s, 2);
    push("1W (s)", a.w1_s, b.w1_s, 2);
    push("1F1B (s)", a.f1b1_s, b.f1b1_s, 2);
    push("opt (s)", a.opt_s, b.opt_s, 2);
    push("TFLOPS (non-causal)", a.tflops_noncausal, b.tflops_noncausal, 0);
    push("TFLOPS (causal)", a.tflops_causal, b.tflops_causal, 0);
    push("MFU (non-causal) %", a.mfu_noncausal * 100.0, b.mfu_noncausal * 100.0, 2);
    push("MFU (causal) %", a.mfu_causal * 100.0, b.mfu_causal * 100.0, 2);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabrics_tie() {
        let (a, b) = run();
        assert_eq!(a.time_per_step_s, b.time_per_step_s);
        assert!((a.mfu_causal - 0.3894).abs() < 0.02);
    }
}
