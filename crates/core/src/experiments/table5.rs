//! Table 5: 64 B end-to-end latency, IB vs RoCE vs NVLink.

use crate::report::{fmt, Table};
use dsv3_netsim::latency::table5_rows;
pub use dsv3_netsim::latency::Table5Row as Row;

/// Compute the table.
#[must_use]
pub fn run() -> Vec<Row> {
    table5_rows()
}

/// Render like the paper.
#[must_use]
pub fn render() -> Table {
    let mut t =
        Table::new("Table 5: 64B end-to-end latency", &["Link Layer", "Same Leaf", "Cross Leaf"]);
    for r in run() {
        t.row(&[
            r.link_layer.clone(),
            format!("{}us", fmt(r.same_leaf_us, 2)),
            r.cross_leaf_us.map_or("-".to_string(), |v| format!("{}us", fmt(v, 2))),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn three_rows() {
        assert_eq!(super::run().len(), 3);
    }
}
