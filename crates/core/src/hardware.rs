//! Hardware profiles used across the experiments (§4.1 and §2.3.2).

use serde::{Deserialize, Serialize};

/// An accelerator + interconnect profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Name.
    pub name: String,
    /// Dense BF16 peak, TFLOPS.
    pub bf16_tflops: f64,
    /// Dense FP8 peak, TFLOPS.
    pub fp8_tflops: f64,
    /// HBM capacity, GB.
    pub hbm_gb: f64,
    /// HBM bandwidth, GB/s.
    pub hbm_gbps: f64,
    /// Scale-up (NVLink) unidirectional bandwidth, GB/s.
    pub scale_up_gbps: f64,
    /// Effective scale-up bandwidth achievable, GB/s.
    pub scale_up_effective_gbps: f64,
    /// Scale-out per-NIC bandwidth, GB/s.
    pub scale_out_gbps: f64,
    /// Effective scale-out bandwidth, GB/s.
    pub scale_out_effective_gbps: f64,
}

impl HardwareProfile {
    /// NVIDIA H800 SXM as deployed for DeepSeek-V3 (§4.1): Hopper compute,
    /// NVLink cut to 400 GB/s (200 per direction), 8 × 400 Gbps CX7 NICs.
    #[must_use]
    pub fn h800() -> Self {
        Self {
            name: "H800".into(),
            bf16_tflops: 989.5,
            fp8_tflops: 1979.0,
            hbm_gb: 80.0,
            hbm_gbps: 3350.0,
            scale_up_gbps: 200.0,
            scale_up_effective_gbps: 160.0,
            scale_out_gbps: 50.0,
            scale_out_effective_gbps: 40.0,
        }
    }

    /// NVIDIA H100 SXM (the unrestricted sibling).
    #[must_use]
    pub fn h100() -> Self {
        Self {
            name: "H100".into(),
            scale_up_gbps: 450.0,
            scale_up_effective_gbps: 360.0,
            ..Self::h800()
        }
    }

    /// GB200 NVL72-class scale-up domain (§2.3.2's 900 GB/s example).
    #[must_use]
    pub fn gb200_nvl72() -> Self {
        Self {
            name: "GB200 NVL72".into(),
            bf16_tflops: 2500.0,
            fp8_tflops: 5000.0,
            hbm_gb: 192.0,
            hbm_gbps: 8000.0,
            scale_up_gbps: 900.0,
            scale_up_effective_gbps: 900.0,
            scale_out_gbps: 50.0,
            scale_out_effective_gbps: 40.0,
        }
    }

    /// Scale-up to scale-out bandwidth disparity (§4.3 reports ≈4:1 for
    /// H800).
    #[must_use]
    pub fn bandwidth_disparity(&self) -> f64 {
        self.scale_up_effective_gbps / self.scale_out_effective_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h800_disparity_is_4_to_1() {
        assert!((HardwareProfile::h800().bandwidth_disparity() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn h800_nvlink_is_cut_relative_to_h100() {
        assert!(HardwareProfile::h800().scale_up_gbps < HardwareProfile::h100().scale_up_gbps);
    }

    #[test]
    fn fp8_doubles_bf16() {
        let h = HardwareProfile::h800();
        assert_eq!(h.fp8_tflops, 2.0 * h.bf16_tflops);
    }
}
