//! Co-design analysis core for the DeepSeek-V3 insights reproduction.
//!
//! This crate ties the substrates together and exposes **one experiment
//! runner per table and figure** of the paper (ISCA '25, "Insights into
//! DeepSeek-V3"). Each runner returns serializable result rows and can
//! render a text table mirroring the paper's presentation.
//!
//! ```
//! use dsv3_core::experiments::table1;
//!
//! let rows = table1::run();
//! assert_eq!(rows[0].model, "DeepSeek-V3 (MLA)");
//! println!("{}", table1::render());
//! ```
//!
//! Substrates are re-exported for direct use:
//! [`numerics`], [`model`], [`topology`], [`netsim`], [`collectives`],
//! [`parallel`], [`inference`], [`faults`], [`serving`], [`telemetry`].

#![forbid(unsafe_code)]

pub use dsv3_collectives as collectives;
pub use dsv3_faults as faults;
pub use dsv3_inference as inference;
pub use dsv3_lint as lint;
pub use dsv3_memtl as memtl;
pub use dsv3_model as model;
pub use dsv3_netsim as netsim;
pub use dsv3_numerics as numerics;
pub use dsv3_parallel as parallel;
pub use dsv3_serving as serving;
pub use dsv3_telemetry as telemetry;
pub use dsv3_topology as topology;
pub use dsv3_units as units;

pub mod experiments;
pub mod hardware;
pub mod registry;
pub mod report;

pub use hardware::HardwareProfile;
pub use registry::{registry, Entry, InstrumentedRun};
pub use report::Table;
