//! The experiment registry: every runnable artifact of the reproduction,
//! addressable by name.
//!
//! The `dsv3` binary is a thin shell over this table; keeping it in the
//! library lets tests drive every experiment through the same entry
//! points the CLI uses (render + JSON) without spawning processes.

use crate::experiments::*;
use crate::report::Table;
use dsv3_telemetry::{IncidentReport, Recorder, WatchConfig};

/// The result of one telemetry-instrumented experiment run: the rendered
/// outputs (computed once from a single simulation) plus the provenance
/// the run manifest needs.
pub struct InstrumentedRun {
    /// The text table, identical to the entry's plain `render`.
    pub table: Table,
    /// The JSON report, identical to the entry's plain `json`.
    pub json: String,
    /// Seed the experiment ran under.
    pub seed: u64,
    /// Serialized configuration (hashed into the manifest).
    pub config_json: String,
}

/// An instrumented run plus its watchdog verdict (`dsv3 audit`).
pub struct WatchedRun {
    /// The underlying instrumented run.
    pub run: InstrumentedRun,
    /// What the detectors saw, with incident attribution.
    pub incidents: IncidentReport,
}

/// One named experiment: how to render it as text and as JSON.
pub struct Entry {
    /// CLI name (e.g. `table1`, `serving`).
    pub name: &'static str,
    /// One-line description for `dsv3 list`.
    pub about: &'static str,
    /// Render the text table.
    pub render: fn() -> Table,
    /// Serialize the result rows to JSON.
    pub json: fn() -> String,
    /// Run once with telemetry into the recorder (`--trace-out` /
    /// `--metrics-out`). `None` for analytic experiments with no
    /// simulation loop worth tracing.
    pub instrumented: Option<fn(&mut Recorder) -> InstrumentedRun>,
}

impl Entry {
    /// Run the experiment instrumented AND evaluate the watch detectors
    /// over everything it recorded. `None` for entries with nothing to
    /// trace. The recorder must be enabled for the detectors to see any
    /// series; a disabled recorder yields an empty (but valid) report.
    pub fn run_watched(&self, rec: &mut Recorder, wcfg: &WatchConfig) -> Option<WatchedRun> {
        let run = (self.instrumented?)(rec);
        let incidents = dsv3_telemetry::evaluate(self.name, rec, wcfg);
        Some(WatchedRun { run, incidents })
    }
}

fn to_json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string_pretty(v).unwrap_or_else(|_| String::from("null"))
}

/// A plain (un-instrumented) entry.
fn plain(
    name: &'static str,
    about: &'static str,
    render: fn() -> Table,
    json: fn() -> String,
) -> Entry {
    Entry { name, about, render, json, instrumented: None }
}

/// Every experiment, in presentation order.
#[must_use]
pub fn registry() -> Vec<Entry> {
    vec![
        plain("table1", "KV cache per token (Table 1)", table1::render, || to_json(&table1::run())),
        plain("table2", "training GFLOPs per token (Table 2)", table2::render, || {
            to_json(&table2::run())
        }),
        plain("table3", "topology cost comparison (Table 3)", table3::render, || {
            to_json(&table3::run())
        }),
        plain("table4", "MPFT vs MRFT training metrics (Table 4)", table4::render, || {
            to_json(&table4::run())
        }),
        plain("table5", "64B end-to-end latency (Table 5)", table5::render, || {
            to_json(&table5::run())
        }),
        plain("fig5", "all-to-all bandwidth sweep (Figure 5)", fig5::render, || {
            to_json(&fig5::run())
        }),
        plain(
            "fig6",
            "all-to-all latency sweep (Figure 6)",
            fig6::render,
            || to_json(&fig6::run()),
        ),
        plain(
            "fig7",
            "DeepEP throughput (Figure 7)",
            || fig7::render(1024),
            || to_json(&fig7::run(1024)),
        ),
        plain("fig8", "RoCE routing-policy study (Figure 8)", fig8::render, || {
            to_json(&fig8::run())
        }),
        plain("speed-limits", "EP decode speed limits (§2.3.2)", speed_limits::render, || {
            to_json(&speed_limits::run())
        }),
        plain(
            "combine-formats",
            "combine-stage compression (§6.5)",
            speed_limits::render_combine_formats,
            || to_json(&speed_limits::run_combine_formats()),
        ),
        plain("mtp", "MTP speculative decoding (§2.3.3)", mtp::render, || to_json(&mtp::run())),
        plain("fp8-gemm", "FP8 accumulation error (§3.1)", fp8_gemm::render, || {
            to_json(&fp8_gemm::run(&fp8_gemm::default_ks()))
        }),
        plain("logfmt", "LogFMT quality (§3.2)", logfmt::render, || to_json(&logfmt::run())),
        plain("fp8-training", "FP8 vs BF16 training (§2.4)", fp8_training::render, || {
            to_json(&fp8_training::run(crate::model::train::TrainConfig::default()))
        }),
        plain("node-limited", "node-limited routing traffic (§4.3)", node_limited::render, || {
            to_json(&node_limited::run(2000))
        }),
        plain("local-deploy", "local deployment TPS (§2.2.2)", local_deploy::render, || {
            to_json(&local_deploy::run())
        }),
        plain("robustness", "plane failures & SDC detection (§6.1)", robustness::render, || {
            to_json(&robustness::plane_failures())
        }),
        Entry {
            name: "fault-drill",
            about: "seeded fault-injection drill (§5.1.1/§6.1)",
            render: fault_drill::render,
            json: || to_json(&fault_drill::run()),
            instrumented: Some(|rec| {
                let report = fault_drill::run_instrumented(rec);
                InstrumentedRun {
                    table: fault_drill::render_report(&report),
                    json: to_json(&report),
                    seed: fault_drill::seed(),
                    config_json: fault_drill::config_json(),
                }
            }),
        },
        Entry {
            name: "resilience",
            about: "fleet-scale resilience: tiers, spares, elastic, SDC (§6.1)",
            render: resilience::render,
            json: || to_json(&resilience::run()),
            instrumented: Some(|rec| {
                let report = resilience::run_instrumented(rec);
                InstrumentedRun {
                    table: resilience::render_report(&report),
                    json: to_json(&report),
                    seed: resilience::seed(),
                    config_json: resilience::config_json(),
                }
            }),
        },
        Entry {
            name: "net-chaos",
            about: "link chaos: reroute policies vs failed fraction (§5.1.1)",
            render: net_chaos::render,
            json: || to_json(&net_chaos::run()),
            instrumented: Some(|rec| {
                let report = net_chaos::run_instrumented(rec);
                InstrumentedRun {
                    table: net_chaos::render_report(&report),
                    json: to_json(&report),
                    seed: net_chaos::seed(),
                    config_json: net_chaos::config_json(),
                }
            }),
        },
        Entry {
            name: "mem-timeline",
            about: "training memory timeline & fit frontier (§2.1)",
            render: mem_timeline::render,
            json: || to_json(&mem_timeline::run()),
            instrumented: Some(|rec| {
                let report = mem_timeline::run_instrumented(rec);
                InstrumentedRun {
                    table: mem_timeline::render_report(&report),
                    json: to_json(&report),
                    seed: mem_timeline::seed(),
                    config_json: mem_timeline::config_json(),
                }
            }),
        },
        plain("lint", "workspace invariant lint (determinism/panic/vendor)", lint::render, || {
            to_json(&lint::run())
        }),
        plain(
            "future-hardware",
            "hardware-recommendation payoffs (§6)",
            future_hardware::render,
            || to_json(&future_hardware::run()),
        ),
        Entry {
            name: "serving",
            about: "request-level serving simulation (§2.3)",
            render: serving::render,
            json: || to_json(&serving::run()),
            instrumented: Some(|rec| {
                let report = serving::run_instrumented(rec);
                InstrumentedRun {
                    table: serving::render_report(&report),
                    json: to_json(&report),
                    seed: serving::seed(),
                    config_json: serving::config_json(),
                }
            }),
        },
        Entry {
            name: "overload",
            about: "overload-robust serving: admission, ladder, autoscale (§2.3)",
            render: overload::render,
            json: || to_json(&overload::run()),
            instrumented: Some(|rec| {
                let report = overload::run_instrumented(rec);
                InstrumentedRun {
                    table: overload::render_report(&report),
                    json: to_json(&report),
                    seed: overload::seed(),
                    config_json: overload::config_json(),
                }
            }),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_nonempty() {
        let entries = registry();
        let mut names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate experiment names");
        assert!(entries.iter().all(|e| !e.name.is_empty() && !e.about.is_empty()));
    }
}
