//! The experiment registry: every runnable artifact of the reproduction,
//! addressable by name.
//!
//! The `dsv3` binary is a thin shell over this table; keeping it in the
//! library lets tests drive every experiment through the same entry
//! points the CLI uses (render + JSON) without spawning processes.

use crate::experiments::*;
use crate::report::Table;

/// One named experiment: how to render it as text and as JSON.
pub struct Entry {
    /// CLI name (e.g. `table1`, `serving`).
    pub name: &'static str,
    /// One-line description for `dsv3 list`.
    pub about: &'static str,
    /// Render the text table.
    pub render: fn() -> Table,
    /// Serialize the result rows to JSON.
    pub json: fn() -> String,
}

fn to_json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string_pretty(v).expect("experiment rows serialize")
}

/// Every experiment, in presentation order.
#[must_use]
pub fn registry() -> Vec<Entry> {
    vec![
        Entry {
            name: "table1",
            about: "KV cache per token (Table 1)",
            render: table1::render,
            json: || to_json(&table1::run()),
        },
        Entry {
            name: "table2",
            about: "training GFLOPs per token (Table 2)",
            render: table2::render,
            json: || to_json(&table2::run()),
        },
        Entry {
            name: "table3",
            about: "topology cost comparison (Table 3)",
            render: table3::render,
            json: || to_json(&table3::run()),
        },
        Entry {
            name: "table4",
            about: "MPFT vs MRFT training metrics (Table 4)",
            render: table4::render,
            json: || to_json(&table4::run()),
        },
        Entry {
            name: "table5",
            about: "64B end-to-end latency (Table 5)",
            render: table5::render,
            json: || to_json(&table5::run()),
        },
        Entry {
            name: "fig5",
            about: "all-to-all bandwidth sweep (Figure 5)",
            render: fig5::render,
            json: || to_json(&fig5::run()),
        },
        Entry {
            name: "fig6",
            about: "all-to-all latency sweep (Figure 6)",
            render: fig6::render,
            json: || to_json(&fig6::run()),
        },
        Entry {
            name: "fig7",
            about: "DeepEP throughput (Figure 7)",
            render: || fig7::render(1024),
            json: || to_json(&fig7::run(1024)),
        },
        Entry {
            name: "fig8",
            about: "RoCE routing-policy study (Figure 8)",
            render: fig8::render,
            json: || to_json(&fig8::run()),
        },
        Entry {
            name: "speed-limits",
            about: "EP decode speed limits (§2.3.2)",
            render: speed_limits::render,
            json: || to_json(&speed_limits::run()),
        },
        Entry {
            name: "combine-formats",
            about: "combine-stage compression (§6.5)",
            render: speed_limits::render_combine_formats,
            json: || to_json(&speed_limits::run_combine_formats()),
        },
        Entry {
            name: "mtp",
            about: "MTP speculative decoding (§2.3.3)",
            render: mtp::render,
            json: || to_json(&mtp::run()),
        },
        Entry {
            name: "fp8-gemm",
            about: "FP8 accumulation error (§3.1)",
            render: fp8_gemm::render,
            json: || to_json(&fp8_gemm::run(&fp8_gemm::default_ks())),
        },
        Entry {
            name: "logfmt",
            about: "LogFMT quality (§3.2)",
            render: logfmt::render,
            json: || to_json(&logfmt::run()),
        },
        Entry {
            name: "fp8-training",
            about: "FP8 vs BF16 training (§2.4)",
            render: fp8_training::render,
            json: || to_json(&fp8_training::run(crate::model::train::TrainConfig::default())),
        },
        Entry {
            name: "node-limited",
            about: "node-limited routing traffic (§4.3)",
            render: node_limited::render,
            json: || to_json(&node_limited::run(2000)),
        },
        Entry {
            name: "local-deploy",
            about: "local deployment TPS (§2.2.2)",
            render: local_deploy::render,
            json: || to_json(&local_deploy::run()),
        },
        Entry {
            name: "robustness",
            about: "plane failures & SDC detection (§6.1)",
            render: robustness::render,
            json: || to_json(&robustness::plane_failures()),
        },
        Entry {
            name: "fault-drill",
            about: "seeded fault-injection drill (§5.1.1/§6.1)",
            render: fault_drill::render,
            json: || to_json(&fault_drill::run()),
        },
        Entry {
            name: "future-hardware",
            about: "hardware-recommendation payoffs (§6)",
            render: future_hardware::render,
            json: || to_json(&future_hardware::run()),
        },
        Entry {
            name: "serving",
            about: "request-level serving simulation (§2.3)",
            render: serving::render,
            json: || to_json(&serving::run()),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_nonempty() {
        let entries = registry();
        let mut names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate experiment names");
        assert!(entries.iter().all(|e| !e.name.is_empty() && !e.about.is_empty()));
    }
}
