//! Plain-text table rendering for experiment results, plus the
//! workspace's shared summary-statistics types.

use serde::{Deserialize, Serialize};

// The one canonical percentile/summary implementation lives in
// `dsv3_serving::metrics`; experiment code should use this re-export
// instead of hand-rolling percentile math.
pub use dsv3_serving::metrics::{percentile, Summary};

/// A renderable result table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Title (e.g. "Table 1: KV cache size comparison").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }
}

/// Serialize to JSON, degrading to `"null"` instead of panicking.
/// Experiment rows are plain data that always serializes; the fallback
/// exists so library code stays panic-free (lint rule P1) even if a
/// future row type gains a fallible `Serialize`.
#[must_use]
pub fn json_or_null<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| String::from("null"))
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut std::fmt::Formatter<'_>| -> std::fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        line(f)?;
        write!(f, "|")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, " {h:w$} |")?;
        }
        writeln!(f)?;
        line(f)?;
        for row in &self.rows {
            write!(f, "|")?;
            for (c, w) in row.iter().zip(&widths) {
                write!(f, " {c:w$} |")?;
            }
            writeln!(f)?;
        }
        line(f)
    }
}

/// Format a float with `digits` decimals.
#[must_use]
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(&["x".into(), "1".into()]);
        let s = t.to_string();
        assert!(s.contains("| a | long-header |"));
        assert!(s.contains("| x | 1           |"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new("T", &["a"]);
        t.row(&["x".into(), "y".into()]);
    }

    #[test]
    fn fmt_digits() {
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}
