//! `dsv3 audit` end-to-end: the SLO watchdog over the overload retry
//! storm.
//!
//! The overload experiment traces three watchdog control arms: the
//! unprotected jitter-free storm (`spike-none`), a marginal bounded
//! queue with jitter-free clients (`spike-storm`), and the identical
//! queue with decorrelated-jitter clients (`spike-storm-jitter`). The
//! metastability detector must fire on both jitter-free arms, attribute
//! the collapse to client timeout/retry instants, and stay silent on
//! the jittered twin — the whole point of the control pair.

use dsv3_core::registry::{registry, Entry, WatchedRun};
use dsv3_core::telemetry::{Recorder, WatchConfig};

fn overload_entry() -> Entry {
    registry().into_iter().find(|e| e.name == "overload").expect("overload registered")
}

fn watched() -> WatchedRun {
    let mut rec = Recorder::new();
    overload_entry()
        .run_watched(&mut rec, &WatchConfig::default())
        .expect("overload is instrumented")
}

#[test]
fn audit_fires_metastability_on_jitter_free_arms_only() {
    let w = watched();
    let meta: Vec<_> =
        w.incidents.alerts.iter().filter(|a| a.detector == "metastability").collect();
    let mut scopes: Vec<&str> = meta.iter().map(|a| a.scope.as_str()).collect();
    scopes.sort_unstable();
    scopes.dedup();
    assert_eq!(
        scopes,
        ["spike-none", "spike-storm"],
        "metastability must fire on exactly the jitter-free arms: {meta:?}"
    );
    assert!(
        !w.incidents
            .alerts
            .iter()
            .any(|a| a.scope == "spike-storm-jitter" && a.detector == "metastability"),
        "decorrelated jitter must keep the identical queue out of the metastable basin"
    );

    // Onset timing: the metastability alert can only begin once offered
    // load is back at baseline, i.e. at the spike-end boundary (60 s);
    // dwell delays firing by a few windows beyond that.
    let spike = (30_000.0, 60_000.0);
    for a in &meta {
        assert!(
            a.pending_ms >= spike.1 && a.pending_ms <= spike.1 + 30_000.0,
            "{}: metastability onset {} not at the spike-end boundary",
            a.scope,
            a.pending_ms
        );
        assert!(a.firing_ms >= a.pending_ms);
        assert_eq!(a.severity, "page");
    }

    // Attribution: the jitter-free storm's collapse is the clients' own
    // timeout/resubmit loop.
    let none = meta.iter().find(|a| a.scope == "spike-none").expect("spike-none fires");
    let causes: Vec<&str> = none.blame.iter().map(|b| b.cause.as_str()).collect();
    assert!(
        causes.contains(&"client-timeout") && causes.contains(&"client-resubmit"),
        "goodput collapse must be blamed on the retry storm: {causes:?}"
    );

    // Burn-rate onset lands inside the spike window itself.
    let burn = w
        .incidents
        .alerts
        .iter()
        .find(|a| a.scope == "spike-none" && a.detector == "burn-rate" && a.signal == "goodput")
        .expect("burn-rate fires on the unprotected arm");
    assert!(
        burn.pending_ms >= spike.0 && burn.pending_ms <= spike.1,
        "burn-rate onset {} outside the spike window",
        burn.pending_ms
    );
}

#[test]
fn audit_is_byte_identical_per_seed_and_empty_when_disabled() {
    let a = watched();
    let b = watched();
    assert_eq!(a.incidents.to_json(), b.incidents.to_json(), "incident JSON must be stable");
    assert_eq!(a.incidents.render(), b.incidents.render(), "incident text must be stable");
    assert!(a.incidents.firing > 0, "the retry storm must produce alerts");

    // A disabled recorder sees no series: the report stays valid but
    // empty, and the run itself is the plain (golden) path.
    let mut off = Recorder::disabled();
    let w = overload_entry()
        .run_watched(&mut off, &WatchConfig::default())
        .expect("overload is instrumented");
    assert!(w.incidents.alerts.is_empty(), "disabled watch must stay silent");
    assert_eq!(w.run.table.to_string(), (overload_entry().render)().to_string());
}
