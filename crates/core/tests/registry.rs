//! Registry-driven smoke test: every experiment the `dsv3` binary can
//! name must render a non-trivial table AND emit parseable JSON.
//!
//! This is the test the CLI leans on: `dsv3 <name>` and
//! `dsv3 <name> --json` call exactly these function pointers.

use dsv3_core::registry::registry;

#[test]
fn every_entry_renders_a_table() {
    for e in registry() {
        let table = (e.render)();
        assert!(!table.title.is_empty(), "{}: empty title", e.name);
        assert!(!table.headers.is_empty(), "{}: no headers", e.name);
        assert!(!table.rows.is_empty(), "{}: no rows", e.name);
        let text = table.to_string();
        assert!(text.lines().count() >= 4, "{}: degenerate render:\n{text}", e.name);
    }
}

#[test]
fn every_entry_emits_parseable_json() {
    for e in registry() {
        let json = (e.json)();
        let value = serde_json::parse(&json)
            .unwrap_or_else(|err| panic!("{}: JSON does not parse: {err}\n{json}", e.name));
        // Every experiment serializes to an array of rows or an object of
        // named results — never a bare scalar.
        assert!(
            value.as_array().is_some() || value.as_object().is_some(),
            "{}: unexpected JSON shape",
            e.name
        );
    }
}

#[test]
fn serving_entry_reports_slo_percentiles() {
    let entry = registry().into_iter().find(|e| e.name == "serving").expect("serving registered");
    let json = (entry.json)();
    let value = serde_json::parse(&json).expect("serving JSON parses");
    let top = value.as_object().expect("serving emits an object");
    for policy in ["unified", "disaggregated"] {
        let report = serde::field(top, policy)
            .unwrap_or_else(|_| panic!("missing {policy} report"))
            .as_object()
            .expect("report is an object");
        for metric in ["ttft_ms", "tpot_ms"] {
            let summary =
                serde::field(report, metric).expect("metric present").as_object().expect("summary");
            for p in ["p50", "p95", "p99"] {
                let v = serde::field(summary, p).expect("percentile present");
                assert!(v.as_f64().is_some(), "{policy}.{metric}.{p} not a number");
            }
        }
        assert!(
            serde::field(report, "goodput_rps").expect("goodput present").as_f64().is_some(),
            "{policy}: goodput missing"
        );
    }
}
