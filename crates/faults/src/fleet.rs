//! Fleet-scale failure composition: per-component MTBFs across N GPUs.
//!
//! §6.1's observation is quantitative: a per-GPU MTBF measured in years
//! becomes a system-level failure every few minutes once 100k
//! accelerators, their NICs, hosts, and switches are composed. This
//! module holds the component failure table, the fleet shape that
//! multiplies it, and a seeded generator producing the merged failure
//! timeline the resilience walker consumes. *What* failed matters, not
//! just *when*: a GPU death takes its HBM checkpoint tier with it, a
//! host death takes device and host-RAM copies, while NIC and switch
//! faults interrupt the step but leave node state intact — the tier
//! survival logic in [`crate::tiers`] keys on the component kind.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Unit-mean exponential deviate (module-local so each component
/// class's stream stays self-contained).
fn exponential(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln()
}

/// Hardware component classes with independent failure processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FleetComponent {
    /// One accelerator (HBM, compute die).
    Gpu,
    /// One NIC.
    Nic,
    /// One host (CPU, DRAM, PCIe fabric; takes its GPUs down with it).
    Host,
    /// One leaf/spine switch (connectivity domain of many GPUs).
    Switch,
}

impl FleetComponent {
    /// All component classes, in report order.
    pub const ALL: [FleetComponent; 4] =
        [FleetComponent::Gpu, FleetComponent::Nic, FleetComponent::Host, FleetComponent::Switch];

    /// Stable lowercase label for series/counter names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FleetComponent::Gpu => "gpu",
            FleetComponent::Nic => "nic",
            FleetComponent::Host => "host",
            FleetComponent::Switch => "switch",
        }
    }
}

/// Per-unit MTBF of each component class, hours. `f64::INFINITY`
/// disables a class (mirroring [`crate::plan::FaultPlanConfig`]'s
/// opt-in convention).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentMtbf {
    /// Hours between failures of one GPU.
    pub gpu_h: f64,
    /// Hours between failures of one NIC.
    pub nic_h: f64,
    /// Hours between failures of one host.
    pub host_h: f64,
    /// Hours between failures of one switch.
    pub switch_h: f64,
}

impl ComponentMtbf {
    /// Production-scale table: the per-GPU rate dominates, hosts and
    /// switches are rarer per unit but each takes more state down. At
    /// 16k GPUs the composition lands near one interruption every
    /// 1–2 hours, the scale large published training runs report.
    #[must_use]
    pub fn production() -> Self {
        Self { gpu_h: 40_000.0, nic_h: 100_000.0, host_h: 80_000.0, switch_h: 150_000.0 }
    }

    /// Per-unit MTBF of a class, hours.
    #[must_use]
    pub fn for_component(&self, c: FleetComponent) -> f64 {
        match c {
            FleetComponent::Gpu => self.gpu_h,
            FleetComponent::Nic => self.nic_h,
            FleetComponent::Host => self.host_h,
            FleetComponent::Switch => self.switch_h,
        }
    }
}

/// The fleet shape that multiplies the component table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Accelerators in the job.
    pub gpus: usize,
    /// GPUs per host (a host failure idles this many).
    pub gpus_per_host: usize,
    /// GPUs under one switch domain.
    pub gpus_per_switch: usize,
    /// NICs per GPU.
    pub nics_per_gpu: usize,
}

impl FleetSpec {
    /// An H800-pod shape: 8-GPU hosts, 64-GPU switch domains, one NIC
    /// per GPU.
    #[must_use]
    pub fn with_gpus(gpus: usize) -> Self {
        Self { gpus, gpus_per_host: 8, gpus_per_switch: 64, nics_per_gpu: 1 }
    }

    /// Unit count of a component class in this fleet.
    #[must_use]
    pub fn units(&self, c: FleetComponent) -> usize {
        match c {
            FleetComponent::Gpu => self.gpus,
            FleetComponent::Nic => self.gpus * self.nics_per_gpu,
            FleetComponent::Host => self.gpus.div_ceil(self.gpus_per_host.max(1)),
            FleetComponent::Switch => self.gpus.div_ceil(self.gpus_per_switch.max(1)),
        }
    }

    /// Basic sanity of the shape.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.gpus > 0 && self.gpus_per_host > 0 && self.gpus_per_switch > 0
    }
}

/// Composed system failure rate: `λ = Σ units_c / mtbf_c`, returned as
/// a mean time between failures in seconds. `f64::INFINITY` when every
/// class is disabled.
#[must_use]
pub fn system_mtbf_s(spec: &FleetSpec, mtbf: &ComponentMtbf) -> f64 {
    let lambda_per_h: f64 = FleetComponent::ALL
        .iter()
        .map(|&c| {
            let m = mtbf.for_component(c);
            if m.is_finite() {
                spec.units(c) as f64 / m
            } else {
                0.0
            }
        })
        .sum();
    if lambda_per_h > 0.0 {
        3_600.0 / lambda_per_h
    } else {
        f64::INFINITY
    }
}

/// One failure somewhere in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetFailure {
    /// Failure instant, seconds.
    pub at_s: f64,
    /// What broke.
    pub component: FleetComponent,
}

/// Per-class seed salts, mirroring [`crate::plan`]'s convention of one
/// independent stream per fault class.
fn salt(c: FleetComponent) -> u64 {
    match c {
        FleetComponent::Gpu => 0x67_7075,    // "gpu"
        FleetComponent::Nic => 0x6e_6963,    // "nic"
        FleetComponent::Host => 0x686f_7374, // "host"
        FleetComponent::Switch => 0x73_7769, // "swi"
    }
}

/// Generate the merged, sorted failure timeline of a fleet over
/// `horizon_s`. One salted Poisson stream per component class (a class
/// whose MTBF is infinite contributes nothing), merged by time with the
/// component order breaking ties, so the timeline is byte-reproducible
/// per seed and stable under adding classes.
#[must_use]
pub fn generate_failures(
    spec: &FleetSpec,
    mtbf: &ComponentMtbf,
    seed: u64,
    horizon_s: f64,
) -> Vec<FleetFailure> {
    let mut out = Vec::new();
    for c in FleetComponent::ALL {
        let m = mtbf.for_component(c);
        let units = spec.units(c) as f64;
        if !m.is_finite() || units <= 0.0 {
            continue;
        }
        let mean_gap_s = m * 3_600.0 / units;
        let mut rng = StdRng::seed_from_u64(seed ^ salt(c));
        let mut t = 0.0f64;
        loop {
            t += exponential(&mut rng) * mean_gap_s;
            if t > horizon_s {
                break;
            }
            out.push(FleetFailure { at_s: t, component: c });
        }
    }
    out.sort_by(|a, b| a.at_s.total_cmp(&b.at_s).then(a.component.cmp(&b.component)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_scales_inversely_with_fleet_size() {
        let mtbf = ComponentMtbf::production();
        let small = system_mtbf_s(&FleetSpec::with_gpus(2_048), &mtbf);
        let large = system_mtbf_s(&FleetSpec::with_gpus(102_400), &mtbf);
        assert!(small > 40.0 * large, "{small} vs {large}");
        // 2k GPUs: failures every several hours; 100k: minutes.
        assert!(small > 3_600.0 * 4.0 && small < 3_600.0 * 40.0, "{small}");
        assert!(large < 3_600.0, "{large}");
    }

    #[test]
    fn disabled_classes_contribute_nothing() {
        let spec = FleetSpec::with_gpus(8_192);
        let all_off = ComponentMtbf {
            gpu_h: f64::INFINITY,
            nic_h: f64::INFINITY,
            host_h: f64::INFINITY,
            switch_h: f64::INFINITY,
        };
        assert!(system_mtbf_s(&spec, &all_off).is_infinite());
        assert!(generate_failures(&spec, &all_off, 7, 1e6).is_empty());
        let gpu_only = ComponentMtbf { gpu_h: 40_000.0, ..all_off };
        let fails = generate_failures(&spec, &gpu_only, 7, 1e7);
        assert!(!fails.is_empty());
        assert!(fails.iter().all(|f| f.component == FleetComponent::Gpu));
    }

    #[test]
    fn timeline_is_sorted_deterministic_and_poisson_scaled() {
        let spec = FleetSpec::with_gpus(16_384);
        let mtbf = ComponentMtbf::production();
        let horizon_s = system_mtbf_s(&spec, &mtbf) * 500.0;
        let a = generate_failures(&spec, &mtbf, 42, horizon_s);
        let b = generate_failures(&spec, &mtbf, 42, horizon_s);
        assert_eq!(a, b, "byte-reproducible per seed");
        assert!(a.windows(2).all(|w| w[0].at_s <= w[1].at_s), "sorted");
        let c = generate_failures(&spec, &mtbf, 43, horizon_s);
        assert_ne!(a, c, "seed moves the timeline");
        // Count within 20% of the composed expectation over 500 MTBFs.
        let expect = 500.0;
        let n = a.len() as f64;
        assert!((n / expect - 1.0).abs() < 0.2, "{n} vs {expect}");
        // GPU failures dominate the mix.
        let gpus = a.iter().filter(|f| f.component == FleetComponent::Gpu).count();
        assert!(gpus * 2 > a.len(), "{gpus} of {}", a.len());
    }

    #[test]
    fn unit_counts_follow_the_shape() {
        let spec = FleetSpec::with_gpus(2_048);
        assert_eq!(spec.units(FleetComponent::Gpu), 2_048);
        assert_eq!(spec.units(FleetComponent::Nic), 2_048);
        assert_eq!(spec.units(FleetComponent::Host), 256);
        assert_eq!(spec.units(FleetComponent::Switch), 32);
        assert!(spec.is_valid());
        assert!(!FleetSpec { gpus: 0, ..spec }.is_valid());
    }
}
