//! # dsv3-faults — seeded fault injection and recovery
//!
//! The paper's robustness story (§5.1.1 multi-plane failover, §6.1 SDC
//! and interconnect faults) demands *degradation, not disconnection*
//! when faults arrive **during** a run. This crate supplies the shared
//! machinery:
//!
//! - [`plan`] — deterministic [`FaultPlan`] timelines (replica crashes,
//!   plane flaps, stragglers, SDC), the [`Injectable`] hook trait, and
//!   the [`FaultDriver`] that walks a timeline as a consumer's clock
//!   advances. Plans are fully materialized up front, so consumers stay
//!   byte-reproducible per seed.
//! - [`recovery`] — exponential [`Backoff`] (jitter-free by default,
//!   with opt-in seeded decorrelated jitter for retry-storm defense) and
//!   the [`RecoveryPolicy`] (retry budget, optional hedging) consumers
//!   apply when a fault takes down their work.
//! - [`training`] — checkpoint/restart goodput simulation
//!   ([`simulate_goodput`]) validated against the Young/Daly analytic
//!   model in `dsv3_model::availability`.
//! - [`fleet`] — per-component MTBF tables composed across fleet
//!   shapes into seeded failure timelines ([`generate_failures`]).
//! - [`tiers`] — device / host-RAM / remote checkpoint tier pricing and
//!   the per-component survival matrix ([`CheckpointStack`]).
//! - [`resilience`] — the fleet-scale walker ([`simulate_resilience`]):
//!   tiered asynchronous checkpoints (bytes from `dsv3-memtl`),
//!   spare-pool / elastic-shrink recovery (re-planned via
//!   `dsv3-parallel`), and SDC rollback past the last verified
//!   checkpoint. Its degenerate configuration reproduces the Young/Daly
//!   regime within the same 5% gate `fault_drill` enforces.
//!
//! The serving engine (`dsv3-serving`) implements [`Injectable`] and
//! exposes `run_with_faults`; an empty plan reproduces the healthy
//! report byte-for-byte, making the fault layer a strict superset of the
//! healthy simulator.

#![forbid(unsafe_code)]

pub mod fleet;
pub mod plan;
pub mod recovery;
pub mod resilience;
pub mod tiers;
pub mod training;

pub use fleet::{
    generate_failures, system_mtbf_s, ComponentMtbf, FleetComponent, FleetFailure, FleetSpec,
};
pub use plan::{
    bandwidth_retention, FaultDriver, FaultEvent, FaultKind, FaultPlan, FaultPlanConfig, Injectable,
};
pub use recovery::{Backoff, RecoveryPolicy};
pub use resilience::{
    simulate_resilience, simulate_resilience_traced, CheckpointBytes, RecoveryKind,
    ResilienceConfig, ResilienceError, ResilienceReport, SdcConfig, WasteBreakdown,
};
pub use tiers::{CheckpointStack, CheckpointTier, TierKind};
pub use training::{simulate_goodput, TrainingGoodput, TrainingSimError};
