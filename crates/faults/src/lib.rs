//! # dsv3-faults — seeded fault injection and recovery
//!
//! The paper's robustness story (§5.1.1 multi-plane failover, §6.1 SDC
//! and interconnect faults) demands *degradation, not disconnection*
//! when faults arrive **during** a run. This crate supplies the shared
//! machinery:
//!
//! - [`plan`] — deterministic [`FaultPlan`] timelines (replica crashes,
//!   plane flaps, stragglers, SDC), the [`Injectable`] hook trait, and
//!   the [`FaultDriver`] that walks a timeline as a consumer's clock
//!   advances. Plans are fully materialized up front, so consumers stay
//!   byte-reproducible per seed.
//! - [`recovery`] — exponential [`Backoff`] (jitter-free by default,
//!   with opt-in seeded decorrelated jitter for retry-storm defense) and
//!   the [`RecoveryPolicy`] (retry budget, optional hedging) consumers
//!   apply when a fault takes down their work.
//! - [`training`] — checkpoint/restart goodput simulation
//!   ([`simulate_goodput`]) validated against the Young/Daly analytic
//!   model in `dsv3_model::availability`.
//!
//! The serving engine (`dsv3-serving`) implements [`Injectable`] and
//! exposes `run_with_faults`; an empty plan reproduces the healthy
//! report byte-for-byte, making the fault layer a strict superset of the
//! healthy simulator.

#![forbid(unsafe_code)]

pub mod plan;
pub mod recovery;
pub mod training;

pub use plan::{
    bandwidth_retention, FaultDriver, FaultEvent, FaultKind, FaultPlan, FaultPlanConfig, Injectable,
};
pub use recovery::{Backoff, RecoveryPolicy};
pub use training::{simulate_goodput, TrainingGoodput};
