//! Deterministic fault timelines and the injection hook protocol.
//!
//! A [`FaultPlan`] is a fully materialized list of [`FaultEvent`]s — no
//! randomness survives into the consumer, so any simulator driven by a
//! plan stays byte-reproducible. Plans are either written by hand (tests,
//! drills) or generated from seeded Poisson processes via
//! [`FaultPlan::generate`], the dynamic-fault methodology of MAST-style
//! cluster studies: faults *arrive during* a run instead of being fixed
//! offline counts.
//!
//! Consumers implement [`Injectable`] and let a [`FaultDriver`] walk the
//! timeline as their clock advances: `inject` fires when a fault begins,
//! `heal` when its repair completes. Delivery order is total and
//! deterministic (time, then event sequence number).

use dsv3_collectives::failures::{expected_retention, FlapSchedule, PlaneFlap};
use dsv3_netsim::chaos::{LinkFlap, LinkSchedule};
use dsv3_telemetry::Recorder;
use dsv3_units::{ms_to_s, ms_to_us};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One kind of fault striking the system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A decode replica crashes, losing all in-flight KV state. The
    /// replica's batch slots return after `repair_ms`.
    ReplicaCrash {
        /// Which replica (of [`FaultPlan::replicas`]) dies.
        replica: usize,
        /// Downtime before the replica rejoins.
        repair_ms: f64,
    },
    /// A network plane flaps: its scale-out bandwidth is lost until the
    /// repair completes; survivors carry the rerouted traffic (§5.1.1).
    PlaneFlap {
        /// Which plane (of [`FaultPlan::planes`]) goes down.
        plane: usize,
        /// Downtime before the plane returns.
        repair_ms: f64,
    },
    /// A slow node gates collective steps by `slowdown` for the duration.
    Straggler {
        /// Multiplier on step time while active (> 1).
        slowdown: f64,
        /// How long the straggler persists.
        duration_ms: f64,
    },
    /// A silent data corruption strikes one in-flight computation (§6.1).
    Sdc {
        /// Whether the checksum audit catches it (forcing a recompute)
        /// or it silently corrupts a result.
        detected: bool,
    },
    /// An individual network link fails — finer-grained than a whole
    /// [`FaultKind::PlaneFlap`]: one cable/port of
    /// [`FaultPlan::links`] goes dark until repaired. Projected onto the
    /// chaos engine via [`FaultPlan::link_schedule`].
    LinkFail {
        /// Which link (of [`FaultPlan::links`]) fails.
        link: usize,
        /// Downtime before the link returns.
        repair_ms: f64,
    },
}

impl FaultKind {
    /// Downtime of this fault, if it has one (SDC is instantaneous).
    #[must_use]
    pub fn duration_ms(&self) -> Option<f64> {
        match *self {
            FaultKind::ReplicaCrash { repair_ms, .. }
            | FaultKind::PlaneFlap { repair_ms, .. }
            | FaultKind::LinkFail { repair_ms, .. } => Some(repair_ms),
            FaultKind::Straggler { duration_ms, .. } => Some(duration_ms),
            FaultKind::Sdc { .. } => None,
        }
    }

    /// Stable short label for telemetry track names and counters.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::ReplicaCrash { .. } => "replica-crash",
            FaultKind::PlaneFlap { .. } => "plane-flap",
            FaultKind::Straggler { .. } => "straggler",
            FaultKind::Sdc { .. } => "sdc",
            FaultKind::LinkFail { .. } => "link-fail",
        }
    }
}

/// A fault arriving at an absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Absolute injection time, milliseconds.
    pub at_ms: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic timeline of faults over a fixed resource shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Decode replicas the consumer partitions work across (≥ 1).
    pub replicas: usize,
    /// Network planes carrying scale-out traffic (≥ 1).
    pub planes: usize,
    /// Individual network links addressable by [`FaultKind::LinkFail`]
    /// events (0 when the plan has no link-granular faults — the
    /// consumer's link table defines the id space).
    pub links: usize,
    /// The timeline; [`FaultDriver`] sorts it, so order is free.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: a healthy cluster. Driving any simulator with this
    /// plan must reproduce its fault-free output byte-for-byte.
    #[must_use]
    pub fn healthy() -> Self {
        Self { replicas: 1, planes: 8, links: 0, events: Vec::new() }
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validate resource bounds and event sanity.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.replicas == 0 {
            return Err("plan needs at least one replica".into());
        }
        if self.planes == 0 {
            return Err("plan needs at least one plane".into());
        }
        for (i, e) in self.events.iter().enumerate() {
            if !e.at_ms.is_finite() || e.at_ms < 0.0 {
                return Err(format!("event {i}: at_ms {} is not a finite time", e.at_ms));
            }
            match e.kind {
                FaultKind::ReplicaCrash { replica, repair_ms } => {
                    if replica >= self.replicas {
                        return Err(format!("event {i}: replica {replica} out of range"));
                    }
                    if repair_ms.is_nan() || repair_ms < 0.0 {
                        return Err(format!("event {i}: bad repair_ms {repair_ms}"));
                    }
                }
                FaultKind::PlaneFlap { plane, repair_ms } => {
                    if plane >= self.planes {
                        return Err(format!("event {i}: plane {plane} out of range"));
                    }
                    if repair_ms.is_nan() || repair_ms < 0.0 {
                        return Err(format!("event {i}: bad repair_ms {repair_ms}"));
                    }
                }
                FaultKind::Straggler { slowdown, duration_ms } => {
                    if slowdown.is_nan() || slowdown < 1.0 {
                        return Err(format!("event {i}: straggler slowdown {slowdown} < 1"));
                    }
                    if duration_ms.is_nan() || duration_ms < 0.0 {
                        return Err(format!("event {i}: bad duration_ms {duration_ms}"));
                    }
                }
                FaultKind::Sdc { .. } => {}
                FaultKind::LinkFail { link, repair_ms } => {
                    if link >= self.links {
                        return Err(format!("event {i}: link {link} out of range"));
                    }
                    if repair_ms.is_nan() || repair_ms < 0.0 {
                        return Err(format!("event {i}: bad repair_ms {repair_ms}"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Materialize a plan from seeded Poisson processes, one per fault
    /// class. Equal configs produce identical plans.
    ///
    /// # Panics
    ///
    /// Panics on non-positive horizon or resource counts of zero.
    #[must_use]
    pub fn generate(cfg: &FaultPlanConfig) -> Self {
        assert!(cfg.horizon_ms > 0.0, "horizon must be positive");
        assert!(cfg.replicas > 0 && cfg.planes > 0, "need at least one replica and plane");
        let mut events = Vec::new();

        let mut arrivals =
            |salt: u64, mtbf_ms: f64, make: &mut dyn FnMut(&mut StdRng) -> FaultKind| {
                if !(mtbf_ms.is_finite() && mtbf_ms > 0.0) {
                    return; // class disabled
                }
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ salt);
                let mut t = 0.0f64;
                loop {
                    t += exponential(&mut rng) * mtbf_ms;
                    if t > cfg.horizon_ms {
                        break;
                    }
                    let kind = make(&mut rng);
                    events.push(FaultEvent { at_ms: t, kind });
                }
            };

        arrivals(0x63_7261_7368u64, cfg.crash_mtbf_ms, &mut |rng| FaultKind::ReplicaCrash {
            replica: rng.gen_range(0..cfg.replicas),
            repair_ms: cfg.crash_repair_ms,
        });
        arrivals(0x666c_6170u64, cfg.flap_mtbf_ms, &mut |rng| FaultKind::PlaneFlap {
            plane: rng.gen_range(0..cfg.planes),
            repair_ms: cfg.flap_repair_ms,
        });
        arrivals(0x736c_6f77u64, cfg.straggler_mtbf_ms, &mut |_| FaultKind::Straggler {
            slowdown: cfg.straggler_slowdown,
            duration_ms: cfg.straggler_duration_ms,
        });
        arrivals(0x73_6463u64, cfg.sdc_mtbf_ms, &mut |rng| FaultKind::Sdc {
            detected: rng.gen_bool(cfg.sdc_detection_rate),
        });
        if cfg.link_mtbf_ms.is_finite() && cfg.link_mtbf_ms > 0.0 {
            assert!(cfg.links > 0, "link faults enabled but links == 0");
            arrivals(0x6c69_6e6b_u64, cfg.link_mtbf_ms, &mut |rng| FaultKind::LinkFail {
                link: rng.gen_range(0..cfg.links),
                repair_ms: cfg.link_repair_ms,
            });
        }

        events.sort_by(|a, b| {
            a.at_ms.total_cmp(&b.at_ms).then(kind_rank(&a.kind).cmp(&kind_rank(&b.kind)))
        });
        Self { replicas: cfg.replicas, planes: cfg.planes, links: cfg.links, events }
    }

    /// Project the plan's plane flaps onto a
    /// [`dsv3_collectives::failures::FlapSchedule`] for time-varying
    /// bandwidth studies.
    ///
    /// `FlapSchedule` is the **canonical** definition of which planes are
    /// down when: its `is_down_at` treats an interval as down-inclusive
    /// at the flap instant and up-exclusive at the repair instant, and
    /// [`FaultDriver`] matches that convention by delivering repairs
    /// before injections on ties. The cross-crate parity test
    /// (`tests/cross_crate.rs`) pins the two views together.
    #[must_use]
    pub fn flap_schedule(&self) -> FlapSchedule {
        let flaps = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::PlaneFlap { plane, repair_ms } => {
                    Some(PlaneFlap { plane, down_at_ms: e.at_ms, repair_ms })
                }
                _ => None,
            })
            .collect();
        FlapSchedule { planes: self.planes, flaps }
    }

    /// Project the plan's individual link failures onto a
    /// [`dsv3_netsim::chaos::LinkSchedule`] for the chaos flow simulator.
    ///
    /// Plan timestamps are milliseconds; the flow simulator runs in
    /// microseconds, so instants cross the unit boundary through the
    /// named [`dsv3_units::ms_to_us`] conversion (lint rule U2 flags
    /// the bare `* 1000.0` this used to be). The down-inclusive /
    /// up-exclusive interval convention carries over unchanged
    /// (`LinkFlap::is_down_at` matches `FlapSchedule` and the driver's
    /// repairs-before-injections tie order).
    #[must_use]
    pub fn link_schedule(&self) -> LinkSchedule {
        let flaps = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::LinkFail { link, repair_ms } => Some(LinkFlap {
                    link,
                    down_at_us: ms_to_us(e.at_ms),
                    repair_us: ms_to_us(repair_ms),
                }),
                _ => None,
            })
            .collect();
        LinkSchedule { flaps }
    }

    /// Crash (failure) arrival times in seconds, for feeding the training
    /// availability simulation.
    #[must_use]
    pub fn crash_times_s(&self) -> Vec<f64> {
        let mut times: Vec<f64> = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::ReplicaCrash { .. }))
            .map(|e| ms_to_s(e.at_ms))
            .collect();
        times.sort_by(f64::total_cmp);
        times
    }
}

fn kind_rank(k: &FaultKind) -> u8 {
    match k {
        FaultKind::ReplicaCrash { .. } => 0,
        FaultKind::PlaneFlap { .. } => 1,
        FaultKind::Straggler { .. } => 2,
        FaultKind::Sdc { .. } => 3,
        FaultKind::LinkFail { .. } => 4,
    }
}

/// Unit-mean exponential deviate.
fn exponential(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln()
}

/// Seeded Poisson generator parameters for [`FaultPlan::generate`].
///
/// A class is disabled by setting its MTBF to `f64::INFINITY` (the
/// default for every class), so configs opt *in* to each fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Seed; equal seeds produce identical plans.
    pub seed: u64,
    /// Generate events in `(0, horizon_ms]`.
    pub horizon_ms: f64,
    /// Decode replicas.
    pub replicas: usize,
    /// Network planes.
    pub planes: usize,
    /// Mean time between replica crashes (ms).
    pub crash_mtbf_ms: f64,
    /// Replica downtime per crash (ms).
    pub crash_repair_ms: f64,
    /// Mean time between plane flaps (ms).
    pub flap_mtbf_ms: f64,
    /// Plane downtime per flap (ms).
    pub flap_repair_ms: f64,
    /// Mean time between straggler episodes (ms).
    pub straggler_mtbf_ms: f64,
    /// Step-time multiplier while a straggler is active.
    pub straggler_slowdown: f64,
    /// Straggler episode length (ms).
    pub straggler_duration_ms: f64,
    /// Mean time between silent-data-corruption strikes (ms).
    pub sdc_mtbf_ms: f64,
    /// Probability a strike is caught by the checksum audit.
    pub sdc_detection_rate: f64,
    /// Individually failable network links (0 disables link faults).
    pub links: usize,
    /// Mean time between single-link failures (ms).
    pub link_mtbf_ms: f64,
    /// Link downtime per failure (ms).
    pub link_repair_ms: f64,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            horizon_ms: 60_000.0,
            replicas: 4,
            planes: 8,
            crash_mtbf_ms: f64::INFINITY,
            crash_repair_ms: 5_000.0,
            flap_mtbf_ms: f64::INFINITY,
            flap_repair_ms: 5_000.0,
            straggler_mtbf_ms: f64::INFINITY,
            straggler_slowdown: 1.5,
            straggler_duration_ms: 2_000.0,
            sdc_mtbf_ms: f64::INFINITY,
            sdc_detection_rate: 0.9,
            links: 0,
            link_mtbf_ms: f64::INFINITY,
            link_repair_ms: 2_000.0,
        }
    }
}

/// Surviving bandwidth fraction with `failed` of `planes` planes down,
/// clamped so at least one plane survives — the multi-plane fabric's
/// "degradation, not disconnection" contract (§5.1.1).
#[must_use]
pub fn bandwidth_retention(planes: usize, failed: usize) -> f64 {
    expected_retention(planes, failed.min(planes.saturating_sub(1)))
}

/// A system accepting fault injection from a [`FaultDriver`].
///
/// `seq` is the event's stable index in the driver's sorted timeline; a
/// fault with a duration delivers `heal` with the same `seq` it was
/// injected under, so implementors can pair the two without bookkeeping
/// of their own.
pub trait Injectable {
    /// A fault begins.
    fn inject(&mut self, seq: usize, event: &FaultEvent);
    /// The fault injected under `seq` finishes repairing.
    fn heal(&mut self, seq: usize, event: &FaultEvent);
}

/// Walks a [`FaultPlan`] as the consumer's clock advances, delivering
/// `inject`/`heal` callbacks in deterministic time order.
#[derive(Debug, Clone)]
pub struct FaultDriver {
    events: Vec<FaultEvent>,
    next: usize,
    /// Pending repairs: `(repair_at_ms, seq)`, kept sorted ascending.
    repairs: Vec<(f64, usize)>,
}

impl FaultDriver {
    /// Build a driver over `plan` (events are copied and time-sorted).
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        if let Err(e) = plan.validate() {
            // lint:allow(P1) — documented constructor contract (see `# Panics`): running a drill against an invalid plan would produce meaningless recovery metrics
            panic!("invalid fault plan: {e}");
        }
        let mut events = plan.events.clone();
        events.sort_by(|a, b| {
            a.at_ms.total_cmp(&b.at_ms).then(kind_rank(&a.kind).cmp(&kind_rank(&b.kind)))
        });
        Self { events, next: 0, repairs: Vec::new() }
    }

    /// Whether the driver will never deliver anything again.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.next >= self.events.len() && self.repairs.is_empty()
    }

    /// The next time anything (injection or repair) is due, if any —
    /// consumers fold this into their idle-advance so repairs are not
    /// slept through.
    #[must_use]
    pub fn next_wake_ms(&self) -> Option<f64> {
        let inject = self.events.get(self.next).map(|e| e.at_ms);
        let repair = self.repairs.first().map(|&(t, _)| t);
        match (inject, repair) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Deliver every injection and repair due at or before `now_ms`, in
    /// time order (repairs win ties so a resource heals before a new
    /// fault lands on it).
    pub fn poll(&mut self, now_ms: f64, sink: &mut dyn Injectable) {
        self.poll_impl(now_ms, sink, None);
    }

    /// [`FaultDriver::poll`] plus telemetry: every delivery also lands in
    /// `rec` as an instant event on the `pid` process track (one named
    /// thread per fault class), stamped with the fault's own sim-time
    /// (injections at `at_ms`, heals at the actual repair instant), and
    /// bumps the `{scope}.faults.{inject|heal}.{label}` counters.
    // lint:entry — FaultDriver::poll, the fault-injection pump every sim embeds.
    pub fn poll_traced(
        &mut self,
        now_ms: f64,
        sink: &mut dyn Injectable,
        rec: &mut Recorder,
        pid: u64,
        scope: &str,
    ) {
        if rec.is_enabled() {
            self.poll_impl(now_ms, sink, Some((rec, pid, scope)));
        } else {
            self.poll_impl(now_ms, sink, None);
        }
    }

    fn poll_impl(
        &mut self,
        now_ms: f64,
        sink: &mut dyn Injectable,
        mut tel: Option<(&mut Recorder, u64, &str)>,
    ) {
        loop {
            let inject_at = self.events.get(self.next).map(|e| e.at_ms);
            let repair_at = self.repairs.first().map(|&(t, _)| t);
            let do_repair = match (inject_at, repair_at) {
                (_, None) => false,
                (None, Some(r)) => r <= now_ms,
                (Some(i), Some(r)) => r <= now_ms && r <= i,
            };
            if do_repair {
                let (at, seq) = self.repairs.remove(0);
                let event = self.events[seq];
                if let Some((rec, pid, scope)) = tel.as_mut() {
                    let label = event.kind.label();
                    let tid = rec.thread(*pid, label);
                    rec.instant(*pid, tid, "fault", &format!("heal {label} #{seq}"), at * 1000.0);
                    rec.counter_add(&format!("{scope}.faults.heal.{label}"), 1);
                    rec.series(&format!("{scope}.faults.active"), at, self.repairs.len() as f64);
                }
                sink.heal(seq, &event);
                continue;
            }
            match inject_at {
                Some(t) if t <= now_ms => {
                    let seq = self.next;
                    let event = self.events[seq];
                    self.next += 1;
                    if let Some(d) = event.kind.duration_ms() {
                        let at = event.at_ms + d;
                        let pos =
                            self.repairs.partition_point(|&(r, s)| r < at || (r == at && s < seq));
                        self.repairs.insert(pos, (at, seq));
                    }
                    if let Some((rec, pid, scope)) = tel.as_mut() {
                        let label = event.kind.label();
                        let tid = rec.thread(*pid, label);
                        rec.instant(
                            *pid,
                            tid,
                            "fault",
                            &format!("inject {label} #{seq}"),
                            ms_to_us(event.at_ms),
                        );
                        rec.counter_add(&format!("{scope}.faults.inject.{label}"), 1);
                        // Outstanding (repairable) faults over time: the
                        // pending-repair queue length is exactly that.
                        rec.series(
                            &format!("{scope}.faults.active"),
                            event.at_ms,
                            self.repairs.len() as f64,
                        );
                    }
                    sink.inject(seq, &event);
                }
                _ => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        log: Vec<(String, usize, f64)>,
    }

    impl Injectable for Recorder {
        fn inject(&mut self, seq: usize, event: &FaultEvent) {
            self.log.push(("inject".into(), seq, event.at_ms));
        }
        fn heal(&mut self, seq: usize, event: &FaultEvent) {
            self.log.push(("heal".into(), seq, event.at_ms));
        }
    }

    fn crash(at_ms: f64, repair_ms: f64) -> FaultEvent {
        FaultEvent { at_ms, kind: FaultKind::ReplicaCrash { replica: 0, repair_ms } }
    }

    #[test]
    fn driver_delivers_in_time_order_with_repairs() {
        let plan = FaultPlan {
            replicas: 2,
            planes: 8,
            links: 0,
            events: vec![crash(10.0, 5.0), crash(12.0, 100.0)],
        };
        let mut d = FaultDriver::new(&plan);
        let mut r = Recorder::default();
        d.poll(9.0, &mut r);
        assert!(r.log.is_empty());
        assert_eq!(d.next_wake_ms(), Some(10.0));
        d.poll(20.0, &mut r);
        // inject@10, inject@12, heal@15 — both injections precede the heal.
        let ops: Vec<&str> = r.log.iter().map(|(op, _, _)| op.as_str()).collect();
        assert_eq!(ops, ["inject", "inject", "heal"]);
        assert_eq!(d.next_wake_ms(), Some(112.0));
        d.poll(500.0, &mut r);
        assert!(d.is_idle());
        assert_eq!(r.log.len(), 4);
    }

    #[test]
    fn heal_carries_the_matching_seq() {
        let plan = FaultPlan { replicas: 1, planes: 8, links: 0, events: vec![crash(1.0, 2.0)] };
        let mut d = FaultDriver::new(&plan);
        let mut r = Recorder::default();
        d.poll(10.0, &mut r);
        assert_eq!(r.log[0].1, r.log[1].1, "heal pairs with its inject");
    }

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let cfg = FaultPlanConfig {
            seed: 42,
            horizon_ms: 100_000.0,
            crash_mtbf_ms: 9_000.0,
            flap_mtbf_ms: 12_000.0,
            straggler_mtbf_ms: 30_000.0,
            sdc_mtbf_ms: 25_000.0,
            ..FaultPlanConfig::default()
        };
        let a = FaultPlan::generate(&cfg);
        let b = FaultPlan::generate(&cfg);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.events.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert!(a.validate().is_ok());
        let other = FaultPlan::generate(&FaultPlanConfig { seed: 43, ..cfg });
        assert_ne!(a, other);
    }

    #[test]
    fn disabled_classes_generate_nothing() {
        let plan = FaultPlan::generate(&FaultPlanConfig::default());
        assert!(plan.is_empty(), "all classes default to disabled");
    }

    #[test]
    fn validation_rejects_out_of_range_resources() {
        let bad = FaultPlan {
            replicas: 2,
            planes: 8,
            links: 0,
            events: vec![FaultEvent {
                at_ms: 1.0,
                kind: FaultKind::ReplicaCrash { replica: 5, repair_ms: 1.0 },
            }],
        };
        assert!(bad.validate().is_err());
        assert!(FaultPlan::healthy().validate().is_ok());
    }

    #[test]
    fn retention_clamps_to_one_survivor() {
        assert!((bandwidth_retention(8, 1) - 7.0 / 8.0).abs() < 1e-12);
        assert!(
            (bandwidth_retention(8, 8) - 1.0 / 8.0).abs() < 1e-12,
            "degradation, not disconnection"
        );
        assert!((bandwidth_retention(8, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn poll_traced_emits_instants_and_counters() {
        let plan = FaultPlan { replicas: 2, planes: 8, links: 0, events: vec![crash(10.0, 5.0)] };
        let mut d = FaultDriver::new(&plan);
        let mut sink = Recorder::default();
        let mut rec = dsv3_telemetry::Recorder::new();
        let pid = rec.process("drill/faults");
        d.poll_traced(100.0, &mut sink, &mut rec, pid, "drill");
        assert_eq!(sink.log.len(), 2, "inject + heal delivered");
        assert_eq!(rec.counters()["drill.faults.inject.replica-crash"], 1);
        assert_eq!(rec.counters()["drill.faults.heal.replica-crash"], 1);
        let instants: Vec<_> = rec.events().iter().filter(|e| e.ph == "i").collect();
        assert_eq!(instants.len(), 2);
        assert!((instants[0].ts - 10_000.0).abs() < 1e-9, "inject at at_ms in µs");
        assert!((instants[1].ts - 15_000.0).abs() < 1e-9, "heal at repair instant in µs");
    }

    #[test]
    fn poll_traced_with_disabled_recorder_matches_poll() {
        let plan = FaultPlan {
            replicas: 2,
            planes: 8,
            links: 0,
            events: vec![crash(10.0, 5.0), crash(12.0, 100.0)],
        };
        let mut plain = Recorder::default();
        FaultDriver::new(&plan).poll(500.0, &mut plain);
        let mut traced = Recorder::default();
        let mut rec = dsv3_telemetry::Recorder::disabled();
        FaultDriver::new(&plan).poll_traced(500.0, &mut traced, &mut rec, 0, "x");
        assert_eq!(plain.log, traced.log);
        assert!(rec.events().is_empty());
    }

    #[test]
    fn flap_schedule_projects_only_flaps() {
        let cfg = FaultPlanConfig {
            seed: 7,
            horizon_ms: 50_000.0,
            crash_mtbf_ms: 10_000.0,
            flap_mtbf_ms: 8_000.0,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(&cfg);
        let sched = plan.flap_schedule();
        let flap_count =
            plan.events.iter().filter(|e| matches!(e.kind, FaultKind::PlaneFlap { .. })).count();
        assert_eq!(sched.flaps.len(), flap_count);
        assert!(flap_count > 0);
        let crashes = plan.crash_times_s();
        assert!(!crashes.is_empty());
        assert!(crashes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn link_fail_generation_projects_onto_link_schedule() {
        let cfg = FaultPlanConfig {
            seed: 11,
            horizon_ms: 50_000.0,
            links: 16,
            link_mtbf_ms: 5_000.0,
            link_repair_ms: 1_500.0,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(&cfg);
        assert_eq!(plan, FaultPlan::generate(&cfg), "seeded generation is deterministic");
        assert!(plan.validate().is_ok());
        let fails: Vec<_> = plan
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::LinkFail { link, repair_ms } => Some((e.at_ms, link, repair_ms)),
                _ => None,
            })
            .collect();
        assert!(!fails.is_empty(), "finite MTBF generates link failures");
        assert!(fails.iter().all(|&(_, l, _)| l < 16));
        let sched = plan.link_schedule();
        assert_eq!(sched.flaps.len(), fails.len());
        for (flap, &(at_ms, link, repair_ms)) in sched.flaps.iter().zip(&fails) {
            assert_eq!(flap.link, link);
            assert!((flap.down_at_us - at_ms * 1000.0).abs() < 1e-9, "ms scales to µs");
            assert!((flap.repair_us - repair_ms * 1000.0).abs() < 1e-9);
            // Down-inclusive / up-exclusive convention survives projection.
            assert!(sched.is_down(link, flap.down_at_us));
            assert!(!sched.is_down(link, flap.down_at_us + flap.repair_us));
        }
    }

    #[test]
    fn link_fail_validation_checks_range() {
        let mut plan = FaultPlan::healthy();
        plan.links = 4;
        plan.events
            .push(FaultEvent { at_ms: 1.0, kind: FaultKind::LinkFail { link: 3, repair_ms: 2.0 } });
        assert!(plan.validate().is_ok());
        plan.events[0].kind = FaultKind::LinkFail { link: 4, repair_ms: 2.0 };
        assert!(plan.validate().is_err(), "link id must be below FaultPlan::links");
        plan.events[0].kind = FaultKind::LinkFail { link: 0, repair_ms: -1.0 };
        assert!(plan.validate().is_err(), "negative repair is rejected");
    }

    #[test]
    fn link_class_defaults_to_disabled_and_leaves_existing_plans_unchanged() {
        // The pre-link config fields produce the identical event stream
        // whether or not link faults exist as a class — golden safety for
        // every consumer that generates plans without opting in.
        let cfg = FaultPlanConfig {
            seed: 42,
            horizon_ms: 100_000.0,
            crash_mtbf_ms: 9_000.0,
            flap_mtbf_ms: 12_000.0,
            straggler_mtbf_ms: 30_000.0,
            sdc_mtbf_ms: 25_000.0,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(&cfg);
        assert!(plan.events.iter().all(|e| !matches!(e.kind, FaultKind::LinkFail { .. })));
        assert!(plan.link_schedule().is_empty());
    }

    #[test]
    fn every_fault_kind_roundtrips_through_json() {
        let kinds = [
            FaultKind::ReplicaCrash { replica: 1, repair_ms: 500.0 },
            FaultKind::PlaneFlap { plane: 0, repair_ms: 250.0 },
            FaultKind::Straggler { slowdown: 3.0, duration_ms: 1_000.0 },
            FaultKind::Sdc { detected: true },
            FaultKind::LinkFail { link: 2, repair_ms: 2_000.0 },
        ];
        for kind in kinds {
            let json = serde_json::to_string(&kind).expect("serializes");
            let back: FaultKind = serde_json::from_str(&json).expect("parses");
            assert_eq!(kind, back, "{json}");
        }
    }
}
