//! Recovery policies: deterministic exponential backoff and hedging.
//!
//! Recovery must not perturb byte-reproducibility, so the backoff is
//! jitter-free — the delay is a pure function of the attempt number.
//! Retry storms are instead broken up by the engine's deterministic
//! release ordering (release time, then submission order).

use serde::{Deserialize, Serialize};

/// Jitter-free exponential backoff: attempt `k` (1-based) waits
/// `min(base_ms · factor^(k−1), max_ms)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Backoff {
    /// First-retry delay, milliseconds.
    pub base_ms: f64,
    /// Multiplier between consecutive attempts.
    pub factor: f64,
    /// Ceiling on any single delay, milliseconds.
    pub max_ms: f64,
}

impl Backoff {
    /// Delay before retry `attempt` (1-based; attempt 0 returns 0).
    #[must_use]
    pub fn delay_ms(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        (self.base_ms * self.factor.powi(attempt as i32 - 1)).min(self.max_ms)
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self { base_ms: 50.0, factor: 2.0, max_ms: 5_000.0 }
    }
}

/// How a consumer reacts to faults striking its in-flight work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Delay schedule between a crash and the requeued re-prefill.
    pub backoff: Backoff,
    /// Crashes a single request survives before being rejected. With
    /// `max_retries = 3`, the fourth crash of the same request rejects it.
    pub max_retries: u32,
    /// Spawn a redundant clone of a request the first time a crash takes
    /// it down; first copy to finish wins, the loser is cancelled.
    pub hedge: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self { backoff: Backoff::default(), max_retries: 3, hedge: false }
    }
}

impl RecoveryPolicy {
    /// The default policy with hedging switched on.
    #[must_use]
    pub fn hedged() -> Self {
        Self { hedge: true, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_saturates() {
        let b = Backoff::default();
        assert!((b.delay_ms(0) - 0.0).abs() < 1e-12);
        assert!((b.delay_ms(1) - 50.0).abs() < 1e-12);
        assert!((b.delay_ms(2) - 100.0).abs() < 1e-12);
        assert!((b.delay_ms(3) - 200.0).abs() < 1e-12);
        assert!((b.delay_ms(20) - 5_000.0).abs() < 1e-12, "capped at max_ms");
    }

    #[test]
    fn backoff_is_deterministic() {
        let b = Backoff { base_ms: 10.0, factor: 3.0, max_ms: 1_000.0 };
        assert_eq!(b.delay_ms(4), b.delay_ms(4));
        assert!((b.delay_ms(4) - 270.0).abs() < 1e-9);
    }

    #[test]
    fn hedged_policy_flips_only_the_hedge_bit() {
        let h = RecoveryPolicy::hedged();
        let d = RecoveryPolicy::default();
        assert!(h.hedge && !d.hedge);
        assert_eq!(h.backoff, d.backoff);
        assert_eq!(h.max_retries, d.max_retries);
    }
}
