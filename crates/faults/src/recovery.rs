//! Recovery policies: deterministic exponential backoff and hedging.
//!
//! Recovery must not perturb byte-reproducibility, so the default backoff
//! is jitter-free — the delay is a pure function of the attempt number.
//! For overload experiments that is exactly wrong: synchronized clients
//! retry in waves and re-create the spike that shed them. [`Backoff`] can
//! therefore opt into *decorrelated jitter* ([`Backoff::delay_ms_jittered`]),
//! which spreads retries over a seeded random interval while staying fully
//! deterministic per seed. With `jitter` disabled the jittered entry point
//! degrades to [`Backoff::delay_ms`] without touching the RNG, so the
//! default path stays byte-identical.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Exponential backoff: attempt `k` (1-based) waits
/// `min(base_ms · factor^(k−1), max_ms)`, or a decorrelated-jitter draw
/// when [`jitter`](Self::jitter) is on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Backoff {
    /// First-retry delay, milliseconds.
    pub base_ms: f64,
    /// Multiplier between consecutive attempts.
    pub factor: f64,
    /// Ceiling on any single delay, milliseconds.
    pub max_ms: f64,
    /// Decorrelate retries: [`delay_ms_jittered`](Self::delay_ms_jittered)
    /// draws uniformly from `[base_ms, 3 · prev_ms]` (clamped to
    /// `max_ms`) instead of following the deterministic schedule. Off by
    /// default — the jitter-free path is byte-identical to before this
    /// switch existed.
    pub jitter: bool,
}

impl Backoff {
    /// Delay before retry `attempt` (1-based; attempt 0 returns 0).
    #[must_use]
    pub fn delay_ms(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        (self.base_ms * self.factor.powi(attempt as i32 - 1)).min(self.max_ms)
    }

    /// Decorrelated-jitter delay (AWS-style): uniform in
    /// `[base_ms, 3 · max(prev_ms, base_ms)]`, capped at `max_ms`, where
    /// `prev_ms` is the delay the *previous* retry of the same request
    /// waited (pass 0 before the first retry). Each caller threads its own
    /// `prev_ms` state, so independent requests decorrelate instead of
    /// retrying in lockstep waves.
    ///
    /// With [`jitter`](Self::jitter) disabled this is exactly
    /// [`delay_ms`](Self::delay_ms) and the RNG is **not** consumed —
    /// enabling the field in a config that never sets it cannot perturb
    /// any other seeded stream.
    #[must_use]
    pub fn delay_ms_jittered<R: Rng>(&self, attempt: u32, prev_ms: f64, rng: &mut R) -> f64 {
        if !self.jitter {
            return self.delay_ms(attempt);
        }
        if attempt == 0 {
            return 0.0;
        }
        let lo = self.base_ms;
        let hi = (3.0 * prev_ms.max(self.base_ms)).min(self.max_ms).max(lo);
        let u: f64 = rng.gen_range(0.0..1.0);
        lo + u * (hi - lo)
    }

    /// This backoff with decorrelated jitter switched on.
    #[must_use]
    pub fn jittered(self) -> Self {
        Self { jitter: true, ..self }
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self { base_ms: 50.0, factor: 2.0, max_ms: 5_000.0, jitter: false }
    }
}

/// How a consumer reacts to faults striking its in-flight work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Delay schedule between a crash and the requeued re-prefill.
    pub backoff: Backoff,
    /// Crashes a single request survives before being rejected. With
    /// `max_retries = 3`, the fourth crash of the same request rejects it.
    pub max_retries: u32,
    /// Spawn a redundant clone of a request the first time a crash takes
    /// it down; first copy to finish wins, the loser is cancelled.
    pub hedge: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self { backoff: Backoff::default(), max_retries: 3, hedge: false }
    }
}

impl RecoveryPolicy {
    /// The default policy with hedging switched on.
    #[must_use]
    pub fn hedged() -> Self {
        Self { hedge: true, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    use super::*;

    #[test]
    fn backoff_doubles_then_saturates() {
        let b = Backoff::default();
        assert!((b.delay_ms(0) - 0.0).abs() < 1e-12);
        assert!((b.delay_ms(1) - 50.0).abs() < 1e-12);
        assert!((b.delay_ms(2) - 100.0).abs() < 1e-12);
        assert!((b.delay_ms(3) - 200.0).abs() < 1e-12);
        assert!((b.delay_ms(20) - 5_000.0).abs() < 1e-12, "capped at max_ms");
    }

    #[test]
    fn backoff_is_deterministic() {
        let b = Backoff { base_ms: 10.0, factor: 3.0, max_ms: 1_000.0, jitter: false };
        assert_eq!(b.delay_ms(4), b.delay_ms(4));
        assert!((b.delay_ms(4) - 270.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_jitter_is_byte_identical_and_leaves_the_rng_alone() {
        // Regression: the jittered entry point with `jitter: false` must
        // reproduce `delay_ms` bit-for-bit AND consume zero RNG draws, so
        // threading it through existing code paths changes nothing.
        let b = Backoff::default();
        let mut rng = StdRng::seed_from_u64(99);
        let mut untouched = StdRng::seed_from_u64(99);
        for attempt in 0..8 {
            let jittered = b.delay_ms_jittered(attempt, 123.0, &mut rng);
            assert!(jittered.to_bits() == b.delay_ms(attempt).to_bits(), "attempt {attempt}");
        }
        assert_eq!(rng.next_u64(), untouched.next_u64(), "rng stream must be untouched");
    }

    #[test]
    fn jitter_draws_stay_in_the_decorrelated_envelope() {
        let b = Backoff::default().jittered();
        let mut rng = StdRng::seed_from_u64(7);
        let mut prev = 0.0f64;
        for attempt in 1..50 {
            let hi = (3.0 * prev.max(b.base_ms)).min(b.max_ms).max(b.base_ms);
            let d = b.delay_ms_jittered(attempt, prev, &mut rng);
            assert!(
                d >= b.base_ms && d <= hi,
                "attempt {attempt}: {d} not in [{}, {hi}]",
                b.base_ms
            );
            assert!(d <= b.max_ms);
            prev = d;
        }
    }

    #[test]
    fn jitter_is_seeded_and_decorrelates() {
        let b = Backoff::default().jittered();
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut prev = 0.0;
            (1..20u32)
                .map(|a| {
                    prev = b.delay_ms_jittered(a, prev, &mut rng);
                    prev
                })
                .collect::<Vec<f64>>()
        };
        assert_eq!(draw(5), draw(5), "same seed, same schedule");
        let (a, c) = (draw(5), draw(6));
        assert!(a.iter().zip(&c).any(|(x, y)| x != y), "different seeds must decorrelate");
        // Attempt 0 short-circuits before the draw even when jitter is on.
        let mut rng = StdRng::seed_from_u64(1);
        let mut pristine = StdRng::seed_from_u64(1);
        assert_eq!(b.delay_ms_jittered(0, 50.0, &mut rng), 0.0);
        assert_eq!(rng.next_u64(), pristine.next_u64());
    }

    #[test]
    fn hedged_policy_flips_only_the_hedge_bit() {
        let h = RecoveryPolicy::hedged();
        let d = RecoveryPolicy::default();
        assert!(h.hedge && !d.hedge);
        assert_eq!(h.backoff, d.backoff);
        assert_eq!(h.max_retries, d.max_retries);
    }
}
