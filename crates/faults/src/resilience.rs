//! Fleet-scale training resilience: tiered checkpoints, recovery
//! policies, and SDC rollback under a composed failure timeline.
//!
//! This walker generalizes [`crate::training::simulate_goodput`] along
//! the three axes §6.1 of the paper argues matter at fleet scale:
//!
//! 1. **Where checkpoints live.** A [`CheckpointStack`] of device /
//!    host-RAM / remote tiers with asynchronous bandwidth-limited
//!    drains; in-flight drains die with a failure, surviving tiers are
//!    ranked by progress (then restore cost) at recovery time. Bytes
//!    come from [`dsv3_memtl::checkpoint_footprint`], not a constant.
//! 2. **How the job comes back.** [`RecoveryKind::ColdRestart`] pays
//!    the full reschedule; `SparePool` hot-swaps with a provisioning
//!    lag until the pool drains; `ElasticShrink` re-plans the grid via
//!    [`dsv3_parallel::replan_shrink`] and trains degraded until
//!    backfill.
//! 3. **What a failure even is.** Hardware failures arrive per
//!    component class ([`crate::fleet`]); silent data corruption
//!    arrives separately, is *detected* only after an exponential lag
//!    (or at the next verification replay), and forces a rollback past
//!    the last checkpoint captured before the corruption instant.
//!
//! The degenerate configuration — one synchronous tier, cold restart,
//! exponential arrivals, SDC disabled — collapses to the exact regime
//! of the Young/Daly analytic in `dsv3_model::availability`, and tests
//! hold the two within the same 5% gate `fault_drill` enforces.

use crate::fleet::{FleetComponent, FleetFailure};
use crate::tiers::{CheckpointStack, TierKind};
use dsv3_memtl::CheckpointFootprint;
use dsv3_parallel::{replan_shrink, TrainStepConfig};
use dsv3_telemetry::Recorder;
use dsv3_units::{s_to_ms, s_to_us};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Unit-mean exponential deviate (module-local SDC streams).
fn exponential(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln()
}

/// Per-rank checkpoint traffic, bytes. Usually built from memtl's
/// schedule-resolved footprint via [`CheckpointBytes::from_footprint`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointBytes {
    /// Bytes each rank writes per checkpoint (its weight + optimizer
    /// shard slice).
    pub write_bytes: f64,
    /// Bytes the critical-path rank reads at restore.
    pub restore_bytes: f64,
}

impl CheckpointBytes {
    /// Critical-path sizing from a memtl checkpoint footprint: the
    /// slowest rank's write and restore slices bound the job.
    #[must_use]
    pub fn from_footprint(fp: &CheckpointFootprint) -> Self {
        Self { write_bytes: fp.max_write_bytes, restore_bytes: fp.max_restore_bytes }
    }
}

/// How the job resumes after a hardware failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecoveryKind {
    /// Full reschedule: pay `restart_s` plus the restore read.
    ColdRestart,
    /// Hot spares: pay only `provision_s` plus restore while the pool
    /// lasts; consumed spares return after the repair turnaround.
    SparePool {
        /// Spare nodes provisioned up front.
        spares: usize,
        /// Seconds to swap a spare in (attach, warm, rejoin).
        provision_s: f64,
    },
    /// Shrink the grid and keep training degraded until backfill.
    ElasticShrink {
        /// Seconds to re-plan and re-shard onto the survivors.
        replan_s: f64,
        /// The healthy training grid the re-plan shrinks (boxed: the
        /// grid config dwarfs the other variants).
        train: Box<TrainStepConfig>,
        /// Healthy expert-parallel group size.
        ep: usize,
    },
}

/// Silent-data-corruption process. `mtbf_s = f64::INFINITY` disables
/// corruption entirely (the degenerate gate's configuration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SdcConfig {
    /// Mean wall seconds between corruption events.
    pub mtbf_s: f64,
    /// Mean detection lag, seconds (exponential): how long the job
    /// trains on poisoned state before anything notices.
    pub detection_mean_s: f64,
    /// Run a verification replay every this many checkpoints
    /// (0 disables); it catches any corruption older than itself.
    pub verify_every: usize,
    /// Blocking seconds each verification replay costs.
    pub verify_cost_s: f64,
}

impl SdcConfig {
    /// No corruption, no verification tax.
    #[must_use]
    pub fn disabled() -> Self {
        Self { mtbf_s: f64::INFINITY, detection_mean_s: 0.0, verify_every: 0, verify_cost_s: 0.0 }
    }

    /// Is the corruption process active?
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.mtbf_s.is_finite()
    }
}

/// Full resilience scenario: checkpoint geometry, recovery policy,
/// corruption process, and the recovery cost constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Useful seconds of training per checkpoint segment.
    pub interval_s: f64,
    /// Per-rank checkpoint traffic (from memtl).
    pub ckpt: CheckpointBytes,
    /// Tier pipeline the checkpoints flow through.
    pub stack: CheckpointStack,
    /// Recovery policy after hardware failures.
    pub recovery: RecoveryKind,
    /// Corruption process and verification-replay policy.
    pub sdc: SdcConfig,
    /// Seconds of a full cold reschedule (also the SDC rollback and
    /// spare-exhausted fallback cost), excluding the restore read.
    pub restart_s: f64,
    /// Seconds until failed hardware returns (refills the spare pool /
    /// backfills a shrunk grid).
    pub repair_s: f64,
    /// GPUs taken down by one failure (elastic shrink granularity).
    pub gpus_per_failure: usize,
    /// Wall-clock horizon to simulate, seconds.
    pub horizon_s: f64,
    /// Seed for the SDC corruption and detection-lag streams.
    pub seed: u64,
}

/// Why a resilience simulation request was rejected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResilienceError {
    /// `interval_s` must be positive.
    NonPositiveInterval {
        /// The rejected interval.
        interval_s: f64,
    },
    /// `horizon_s` must be positive.
    NonPositiveHorizon {
        /// The rejected horizon.
        horizon_s: f64,
    },
    /// Checkpoint bytes must be positive.
    NonPositiveBytes,
    /// The tier stack failed structural validation.
    InvalidStack {
        /// Human-readable violation from [`CheckpointStack::validate`].
        reason: String,
    },
    /// The failure timeline must be sorted ascending.
    UnsortedFailures {
        /// First out-of-order position.
        index: usize,
    },
}

impl std::fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilienceError::NonPositiveInterval { interval_s } => {
                write!(f, "checkpoint interval must be positive, got {interval_s} s")
            }
            ResilienceError::NonPositiveHorizon { horizon_s } => {
                write!(f, "horizon must be positive, got {horizon_s} s")
            }
            ResilienceError::NonPositiveBytes => {
                write!(f, "checkpoint write/restore bytes must be positive")
            }
            ResilienceError::InvalidStack { reason } => write!(f, "invalid tier stack: {reason}"),
            ResilienceError::UnsortedFailures { index } => {
                write!(f, "failure timeline must be sorted ascending (violated at index {index})")
            }
        }
    }
}

impl std::error::Error for ResilienceError {}

/// Where the wasted wall clock went, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WasteBreakdown {
    /// Banked-then-lost plus partial-segment work discarded, seconds
    /// of healthy-equivalent compute.
    pub lost_work_s: f64,
    /// Reschedule / provisioning / re-plan downtime.
    pub restart_s: f64,
    /// Restore reads out of checkpoint tiers.
    pub restore_s: f64,
    /// Verification-replay tax.
    pub verify_s: f64,
    /// Extra wall clock paid to degraded (shrunk-grid) throughput.
    pub degraded_s: f64,
    /// Blocking checkpoint-write stalls.
    pub checkpoint_stall_s: f64,
}

/// Outcome of one resilience run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Healthy-equivalent useful seconds banked per wall second.
    pub goodput: f64,
    /// Useful seconds banked (surviving checkpointed progress).
    pub useful_s: f64,
    /// Wall clock consumed, seconds.
    pub wall_s: f64,
    /// Hardware failures that interrupted work.
    pub failures: usize,
    /// Total interrupting events (hardware + SDC rollbacks).
    pub interrupts: usize,
    /// Hardware failures absorbed by in-progress downtime.
    pub absorbed: usize,
    /// Rollbacks forced by detected corruption.
    pub sdc_rollbacks: usize,
    /// Checkpoints successfully captured into the entry tier.
    pub checkpoints: usize,
    /// Verification replays executed.
    pub verifications: usize,
    /// Failures answered from the spare pool.
    pub spare_swaps: usize,
    /// Failures that found the pool empty and fell back cold.
    pub spare_exhausted: usize,
    /// Shrink re-plans taken.
    pub elastic_events: usize,
    /// Restores served per tier position, plus a final slot for
    /// from-scratch (no surviving checkpoint).
    pub restores_by_tier: Vec<usize>,
    /// Mean time from interrupt to regaining the pre-interrupt
    /// progress point, seconds.
    pub mean_ettr_s: f64,
    /// Where the wasted wall clock went.
    pub waste: WasteBreakdown,
    /// Goodput of the same configuration with an empty timeline and no
    /// corruption: the checkpoint + verification overhead bound.
    pub no_fault_goodput: f64,
}

/// A checkpoint copy resident in (or draining toward) a tier.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stamp {
    /// Wall instant the checkpoint was captured (entry-tier landing).
    capture_wall: f64,
    /// Banked progress the checkpoint encodes, seconds.
    progress: f64,
    /// Wall instant the copy finished landing in *this* tier.
    landed_wall: f64,
}

/// Mutable per-tier state during the walk.
#[derive(Debug, Clone, Copy)]
struct TierState {
    newest: Option<Stamp>,
    inflight: Option<Stamp>,
    /// When the in-flight drain (if any) completes; also the earliest
    /// instant the tier's ingest link is free again.
    inflight_done: f64,
}

const CORRUPT_SALT: u64 = 0x73_6463_2d74; // sdc corruption arrivals
const DETECT_SALT: u64 = 0x73_6463_2d64; // sdc detection lags

/// Pregenerate `(corruption, lag)` pairs over the horizon.
fn sdc_timeline(sdc: &SdcConfig, seed: u64, horizon_s: f64) -> Vec<(f64, f64)> {
    if !sdc.enabled() {
        return Vec::new();
    }
    let mut arr = StdRng::seed_from_u64(seed ^ CORRUPT_SALT);
    let mut lag = StdRng::seed_from_u64(seed ^ DETECT_SALT);
    let mut out = Vec::new();
    let mut t = 0.0f64;
    loop {
        t += exponential(&mut arr) * sdc.mtbf_s;
        if t > horizon_s {
            return out;
        }
        out.push((t, exponential(&mut lag) * sdc.detection_mean_s));
    }
}

fn validate(cfg: &ResilienceConfig, failures: &[FleetFailure]) -> Result<(), ResilienceError> {
    if cfg.interval_s <= 0.0 || cfg.interval_s.is_nan() {
        return Err(ResilienceError::NonPositiveInterval { interval_s: cfg.interval_s });
    }
    if cfg.horizon_s <= 0.0 || cfg.horizon_s.is_nan() {
        return Err(ResilienceError::NonPositiveHorizon { horizon_s: cfg.horizon_s });
    }
    let bad_bytes = |b: f64| b <= 0.0 || b.is_nan();
    if bad_bytes(cfg.ckpt.write_bytes) || bad_bytes(cfg.ckpt.restore_bytes) {
        return Err(ResilienceError::NonPositiveBytes);
    }
    if let Err(reason) = cfg.stack.validate() {
        return Err(ResilienceError::InvalidStack { reason });
    }
    if let Some(i) = failures.windows(2).position(|w| w[0].at_s > w[1].at_s) {
        return Err(ResilienceError::UnsortedFailures { index: i + 1 });
    }
    Ok(())
}

/// Simulate a resilience scenario against a fleet failure timeline.
///
/// # Errors
///
/// [`ResilienceError`] on a non-positive interval/horizon/byte count,
/// an invalid tier stack, or an unsorted timeline.
pub fn simulate_resilience(
    cfg: &ResilienceConfig,
    failures: &[FleetFailure],
) -> Result<ResilienceReport, ResilienceError> {
    let mut rec = Recorder::disabled();
    simulate_resilience_traced(cfg, failures, &mut rec, "resilience")
}

/// The walker: everything in one pass so the degenerate path stays a
/// tight segment loop.
struct Walker<'a> {
    cfg: &'a ResilienceConfig,
    tiers: Vec<TierState>,
    /// Retained remote-store history (newest last); populated only when
    /// SDC is enabled, so the degenerate path never allocates.
    history: Vec<Stamp>,
    keep_history: bool,
    factor_cache: BTreeMap<usize, f64>,
}

impl Walker<'_> {
    /// Land finished drains and start new ones, to fixpoint, as of
    /// `now`. Drains are skip-to-newest: each tier copies the *current*
    /// newest of its upstream tier, so a slow remote link skips
    /// intermediate checkpoints instead of queueing them.
    fn advance_drains(&mut self, now: f64) {
        if self.cfg.stack.synchronous || self.tiers.len() < 2 {
            return;
        }
        loop {
            let mut changed = false;
            for i in 1..self.tiers.len() {
                if self.tiers[i].inflight.is_some() && self.tiers[i].inflight_done <= now {
                    let mut st = self.tiers[i].inflight.take().unwrap_or(Stamp {
                        capture_wall: 0.0,
                        progress: 0.0,
                        landed_wall: 0.0,
                    });
                    st.landed_wall = self.tiers[i].inflight_done;
                    self.tiers[i].newest = Some(st);
                    if self.keep_history && i == self.tiers.len() - 1 {
                        self.history.push(st);
                    }
                    changed = true;
                }
                if self.tiers[i].inflight.is_none() {
                    let up = self.tiers[i - 1].newest;
                    let cur = self.tiers[i].newest.map_or(-1.0, |s| s.progress);
                    if let Some(up) = up {
                        if up.landed_wall <= now && up.progress > cur {
                            let start = up.landed_wall.max(self.tiers[i].inflight_done);
                            let dur = self.cfg.stack.tiers[i].write_s(self.cfg.ckpt.write_bytes);
                            self.tiers[i].inflight = Some(up);
                            self.tiers[i].inflight_done = start + dur;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// Record a freshly captured checkpoint in the entry tier (all
    /// tiers when synchronous).
    fn capture(&mut self, capture_wall: f64, progress: f64) {
        let st = Stamp { capture_wall, progress, landed_wall: capture_wall };
        if self.cfg.stack.synchronous {
            for (i, t) in self.tiers.iter_mut().enumerate() {
                t.newest = Some(st);
                if self.keep_history && i == self.cfg.stack.tiers.len() - 1 {
                    self.history.push(st);
                }
            }
            // dedupe: history pushed once per capture above only for the
            // last tier, so nothing further to do.
        } else {
            self.tiers[0].newest = Some(st);
            if self.keep_history && self.tiers.len() == 1 {
                self.history.push(st);
            }
            self.advance_drains(capture_wall);
        }
    }

    /// Drop in-flight drains and non-surviving copies after a hardware
    /// failure of `component`.
    fn apply_survival(&mut self, component: FleetComponent) {
        for (i, t) in self.tiers.iter_mut().enumerate() {
            t.inflight = None;
            if !self.cfg.stack.tiers[i].survives(component) {
                t.newest = None;
            }
        }
        if let Some(last) = self.cfg.stack.tiers.last() {
            if !last.survives(component) {
                self.history.clear();
            }
        }
    }

    /// Best restorable stamp: max progress, tiebreak cheapest restore.
    /// Returns `(tier index or tiers.len() for scratch, stamp, restore
    /// seconds)`. The implicit progress-0 state is always restorable.
    fn best_restore(&self, max_capture_wall: f64) -> (usize, Stamp, f64) {
        let mut best: Option<(usize, Stamp, f64)> = None;
        for (i, t) in self.tiers.iter().enumerate() {
            let Some(st) = t.newest else { continue };
            if st.capture_wall > max_capture_wall {
                continue;
            }
            let cost = self.cfg.stack.tiers[i].restore_s(self.cfg.ckpt.restore_bytes);
            let better = match best {
                None => true,
                Some((_, b, bc)) => {
                    st.progress > b.progress || (st.progress == b.progress && cost < bc)
                }
            };
            if better {
                best = Some((i, st, cost));
            }
        }
        if best.is_none() && self.keep_history {
            // Tainted tiers may hide an older clean remote copy.
            let last = self.tiers.len() - 1;
            let cost = self.cfg.stack.tiers[last].restore_s(self.cfg.ckpt.restore_bytes);
            if let Some(st) = self.history.iter().rev().find(|s| s.capture_wall <= max_capture_wall)
            {
                best = Some((last, *st, cost));
            }
        }
        best.unwrap_or((
            self.tiers.len(),
            Stamp { capture_wall: 0.0, progress: 0.0, landed_wall: 0.0 },
            0.0,
        ))
    }

    /// Invalidate every copy captured after the corruption instant.
    fn taint_after(&mut self, t_c: f64) {
        for t in &mut self.tiers {
            if t.newest.is_some_and(|s| s.capture_wall > t_c) {
                t.newest = None;
            }
            t.inflight = None;
        }
        self.history.retain(|s| s.capture_wall <= t_c);
    }

    /// Degraded throughput factor for a shrunk-grid down-count.
    fn shrink_factor(&mut self, down: usize) -> f64 {
        if down == 0 {
            return 1.0;
        }
        let RecoveryKind::ElasticShrink { ref train, ep, .. } = self.cfg.recovery else {
            return 1.0;
        };
        if let Some(f) = self.factor_cache.get(&down) {
            return *f;
        }
        let lost = down * self.cfg.gpus_per_failure;
        let available = train.gpus.saturating_sub(lost);
        // An unshrinkable grid (survivors can't host one pipeline lane)
        // degenerates to a full stop until backfill; model it as cold
        // throughput 1.0 after the restart cost — unreachable for the
        // fleet shapes the experiments sweep.
        let f = replan_shrink(train, ep, available).map_or(1.0, |p| p.throughput_factor);
        self.factor_cache.insert(down, f);
        f
    }
}

/// Traced variant of [`simulate_resilience`]: emits goodput/backlog/
/// fleet-health series, per-failure instants, and per-class counters
/// under `scope` into `rec`.
///
/// # Errors
///
/// Same contract as [`simulate_resilience`].
// lint:entry
pub fn simulate_resilience_traced(
    cfg: &ResilienceConfig,
    failures: &[FleetFailure],
    rec: &mut Recorder,
    scope: &str,
) -> Result<ResilienceReport, ResilienceError> {
    validate(cfg, failures)?;
    let pid = rec.process(scope);
    let tid = rec.thread(pid, "events");

    let n_tiers = cfg.stack.tiers.len();
    let keep_history = cfg.sdc.enabled()
        && cfg.stack.tiers.last().is_some_and(|t| t.kind == TierKind::RemoteStore);
    let mut w = Walker {
        cfg,
        tiers: vec![TierState { newest: None, inflight: None, inflight_done: 0.0 }; n_tiers],
        history: Vec::new(),
        keep_history,
        factor_cache: BTreeMap::new(),
    };

    let blocking_s = cfg.stack.blocking_write_s(cfg.ckpt.write_bytes);
    let verify_amortized_s = if cfg.sdc.verify_every > 0 {
        cfg.sdc.verify_cost_s / cfg.sdc.verify_every as f64
    } else {
        0.0
    };
    let no_fault_goodput = cfg.interval_s / (cfg.interval_s + blocking_s + verify_amortized_s);

    // The degenerate shape (one synchronous tier, cold restart, no SDC,
    // no tracing) is the regime `simulate_goodput` already walked; a
    // dedicated tight loop keeps the generalisation tax off it. The
    // arithmetic mirrors the general walk operation-for-operation, so
    // the two paths produce bit-identical reports.
    if !rec.is_enabled()
        && matches!(cfg.recovery, RecoveryKind::ColdRestart)
        && !cfg.sdc.enabled()
        && cfg.sdc.verify_every == 0
        && cfg.stack.synchronous
        && cfg.stack.tiers.len() == 1
    {
        return Ok(degenerate_walk(cfg, failures, blocking_s, no_fault_goodput));
    }

    let sdc_events = sdc_timeline(&cfg.sdc, cfg.seed, cfg.horizon_s);
    let mut sdc_iter = sdc_events.iter().copied();
    let mut pending_sdc: Option<(f64, f64)> = None; // (t_c, t_d by lag)

    let mut fail_iter = failures.iter().copied();
    let mut pending_fail = fail_iter.next();

    let mut spares_available = match cfg.recovery {
        RecoveryKind::SparePool { spares, .. } => spares,
        _ => 0,
    };
    let mut refills: VecDeque<f64> = VecDeque::new();
    let mut backfills: VecDeque<f64> = VecDeque::new();
    let mut down_count = 0usize;

    let mut wall = 0.0f64;
    let mut banked = 0.0f64;
    let mut report = ResilienceReport {
        goodput: 0.0,
        useful_s: 0.0,
        wall_s: 0.0,
        failures: 0,
        interrupts: 0,
        absorbed: 0,
        sdc_rollbacks: 0,
        checkpoints: 0,
        verifications: 0,
        spare_swaps: 0,
        spare_exhausted: 0,
        elastic_events: 0,
        restores_by_tier: vec![0; n_tiers + 1],
        mean_ettr_s: 0.0,
        waste: WasteBreakdown::default(),
        no_fault_goodput,
    };
    let mut ettr_sum_s = 0.0f64;

    while wall < cfg.horizon_s {
        // Repair events that matured during the last segment/downtime.
        while refills.front().is_some_and(|&t| t <= wall) {
            refills.pop_front();
            spares_available += 1;
        }
        while backfills.front().is_some_and(|&t| t <= wall) {
            backfills.pop_front();
            down_count = down_count.saturating_sub(1);
        }
        // Failures landing inside completed downtime are absorbed by it.
        while pending_fail.is_some_and(|f| f.at_s <= wall) {
            report.absorbed += 1;
            pending_fail = fail_iter.next();
        }
        // Corruption can only strike live training state.
        if pending_sdc.is_none() {
            pending_sdc = loop {
                match sdc_iter.next() {
                    Some((tc, _)) if tc <= wall => continue,
                    other => break other,
                }
            };
        }

        let factor = w.shrink_factor(down_count);
        let compute_s = cfg.interval_s / factor;
        let verify_this = cfg.sdc.verify_every > 0
            && (report.checkpoints + 1).is_multiple_of(cfg.sdc.verify_every);
        let verify_cost = if verify_this { cfg.sdc.verify_cost_s } else { 0.0 };
        let seg_wall = compute_s + blocking_s + verify_cost;
        let seg_end = wall + seg_wall;
        let capture_at = wall + compute_s + blocking_s;

        // Earliest interrupt inside this segment: hardware failure, or
        // a corruption whose detection (lag or verification replay)
        // matures before the segment ends.
        let hw_at = pending_fail.map(|f| f.at_s).filter(|&t| t < seg_end);
        let sdc_at = pending_sdc.and_then(|(tc, lag)| {
            if tc >= seg_end {
                return None;
            }
            let mut td = tc + lag;
            if verify_this && tc < seg_end {
                td = td.min(seg_end);
            }
            (td <= seg_end).then_some(td.max(tc))
        });

        let hw_first = match (hw_at, sdc_at) {
            (Some(h), Some(s)) => Some(h <= s),
            (Some(_), None) => Some(true),
            (None, Some(_)) => Some(false),
            (None, None) => None,
        };

        let Some(hw_first) = hw_first else {
            // Clean segment: bank it.
            banked += cfg.interval_s;
            report.checkpoints += 1;
            report.waste.checkpoint_stall_s += blocking_s;
            if factor < 1.0 {
                report.waste.degraded_s += compute_s - cfg.interval_s;
            }
            if verify_this {
                report.verifications += 1;
                report.waste.verify_s += verify_cost;
            }
            w.capture(capture_at, banked);
            wall = seg_end;
            if report.checkpoints.is_multiple_of(64) && rec.is_enabled() {
                rec.series(&format!("{scope}.goodput"), s_to_ms(wall), banked / wall);
                rec.series(&format!("{scope}.gpus_down"), s_to_ms(wall), down_count as f64);
            }
            continue;
        };

        report.interrupts += 1;
        if hw_first {
            // Hardware failure mid-segment: partial work is gone.
            let f = pending_fail
                .unwrap_or(FleetFailure { at_s: seg_end, component: FleetComponent::Gpu });
            pending_fail = fail_iter.next();
            report.failures += 1;
            let partial = (f.at_s - wall).min(compute_s) * factor;
            w.advance_drains(f.at_s);
            w.apply_survival(f.component);
            let (tier_idx, stamp, restore_s) = w.best_restore(f.at_s);
            report.restores_by_tier[tier_idx] += 1;

            let mut down_s = restore_s;
            match cfg.recovery {
                RecoveryKind::ColdRestart => down_s += cfg.restart_s,
                RecoveryKind::SparePool { provision_s, .. } => {
                    if spares_available > 0 {
                        spares_available -= 1;
                        refills.push_back(f.at_s + cfg.repair_s);
                        report.spare_swaps += 1;
                        down_s += provision_s;
                    } else {
                        report.spare_exhausted += 1;
                        down_s += cfg.restart_s;
                    }
                }
                RecoveryKind::ElasticShrink { replan_s, .. } => {
                    down_count += 1;
                    backfills.push_back(f.at_s + cfg.repair_s);
                    report.elastic_events += 1;
                    down_s += replan_s;
                }
            }
            let lost = banked - stamp.progress + partial;
            report.waste.lost_work_s += lost;
            report.waste.restart_s += down_s - restore_s;
            report.waste.restore_s += restore_s;
            let factor_after = w.shrink_factor(down_count);
            ettr_sum_s += down_s + lost / factor_after;

            if rec.is_enabled() {
                rec.instant(pid, tid, "fault", f.component.label(), s_to_us(f.at_s));
                rec.counter_add(&format!("{scope}.failures.{}", f.component.label()), 1);
                rec.series(&format!("{scope}.backlog"), s_to_ms(f.at_s), lost);
                rec.series(&format!("{scope}.gpus_down"), s_to_ms(f.at_s), down_count as f64);
                if f.at_s > 0.0 {
                    rec.series(&format!("{scope}.goodput"), s_to_ms(f.at_s), banked / f.at_s);
                }
            }
            banked = stamp.progress;
            wall = f.at_s + down_s;
        } else {
            // Corruption detected: roll back past the corruption instant.
            let (t_c, _) = pending_sdc.unwrap_or((wall, 0.0));
            let t_d = sdc_at.unwrap_or(seg_end);
            report.sdc_rollbacks += 1;
            // Work completed between segment start and detection; if
            // the detection came from this segment's verification, the
            // segment's checkpoint was already written — and is tainted.
            let partial = (t_d - wall).min(compute_s) * factor;
            let banked_at_detect = if t_d >= capture_at {
                report.checkpoints += 1;
                report.waste.checkpoint_stall_s += blocking_s;
                if verify_this {
                    report.verifications += 1;
                    report.waste.verify_s += verify_cost;
                }
                w.capture(capture_at, banked + cfg.interval_s);
                banked + cfg.interval_s
            } else {
                banked
            };
            w.advance_drains(t_d);
            w.taint_after(t_c);
            let (tier_idx, stamp, restore_s) = w.best_restore(t_c);
            report.restores_by_tier[tier_idx] += 1;
            let down_s = cfg.restart_s + restore_s;
            let lost = (banked_at_detect - stamp.progress).max(0.0)
                + if t_d >= capture_at { 0.0 } else { partial };
            report.waste.lost_work_s += lost;
            report.waste.restart_s += cfg.restart_s;
            report.waste.restore_s += restore_s;
            let factor_after = w.shrink_factor(down_count);
            ettr_sum_s += down_s + lost / factor_after;

            if rec.is_enabled() {
                rec.instant(pid, tid, "fault", "sdc_rollback", s_to_us(t_d));
                rec.counter_add(&format!("{scope}.failures.sdc"), 1);
                rec.series(&format!("{scope}.backlog"), s_to_ms(t_d), lost);
            }
            banked = stamp.progress;
            wall = t_d + down_s;
            pending_sdc = None;
        }
    }

    report.useful_s = banked;
    report.wall_s = wall;
    report.goodput = if wall > 0.0 { banked / wall } else { 0.0 };
    report.mean_ettr_s =
        if report.interrupts > 0 { ettr_sum_s / report.interrupts as f64 } else { 0.0 };
    if rec.is_enabled() && wall > 0.0 {
        rec.series(&format!("{scope}.goodput"), s_to_ms(wall), report.goodput);
    }
    Ok(report)
}

/// Tight loop for the degenerate (single synchronous tier, cold
/// restart, no SDC, untraced) shape. Every float operation matches the
/// general walker's expression and order, so the reports are
/// bit-identical — the gate in `BENCH_resilience.json` holds this path
/// within 1.2x of [`crate::training::simulate_goodput`].
fn degenerate_walk(
    cfg: &ResilienceConfig,
    failures: &[FleetFailure],
    blocking_s: f64,
    no_fault_goodput: f64,
) -> ResilienceReport {
    let tier = cfg.stack.tiers[0];
    let restore_cost = tier.restore_s(cfg.ckpt.restore_bytes);
    // factor is pinned at 1.0 here, and x / 1.0 == x exactly in IEEE
    // arithmetic, so the general walker's `interval_s / factor` is
    // plain `interval_s`.
    let compute_s = cfg.interval_s;
    let seg_s = compute_s + blocking_s;

    let mut report = ResilienceReport {
        goodput: 0.0,
        useful_s: 0.0,
        wall_s: 0.0,
        failures: 0,
        interrupts: 0,
        absorbed: 0,
        sdc_rollbacks: 0,
        checkpoints: 0,
        verifications: 0,
        spare_swaps: 0,
        spare_exhausted: 0,
        elastic_events: 0,
        restores_by_tier: vec![0; 2],
        mean_ettr_s: 0.0,
        waste: WasteBreakdown::default(),
        no_fault_goodput,
    };
    let mut wall = 0.0f64;
    let mut banked = 0.0f64;
    let mut ettr_sum_s = 0.0f64;
    // In synchronous single-tier mode the newest stamp's progress always
    // equals `banked`, so a bool stands in for the whole tier state.
    let mut have_stamp = false;
    let mut fi = 0usize;

    while wall < cfg.horizon_s {
        while fi < failures.len() && failures[fi].at_s <= wall {
            report.absorbed += 1;
            fi += 1;
        }
        let fail_at = if fi < failures.len() { failures[fi].at_s } else { f64::INFINITY };
        while wall < cfg.horizon_s && fail_at >= wall + seg_s {
            banked += cfg.interval_s;
            report.checkpoints += 1;
            report.waste.checkpoint_stall_s += blocking_s;
            have_stamp = true;
            wall += seg_s;
        }
        if wall >= cfg.horizon_s || fi >= failures.len() {
            break;
        }
        if fail_at <= wall {
            // Landed exactly on the segment boundary: the general walker
            // absorbs it at the top of the next iteration.
            continue;
        }
        // Failure strictly inside (wall, wall + seg_s).
        let f = failures[fi];
        fi += 1;
        report.interrupts += 1;
        report.failures += 1;
        let partial = (f.at_s - wall).min(compute_s) * 1.0;
        if !tier.survives(f.component) {
            have_stamp = false;
        }
        let (tier_idx, stamp_progress, restore_s) =
            if have_stamp { (0, banked, restore_cost) } else { (1, 0.0, 0.0) };
        report.restores_by_tier[tier_idx] += 1;
        let mut down_s = restore_s;
        down_s += cfg.restart_s;
        let lost = banked - stamp_progress + partial;
        report.waste.lost_work_s += lost;
        report.waste.restart_s += down_s - restore_s;
        report.waste.restore_s += restore_s;
        ettr_sum_s += down_s + lost / 1.0;
        banked = stamp_progress;
        wall = f.at_s + down_s;
    }

    report.useful_s = banked;
    report.wall_s = wall;
    report.goodput = if wall > 0.0 { banked / wall } else { 0.0 };
    report.mean_ettr_s =
        if report.interrupts > 0 { ettr_sum_s / report.interrupts as f64 } else { 0.0 };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{generate_failures, system_mtbf_s, ComponentMtbf, FleetSpec};
    use crate::tiers::CheckpointTier;
    use dsv3_model::availability::AvailabilityModel;

    fn bytes() -> CheckpointBytes {
        CheckpointBytes { write_bytes: 30e9, restore_bytes: 30e9 }
    }

    fn degenerate_cfg(interval_s: f64, horizon_s: f64) -> ResilienceConfig {
        ResilienceConfig {
            interval_s,
            ckpt: bytes(),
            stack: CheckpointStack::single_sync_remote(2.0),
            recovery: RecoveryKind::ColdRestart,
            sdc: SdcConfig::disabled(),
            restart_s: 180.0,
            repair_s: 3_600.0,
            gpus_per_failure: 8,
            horizon_s,
            seed: 11,
        }
    }

    /// The availability model the degenerate configuration embodies:
    /// C = the synchronous write, R = restart + restore.
    fn equivalent_availability(cfg: &ResilienceConfig, mtbf_s: f64) -> AvailabilityModel {
        let write_s = cfg.stack.blocking_write_s(cfg.ckpt.write_bytes);
        let restore_s = cfg.stack.tiers[0].restore_s(cfg.ckpt.restore_bytes);
        AvailabilityModel {
            mtbf_s,
            checkpoint_write_s: write_s,
            restart_s: cfg.restart_s + restore_s,
        }
    }

    #[test]
    fn empty_timeline_hits_the_overhead_bound() {
        let cfg = degenerate_cfg(900.0, 1e6);
        let r = simulate_resilience(&cfg, &[]).unwrap();
        assert_eq!(r.failures, 0);
        assert_eq!(r.interrupts, 0);
        assert!(
            (r.goodput - r.no_fault_goodput).abs() < 1e-6,
            "{} vs {}",
            r.goodput,
            r.no_fault_goodput
        );
        assert!((r.waste.lost_work_s).abs() < 1e-9);
    }

    #[test]
    fn degenerate_matches_young_daly_within_five_percent() {
        let spec = FleetSpec::with_gpus(16_384);
        let mtbf = ComponentMtbf::production();
        let sys_mtbf_s = system_mtbf_s(&spec, &mtbf);
        let mut cfg = degenerate_cfg(0.0, 0.0);
        let av = equivalent_availability(&cfg, sys_mtbf_s);
        cfg.interval_s = av.young_daly_interval_s();
        cfg.horizon_s = sys_mtbf_s * 2_000.0;
        let failures = generate_failures(&spec, &mtbf, 11, cfg.horizon_s * 4.0);
        let r = simulate_resilience(&cfg, &failures).unwrap();
        assert!(r.failures > 500, "need statistics, got {}", r.failures);
        let analytic = av.goodput_fraction(cfg.interval_s);
        let rel = (r.goodput - analytic).abs() / analytic;
        assert!(rel < 0.05, "rel err {rel} (sim {} vs analytic {analytic})", r.goodput);
        // ETTR should also land near the first-order expectation.
        let expected_ettr = av.expected_ettr_s(cfg.interval_s);
        let ettr_rel = (r.mean_ettr_s - expected_ettr).abs() / expected_ettr;
        assert!(ettr_rel < 0.10, "ettr rel err {ettr_rel} ({} vs {expected_ettr})", r.mean_ettr_s);
    }

    #[test]
    fn tiered_async_beats_sync_single_tier() {
        let spec = FleetSpec::with_gpus(32_768);
        let mtbf = ComponentMtbf::production();
        let horizon_s = 3_600.0 * 24.0 * 30.0;
        let failures = generate_failures(&spec, &mtbf, 5, horizon_s * 2.0);
        let sync = degenerate_cfg(600.0, horizon_s);
        let tiered = ResilienceConfig { stack: CheckpointStack::tiered(), ..sync.clone() };
        let r_sync = simulate_resilience(&sync, &failures).unwrap();
        let r_tiered = simulate_resilience(&tiered, &failures).unwrap();
        assert!(
            r_tiered.goodput > r_sync.goodput,
            "tiered {} vs sync {}",
            r_tiered.goodput,
            r_sync.goodput
        );
        // Device/host tiers serve most restores; remote is the fallback.
        assert!(r_tiered.restores_by_tier[..2].iter().sum::<usize>() > 0);
    }

    #[test]
    fn spare_pool_beats_cold_restart_and_pool_drains() {
        let spec = FleetSpec::with_gpus(16_384);
        let mtbf = ComponentMtbf::production();
        let horizon_s = 3_600.0 * 24.0 * 14.0;
        let failures = generate_failures(&spec, &mtbf, 21, horizon_s * 2.0);
        let cold = ResilienceConfig {
            stack: CheckpointStack::tiered(),
            ..degenerate_cfg(600.0, horizon_s)
        };
        let spare = ResilienceConfig {
            recovery: RecoveryKind::SparePool { spares: 64, provision_s: 30.0 },
            ..cold.clone()
        };
        let r_cold = simulate_resilience(&cold, &failures).unwrap();
        let r_spare = simulate_resilience(&spare, &failures).unwrap();
        assert!(r_spare.spare_swaps > 0);
        assert!(
            r_spare.goodput > r_cold.goodput,
            "spare {} vs cold {}",
            r_spare.goodput,
            r_cold.goodput
        );
        // A starving pool falls back cold instead of wedging.
        let tiny = ResilienceConfig {
            recovery: RecoveryKind::SparePool { spares: 1, provision_s: 30.0 },
            repair_s: horizon_s * 10.0,
            ..cold.clone()
        };
        let r_tiny = simulate_resilience(&tiny, &failures).unwrap();
        assert!(r_tiny.spare_exhausted > 0);
    }

    #[test]
    fn elastic_shrink_pays_degraded_time_until_backfill() {
        let spec = FleetSpec::with_gpus(2_048);
        let mtbf = ComponentMtbf::production();
        let horizon_s = 3_600.0 * 24.0 * 30.0;
        let failures = generate_failures(&spec, &mtbf, 3, horizon_s * 2.0);
        let train = TrainStepConfig::deepseek_v3(1.0);
        let cfg = ResilienceConfig {
            recovery: RecoveryKind::ElasticShrink {
                replan_s: 60.0,
                train: Box::new(train),
                ep: 64,
            },
            stack: CheckpointStack::tiered(),
            repair_s: 3_600.0 * 6.0,
            ..degenerate_cfg(600.0, horizon_s)
        };
        let r = simulate_resilience(&cfg, &failures).unwrap();
        assert!(r.elastic_events > 0);
        assert!(r.waste.degraded_s > 0.0, "shrunk grid must cost wall clock");
        assert!(r.goodput > 0.5, "elastic keeps the job mostly productive: {}", r.goodput);
    }

    #[test]
    fn sdc_forces_rollback_past_the_corruption_and_verification_caps_the_lag() {
        let base = ResilienceConfig {
            stack: CheckpointStack::tiered(),
            sdc: SdcConfig {
                mtbf_s: 3_600.0 * 12.0,
                detection_mean_s: 3_600.0 * 4.0,
                verify_every: 0,
                verify_cost_s: 0.0,
            },
            ..degenerate_cfg(600.0, 3_600.0 * 24.0 * 30.0)
        };
        let r = simulate_resilience(&base, &[]).unwrap();
        assert!(r.sdc_rollbacks > 10, "{}", r.sdc_rollbacks);
        assert!(r.waste.lost_work_s > 0.0);

        // Periodic verification trades a small tax for bounded rollback
        // depth: with long detection lags it must win.
        let verified = ResilienceConfig {
            sdc: SdcConfig { verify_every: 10, verify_cost_s: 30.0, ..base.sdc },
            ..base.clone()
        };
        let rv = simulate_resilience(&verified, &[]).unwrap();
        assert!(rv.verifications > 0);
        assert!(
            rv.goodput > r.goodput,
            "verification {} should beat lag-only {}",
            rv.goodput,
            r.goodput
        );
        // Rollback must land at or before the corruption instant:
        // useful work never exceeds the no-SDC bound.
        assert!(rv.useful_s < rv.wall_s * rv.no_fault_goodput + 1e-6);
    }

    #[test]
    fn bad_inputs_are_errors_not_panics() {
        let cfg = degenerate_cfg(600.0, 1e5);
        assert!(matches!(
            simulate_resilience(&ResilienceConfig { interval_s: 0.0, ..cfg.clone() }, &[]),
            Err(ResilienceError::NonPositiveInterval { .. })
        ));
        assert!(matches!(
            simulate_resilience(&ResilienceConfig { horizon_s: -1.0, ..cfg.clone() }, &[]),
            Err(ResilienceError::NonPositiveHorizon { .. })
        ));
        assert!(matches!(
            simulate_resilience(
                &ResilienceConfig {
                    ckpt: CheckpointBytes { write_bytes: 0.0, restore_bytes: 1.0 },
                    ..cfg.clone()
                },
                &[]
            ),
            Err(ResilienceError::NonPositiveBytes)
        ));
        let unsorted = [
            FleetFailure { at_s: 5.0, component: FleetComponent::Gpu },
            FleetFailure { at_s: 1.0, component: FleetComponent::Gpu },
        ];
        assert_eq!(
            simulate_resilience(&cfg, &unsorted),
            Err(ResilienceError::UnsortedFailures { index: 1 })
        );
        let mut bad_stack = cfg.clone();
        bad_stack.stack.tiers.clear();
        assert!(matches!(
            simulate_resilience(&bad_stack, &[]),
            Err(ResilienceError::InvalidStack { .. })
        ));
    }

    #[test]
    fn degenerate_fast_path_matches_the_general_walker() {
        // An enabled recorder forces the general walk on the same
        // degenerate config the fast path serves; the reports must be
        // bit-identical, including the no-surviving-tier reset case.
        let spec = FleetSpec::with_gpus(16_384);
        let mtbf = ComponentMtbf::production();
        let horizon_s = 3_600.0 * 24.0 * 30.0;
        let failures = generate_failures(&spec, &mtbf, 13, horizon_s * 2.0);
        for stack in [
            CheckpointStack::single_sync_remote(2.0),
            CheckpointStack { tiers: vec![CheckpointTier::device()], synchronous: true },
        ] {
            let cfg = ResilienceConfig { stack, ..degenerate_cfg(600.0, horizon_s) };
            let fast = simulate_resilience(&cfg, &failures).unwrap();
            let mut rec = Recorder::new();
            let general = simulate_resilience_traced(&cfg, &failures, &mut rec, "res").unwrap();
            assert_eq!(fast, general, "fast path must mirror the general walk exactly");
            assert!(fast.failures > 100, "need a meaningful run, got {}", fast.failures);
        }
    }

    #[test]
    fn traced_run_equals_plain_and_emits_series() {
        let spec = FleetSpec::with_gpus(16_384);
        let mtbf = ComponentMtbf::production();
        let horizon_s = 3_600.0 * 24.0 * 7.0;
        let failures = generate_failures(&spec, &mtbf, 9, horizon_s * 2.0);
        let cfg = ResilienceConfig {
            stack: CheckpointStack::tiered(),
            ..degenerate_cfg(600.0, horizon_s)
        };
        let plain = simulate_resilience(&cfg, &failures).unwrap();
        let mut rec = Recorder::new();
        let traced = simulate_resilience_traced(&cfg, &failures, &mut rec, "res").unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the walk");
        assert!(rec.series_get("res.goodput").is_some());
        assert!(rec.series_get("res.backlog").is_some());
        assert!(!rec.counters().is_empty());
    }
}
