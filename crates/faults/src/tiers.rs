//! Tiered checkpoint storage: device → host RAM → remote store.
//!
//! A synchronous remote-store checkpoint stalls every rank for the full
//! write; §6.1's mitigation is a staged pipeline — snapshot into device
//! HBM at memory speed (the only blocking cost), then drain device →
//! host RAM → remote store asynchronously at each link's bandwidth.
//! The price of asynchrony is durability: an in-flight drain dies with
//! the failure, and each tier only survives the failure classes that
//! leave its medium intact. This module prices writes/restores per tier
//! from bandwidths and the per-rank checkpoint bytes that
//! [`dsv3_memtl::checkpoint_footprint`] derives — no hand-picked
//! constants — and encodes the survival matrix against
//! [`crate::fleet::FleetComponent`].

use crate::fleet::FleetComponent;
use serde::{Deserialize, Serialize};

/// Storage medium of a checkpoint tier, ordered fastest to most durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TierKind {
    /// Spare HBM on the training GPU itself: memory-bandwidth fast,
    /// dies with the GPU or its host.
    Device,
    /// Host DRAM over PCIe: survives GPU loss; optionally replicated to
    /// a peer host so a host loss is survivable too.
    HostRam,
    /// Remote durable store (parallel FS / object store): survives
    /// everything, slowest link.
    RemoteStore,
}

/// One tier of the checkpoint pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointTier {
    /// Storage medium.
    pub kind: TierKind,
    /// Per-rank write bandwidth into this tier, GB/s.
    pub write_gbps: f64,
    /// Per-rank restore bandwidth out of this tier, GB/s.
    pub restore_gbps: f64,
    /// Host-RAM copies mirrored to a peer host: the copy then survives
    /// the owning host's failure. Ignored for other kinds.
    pub peer_replicated: bool,
}

impl CheckpointTier {
    /// Device-HBM snapshot tier at a memory-bandwidth-ish rate.
    #[must_use]
    pub fn device() -> Self {
        Self {
            kind: TierKind::Device,
            write_gbps: 1_200.0,
            restore_gbps: 1_200.0,
            peer_replicated: false,
        }
    }

    /// Host-DRAM tier over PCIe Gen4-ish, peer-replicated by default.
    #[must_use]
    pub fn host_ram() -> Self {
        Self {
            kind: TierKind::HostRam,
            write_gbps: 25.0,
            restore_gbps: 25.0,
            peer_replicated: true,
        }
    }

    /// Remote durable store at a per-rank share of fabric bandwidth.
    #[must_use]
    pub fn remote_store(gbps: f64) -> Self {
        Self {
            kind: TierKind::RemoteStore,
            write_gbps: gbps,
            restore_gbps: gbps,
            peer_replicated: false,
        }
    }

    /// Seconds to write `bytes` into this tier.
    #[must_use]
    pub fn write_s(&self, bytes: f64) -> f64 {
        bytes / (self.write_gbps * 1e9)
    }

    /// Seconds to restore `bytes` out of this tier.
    #[must_use]
    pub fn restore_s(&self, bytes: f64) -> f64 {
        bytes / (self.restore_gbps * 1e9)
    }

    /// Does a copy resident in this tier survive `failed`?
    ///
    /// * Device copies die with the GPU or its host; NIC/switch faults
    ///   leave HBM intact.
    /// * Host-RAM copies die with the host unless peer-replicated;
    ///   they survive GPU, NIC and switch faults.
    /// * Remote-store copies survive every modeled component.
    #[must_use]
    pub fn survives(&self, failed: FleetComponent) -> bool {
        match self.kind {
            TierKind::Device => {
                matches!(failed, FleetComponent::Nic | FleetComponent::Switch)
            }
            TierKind::HostRam => match failed {
                FleetComponent::Host => self.peer_replicated,
                FleetComponent::Gpu | FleetComponent::Nic | FleetComponent::Switch => true,
            },
            TierKind::RemoteStore => true,
        }
    }
}

/// An ordered checkpoint pipeline: writes enter `tiers[0]` and drain
/// toward the last tier. `synchronous` collapses the pipeline into one
/// blocking write through every tier — the degenerate configuration the
/// Young/Daly gate runs against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointStack {
    /// Tiers, fastest (entry) first.
    pub tiers: Vec<CheckpointTier>,
    /// Block the job for the full pipeline instead of draining
    /// asynchronously behind compute.
    pub synchronous: bool,
}

impl CheckpointStack {
    /// The production three-tier asynchronous pipeline:
    /// device snapshot → peer-replicated host RAM → remote store.
    #[must_use]
    pub fn tiered() -> Self {
        Self {
            tiers: vec![
                CheckpointTier::device(),
                CheckpointTier::host_ram(),
                CheckpointTier::remote_store(2.0),
            ],
            synchronous: false,
        }
    }

    /// Degenerate single synchronous remote-store tier: the classic
    /// checkpoint/restart regime `simulate_goodput` and the Young/Daly
    /// analytic describe.
    #[must_use]
    pub fn single_sync_remote(gbps: f64) -> Self {
        Self { tiers: vec![CheckpointTier::remote_store(gbps)], synchronous: true }
    }

    /// Structural validity: at least one tier, positive bandwidths.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.tiers.is_empty() {
            return Err("checkpoint stack needs at least one tier".into());
        }
        for (i, t) in self.tiers.iter().enumerate() {
            let bad = |g: f64| g <= 0.0 || g.is_nan();
            if bad(t.write_gbps) || bad(t.restore_gbps) {
                return Err(format!(
                    "tier {i} ({:?}) needs positive write/restore bandwidth",
                    t.kind
                ));
            }
        }
        Ok(())
    }

    /// Seconds the job stalls per checkpoint: the full pipeline when
    /// synchronous, only the entry-tier write when asynchronous.
    #[must_use]
    pub fn blocking_write_s(&self, bytes: f64) -> f64 {
        if self.synchronous {
            self.tiers.iter().map(|t| t.write_s(bytes)).sum()
        } else {
            self.tiers.first().map_or(0.0, |t| t.write_s(bytes))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_matrix_matches_the_medium() {
        let dev = CheckpointTier::device();
        assert!(!dev.survives(FleetComponent::Gpu));
        assert!(!dev.survives(FleetComponent::Host));
        assert!(dev.survives(FleetComponent::Nic));
        assert!(dev.survives(FleetComponent::Switch));

        let mut host = CheckpointTier::host_ram();
        assert!(host.survives(FleetComponent::Gpu));
        assert!(host.survives(FleetComponent::Host), "peer-replicated by default");
        host.peer_replicated = false;
        assert!(!host.survives(FleetComponent::Host));
        assert!(host.survives(FleetComponent::Switch));

        let remote = CheckpointTier::remote_store(2.0);
        for c in FleetComponent::ALL {
            assert!(remote.survives(c));
        }
    }

    #[test]
    fn async_stack_blocks_only_on_the_entry_tier() {
        let stack = CheckpointStack::tiered();
        let bytes = 100e9;
        let entry_only = stack.tiers[0].write_s(bytes);
        assert!((stack.blocking_write_s(bytes) - entry_only).abs() < 1e-12);
        // Full pipeline is far slower than the snapshot.
        let sync = CheckpointStack { synchronous: true, ..stack };
        assert!(sync.blocking_write_s(bytes) > 100.0 * entry_only);
    }

    #[test]
    fn write_restore_times_follow_bandwidth() {
        let t = CheckpointTier::remote_store(2.0);
        assert!((t.write_s(10e9) - 5.0).abs() < 1e-12);
        assert!((t.restore_s(4e9) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_broken_stacks() {
        assert!(CheckpointStack { tiers: vec![], synchronous: true }.validate().is_err());
        let mut s = CheckpointStack::single_sync_remote(2.0);
        assert!(s.validate().is_ok());
        s.tiers[0].write_gbps = 0.0;
        assert!(s.validate().is_err());
        s.tiers[0].write_gbps = f64::NAN;
        assert!(s.validate().is_err());
    }
}
