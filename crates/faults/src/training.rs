//! Checkpoint/restart training simulation under a failure timeline.
//!
//! Walks a pregenerated list of failure times through the
//! checkpoint-every-τ / restart-on-failure cycle and measures goodput
//! (useful compute ÷ wall clock). Failures striking while a restart is
//! already in progress are absorbed by that restart, which makes the
//! simulated regime *exactly* the one the Young/Daly analytic expression
//! in [`dsv3_model::availability`] describes — with exponential
//! (memoryless) failure arrivals the two converge, and the `fault_drill`
//! experiment asserts agreement within 5%.

use dsv3_model::availability::AvailabilityModel;
use serde::{Deserialize, Serialize};

/// Why a goodput simulation request was rejected (the lib-code
/// replacement for the asserts this API once carried: callers get a
/// value to handle instead of a panic path).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrainingSimError {
    /// The checkpoint interval must be a positive number of seconds.
    NonPositiveInterval {
        /// The rejected interval.
        interval_s: f64,
    },
    /// The failure timeline must be sorted ascending; `index` is the
    /// first position whose time precedes its predecessor.
    UnsortedTimeline {
        /// First out-of-order position.
        index: usize,
    },
}

impl std::fmt::Display for TrainingSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainingSimError::NonPositiveInterval { interval_s } => {
                write!(f, "checkpoint interval must be positive, got {interval_s} s")
            }
            TrainingSimError::UnsortedTimeline { index } => {
                write!(f, "failure timeline must be sorted ascending (violated at index {index})")
            }
        }
    }
}

impl std::error::Error for TrainingSimError {}

/// Outcome of one simulated training run under failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingGoodput {
    /// Checkpoint interval used, seconds of useful compute per segment.
    pub interval_s: f64,
    /// Useful compute accumulated, seconds.
    pub useful_s: f64,
    /// Wall clock consumed, seconds.
    pub wall_s: f64,
    /// `useful_s / wall_s`.
    pub goodput: f64,
    /// Failures that actually interrupted work.
    pub failures: usize,
    /// Checkpoints successfully written.
    pub checkpoints: usize,
    /// Analytic Young/Daly goodput fraction for the same interval.
    pub analytic_goodput: f64,
}

/// Simulate checkpointed training against a sorted failure timeline.
///
/// Each segment attempts `interval_s` of compute followed by a
/// `checkpoint_write_s` write; a failure inside the segment discards it
/// and pays `restart_s` before the next attempt. The walk stops at the
/// first failure past `horizon_s` or when the timeline is exhausted,
/// whichever is later in wall clock — so short timelines still yield a
/// well-defined (optimistic) goodput.
///
/// # Errors
///
/// [`TrainingSimError`] if `interval_s` is not positive or `failures_s`
/// is unsorted.
pub fn simulate_goodput(
    av: &AvailabilityModel,
    interval_s: f64,
    failures_s: &[f64],
    horizon_s: f64,
) -> Result<TrainingGoodput, TrainingSimError> {
    if interval_s <= 0.0 || interval_s.is_nan() {
        return Err(TrainingSimError::NonPositiveInterval { interval_s });
    }
    if let Some(i) = failures_s.windows(2).position(|w| w[0] > w[1]) {
        return Err(TrainingSimError::UnsortedTimeline { index: i + 1 });
    }
    let segment_s = interval_s + av.checkpoint_write_s;
    let mut wall = 0.0f64;
    let mut useful = 0.0f64;
    let mut failures = 0usize;
    let mut checkpoints = 0usize;
    let mut next_fail = failures_s.iter().copied();
    let mut pending = next_fail.next();

    while wall < horizon_s {
        // Failures that land during a restart (i.e. before `wall`) are
        // absorbed by it — memoryless arrivals make the remaining wait
        // distribution identical either way.
        while let Some(t) = pending {
            if t <= wall {
                pending = next_fail.next();
            } else {
                break;
            }
        }
        let Some(fail_at) = pending else {
            // Timeline exhausted: the rest of the horizon is failure-free.
            while wall < horizon_s {
                wall += segment_s;
                useful += interval_s;
                checkpoints += 1;
            }
            break;
        };
        if fail_at < wall + segment_s {
            // Segment dies before its checkpoint lands; work is lost.
            failures += 1;
            wall = fail_at + av.restart_s;
            pending = next_fail.next();
        } else {
            wall += segment_s;
            useful += interval_s;
            checkpoints += 1;
        }
    }

    let goodput = if wall > 0.0 { useful / wall } else { 0.0 };
    Ok(TrainingGoodput {
        interval_s,
        useful_s: useful,
        wall_s: wall,
        goodput,
        failures,
        checkpoints,
        analytic_goodput: av.goodput_fraction(interval_s),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn model() -> AvailabilityModel {
        AvailabilityModel { mtbf_s: 3_600.0, checkpoint_write_s: 60.0, restart_s: 180.0 }
    }

    fn poisson_failures(seed: u64, mtbf_s: f64, horizon_s: f64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let mut out = Vec::new();
        loop {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() * mtbf_s;
            if t > horizon_s {
                return out;
            }
            out.push(t);
        }
    }

    #[test]
    fn no_failures_gives_segment_efficiency() {
        let av = model();
        let tau = av.young_daly_interval_s();
        let g = simulate_goodput(&av, tau, &[], 1_000_000.0).unwrap();
        assert_eq!(g.failures, 0);
        let expected = tau / (tau + av.checkpoint_write_s);
        assert!((g.goodput - expected).abs() < 1e-9);
    }

    #[test]
    fn simulated_matches_young_daly_within_tolerance() {
        let av = model();
        let tau = av.young_daly_interval_s();
        let horizon = av.mtbf_s * 2_000.0;
        let fails = poisson_failures(99, av.mtbf_s, horizon * 4.0);
        let g = simulate_goodput(&av, tau, &fails, horizon).unwrap();
        assert!(g.failures > 500, "need a statistically meaningful run");
        let rel = (g.goodput - g.analytic_goodput).abs() / g.analytic_goodput;
        assert!(rel < 0.05, "rel err {rel} (sim {} vs analytic {})", g.goodput, g.analytic_goodput);
    }

    #[test]
    fn denser_failures_reduce_goodput() {
        let av = model();
        let tau = av.young_daly_interval_s();
        let horizon = av.mtbf_s * 500.0;
        let sparse = poisson_failures(7, av.mtbf_s * 4.0, horizon * 4.0);
        let dense = poisson_failures(7, av.mtbf_s / 4.0, horizon * 4.0);
        let gs = simulate_goodput(&av, tau, &sparse, horizon).unwrap();
        let gd = simulate_goodput(&av, tau, &dense, horizon).unwrap();
        assert!(gs.goodput > gd.goodput);
    }

    #[test]
    fn bad_inputs_are_errors_not_panics() {
        let av = model();
        assert_eq!(
            simulate_goodput(&av, 0.0, &[], 10.0),
            Err(TrainingSimError::NonPositiveInterval { interval_s: 0.0 })
        );
        assert_eq!(
            simulate_goodput(&av, -5.0, &[], 10.0),
            Err(TrainingSimError::NonPositiveInterval { interval_s: -5.0 })
        );
        assert!(matches!(
            simulate_goodput(&av, f64::NAN, &[], 10.0),
            Err(TrainingSimError::NonPositiveInterval { .. })
        ));
        assert_eq!(
            simulate_goodput(&av, 60.0, &[3.0, 1.0, 2.0], 10.0),
            Err(TrainingSimError::UnsortedTimeline { index: 1 })
        );
        let msg = TrainingSimError::UnsortedTimeline { index: 1 }.to_string();
        assert!(msg.contains("index 1"), "{msg}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let av = model();
        let fails = poisson_failures(3, av.mtbf_s, av.mtbf_s * 100.0);
        let a = simulate_goodput(&av, 600.0, &fails, av.mtbf_s * 50.0).unwrap();
        let b = simulate_goodput(&av, 600.0, &fails, av.mtbf_s * 50.0).unwrap();
        assert_eq!(a, b);
    }
}
