//! Property-based tests for the fleet-scale resilience walker.

use dsv3_faults::{
    generate_failures, simulate_resilience, CheckpointBytes, CheckpointStack, CheckpointTier,
    ComponentMtbf, FleetComponent, FleetFailure, FleetSpec, RecoveryKind, ResilienceConfig,
    SdcConfig,
};
use proptest::prelude::*;

fn cfg_base(interval_s: f64, stack: CheckpointStack, horizon_s: f64) -> ResilienceConfig {
    ResilienceConfig {
        interval_s,
        ckpt: CheckpointBytes { write_bytes: 30e9, restore_bytes: 30e9 },
        stack,
        recovery: RecoveryKind::ColdRestart,
        sdc: SdcConfig::disabled(),
        restart_s: 180.0,
        repair_s: 1_800.0,
        gpus_per_failure: 8,
        horizon_s,
        seed: 0,
    }
}

fn arb_component() -> impl Strategy<Value = FleetComponent> {
    (0usize..4).prop_map(|i| FleetComponent::ALL[i])
}

proptest! {
    /// No failures ⇒ nothing is ever lost and goodput sits exactly on
    /// the checkpoint-overhead bound the report carries.
    #[test]
    fn empty_timeline_is_overhead_only(
        interval_s in 60.0..1_800.0f64,
        gb in 1.0..64.0f64,
        sync in 0u8..2,
    ) {
        let stack = if sync == 1 {
            CheckpointStack::single_sync_remote(2.0)
        } else {
            CheckpointStack::tiered()
        };
        let mut cfg = cfg_base(interval_s, stack, 2e6);
        cfg.ckpt = CheckpointBytes { write_bytes: gb * 1e9, restore_bytes: gb * 1e9 };
        let r = simulate_resilience(&cfg, &[]).unwrap();
        prop_assert_eq!(r.failures, 0);
        prop_assert!(r.waste.lost_work_s.abs() < 1e-9);
        prop_assert!(
            (r.goodput - r.no_fault_goodput).abs() < 1e-6,
            "goodput {} vs bound {}", r.goodput, r.no_fault_goodput
        );
    }

    /// With a well-stocked pool and a swap cheaper than a reschedule,
    /// hot spares never yield lower goodput than cold restart on the
    /// same seed, plan, and failure timeline.
    #[test]
    fn spare_pool_never_loses_to_cold_restart(
        seed in 0u64..64,
        gpus_k in 2usize..32,
        provision_s in 10.0..180.0f64,
    ) {
        let spec = FleetSpec::with_gpus(gpus_k * 1_024);
        let horizon_s = 86_400.0 * 14.0;
        let failures = generate_failures(&spec, &ComponentMtbf::production(), seed, horizon_s * 2.0);
        let cold = cfg_base(600.0, CheckpointStack::tiered(), horizon_s);
        let spare = ResilienceConfig {
            recovery: RecoveryKind::SparePool { spares: 100_000, provision_s },
            ..cold.clone()
        };
        let r_cold = simulate_resilience(&cold, &failures).unwrap();
        let r_spare = simulate_resilience(&spare, &failures).unwrap();
        prop_assert!(
            r_spare.goodput >= r_cold.goodput - 1e-9,
            "spare {} < cold {} (seed {seed}, {} GPUs)",
            r_spare.goodput, r_cold.goodput, spec.gpus
        );
    }

    /// Appending deeper (more durable) tiers to the same entry tier
    /// never loses *more* useful work on a single failure: the deeper
    /// stack's surviving checkpoint is at least as fresh.
    #[test]
    fn deeper_stacks_lose_no_more_work_per_failure(
        interval_s in 120.0..1_800.0f64,
        fail_at_s in 5_000.0..200_000.0f64,
        component in arb_component(),
    ) {
        let device_only = CheckpointStack {
            tiers: vec![CheckpointTier::device()],
            synchronous: false,
        };
        let plus_host = CheckpointStack {
            tiers: vec![CheckpointTier::device(), CheckpointTier::host_ram()],
            synchronous: false,
        };
        let plus_remote = CheckpointStack::tiered();
        let failure = [FleetFailure { at_s: fail_at_s, component }];
        let horizon_s = fail_at_s + 50_000.0;
        let lost = |stack: CheckpointStack| {
            let cfg = cfg_base(interval_s, stack, horizon_s);
            simulate_resilience(&cfg, &failure).unwrap().waste.lost_work_s
        };
        let l1 = lost(device_only);
        let l2 = lost(plus_host);
        let l3 = lost(plus_remote);
        prop_assert!(l2 <= l1 + 1e-9, "device+host lost {l2} > device-only {l1}");
        prop_assert!(l3 <= l2 + 1e-9, "three-tier lost {l3} > device+host {l2}");
    }
}
