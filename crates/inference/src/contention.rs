//! NVLink/PCIe bandwidth contention (§4.5).
//!
//! During inference, KV-cache transfers from CPU memory can saturate PCIe
//! while the GPU simultaneously drives EP traffic through a NIC behind the
//! same PCIe complex; without traffic prioritization the EP all-to-all slows
//! and TPOT spikes. This module models the shared PCIe segment with the flow
//! simulator and quantifies the benefit of the paper's suggested dynamic
//! traffic prioritization (exposing traffic classes to user code).

use dsv3_netsim::{FlowSim, Link};
use serde::{Deserialize, Serialize};

/// Shared-IO configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoContentionConfig {
    /// PCIe bandwidth of the GPU's root complex (GB/s; Gen5 x16 ≈ 64).
    pub pcie_gbps: f64,
    /// NIC bandwidth (GB/s).
    pub nic_gbps: f64,
    /// EP bytes the GPU must move this step.
    pub ep_bytes: f64,
    /// Concurrent KV-cache transfer bytes (CPU→GPU over PCIe).
    pub kv_bytes: f64,
}

impl IoContentionConfig {
    /// H800-flavoured defaults: one EP step of 32 tokens × 9 experts × 7K
    /// hidden × 3 B against a multi-ten-GB/s KV prefetch burst.
    #[must_use]
    pub fn h800_decode_step() -> Self {
        Self {
            pcie_gbps: 64.0,
            nic_gbps: 50.0,
            ep_bytes: 3.0 * 32.0 * 9.0 * 7000.0,
            kv_bytes: 12.0e6, // a 12 MB KV page-in burst
        }
    }
}

/// Outcome of one contended decode step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionOutcome {
    /// EP transfer completion (µs).
    pub ep_time_us: f64,
    /// KV transfer completion (µs).
    pub kv_time_us: f64,
    /// EP slowdown vs an idle PCIe bus.
    pub ep_slowdown: f64,
}

/// Simulate the step. With `prioritized`, EP traffic owns its NIC share of
/// PCIe (the KV transfer yields, using only leftover bandwidth); without, the
/// two flows share PCIe max-min fairly.
///
/// # Panics
///
/// Panics on non-positive bandwidths.
#[must_use]
pub fn decode_step(cfg: &IoContentionConfig, prioritized: bool) -> ContentionOutcome {
    assert!(cfg.pcie_gbps > 0.0 && cfg.nic_gbps > 0.0, "bandwidth must be positive");
    // Links: 0 = PCIe shared segment (or EP's reserved slice), 1 = NIC,
    // 2 = KV's slice when prioritized.
    let ideal_ep_us = cfg.ep_bytes / (cfg.nic_gbps.min(cfg.pcie_gbps) * 1000.0);
    let (ep_time_us, kv_time_us) = if prioritized {
        // Traffic classes: EP gets min(nic, pcie) reserved; KV gets the
        // leftover PCIe bandwidth.
        let ep_bw = cfg.nic_gbps.min(cfg.pcie_gbps);
        let kv_bw = (cfg.pcie_gbps - ep_bw).max(0.05 * cfg.pcie_gbps);
        (cfg.ep_bytes / (ep_bw * 1000.0), cfg.kv_bytes / (kv_bw * 1000.0))
    } else {
        let mut sim = FlowSim::new(vec![
            Link { capacity_gbps: cfg.pcie_gbps },
            Link { capacity_gbps: cfg.nic_gbps },
        ]);
        let ep = sim.add_flow(vec![0, 1], cfg.ep_bytes, 0.0, 0.0);
        let kv = sim.add_flow(vec![0], cfg.kv_bytes, 0.0, 0.0);
        let r = sim.run();
        (r.finish_us[ep], r.finish_us[kv])
    };
    ContentionOutcome { ep_time_us, kv_time_us, ep_slowdown: ep_time_us / ideal_ep_us }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_slows_ep_without_priorities() {
        let cfg = IoContentionConfig::h800_decode_step();
        let shared = decode_step(&cfg, false);
        let prio = decode_step(&cfg, true);
        assert!(shared.ep_slowdown > 1.2, "visible spike: {}", shared.ep_slowdown);
        assert!((prio.ep_slowdown - 1.0).abs() < 1e-9, "priority removes the spike");
        assert!(prio.ep_time_us < shared.ep_time_us);
    }

    #[test]
    fn kv_transfer_pays_for_priority() {
        let cfg = IoContentionConfig::h800_decode_step();
        let shared = decode_step(&cfg, false);
        let prio = decode_step(&cfg, true);
        // The KV burst is what slows down instead — the intended trade.
        assert!(prio.kv_time_us >= shared.kv_time_us);
    }

    #[test]
    fn no_kv_traffic_no_contention() {
        let cfg = IoContentionConfig { kv_bytes: 0.0, ..IoContentionConfig::h800_decode_step() };
        let shared = decode_step(&cfg, false);
        assert!((shared.ep_slowdown - 1.0).abs() < 1e-6);
    }

    #[test]
    fn wider_pcie_reduces_spike() {
        let narrow = decode_step(&IoContentionConfig::h800_decode_step(), false);
        let wide = decode_step(
            &IoContentionConfig { pcie_gbps: 128.0, ..IoContentionConfig::h800_decode_step() },
            false,
        );
        assert!(wide.ep_slowdown < narrow.ep_slowdown);
    }
}
