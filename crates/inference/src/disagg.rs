//! Prefill/decode disaggregation vs a unified pool (§2.3.1).
//!
//! Production serving assigns large-batch prefill and latency-sensitive
//! decode to different expert-parallel groups. The model here is a
//! discrete-time scheduler: decode steps want to run every `decode_step_us`;
//! in a unified pool, arriving prefill jobs steal compute from decode steps
//! and inflate TPOT; disaggregated pools keep decode isolated at the price
//! of statically partitioning the GPUs.

use serde::{Deserialize, Serialize};

/// Serving workload and pool parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Decode step time when undisturbed (µs).
    pub decode_step_us: f64,
    /// Prefill work arriving per decode step, expressed in GPU-µs per pool
    /// GPU (e.g. 0.5 means prefill demand equals half the pool's time).
    pub prefill_load: f64,
    /// Fraction of GPUs dedicated to prefill in the disaggregated setup.
    pub prefill_pool_fraction: f64,
    /// Decode steps to simulate.
    pub steps: usize,
    /// Prefill burstiness: jobs arrive every `burst_period` steps in one
    /// lump (1 = smooth).
    pub burst_period: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            decode_step_us: 250.0,
            prefill_load: 0.4,
            prefill_pool_fraction: 0.4,
            steps: 2000,
            burst_period: 50,
        }
    }
}

/// Latency statistics of the decode stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpotStats {
    /// Mean TPOT (µs).
    pub mean_us: f64,
    /// 95th percentile TPOT (µs).
    pub p95_us: f64,
    /// Maximum TPOT (µs).
    pub max_us: f64,
}

fn stats(samples: &mut [f64]) -> TpotStats {
    assert!(!samples.is_empty(), "no samples");
    samples.sort_by(f64::total_cmp);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let p95 = samples[((samples.len() as f64 * 0.95) as usize).min(samples.len() - 1)];
    TpotStats { mean_us: mean, p95_us: p95, max_us: samples[samples.len() - 1] }
}

/// Simulate the unified pool: prefill bursts preempt decode compute, so the
/// affected decode steps stretch by the burst's work.
#[must_use]
pub fn unified_tpot(cfg: &ServingConfig) -> TpotStats {
    assert!(cfg.steps > 0 && cfg.burst_period > 0, "degenerate config");
    let mut samples = Vec::with_capacity(cfg.steps);
    let mut backlog_us = 0f64;
    let burst = cfg.prefill_load * cfg.decode_step_us * cfg.burst_period as f64;
    for step in 0..cfg.steps {
        if step % cfg.burst_period == 0 {
            backlog_us += burst;
        }
        // Half the outstanding prefill backlog competes with this decode
        // step (the scheduler drains bursts greedily), stretching this
        // token's latency; a bigger burst therefore hits harder.
        let stolen = backlog_us * 0.5;
        backlog_us -= stolen;
        samples.push(cfg.decode_step_us + stolen);
    }
    stats(&mut samples)
}

/// Simulate the disaggregated pools: decode GPUs never see prefill, but the
/// decode pool is smaller so its base step time inflates proportionally.
#[must_use]
pub fn disaggregated_tpot(cfg: &ServingConfig) -> TpotStats {
    assert!(
        (0.0..1.0).contains(&cfg.prefill_pool_fraction),
        "prefill fraction must leave decode GPUs"
    );
    let slowdown = 1.0 / (1.0 - cfg.prefill_pool_fraction);
    // EP serving is bandwidth-bound per device; shrinking the decode pool
    // raises per-device load sub-linearly — we take the conservative linear
    // bound.
    let step = cfg.decode_step_us * slowdown.min(2.0);
    let mut samples = vec![step; cfg.steps];
    stats(&mut samples)
}

/// Whether the disaggregated configuration can absorb the prefill load.
#[must_use]
pub fn prefill_pool_sufficient(cfg: &ServingConfig) -> bool {
    cfg.prefill_pool_fraction >= cfg.prefill_load * (1.0 - cfg.prefill_pool_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disaggregation_kills_tail_latency() {
        let cfg = ServingConfig::default();
        let uni = unified_tpot(&cfg);
        let dis = disaggregated_tpot(&cfg);
        assert!(
            dis.p95_us < uni.p95_us,
            "disaggregated p95 {} must beat unified {}",
            dis.p95_us,
            uni.p95_us
        );
        assert!(dis.max_us < uni.max_us);
    }

    #[test]
    fn unified_mean_reflects_total_load() {
        let cfg = ServingConfig::default();
        let uni = unified_tpot(&cfg);
        // All prefill work eventually runs: mean stretches by the load.
        let expected = cfg.decode_step_us * (1.0 + cfg.prefill_load);
        assert!((uni.mean_us - expected).abs() / expected < 0.05, "{}", uni.mean_us);
    }

    #[test]
    fn smooth_arrivals_have_no_tail() {
        let cfg = ServingConfig { burst_period: 1, ..ServingConfig::default() };
        let uni = unified_tpot(&cfg);
        assert!((uni.p95_us - uni.mean_us) / uni.mean_us < 0.05, "no burst, no tail");
    }

    #[test]
    fn capacity_check() {
        assert!(prefill_pool_sufficient(&ServingConfig::default()));
        let tight = ServingConfig { prefill_load: 3.0, ..ServingConfig::default() };
        assert!(!prefill_pool_sufficient(&tight));
    }

    #[test]
    fn bigger_bursts_worse_tail() {
        let small = unified_tpot(&ServingConfig { burst_period: 10, ..ServingConfig::default() });
        let big = unified_tpot(&ServingConfig { burst_period: 200, ..ServingConfig::default() });
        assert!(big.max_us > small.max_us);
    }
}
