//! CPU-side bottleneck arithmetic (§6.2).
//!
//! Three checks from the paper: (1) saturating 160 PCIe 5.0 lanes demands
//! over 640 GB/s, implying ~1 TB/s of host memory bandwidth; (2) kernel-launch
//! paths need high single-core frequency (the paper suggests over 4 GHz);
//! (3) enough CPU cores per GPU to avoid control-side stalls.

/// PCIe 5.0 per-lane bandwidth, GB/s.
pub const PCIE5_GBPS_PER_LANE: f64 = 4.0;

/// Host memory bandwidth (GB/s) required to feed `lanes` PCIe 5.0 lanes,
/// with `copy_amplification` ≥ 1 (a bounce through host DRAM reads and
/// writes the data).
#[must_use]
pub fn required_host_memory_bw(lanes: usize, copy_amplification: f64) -> f64 {
    assert!(copy_amplification >= 1.0, "amplification cannot shrink traffic");
    lanes as f64 * PCIE5_GBPS_PER_LANE * copy_amplification
}

/// Kernel-launch budget: whether a CPU core at `cpu_ghz` can issue
/// `launches` kernel launches (each `cycles_per_launch` cycles of driver
/// work) within `budget_us`.
#[must_use]
pub fn launch_path_fits(
    cpu_ghz: f64,
    launches: usize,
    cycles_per_launch: f64,
    budget_us: f64,
) -> bool {
    assert!(cpu_ghz > 0.0, "frequency must be positive");
    let cost_us = launches as f64 * cycles_per_launch / (cpu_ghz * 1000.0);
    cost_us <= budget_us
}

/// Minimum single-core frequency (GHz) for the launch path to fit.
#[must_use]
pub fn min_cpu_ghz(launches: usize, cycles_per_launch: f64, budget_us: f64) -> f64 {
    assert!(budget_us > 0.0, "budget must be positive");
    launches as f64 * cycles_per_launch / (budget_us * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pcie_arithmetic() {
        // §6.2: "saturating 160 lanes of PCIe 5.0 demands over 640 GB/s …
        // translating to a memory bandwidth requirement of approximately
        // 1 TB/s per node".
        assert!((required_host_memory_bw(160, 1.0) - 640.0).abs() < 1e-9);
        let with_bounce = required_host_memory_bw(160, 1.6);
        assert!((900.0..1100.0).contains(&with_bounce), "{with_bounce}");
    }

    #[test]
    fn four_ghz_claim() {
        // A decode step of ~250 µs with ~300 launches at ~3000 cycles of
        // driver work each needs ≳3.6 GHz — the paper's "above 4 GHz" zone.
        let need = min_cpu_ghz(300, 3000.0, 250.0);
        assert!((3.0..5.0).contains(&need), "{need}");
        assert!(launch_path_fits(4.5, 300, 3000.0, 250.0));
        assert!(!launch_path_fits(2.0, 300, 3000.0, 250.0));
    }

    #[test]
    fn budget_scales_linearly() {
        assert_eq!(min_cpu_ghz(100, 1000.0, 100.0), min_cpu_ghz(200, 1000.0, 200.0));
    }
}
