//! KV/latent-cache manager with memory accounting.
//!
//! Table 1's point becomes operational here: at a fixed HBM budget, the
//! per-token cache size determines how many concurrent requests (and how
//! much context) a serving GPU can hold. MLA's 70 KB/token lets one GPU
//! serve ~7× the context of a GQA 405B-class model.

use dsv3_model::config::ModelConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Errors from cache admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheError {
    /// Not enough free bytes for the request.
    OutOfMemory {
        /// Bytes that were requested.
        requested: usize,
        /// Bytes currently free.
        free: usize,
    },
    /// Request id already present.
    DuplicateRequest,
    /// Request id unknown.
    UnknownRequest,
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::OutOfMemory { requested, free } => {
                write!(f, "out of cache memory: requested {requested} bytes, {free} free")
            }
            CacheError::DuplicateRequest => write!(f, "request id already admitted"),
            CacheError::UnknownRequest => write!(f, "unknown request id"),
        }
    }
}

impl std::error::Error for CacheError {}

/// A fixed-budget KV-cache pool.
///
/// ```
/// use dsv3_inference::kvcache::KvCacheManager;
/// use dsv3_model::zoo;
///
/// let mut pool = KvCacheManager::new(&zoo::deepseek_v3(), 2, 1_000_000_000);
/// pool.admit(1, 4096)?;
/// assert_eq!(pool.live_requests(), 1);
/// # Ok::<(), dsv3_inference::kvcache::CacheError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KvCacheManager {
    bytes_per_token: usize,
    capacity_bytes: usize,
    used_tokens: usize,
    // BTreeMap, not HashMap: anything that ever iterates live requests
    // (eviction sweeps, reporting) must see a deterministic id order.
    requests: BTreeMap<u64, usize>,
}

impl KvCacheManager {
    /// Pool for `model` at `bytes_per_elem` precision with a byte budget.
    ///
    /// # Panics
    ///
    /// Panics if the model's per-token footprint is zero or exceeds the
    /// budget.
    #[must_use]
    pub fn new(model: &ModelConfig, bytes_per_elem: usize, capacity_bytes: usize) -> Self {
        let bytes_per_token = model.kv_cache_bytes_per_token(bytes_per_elem);
        assert!(bytes_per_token > 0, "model caches nothing per token");
        assert!(bytes_per_token <= capacity_bytes, "budget below one token");
        Self { bytes_per_token, capacity_bytes, used_tokens: 0, requests: BTreeMap::new() }
    }

    /// Bytes one token occupies.
    #[must_use]
    pub fn bytes_per_token(&self) -> usize {
        self.bytes_per_token
    }

    /// Total token capacity of the pool.
    #[must_use]
    pub fn capacity_tokens(&self) -> usize {
        self.capacity_bytes / self.bytes_per_token
    }

    /// Free bytes.
    #[must_use]
    pub fn free_bytes(&self) -> usize {
        self.capacity_bytes - self.used_tokens * self.bytes_per_token
    }

    /// Fraction of the budget in use.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        (self.used_tokens * self.bytes_per_token) as f64 / self.capacity_bytes as f64
    }

    /// Admit a request with `prompt_tokens` of context.
    ///
    /// # Errors
    ///
    /// [`CacheError::OutOfMemory`] if the prompt does not fit,
    /// [`CacheError::DuplicateRequest`] if the id is already admitted.
    pub fn admit(&mut self, id: u64, prompt_tokens: usize) -> Result<(), CacheError> {
        if self.requests.contains_key(&id) {
            return Err(CacheError::DuplicateRequest);
        }
        let bytes = prompt_tokens * self.bytes_per_token;
        if bytes > self.free_bytes() {
            return Err(CacheError::OutOfMemory { requested: bytes, free: self.free_bytes() });
        }
        self.requests.insert(id, prompt_tokens);
        self.used_tokens += prompt_tokens;
        Ok(())
    }

    /// Extend a request by one decoded token.
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownRequest`] or [`CacheError::OutOfMemory`].
    pub fn append_token(&mut self, id: u64) -> Result<(), CacheError> {
        if !self.requests.contains_key(&id) {
            return Err(CacheError::UnknownRequest);
        }
        if self.bytes_per_token > self.free_bytes() {
            return Err(CacheError::OutOfMemory {
                requested: self.bytes_per_token,
                free: self.free_bytes(),
            });
        }
        let Some(tokens) = self.requests.get_mut(&id) else {
            return Err(CacheError::UnknownRequest);
        };
        *tokens += 1;
        self.used_tokens += 1;
        Ok(())
    }

    /// Release a request, freeing its tokens.
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownRequest`] if the id is not admitted.
    pub fn release(&mut self, id: u64) -> Result<usize, CacheError> {
        match self.requests.remove(&id) {
            Some(tokens) => {
                self.used_tokens -= tokens;
                Ok(tokens)
            }
            None => Err(CacheError::UnknownRequest),
        }
    }

    /// Number of live requests.
    #[must_use]
    pub fn live_requests(&self) -> usize {
        self.requests.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv3_model::zoo;

    const GB40: usize = 40 * 1_000_000_000; // serving slice of an 80 GB GPU

    #[test]
    fn mla_holds_7x_the_context_of_llama() {
        let v3 = KvCacheManager::new(&zoo::deepseek_v3(), 2, GB40);
        let llama = KvCacheManager::new(&zoo::llama31_405b(), 2, GB40);
        let ratio = v3.capacity_tokens() as f64 / llama.capacity_tokens() as f64;
        assert!(ratio > 7.0 && ratio < 7.6, "ratio {ratio}");
    }

    #[test]
    fn admission_and_release_account_correctly() {
        let mut m = KvCacheManager::new(&zoo::deepseek_v3(), 2, GB40);
        m.admit(1, 10_000).unwrap();
        m.admit(2, 20_000).unwrap();
        assert_eq!(m.live_requests(), 2);
        let before = m.free_bytes();
        m.append_token(1).unwrap();
        assert_eq!(before - m.free_bytes(), m.bytes_per_token());
        assert_eq!(m.release(1).unwrap(), 10_001);
        assert_eq!(m.live_requests(), 1);
    }

    #[test]
    fn out_of_memory_is_reported_not_panicked() {
        let mut m = KvCacheManager::new(&zoo::deepseek_v3(), 2, GB40);
        let cap = m.capacity_tokens();
        let err = m.admit(1, cap + 1).unwrap_err();
        assert!(matches!(err, CacheError::OutOfMemory { .. }));
        // Fill exactly, then the next token must fail.
        m.admit(2, cap).unwrap();
        assert!(matches!(m.append_token(2), Err(CacheError::OutOfMemory { .. })));
        assert!(m.utilization() > 0.999);
    }

    #[test]
    fn duplicate_and_unknown_ids() {
        let mut m = KvCacheManager::new(&zoo::deepseek_v3(), 2, GB40);
        m.admit(7, 10).unwrap();
        assert_eq!(m.admit(7, 10), Err(CacheError::DuplicateRequest));
        assert_eq!(m.append_token(9), Err(CacheError::UnknownRequest));
        assert_eq!(m.release(9), Err(CacheError::UnknownRequest));
    }

    #[test]
    fn fp8_cache_doubles_tokens() {
        let bf16 = KvCacheManager::new(&zoo::deepseek_v3(), 2, GB40);
        let fp8 = KvCacheManager::new(&zoo::deepseek_v3(), 1, GB40);
        // Equal up to the floor rounding of the token capacities.
        let diff = fp8.capacity_tokens() as i64 - 2 * bf16.capacity_tokens() as i64;
        assert!(diff.abs() <= 1, "diff {diff}");
    }
}
