//! Inference-side models: the paper's §2.3 (inference speed) analyses.
//!
//! * [`tpot`] — the EP all-to-all speed-limit model of §2.3.2 (120.96 µs per
//!   EP step on H800+IB ⇒ 14.76 ms TPOT ⇒ 67 tok/s; 0.82 ms ⇒ ~1200 tok/s
//!   on a GB200-class scale-up fabric).
//! * [`kvcache`] — a KV/latent-cache manager with memory accounting (the
//!   operational side of Table 1).
//! * [`overlap`] — dual micro-batch computation/communication overlap
//!   (§2.3.1).
//! * [`disagg`] — prefill/decode disaggregation vs a unified pool (§2.3.1).
//! * [`local`] — memory-bandwidth-bound local deployment TPS (§2.2.2).
//! * [`contention`] — PCIe contention between KV transfers and EP traffic
//!   (§4.5) and the value of traffic prioritization.
//! * [`host`] — CPU-side bottleneck arithmetic (§6.2).

#![forbid(unsafe_code)]

pub mod contention;
pub mod disagg;
pub mod host;
pub mod kvcache;
pub mod local;
pub mod overlap;
pub mod prefill;
pub mod tpot;

pub use tpot::{SpeedLimit, SpeedLimitConfig};
