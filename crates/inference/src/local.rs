//! Memory-bandwidth-bound local deployment (§2.2.2).
//!
//! Decoding a single request reads every activated parameter once per
//! token, so on personal hardware TPS ≈ memory bandwidth / activated bytes.
//! This is why a 236B-parameter MoE that activates 21B runs at ~20 TPS on
//! an AI-SoC PC while a dense 70B model manages single digits.

use dsv3_model::config::ModelConfig;
use dsv3_model::flops::param_counts;
use serde::{Deserialize, Serialize};

/// A local deployment target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalHardware {
    /// Label.
    pub name: String,
    /// Usable memory bandwidth for weights (bytes/s).
    pub mem_bw_bytes_per_s: f64,
    /// Weight bytes per parameter (0.5 = 4-bit quantized).
    pub bytes_per_param: f64,
}

impl LocalHardware {
    /// An AI-SoC mini-PC / laptop class device (≈210 GB/s usable, Q4
    /// weights) — the §2.2.2 "PCs with AI SoC chips" scenario.
    #[must_use]
    pub fn ai_soc_pc() -> Self {
        Self { name: "AI-SoC PC".into(), mem_bw_bytes_per_s: 210e9, bytes_per_param: 0.5 }
    }

    /// A KTransformers-style server: consumer GPU + high-bandwidth CPU
    /// memory hybrid (effective ≈390 GB/s over the expert weights).
    #[must_use]
    pub fn ktransformers_server() -> Self {
        Self {
            name: "KTransformers server".into(),
            mem_bw_bytes_per_s: 390e9,
            bytes_per_param: 0.5,
        }
    }

    /// Single-request decode TPS for `model` on this hardware.
    #[must_use]
    pub fn tps(&self, model: &ModelConfig) -> f64 {
        let activated = param_counts(model).activated as f64;
        self.mem_bw_bytes_per_s / (activated * self.bytes_per_param)
    }
}

/// A dense-70B stand-in for the paper's comparison.
#[must_use]
pub fn dense_70b() -> ModelConfig {
    use dsv3_model::attention::Attention;
    use dsv3_model::config::Ffn;
    ModelConfig {
        name: "Dense-70B".into(),
        layers: 80,
        hidden: 8192,
        vocab: 128_256,
        attention: Attention::Gqa { heads: 64, kv_heads: 8, head_dim: 128 },
        ffn: Ffn::Dense { intermediate: 28_672 },
        leading_dense_layers: 0,
        leading_dense_intermediate: 0,
        mtp_modules: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv3_model::zoo;

    #[test]
    fn v2_hits_20_tps_on_ai_soc() {
        let tps = LocalHardware::ai_soc_pc().tps(&zoo::deepseek_v2());
        assert!((18.0..25.0).contains(&tps), "V2 on AI SoC: {tps}");
    }

    #[test]
    fn dense_70b_single_digit() {
        let tps = LocalHardware::ai_soc_pc().tps(&dense_70b());
        assert!(tps < 10.0, "dense 70B: {tps}");
    }

    #[test]
    fn v3_near_20_tps_on_ktransformers() {
        let tps = LocalHardware::ktransformers_server().tps(&zoo::deepseek_v3());
        assert!((17.0..25.0).contains(&tps), "V3 on KTransformers: {tps}");
    }

    #[test]
    fn moe_advantage_is_order_of_magnitude_in_activation() {
        let hw = LocalHardware::ai_soc_pc();
        let moe = hw.tps(&zoo::deepseek_v2());
        let dense = hw.tps(&dense_70b());
        assert!(moe / dense > 3.0, "{moe} vs {dense}");
    }
}
