//! Dual micro-batch computation/communication overlap (§2.3.1).
//!
//! Two micro-batches alternate roles: while one computes (MLA or MoE), the
//! other occupies the network (dispatch or combine). The GPU and the NIC are
//! modeled as two exclusive resources; each micro-batch cycles through
//! `layers × [compute_attn, dispatch, compute_moe, combine]`.

use serde::{Deserialize, Serialize};

/// Per-layer phase durations (µs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerPhases {
    /// Attention computation.
    pub attn_us: f64,
    /// Dispatch all-to-all.
    pub dispatch_us: f64,
    /// Expert FFN computation.
    pub moe_us: f64,
    /// Combine all-to-all.
    pub combine_us: f64,
}

/// Result of the overlap simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapOutcome {
    /// Makespan with two overlapped micro-batches (µs).
    pub overlapped_us: f64,
    /// Makespan running the same two micro-batches serially (µs).
    pub serial_us: f64,
}

impl OverlapOutcome {
    /// Throughput gain from overlap.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.serial_us / self.overlapped_us
    }
}

/// Simulate two micro-batches through `layers` layers.
///
/// # Panics
///
/// Panics if any phase duration is negative or `layers == 0`.
#[must_use]
pub fn simulate(layers: usize, p: LayerPhases) -> OverlapOutcome {
    assert!(layers > 0, "need at least one layer");
    assert!(
        p.attn_us >= 0.0 && p.dispatch_us >= 0.0 && p.moe_us >= 0.0 && p.combine_us >= 0.0,
        "negative phase duration"
    );
    // Phase list per micro-batch: (duration, uses_gpu).
    let phases: Vec<(f64, bool)> = (0..layers)
        .flat_map(|_| {
            [(p.attn_us, true), (p.dispatch_us, false), (p.moe_us, true), (p.combine_us, false)]
        })
        .collect();
    // Resource-constrained list simulation for two micro-batches. Batch 1
    // starts one compute phase ahead (the paper's stagger).
    let mut gpu_free = 0f64;
    let mut nic_free = 0f64;
    let mut t = [0f64; 2];
    let mut idx = [0usize; 2];
    // Stagger: micro-batch 1 waits for micro-batch 0's first attn.
    let mut stagger_done = false;
    while idx[0] < phases.len() || idx[1] < phases.len() {
        // Pick the micro-batch that can start its next phase earliest;
        // tie-break on batch 0.
        let mut best: Option<(usize, f64)> = None;
        for mb in 0..2 {
            if idx[mb] >= phases.len() {
                continue;
            }
            if mb == 1 && !stagger_done {
                continue;
            }
            let (dur, gpu) = phases[idx[mb]];
            let _ = dur;
            let res_free = if gpu { gpu_free } else { nic_free };
            let start = t[mb].max(res_free);
            if best.is_none_or(|(_, s)| start < s) {
                best = Some((mb, start));
            }
        }
        let Some((mb, start)) = best else { break };
        let (dur, gpu) = phases[idx[mb]];
        let end = start + dur;
        if gpu {
            gpu_free = end;
        } else {
            nic_free = end;
        }
        t[mb] = end;
        idx[mb] += 1;
        if mb == 0 && idx[0] == 1 {
            stagger_done = true; // batch 1 may enter once batch 0's attn done
        }
    }
    let overlapped_us = t[0].max(t[1]);
    let serial_us = 2.0 * phases.iter().map(|(d, _)| d).sum::<f64>();
    OverlapOutcome { overlapped_us, serial_us }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_phases_overlap_nearly_perfectly() {
        let p = LayerPhases { attn_us: 50.0, dispatch_us: 50.0, moe_us: 50.0, combine_us: 50.0 };
        let o = simulate(61, p);
        // Serial: 2 × 61 × 200; overlapped ≈ 61 × 200 + one stagger tail.
        assert!(o.speedup() > 1.8, "speedup {}", o.speedup());
        assert!(o.speedup() <= 2.0 + 1e-9);
    }

    #[test]
    fn comm_dominated_is_comm_bound() {
        let p = LayerPhases { attn_us: 1.0, dispatch_us: 120.0, moe_us: 1.0, combine_us: 120.0 };
        let o = simulate(61, p);
        // The NIC is busy ~100% of the time: makespan ≈ 2 batches × comm.
        let comm_total = 2.0 * 61.0 * 240.0;
        assert!(o.overlapped_us >= comm_total - 1e-6, "{}", o.overlapped_us);
        assert!(o.overlapped_us < comm_total * 1.05, "{}", o.overlapped_us);
    }

    #[test]
    fn compute_dominated_has_no_benefit_beyond_hiding_comm() {
        let p = LayerPhases { attn_us: 200.0, dispatch_us: 10.0, moe_us: 200.0, combine_us: 10.0 };
        let o = simulate(10, p);
        let compute_total = 2.0 * 10.0 * 400.0;
        // Communication fully hidden: makespan ≈ compute.
        assert!(o.overlapped_us < compute_total * 1.02, "{}", o.overlapped_us);
        let hidden_fraction = (o.serial_us - o.overlapped_us) / (2.0 * 10.0 * 20.0);
        assert!(hidden_fraction > 0.9, "most comm hidden: {hidden_fraction}");
    }

    #[test]
    fn zero_comm_speedup_is_one() {
        let p = LayerPhases { attn_us: 10.0, dispatch_us: 0.0, moe_us: 10.0, combine_us: 0.0 };
        let o = simulate(4, p);
        assert!((o.speedup() - 1.0).abs() < 0.05, "{}", o.speedup());
    }
}
