//! Prefill latency and selective tensor parallelism (§4.2).
//!
//! Training avoids TP because of the H800's cut NVLink, but "during
//! inference, TP can still be selectively used to reduce latency". Prefill
//! is compute-bound, so sharding a layer across `tp` GPUs divides the GEMM
//! time while adding two NVLink all-reduces per layer; this model finds the
//! TTFT-optimal TP degree for a given prompt.

use dsv3_model::config::ModelConfig;
use dsv3_model::flops;
use serde::{Deserialize, Serialize};

/// Hardware constants for the prefill model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefillHardware {
    /// Achievable GEMM throughput per GPU (FLOPS).
    pub gpu_flops: f64,
    /// Effective NVLink bandwidth per GPU (bytes/s).
    pub nvlink_bytes_per_s: f64,
    /// Fixed per-collective launch latency (µs).
    pub collective_latency_us: f64,
}

impl PrefillHardware {
    /// H800 at ~50% FP8 MFU with 160 GB/s NVLink.
    #[must_use]
    pub fn h800() -> Self {
        Self {
            gpu_flops: 0.5 * 1979.0e12,
            nvlink_bytes_per_s: 160.0e9,
            collective_latency_us: 10.0,
        }
    }
}

/// TTFT estimate (µs) for a `prompt_tokens` prefill at TP degree `tp`.
///
/// Compute: forward FLOPs divided across `tp` GPUs. Communication: two
/// ring all-reduces per layer over the activations
/// (`2 · 2(tp−1)/tp · prompt · hidden · 2 bytes` each).
///
/// # Panics
///
/// Panics if `tp == 0` or `prompt_tokens == 0`.
#[must_use]
pub fn ttft_us(cfg: &ModelConfig, hw: &PrefillHardware, prompt_tokens: usize, tp: usize) -> f64 {
    assert!(tp > 0, "TP degree must be positive");
    assert!(prompt_tokens > 0, "empty prompt");
    // Forward pass ≈ 1/3 of the training FLOPs (2 of 6 per parameter).
    let fwd_flops =
        flops::training_flops_per_token(cfg, prompt_tokens.max(2)) / 3.0 * prompt_tokens as f64;
    let compute_us = fwd_flops / (tp as f64 * hw.gpu_flops) * 1e6;
    let comm_us = if tp == 1 {
        0.0
    } else {
        let bytes_per_allreduce =
            2.0 * (tp as f64 - 1.0) / tp as f64 * prompt_tokens as f64 * cfg.hidden as f64 * 2.0;
        let per_layer =
            2.0 * (bytes_per_allreduce / hw.nvlink_bytes_per_s * 1e6 + hw.collective_latency_us);
        per_layer * cfg.layers as f64
    };
    compute_us + comm_us
}

/// The TP degree (from `candidates`) minimizing TTFT.
#[must_use]
pub fn best_tp(
    cfg: &ModelConfig,
    hw: &PrefillHardware,
    prompt_tokens: usize,
    candidates: &[usize],
) -> usize {
    assert!(!candidates.is_empty(), "no candidates");
    *candidates
        .iter()
        .min_by(|&&a, &&b| {
            ttft_us(cfg, hw, prompt_tokens, a).total_cmp(&ttft_us(cfg, hw, prompt_tokens, b))
        })
        .unwrap_or(&candidates[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv3_model::zoo;

    #[test]
    fn tp_reduces_prefill_latency_for_long_prompts() {
        let cfg = zoo::deepseek_v3();
        let hw = PrefillHardware::h800();
        let t1 = ttft_us(&cfg, &hw, 8192, 1);
        let t8 = ttft_us(&cfg, &hw, 8192, 8);
        assert!(t8 < t1 / 3.0, "TP8 {t8} vs TP1 {t1}");
    }

    #[test]
    fn tiny_prompts_prefer_low_tp() {
        // With 8 tokens the all-reduce latency dominates any compute saving.
        let cfg = zoo::deepseek_v3();
        let hw = PrefillHardware::h800();
        let best_small = best_tp(&cfg, &hw, 8, &[1, 2, 4, 8]);
        let best_large = best_tp(&cfg, &hw, 16_384, &[1, 2, 4, 8]);
        assert!(best_small < best_large, "{best_small} vs {best_large}");
        assert_eq!(best_large, 8);
    }

    #[test]
    fn ttft_monotone_in_prompt_length() {
        let cfg = zoo::deepseek_v3();
        let hw = PrefillHardware::h800();
        assert!(ttft_us(&cfg, &hw, 4096, 4) > ttft_us(&cfg, &hw, 1024, 4));
    }

    #[test]
    fn communication_fraction_grows_with_tp() {
        let cfg = zoo::deepseek_v3();
        let hw = PrefillHardware::h800();
        // Doubling TP halves compute but grows comm: the marginal gain shrinks.
        let t2 = ttft_us(&cfg, &hw, 4096, 2);
        let t4 = ttft_us(&cfg, &hw, 4096, 4);
        let t8 = ttft_us(&cfg, &hw, 4096, 8);
        assert!(t2 / t4 > t4 / t8, "diminishing returns");
    }
}
