//! EP inference speed limits (§2.3.2).
//!
//! Each MoE layer performs two all-to-alls (dispatch in FP8, combine in
//! BF16). With one expert per device and `tokens` tokens in flight, the
//! communication time is
//! `(dispatch_bytes + combine_bytes) · tokens · experts · hidden / bandwidth`,
//! and under dual micro-batch overlap the per-layer time is
//! `2 · max(comm, comp)`. The paper evaluates the comm-bound case for
//! H800+CX7 (comp ≈ 0) and the balanced case (comp = comm) for GB200.

use serde::{Deserialize, Serialize};

/// Parameters of the speed-limit model.
///
/// ```
/// use dsv3_inference::SpeedLimitConfig;
///
/// let limit = SpeedLimitConfig::h800_ib().evaluate();
/// assert!((limit.tpot_ms - 14.76).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedLimitConfig {
    /// Tokens resident per device per step (32 balances compute intensity
    /// and latency in the paper's analysis).
    pub tokens_per_device: usize,
    /// Hidden size (the paper rounds to 7K = 7000 in its arithmetic).
    pub hidden: usize,
    /// Experts receiving each token (8 routed + 1 shared).
    pub experts_per_token: usize,
    /// Dispatch element size in bytes (FP8 = 1).
    pub dispatch_bytes: f64,
    /// Combine element size in bytes (BF16 = 2).
    pub combine_bytes: f64,
    /// Per-device interconnect bandwidth, bytes/s.
    pub bandwidth_bytes_per_s: f64,
    /// Model depth.
    pub layers: usize,
    /// Computation time per layer per micro-batch, µs (0 = comm-bound
    /// idealization).
    pub compute_us: f64,
}

impl SpeedLimitConfig {
    /// DeepSeek-V3 decoding on H800 + CX7 400 Gbps IB (50 GB/s), the
    /// comm-bound idealization of §2.3.2.
    #[must_use]
    pub fn h800_ib() -> Self {
        Self {
            tokens_per_device: 32,
            hidden: 7000,
            experts_per_token: 9,
            dispatch_bytes: 1.0,
            combine_bytes: 2.0,
            bandwidth_bytes_per_s: 50e9,
            layers: 61,
            compute_us: 0.0,
        }
    }

    /// The GB200-NVL72-class scale-up fabric (900 GB/s), with compute
    /// assumed equal to communication as in the paper.
    #[must_use]
    pub fn gb200_nvl72() -> Self {
        let mut cfg = Self::h800_ib();
        cfg.bandwidth_bytes_per_s = 900e9;
        cfg.compute_us = cfg.ep_comm_time_us();
        cfg
    }

    /// One EP all-to-all pair's communication time (µs): dispatch + combine.
    #[must_use]
    pub fn ep_comm_time_us(&self) -> f64 {
        let bytes = (self.dispatch_bytes + self.combine_bytes)
            * self.tokens_per_device as f64
            * self.experts_per_token as f64
            * self.hidden as f64;
        bytes / self.bandwidth_bytes_per_s * 1e6
    }

    /// Evaluate the model.
    #[must_use]
    pub fn evaluate(&self) -> SpeedLimit {
        let comm = self.ep_comm_time_us();
        // Dual micro-batch overlap: each layer costs two phases, each the
        // max of compute and communication.
        let per_layer = 2.0 * comm.max(self.compute_us);
        let total_ms = per_layer * self.layers as f64 / 1000.0;
        SpeedLimit {
            comm_time_us: comm,
            per_layer_us: per_layer,
            tpot_ms: total_ms,
            tokens_per_second: 1000.0 / total_ms,
        }
    }
}

/// Evaluated speed limit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedLimit {
    /// One EP dispatch+combine communication time (µs).
    pub comm_time_us: f64,
    /// Per-layer time under dual micro-batch overlap (µs).
    pub per_layer_us: f64,
    /// Time per output token (ms).
    pub tpot_ms: f64,
    /// Decode speed (tokens/s).
    pub tokens_per_second: f64,
}

/// Memory-bandwidth bound on decode speed for comparison: reading the
/// activated parameters once per token.
#[must_use]
pub fn memory_bound_tps(
    activated_params: f64,
    bytes_per_param: f64,
    mem_bw_bytes_per_s: f64,
) -> f64 {
    mem_bw_bytes_per_s / (activated_params * bytes_per_param)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h800_matches_paper_arithmetic() {
        let cfg = SpeedLimitConfig::h800_ib();
        let s = cfg.evaluate();
        assert!((s.comm_time_us - 120.96).abs() < 0.01, "comm {}", s.comm_time_us);
        assert!((s.per_layer_us - 241.92).abs() < 0.01, "layer {}", s.per_layer_us);
        assert!((s.tpot_ms - 14.76).abs() < 0.01, "tpot {}", s.tpot_ms);
        assert!((s.tokens_per_second - 67.0).abs() < 1.0, "tps {}", s.tokens_per_second);
    }

    #[test]
    fn gb200_matches_paper_arithmetic() {
        let s = SpeedLimitConfig::gb200_nvl72().evaluate();
        assert!((s.comm_time_us - 6.72).abs() < 0.01, "comm {}", s.comm_time_us);
        assert!((s.tpot_ms - 0.82).abs() < 0.01, "tpot {}", s.tpot_ms);
        assert!(s.tokens_per_second > 1190.0, "tps {}", s.tokens_per_second);
    }

    #[test]
    fn bandwidth_scaling_is_linear_when_comm_bound() {
        let mut cfg = SpeedLimitConfig::h800_ib();
        let base = cfg.evaluate().tokens_per_second;
        cfg.bandwidth_bytes_per_s *= 2.0;
        let doubled = cfg.evaluate().tokens_per_second;
        assert!((doubled / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn compute_floor_binds_when_large() {
        let mut cfg = SpeedLimitConfig::h800_ib();
        cfg.compute_us = 500.0; // slower than the 120.96 µs comm
        let s = cfg.evaluate();
        assert!((s.per_layer_us - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_reference() {
        // 37B activated at FP8 on 3.35 TB/s HBM ≈ 90 tok/s, same order as
        // the 67 tok/s interconnect limit — both constraints are real.
        let tps = memory_bound_tps(37e9, 1.0, 3.35e12);
        assert!((tps - 90.5).abs() < 1.0, "{tps}");
    }
}
