//! Property-based tests for the inference models.

use dsv3_inference::kvcache::KvCacheManager;
use dsv3_inference::overlap::{simulate, LayerPhases};
use dsv3_inference::tpot::SpeedLimitConfig;
use dsv3_model::zoo;
use proptest::prelude::*;

proptest! {
    /// The speed limit is inversely linear in bandwidth (comm-bound) and
    /// monotone in every traffic parameter.
    #[test]
    fn speed_limit_monotonicity(bw in 10.0f64..2000.0, tokens in 1usize..256, hidden in 1024usize..16384) {
        let mut cfg = SpeedLimitConfig::h800_ib();
        cfg.bandwidth_bytes_per_s = bw * 1e9;
        cfg.tokens_per_device = tokens;
        cfg.hidden = hidden;
        let s = cfg.evaluate();
        prop_assert!(s.tpot_ms > 0.0);
        let mut faster = cfg;
        faster.bandwidth_bytes_per_s *= 2.0;
        prop_assert!((faster.evaluate().tpot_ms - s.tpot_ms / 2.0).abs() < 1e-9);
        let mut bigger = cfg;
        bigger.hidden *= 2;
        prop_assert!(bigger.evaluate().tpot_ms > s.tpot_ms);
    }

    /// KV cache accounting: admit/append/release round-trips exactly for
    /// any sequence of operations that fits.
    #[test]
    fn kvcache_accounting(ops in prop::collection::vec((0u64..8, 1usize..500), 1..40)) {
        let mut m = KvCacheManager::new(&zoo::deepseek_v3(), 2, 10_000_000_000);
        let free0 = m.free_bytes();
        // BTreeMap mirrors the manager's own map: the release loop below
        // iterates the keys, and the order should not depend on hashing.
        let mut live: std::collections::BTreeMap<u64, usize> = Default::default();
        for (id, tokens) in ops {
            if let Some(count) = live.get_mut(&id) {
                if m.append_token(id).is_ok() {
                    *count += 1;
                }
            } else if m.admit(id, tokens).is_ok() {
                live.insert(id, tokens);
            }
        }
        let expected_used: usize = live.values().sum::<usize>() * m.bytes_per_token();
        prop_assert_eq!(free0 - m.free_bytes(), expected_used);
        let ids: Vec<u64> = live.keys().copied().collect();
        for id in ids {
            let released = m.release(id).unwrap();
            prop_assert_eq!(released, live[&id]);
        }
        prop_assert_eq!(m.free_bytes(), free0);
        prop_assert_eq!(m.live_requests(), 0);
    }

    /// Overlap speedup is always within [1, 2] and the overlapped makespan
    /// never beats the busier resource's total demand.
    #[test]
    fn overlap_bounds(attn in 1.0f64..200.0, disp in 0.0f64..200.0, moe in 1.0f64..200.0, comb in 0.0f64..200.0, layers in 1usize..40) {
        let p = LayerPhases { attn_us: attn, dispatch_us: disp, moe_us: moe, combine_us: comb };
        let o = simulate(layers, p);
        prop_assert!(o.speedup() >= 1.0 - 1e-9);
        prop_assert!(o.speedup() <= 2.0 + 1e-9);
        let gpu_demand = 2.0 * layers as f64 * (attn + moe);
        let nic_demand = 2.0 * layers as f64 * (disp + comb);
        prop_assert!(o.overlapped_us >= gpu_demand.max(nic_demand) - 1e-6);
        prop_assert!(o.overlapped_us <= o.serial_us + 1e-9);
    }
}
