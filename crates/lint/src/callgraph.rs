//! Pass-2 semantic checks over the workspace call graph: cross-file
//! unit checks (U2), RNG-stream discipline (R2), and the P3 effect
//! reachability analysis with its parallel-readiness report.
//!
//! The graph is conservative by construction: nodes are the parsed
//! functions, edges are name-resolved call sites (see
//! [`crate::symbols::SymbolTable::resolve`]), and only functions inside
//! the configured universe (library code outside test regions)
//! participate. Unresolvable calls — std, vendored crates — simply have
//! no edges, which errs toward silence for unit checks and is the
//! documented soundness boundary of the effect analysis: effects inside
//! vendored code are invisible, so the workspace bans the *entry
//! tokens* of those effects separately (D1/D3/D4).

use std::collections::BTreeMap;

use crate::diag::json_string;
use crate::expr::{mix_message, BodyFacts, EUnit, EffectKind, SemFinding};
use crate::rules::RuleId;
use crate::symbols::SymbolTable;
use crate::units::unit_of_ident;

/// The per-function inputs to pass 2, indexed by function id. Functions
/// without bodies (trait signatures) carry empty facts.
pub struct GraphInput<'a> {
    /// The workspace symbol table.
    pub symbols: &'a SymbolTable,
    /// Body facts per function id.
    pub facts: &'a [BodyFacts],
    /// Function participates in the analysis universe (library source,
    /// not in a test region).
    pub universe: &'a [bool],
}

/// A pass-2 finding, located by file index (the caller maps it back to
/// a path and applies waivers).
#[derive(Debug)]
pub struct FileFinding {
    /// Index into the symbol table's file list.
    pub file: usize,
    /// The finding.
    pub finding: SemFinding,
}

/// R2: every RNG from a named seed derivation (R2a, local) and no
/// `&mut` RNG threaded across file boundaries into reorderable code
/// (R2b, cross-file).
#[must_use]
pub fn rng_findings(input: &GraphInput<'_>) -> Vec<FileFinding> {
    let mut out = Vec::new();
    for (id, info) in input.symbols.fns.iter().enumerate() {
        if !input.universe.get(id).copied().unwrap_or(false) {
            continue;
        }
        for call in &input.facts[id].calls {
            // R2a — seeding constructors must mention a seed by name.
            if matches!(call.name.as_str(), "seed_from_u64" | "from_seed" | "from_rng") {
                let sanctioned = call
                    .args
                    .iter()
                    .any(|a| a.has_seed_ident || (call.name == "from_rng" && a.has_rng_ident));
                if !sanctioned {
                    out.push(FileFinding {
                        file: info.file,
                        finding: SemFinding {
                            rule: RuleId::R2,
                            line: call.line,
                            message: format!(
                                "`{}` argument names no seed; derive every RNG stream from a \
                                 named seed derivation",
                                call.name
                            ),
                        },
                    });
                }
                continue;
            }
            // R2b — `&mut …rng…` crossing a file boundary inside a
            // reorderable position couples iteration order to the
            // stream; a parallel schedule would scramble draws.
            if !call.in_loop || !call.args.iter().any(|a| a.leading_mut_ref && a.has_rng_ident) {
                continue;
            }
            let candidates = input.symbols.resolve(info.file, call);
            if let Some(&other) =
                candidates.iter().find(|&&c| input.symbols.fns[c].file != info.file)
            {
                let callee = &input.symbols.fns[other];
                out.push(FileFinding {
                    file: info.file,
                    finding: SemFinding {
                        rule: RuleId::R2,
                        line: call.line,
                        message: format!(
                            "`&mut` RNG threaded across a module boundary into reorderable code \
                             (callee `{}` in {}); split a named child stream instead",
                            callee.display(),
                            input.symbols.files[callee.file].rel
                        ),
                    },
                });
            }
        }
    }
    out
}

/// Cross-file U2: call arguments with a known unit checked against the
/// callee's parameter-name suffixes. Fires only when at least one
/// candidate declares a unit at that position and *every* such
/// candidate disagrees — name resolution without types must not guess.
#[must_use]
pub fn call_arg_unit_findings(input: &GraphInput<'_>) -> Vec<FileFinding> {
    let mut out = Vec::new();
    for (id, info) in input.symbols.fns.iter().enumerate() {
        if !input.universe.get(id).copied().unwrap_or(false) {
            continue;
        }
        for call in &input.facts[id].calls {
            if call.is_macro || crate::units::conversion_of(&call.name).is_some() {
                continue;
            }
            let candidates = input.symbols.resolve(info.file, call);
            if candidates.is_empty() {
                continue;
            }
            for (j, arg) in call.args.iter().enumerate() {
                let EUnit::Known(got) = arg.unit else { continue };
                let mut mismatch: Option<(crate::units::Unit, String)> = None;
                let mut any_known = false;
                let mut all_mismatch = true;
                for &c in &candidates {
                    let Some(pname) = input.symbols.fns[c].param_names.get(j) else {
                        continue;
                    };
                    let Some(want) = unit_of_ident(pname) else { continue };
                    any_known = true;
                    if want == got {
                        all_mismatch = false;
                    } else if mismatch.is_none() {
                        mismatch = Some((want, pname.clone()));
                    }
                }
                if any_known && all_mismatch {
                    if let Some((want, pname)) = mismatch {
                        out.push(FileFinding {
                            file: info.file,
                            finding: SemFinding {
                                rule: RuleId::U2,
                                line: call.line,
                                message: mix_message(
                                    &format!("argument `{pname}` of `{}`", call.name),
                                    got,
                                    want,
                                ),
                            },
                        });
                    }
                }
            }
        }
    }
    out
}

/// Readiness of one `lint:entry` function.
#[derive(Debug)]
pub struct EntryReadiness {
    /// Display name (`ChaosSim::run`).
    pub entry: String,
    /// Crate the entry lives in.
    pub krate: String,
    /// File of the entry.
    pub file: String,
    /// Line of the entry fn.
    pub line: u32,
    /// Functions reachable from the entry (including itself).
    pub reachable_fns: usize,
    /// Sorted crate names touched by the reachable set.
    pub crates_touched: Vec<String>,
    /// (effect label, count) pairs, sorted by label; empty means READY.
    pub effects: Vec<(String, usize)>,
}

impl EntryReadiness {
    /// No reachable forbidden effects.
    #[must_use]
    pub fn ready(&self) -> bool {
        self.effects.is_empty()
    }
}

/// The workspace parallel-readiness report: per entry, per crate.
#[derive(Debug, Default)]
pub struct ReadinessReport {
    /// One row per `lint:entry` fn, in symbol-table order.
    pub entries: Vec<EntryReadiness>,
}

impl ReadinessReport {
    /// Per-crate rollup: (crate, entry count, all entries ready).
    #[must_use]
    pub fn crate_rollup(&self) -> Vec<(String, usize, bool)> {
        let mut map: BTreeMap<String, (usize, bool)> = BTreeMap::new();
        for e in &self.entries {
            let slot = map.entry(e.krate.clone()).or_insert((0, true));
            slot.0 += 1;
            slot.1 &= e.ready();
        }
        map.into_iter().map(|(k, (n, r))| (k, n, r)).collect()
    }

    /// Human text rendering.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::from("parallel-readiness report\n=========================\n");
        if self.entries.is_empty() {
            out.push_str("no `lint:entry` functions declared\n");
            return out;
        }
        for e in &self.entries {
            out.push_str(&format!(
                "\nentry `{}` ({}) at {}:{}\n",
                e.entry, e.krate, e.file, e.line
            ));
            out.push_str(&format!(
                "  reachable fns: {} across crates: {}\n",
                e.reachable_fns,
                e.crates_touched.join(", ")
            ));
            if e.effects.is_empty() {
                out.push_str("  effects: none\n  verdict: READY\n");
            } else {
                let list: Vec<String> =
                    e.effects.iter().map(|(k, n)| format!("{k} x{n}")).collect();
                out.push_str(&format!("  effects: {}\n  verdict: NOT READY\n", list.join(", ")));
            }
        }
        out.push_str("\nper-crate rollup\n");
        for (krate, n, ready) in self.crate_rollup() {
            out.push_str(&format!(
                "  {krate}: {n} entr{} — {}\n",
                if n == 1 { "y" } else { "ies" },
                if ready { "READY" } else { "NOT READY" }
            ));
        }
        out
    }

    /// Deterministic JSON rendering (hand-emitted; the crate is
    /// dependency-free).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let crates: Vec<String> = e.crates_touched.iter().map(|c| json_string(c)).collect();
            let effects: Vec<String> = e
                .effects
                .iter()
                .map(|(k, n)| format!("{{\"kind\": {}, \"count\": {n}}}", json_string(k)))
                .collect();
            out.push_str(&format!(
                "    {{\"entry\": {}, \"crate\": {}, \"file\": {}, \"line\": {}, \
                 \"reachable_fns\": {}, \"crates_touched\": [{}], \"effects\": [{}], \
                 \"ready\": {}}}",
                json_string(&e.entry),
                json_string(&e.krate),
                json_string(&e.file),
                e.line,
                e.reachable_fns,
                crates.join(", "),
                effects.join(", "),
                e.ready()
            ));
        }
        out.push_str(if self.entries.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"crates\": [");
        let roll = self.crate_rollup();
        for (i, (krate, n, ready)) in roll.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"crate\": {}, \"entries\": {n}, \"ready\": {ready}}}",
                json_string(krate)
            ));
        }
        out.push_str(if roll.is_empty() { "]\n}" } else { "\n  ]\n}" });
        out
    }
}

/// P3: BFS from every `lint:entry` function; each reachable forbidden
/// effect is a finding at the *effect site*, with the call path in the
/// message. Also produces the readiness report.
#[must_use]
pub fn effect_analysis(input: &GraphInput<'_>) -> (Vec<FileFinding>, ReadinessReport) {
    let n = input.symbols.fns.len();
    // Adjacency, built once: edges only between universe functions.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, row) in adj.iter_mut().enumerate() {
        if !input.universe.get(id).copied().unwrap_or(false) {
            continue;
        }
        let file = input.symbols.fns[id].file;
        for call in &input.facts[id].calls {
            for c in input.symbols.resolve(file, call) {
                if input.universe.get(c).copied().unwrap_or(false) && !row.contains(&c) {
                    row.push(c);
                }
            }
        }
    }
    let mut findings = Vec::new();
    let mut report = ReadinessReport::default();
    for (entry, info) in input.symbols.fns.iter().enumerate() {
        if !info.is_entry || !input.universe.get(entry).copied().unwrap_or(false) {
            continue;
        }
        // BFS with parent pointers for path reconstruction.
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[entry] = true;
        queue.push_back(entry);
        let mut order = Vec::new();
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        let mut crates: Vec<String> = order
            .iter()
            .map(|&id| input.symbols.files[input.symbols.fns[id].file].krate.clone())
            .collect();
        crates.sort();
        crates.dedup();
        let mut effect_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for &id in &order {
            for eff in &input.facts[id].effects {
                *effect_counts.entry(eff.kind.label()).or_insert(0) += 1;
                // Reconstruct entry → … → id.
                let mut path = Vec::new();
                let mut cur = Some(id);
                while let Some(c) = cur {
                    path.push(input.symbols.fns[c].display());
                    cur = parent[c];
                }
                path.reverse();
                findings.push(FileFinding {
                    file: input.symbols.fns[id].file,
                    finding: SemFinding {
                        rule: RuleId::P3,
                        line: eff.line,
                        message: format!(
                            "entry `{}` reaches {} effect `{}` via `{}`",
                            info.display(),
                            eff.kind.label(),
                            eff.what,
                            path.join(" -> ")
                        ),
                    },
                });
            }
        }
        report.entries.push(EntryReadiness {
            entry: info.display(),
            krate: input.symbols.files[info.file].krate.clone(),
            file: input.symbols.files[info.file].rel.clone(),
            line: info.line,
            reachable_fns: order.len(),
            crates_touched: crates,
            effects: effect_counts.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
    }
    (findings, report)
}

/// Which effect kinds exist, for doc/reporting completeness.
#[must_use]
pub fn all_effect_kinds() -> [EffectKind; 5] {
    [
        EffectKind::WallClock,
        EffectKind::Entropy,
        EffectKind::Print,
        EffectKind::GlobalMut,
        EffectKind::FsEnv,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::analyze_body;
    use crate::lexer::lex;
    use crate::parser::parse_items;

    /// Build a GraphInput from (rel, src) pairs; all fns in-universe.
    struct Built {
        symbols: SymbolTable,
        facts: Vec<BodyFacts>,
        universe: Vec<bool>,
    }

    fn build(files: &[(&str, &str)]) -> Built {
        let mut symbols = SymbolTable::default();
        let mut facts = Vec::new();
        for (rel, src) in files {
            let lexed = lex(src);
            let parsed = parse_items(&lexed.toks, &lexed.comments);
            symbols.add_file(rel, &parsed, &|_| false);
            let muts: Vec<String> =
                parsed.statics.iter().filter(|s| s.is_mut).map(|s| s.name.clone()).collect();
            for f in &parsed.fns {
                facts.push(match f.body {
                    Some(range) => analyze_body(&lexed.toks, range, &muts, &[], &[], f.is_macro),
                    None => BodyFacts::default(),
                });
            }
        }
        let universe = vec![true; symbols.fns.len()];
        Built { symbols, facts, universe }
    }

    fn input(b: &Built) -> GraphInput<'_> {
        GraphInput { symbols: &b.symbols, facts: &b.facts, universe: &b.universe }
    }

    #[test]
    fn r2b_fires_only_across_files_in_loops() {
        let cross = build(&[
            (
                "crates/a/src/lib.rs",
                "fn driver(jitter_rng: &mut R) { for i in 0..3 { step(&mut jitter_rng); } }\n",
            ),
            ("crates/b/src/lib.rs", "pub fn step(rng: &mut R) {}\n"),
        ]);
        let got = rng_findings(&input(&cross));
        assert_eq!(got.len(), 1);
        assert!(got[0].finding.message.contains("crates/b/src/lib.rs"));

        let local = build(&[(
            "crates/a/src/lib.rs",
            "fn driver(rng: &mut R) { for i in 0..3 { step(&mut rng); } }\nfn step(rng: &mut R) \
             {}\n",
        )]);
        assert!(rng_findings(&input(&local)).is_empty(), "same file is fine");

        let no_loop = build(&[
            ("crates/a/src/lib.rs", "fn driver(rng: &mut R) { step(&mut rng); }\n"),
            ("crates/b/src/lib.rs", "pub fn step(rng: &mut R) {}\n"),
        ]);
        assert!(rng_findings(&input(&no_loop)).is_empty(), "no reorderable position");
    }

    #[test]
    fn r2a_requires_a_named_seed() {
        let bad =
            build(&[("crates/a/src/lib.rs", "fn mk() -> StdRng { StdRng::seed_from_u64(42) }\n")]);
        assert_eq!(rng_findings(&input(&bad)).len(), 1);
        let good = build(&[(
            "crates/a/src/lib.rs",
            "fn mk(seed: u64) -> StdRng { StdRng::seed_from_u64(derive_seed(seed, 1)) }\n",
        )]);
        assert!(rng_findings(&input(&good)).is_empty());
    }

    #[test]
    fn cross_file_arg_units_check_param_suffixes() {
        let bad = build(&[
            ("crates/a/src/lib.rs", "fn caller(at_ms: f64) { record(at_ms * 1000.0, 1.0); }\n"),
            ("crates/b/src/lib.rs", "pub fn record(ts_us: f64, v: f64) {}\n"),
        ]);
        let got = call_arg_unit_findings(&input(&bad));
        assert_eq!(got.len(), 1);
        assert!(got[0].finding.message.contains("ts_us"));

        let good = build(&[
            ("crates/a/src/lib.rs", "fn caller(at_ms: f64) { record(ms_to_us(at_ms), 1.0); }\n"),
            ("crates/b/src/lib.rs", "pub fn record(ts_us: f64, v: f64) {}\n"),
        ]);
        assert!(call_arg_unit_findings(&input(&good)).is_empty());
    }

    #[test]
    fn effect_analysis_reports_reachable_effects_with_paths() {
        let b = build(&[
            (
                "crates/sim/src/lib.rs",
                "// lint:entry — event loop\npub fn run() { step(); }\nfn step() { \
                 helper::emit(); }\n",
            ),
            (
                "crates/sim/src/helper.rs",
                "pub fn emit() { println!(\"x\"); }\nfn unreached() { let t = Instant::now(); \
                 }\n",
            ),
        ]);
        let (findings, report) = effect_analysis(&input(&b));
        assert_eq!(findings.len(), 1, "only the reachable effect: {findings:?}");
        let f = &findings[0].finding;
        assert_eq!(f.rule, RuleId::P3);
        assert!(f.message.contains("run -> step -> emit"), "{}", f.message);
        assert!(f.message.contains("stdout"));
        assert_eq!(report.entries.len(), 1);
        let e = &report.entries[0];
        assert_eq!(e.entry, "run");
        assert!(!e.ready());
        assert_eq!(e.reachable_fns, 3);
    }

    #[test]
    fn clean_entry_is_ready_and_renders() {
        let b = build(&[(
            "crates/sim/src/lib.rs",
            "// lint:entry — loop\npub fn run() { step(); }\nfn step() {}\n",
        )]);
        let (findings, report) = effect_analysis(&input(&b));
        assert!(findings.is_empty());
        assert!(report.entries[0].ready());
        let text = report.render_text();
        assert!(text.contains("verdict: READY"), "{text}");
        let json = report.render_json();
        assert!(json.contains("\"ready\": true"), "{json}");
        assert_eq!(json, report.render_json(), "byte-stable");
    }

    #[test]
    fn static_mut_use_is_a_reachable_effect() {
        let b = build(&[(
            "crates/sim/src/lib.rs",
            "static mut COUNTER: u64 = 0;\n// lint:entry — loop\npub fn run() { unsafe { \
             COUNTER += 1; } }\n",
        )]);
        let (findings, _) = effect_analysis(&input(&b));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].finding.message.contains("global-mut"));
    }

    #[test]
    fn recursion_terminates() {
        let b = build(&[(
            "crates/sim/src/lib.rs",
            "// lint:entry — loop\npub fn run() { run(); other(); }\nfn other() { run(); }\n",
        )]);
        let (_, report) = effect_analysis(&input(&b));
        assert_eq!(report.entries[0].reachable_fns, 2);
    }
}
