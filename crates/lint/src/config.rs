//! Lint configuration: which rules run, and where each rule simply does
//! not apply (path allowlists). Allowlists are substring matches over
//! the workspace-relative, `/`-separated path — coarse on purpose, so
//! the policy stays readable in one screen.

use crate::rules::RuleId;

/// One rule's scope: enabled + path fragments where it is exempt.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// The rule.
    pub rule: RuleId,
    /// Path fragments (substring match) where the rule does not apply.
    pub allow_paths: Vec<&'static str>,
}

/// The whole linter configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Per-rule scopes, one entry per source rule (W1/W2 are waiver
    /// hygiene and always on).
    pub rules: Vec<RuleConfig>,
    /// When set, only these rule families run (`--rules U2,F2`). Waiver
    /// hygiene findings (W1/W2) follow the filter like any other rule,
    /// and waivers naming only filtered-out rules are never reported
    /// stale.
    pub only: Option<Vec<RuleId>>,
}

/// Paths where printing, panicking, and hash collections are fine:
/// binaries own stdout, examples and tests are not library code, and
/// benches are driven by criterion.
const BIN_EXAMPLES_TESTS: [&str; 4] = ["src/bin/", "examples/", "tests/", "/benches/"];

impl LintConfig {
    /// The repository policy. D1 exempts benches (criterion measures
    /// wall time by design); D3 exempts nothing — unseeded entropy is
    /// never acceptable, not even in tests. U2 additionally covers
    /// `src/bin/`: a binary that mixes ms and µs misreports results
    /// just as badly as a library would.
    #[must_use]
    pub fn default_config() -> Self {
        Self {
            rules: vec![
                RuleConfig { rule: RuleId::D1, allow_paths: vec!["/benches/"] },
                RuleConfig { rule: RuleId::D2, allow_paths: BIN_EXAMPLES_TESTS.to_vec() },
                RuleConfig { rule: RuleId::D3, allow_paths: vec![] },
                RuleConfig { rule: RuleId::D4, allow_paths: BIN_EXAMPLES_TESTS.to_vec() },
                RuleConfig { rule: RuleId::P1, allow_paths: BIN_EXAMPLES_TESTS.to_vec() },
                RuleConfig { rule: RuleId::U1, allow_paths: vec![] },
                RuleConfig { rule: RuleId::V1, allow_paths: vec![] },
                RuleConfig {
                    rule: RuleId::U2,
                    allow_paths: vec!["examples/", "tests/", "/benches/"],
                },
                RuleConfig { rule: RuleId::F2, allow_paths: BIN_EXAMPLES_TESTS.to_vec() },
                RuleConfig { rule: RuleId::R2, allow_paths: BIN_EXAMPLES_TESTS.to_vec() },
                RuleConfig { rule: RuleId::P3, allow_paths: BIN_EXAMPLES_TESTS.to_vec() },
            ],
            only: None,
        }
    }

    /// Is `rule` enabled at all under the `--rules` filter?
    #[must_use]
    pub fn enabled(&self, rule: RuleId) -> bool {
        self.only.as_ref().is_none_or(|o| o.contains(&rule))
    }

    /// Does `rule` apply to the file at `rel_path`?
    #[must_use]
    pub fn applies(&self, rule: RuleId, rel_path: &str) -> bool {
        if !self.enabled(rule) {
            return false;
        }
        match self.rules.iter().find(|r| r.rule == rule) {
            Some(rc) => !rc.allow_paths.iter().any(|frag| rel_path.contains(frag)),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlists_scope_rules_by_path() {
        let c = LintConfig::default_config();
        assert!(c.applies(RuleId::P1, "crates/serving/src/engine.rs"));
        assert!(!c.applies(RuleId::P1, "crates/serving/tests/goldens.rs"));
        assert!(!c.applies(RuleId::D4, "crates/core/src/bin/dsv3.rs"));
        assert!(!c.applies(RuleId::D1, "crates/bench/benches/telemetry.rs"));
        assert!(c.applies(RuleId::D1, "crates/core/src/telemetry/recorder.rs"));
        assert!(c.applies(RuleId::D3, "crates/model/tests/proptests.rs"), "D3 has no exemptions");
    }

    #[test]
    fn semantic_rules_cover_lib_and_u2_also_bins() {
        let c = LintConfig::default_config();
        assert!(c.applies(RuleId::U2, "crates/faults/src/plan.rs"));
        assert!(c.applies(RuleId::U2, "crates/core/src/bin/dsv3.rs"), "U2 covers binaries");
        assert!(!c.applies(RuleId::U2, "crates/faults/tests/goldens.rs"));
        assert!(!c.applies(RuleId::F2, "crates/core/src/bin/dsv3.rs"));
        assert!(c.applies(RuleId::P3, "crates/serving/src/engine.rs"));
        assert!(!c.applies(RuleId::R2, "crates/serving/examples/demo.rs"));
    }

    #[test]
    fn only_filter_disables_everything_else() {
        let mut c = LintConfig::default_config();
        c.only = Some(vec![RuleId::U2, RuleId::F2]);
        assert!(c.applies(RuleId::U2, "crates/faults/src/plan.rs"));
        assert!(!c.applies(RuleId::P1, "crates/faults/src/plan.rs"));
        assert!(!c.enabled(RuleId::W2));
        assert!(c.enabled(RuleId::F2));
    }
}
