//! Lint configuration: which rules run, and where each rule simply does
//! not apply (path allowlists). Allowlists are substring matches over
//! the workspace-relative, `/`-separated path — coarse on purpose, so
//! the policy stays readable in one screen.

use crate::rules::RuleId;

/// One rule's scope: enabled + path fragments where it is exempt.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// The rule.
    pub rule: RuleId,
    /// Path fragments (substring match) where the rule does not apply.
    pub allow_paths: Vec<&'static str>,
}

/// The whole linter configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Per-rule scopes, one entry per source rule (W1/W2 are waiver
    /// hygiene and always on).
    pub rules: Vec<RuleConfig>,
}

/// Paths where printing, panicking, and hash collections are fine:
/// binaries own stdout, examples and tests are not library code, and
/// benches are driven by criterion.
const BIN_EXAMPLES_TESTS: [&str; 4] = ["src/bin/", "examples/", "tests/", "/benches/"];

impl LintConfig {
    /// The repository policy. D1 exempts benches (criterion measures
    /// wall time by design); D3 exempts nothing — unseeded entropy is
    /// never acceptable, not even in tests.
    #[must_use]
    pub fn default_config() -> Self {
        Self {
            rules: vec![
                RuleConfig { rule: RuleId::D1, allow_paths: vec!["/benches/"] },
                RuleConfig { rule: RuleId::D2, allow_paths: BIN_EXAMPLES_TESTS.to_vec() },
                RuleConfig { rule: RuleId::D3, allow_paths: vec![] },
                RuleConfig { rule: RuleId::D4, allow_paths: BIN_EXAMPLES_TESTS.to_vec() },
                RuleConfig { rule: RuleId::P1, allow_paths: BIN_EXAMPLES_TESTS.to_vec() },
                RuleConfig { rule: RuleId::U1, allow_paths: vec![] },
                RuleConfig { rule: RuleId::V1, allow_paths: vec![] },
            ],
        }
    }

    /// Does `rule` apply to the file at `rel_path`?
    #[must_use]
    pub fn applies(&self, rule: RuleId, rel_path: &str) -> bool {
        match self.rules.iter().find(|r| r.rule == rule) {
            Some(rc) => !rc.allow_paths.iter().any(|frag| rel_path.contains(frag)),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlists_scope_rules_by_path() {
        let c = LintConfig::default_config();
        assert!(c.applies(RuleId::P1, "crates/serving/src/engine.rs"));
        assert!(!c.applies(RuleId::P1, "crates/serving/tests/goldens.rs"));
        assert!(!c.applies(RuleId::D4, "crates/core/src/bin/dsv3.rs"));
        assert!(!c.applies(RuleId::D1, "crates/bench/benches/telemetry.rs"));
        assert!(c.applies(RuleId::D1, "crates/core/src/telemetry/recorder.rs"));
        assert!(c.applies(RuleId::D3, "crates/model/tests/proptests.rs"), "D3 has no exemptions");
    }
}
