//! Diagnostics: the finding type, deterministic ordering, and the text
//! and JSON renderings. JSON is emitted by hand — this crate has no
//! dependencies, and the format is small enough that a correct escaper
//! is ~20 lines.

use crate::rules::RuleId;

/// How bad a finding is. Errors fail CI; warnings do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Violates an enforced invariant.
    Error,
    /// Hygiene problem worth seeing, not worth failing the build.
    Warning,
}

impl Severity {
    /// Lowercase name used in renderings.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding, located and explained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule that fired.
    pub rule: RuleId,
    /// Severity the rule carries.
    pub severity: Severity,
    /// What and why.
    pub message: String,
}

impl Diagnostic {
    /// `path:line: severity[rule]: message` — the one-line text form the
    /// fixture goldens pin byte-exactly.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}[{}]: {}",
            self.path,
            self.line,
            self.severity.as_str(),
            self.rule.as_str(),
            self.message
        )
    }
}

/// Everything one scan produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Rust source files scanned.
    pub files_scanned: usize,
    /// `Cargo.toml` manifests scanned.
    pub manifests_scanned: usize,
    /// Waivers that suppressed at least one finding.
    pub waivers_honored: usize,
}

impl Report {
    /// Canonical order: path, then line, then rule. Stable across
    /// platforms because paths are normalized to `/`.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
        });
    }

    /// Error-severity findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Warning-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// The full text rendering: one line per diagnostic plus a summary
    /// tail line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s) across {} source files and {} manifests \
             ({} waiver(s) honored)\n",
            self.errors(),
            self.warnings(),
            self.files_scanned,
            self.manifests_scanned,
            self.waivers_honored
        ));
        out
    }

    /// Deterministic machine-readable JSON.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"manifests_scanned\": {},\n", self.manifests_scanned));
        out.push_str(&format!("  \"waivers_honored\": {},\n", self.waivers_honored));
        out.push_str(&format!("  \"errors\": {},\n", self.errors()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warnings()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"severity\": {}, \
                 \"message\": {}}}",
                json_string(&d.path),
                d.line,
                json_string(d.rule.as_str()),
                json_string(d.severity.as_str()),
                json_string(&d.message)
            ));
        }
        out.push_str(if self.diagnostics.is_empty() { "]\n}" } else { "\n  ]\n}" });
        out
    }
}

/// Escape a string for JSON output.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(path: &str, line: u32, rule: RuleId) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            rule,
            severity: rule.severity(),
            message: "m".to_string(),
        }
    }

    #[test]
    fn sort_is_path_line_rule() {
        let mut r = Report {
            diagnostics: vec![
                d("b.rs", 1, RuleId::D1),
                d("a.rs", 9, RuleId::P1),
                d("a.rs", 9, RuleId::D2),
                d("a.rs", 2, RuleId::P1),
            ],
            ..Report::default()
        };
        r.sort();
        let key: Vec<(String, u32)> =
            r.diagnostics.iter().map(|x| (x.path.clone(), x.line)).collect();
        assert_eq!(
            key,
            vec![
                ("a.rs".to_string(), 2),
                ("a.rs".to_string(), 9),
                ("a.rs".to_string(), 9),
                ("b.rs".to_string(), 1)
            ]
        );
        assert_eq!(r.diagnostics[1].rule, RuleId::D2, "rule breaks the line tie");
    }

    #[test]
    fn json_escapes_and_is_stable() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let mut r = Report { diagnostics: vec![d("x.rs", 1, RuleId::V1)], ..Report::default() };
        r.sort();
        assert_eq!(r.render_json(), r.render_json());
        assert!(r.render_json().contains("\"rule\": \"V1\""));
    }

    #[test]
    fn empty_report_renders_summary_only() {
        let r = Report::default();
        assert_eq!(
            r.render_text(),
            "0 error(s), 0 warning(s) across 0 source files and 0 manifests (0 waiver(s) \
             honored)\n"
        );
        assert!(r.render_json().contains("\"diagnostics\": []"));
    }
}
