//! Expression-level semantic analysis of one function body.
//!
//! A precedence-climbing expression walker over the token stream that
//! infers the *unit* of every subexpression (rule U2), records every
//! call site with per-argument facts (cross-file U2 and rule R2), spots
//! order-sensitive float accumulation (rule F2), and collects effect
//! sites (wall clock, entropy, printing, global mutable state, fs/env)
//! for the P3 reachability analysis.
//!
//! Like the item parser it never fails: fuel- and depth-limited, with a
//! progress guarantee in every loop. Anything it cannot classify gets
//! unit [`EUnit::Unknown`], which suppresses rather than invents
//! findings — the analysis only speaks when both sides of an operator
//! are confidently known.

use crate::lexer::{Tok, TokKind};
use crate::rules::RuleId;
use crate::units::{conversion_of, unit_of_ident, Dimension, Unit};

/// The inferred unit of an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EUnit {
    /// Carries a concrete unit (`at_ms` → ms).
    Known(Unit),
    /// A dimensionless scalar: numeric literals and ratios. Scaling a
    /// unit-carrying value by a scalar KEEPS the unit — that is what
    /// makes `at_ms * 1000.0` still milliseconds, so storing it in a
    /// `_us` slot fires until routed through `ms_to_us`.
    Scalar,
    /// No confident unit; suppresses checks it participates in.
    Unknown,
}

/// A category of effect forbidden on deterministic-parallel paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EffectKind {
    /// Reads the wall clock (`Instant`, `SystemTime`).
    WallClock,
    /// Draws OS entropy (`thread_rng`, `from_entropy`, `OsRng`).
    Entropy,
    /// Writes to the console (`println!` family).
    Print,
    /// Touches same-file `static mut` state.
    GlobalMut,
    /// Reaches into the filesystem or process environment.
    FsEnv,
}

impl EffectKind {
    /// Short stable label used in diagnostics and the readiness report.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EffectKind::WallClock => "wall-clock",
            EffectKind::Entropy => "entropy",
            EffectKind::Print => "stdout",
            EffectKind::GlobalMut => "global-mut",
            EffectKind::FsEnv => "fs-env",
        }
    }
}

/// One effect occurrence inside a function body.
#[derive(Debug, Clone)]
pub struct EffectSite {
    /// What kind of effect.
    pub kind: EffectKind,
    /// 1-based line.
    pub line: u32,
    /// The token that evidenced it (`Instant`, `println!`, …).
    pub what: String,
}

/// Facts about one call argument, for cross-file unit checks and R2.
#[derive(Debug, Clone)]
pub struct ArgFact {
    /// Inferred unit of the argument expression.
    pub unit: EUnit,
    /// Argument starts with `&mut`.
    pub leading_mut_ref: bool,
    /// Argument tokens mention an identifier containing "rng".
    pub has_rng_ident: bool,
    /// Argument tokens mention an identifier containing "seed".
    pub has_seed_ident: bool,
}

/// One call site recorded for the call graph and pass-2 checks.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment / method name / macro name).
    pub name: String,
    /// `Type::name(..)` qualifier when present.
    pub owner: Option<String>,
    /// `recv.name(..)` method call.
    pub is_method: bool,
    /// `name!(..)` macro invocation.
    pub is_macro: bool,
    /// 1-based line.
    pub line: u32,
    /// Per-argument facts in order.
    pub args: Vec<ArgFact>,
    /// Syntactically inside a loop, closure, or macro body — positions a
    /// reordering transformation could reorder.
    pub in_loop: bool,
}

/// A semantic finding emitted directly by the body walker (local U2, F2
/// accumulation). Cross-file findings are produced later from the facts.
#[derive(Debug, Clone)]
pub struct SemFinding {
    /// Rule that fired.
    pub rule: RuleId,
    /// 1-based line.
    pub line: u32,
    /// Human message.
    pub message: String,
}

/// Everything learned from one function body.
#[derive(Debug, Default)]
pub struct BodyFacts {
    /// Local findings (U2 mixing, F2 hash accumulation).
    pub findings: Vec<SemFinding>,
    /// Call sites in source order.
    pub calls: Vec<CallSite>,
    /// Effect sites in source order.
    pub effects: Vec<EffectSite>,
}

fn dim_name(d: Dimension) -> &'static str {
    match d {
        Dimension::Time => "time",
        Dimension::Data => "data",
        Dimension::Tokens => "tokens",
        Dimension::Flops => "flops",
    }
}

/// The canonical U2 message for mixing units `a` and `b` in `context`.
#[must_use]
pub fn mix_message(context: &str, a: Unit, b: Unit) -> String {
    if a.dimension() == b.dimension() {
        format!(
            "unit mismatch: {context} mixes `{}` and `{}`; route through `{}_to_{}`-style \
             conversions in core::units",
            a.suffix(),
            b.suffix(),
            a.suffix(),
            b.suffix()
        )
    } else {
        format!(
            "unit mismatch: {context} mixes `{}` ({}) and `{}` ({}); these measure different \
             dimensions",
            a.suffix(),
            dim_name(a.dimension()),
            b.suffix(),
            dim_name(b.dimension())
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinOp {
    OrOr,
    AndAnd,
    Cmp,
    Range,
    BitOr,
    BitXor,
    BitAnd,
    Shift,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

impl BinOp {
    fn prec(self) -> u8 {
        match self {
            BinOp::OrOr => 1,
            BinOp::AndAnd => 2,
            BinOp::Cmp => 3,
            BinOp::Range => 4,
            BinOp::BitOr => 5,
            BinOp::BitXor => 6,
            BinOp::BitAnd => 7,
            BinOp::Shift => 8,
            BinOp::Add | BinOp::Sub => 9,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 10,
        }
    }
}

/// Methods that preserve their receiver's unit.
const UNIT_PRESERVING: [&str; 10] =
    ["abs", "floor", "ceil", "round", "trunc", "min", "max", "clamp", "clone", "copied"];

/// Methods that compare receiver and argument (units must agree).
const UNIT_COMPARING: [&str; 3] = ["min", "max", "clamp"];

/// Iteration adapters that expose hash-ordered elements.
const HASH_ITERS: [&str; 5] = ["iter", "into_iter", "keys", "values", "drain"];

/// Order-sensitive float reducers.
const FLOAT_REDUCERS: [&str; 3] = ["sum", "fold", "product"];

const PRINT_MACROS: [&str; 5] = ["println", "print", "eprintln", "eprint", "dbg"];

/// Chain state threaded through postfix parsing for the F2 check.
#[derive(Debug, Clone, Copy, Default)]
struct Chain {
    /// Base of the chain is a known hash-ordered container.
    hashy: bool,
    /// A hash-ordered iteration adapter has been applied.
    iterated: bool,
}

struct Body<'a> {
    toks: &'a [Tok],
    i: usize,
    end: usize,
    fuel: usize,
    depth: usize,
    loop_depth: usize,
    closure_depth: usize,
    in_macro: bool,
    static_muts: &'a [String],
    hash_fields: &'a [String],
    hash_locals: Vec<String>,
    out: BodyFacts,
}

impl<'a> Body<'a> {
    fn peek(&self, off: usize) -> Option<&'a Tok> {
        let idx = self.i + off;
        if idx < self.end {
            self.toks.get(idx)
        } else {
            None
        }
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_ident(s))
    }

    fn line(&self) -> u32 {
        self.peek(0).map_or(0, |t| t.line)
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn spend(&mut self) -> bool {
        if self.fuel == 0 {
            self.i = self.end;
            return false;
        }
        self.fuel -= 1;
        true
    }

    fn in_reorderable(&self) -> bool {
        self.loop_depth > 0 || self.closure_depth > 0 || self.in_macro
    }

    /// Index just past the matching closer for the group opening at
    /// `self.i` (which must be at `open`).
    fn find_close(&self, open: char, close: char) -> usize {
        let mut depth = 0usize;
        let mut j = self.i;
        while j < self.end {
            let Some(t) = self.toks.get(j) else { break };
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                let arrow =
                    close == '>' && j > 0 && self.toks.get(j - 1).is_some_and(|p| p.is_punct('-'));
                if !arrow {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            j += 1;
        }
        self.end
    }

    fn skip_group(&mut self, open: char, close: char) {
        self.i = self.find_close(open, close);
    }

    fn push_finding(&mut self, rule: RuleId, line: u32, message: String) {
        self.out.findings.push(SemFinding { rule, line, message });
    }

    fn push_effect(&mut self, kind: EffectKind, line: u32, what: &str) {
        self.out.effects.push(EffectSite { kind, line, what: what.to_string() });
    }

    /// Additive-position merge: flag Known/Known mismatches.
    fn additive(&mut self, context: &str, a: EUnit, b: EUnit, line: u32) -> EUnit {
        match (a, b) {
            (EUnit::Known(x), EUnit::Known(y)) => {
                if x != y {
                    self.push_finding(RuleId::U2, line, mix_message(context, x, y));
                }
                EUnit::Known(x)
            }
            (EUnit::Known(x), _) | (_, EUnit::Known(x)) => EUnit::Known(x),
            (EUnit::Scalar, EUnit::Scalar) => EUnit::Scalar,
            _ => EUnit::Unknown,
        }
    }

    // ---- statement level -----------------------------------------------

    fn walk_stmts(&mut self, end: usize) {
        let save_end = self.end;
        self.end = end.min(save_end);
        while self.i < self.end {
            if !self.spend() {
                break;
            }
            let before = self.i;
            self.walk_one_stmt();
            if self.i == before {
                self.bump();
            }
        }
        self.i = self.end;
        self.end = save_end;
    }

    fn walk_one_stmt(&mut self) {
        while self.at_punct('#') {
            self.bump();
            if self.at_punct('!') {
                self.bump();
            }
            if self.at_punct('[') {
                self.skip_group('[', ']');
            }
        }
        let Some(t) = self.peek(0) else { return };
        if t.is_ident("let") {
            self.walk_let();
            return;
        }
        if t.is_punct(';') || t.is_punct(',') {
            self.bump();
            return;
        }
        // Match-arm arrow and stray closers: consumed as separators.
        if t.is_punct('=') && self.peek(1).is_some_and(|n| n.is_punct('>')) {
            self.bump();
            self.bump();
            return;
        }
        let lhs = self.parse_expr(true);
        // Assignment / compound assignment.
        if let Some(t) = self.peek(0) {
            if t.is_punct('=') && !self.peek(1).is_some_and(|n| n.is_punct('=') || n.is_punct('>'))
            {
                let line = t.line;
                self.bump();
                let rhs = self.parse_expr(true);
                self.additive("assignment", lhs, rhs, line);
                return;
            }
            for (op, additive) in
                [('+', true), ('-', true), ('*', false), ('/', false), ('%', false)]
            {
                if t.is_punct(op) && self.peek(1).is_some_and(|n| n.is_punct('=')) {
                    let line = t.line;
                    self.bump();
                    self.bump();
                    let rhs = self.parse_expr(true);
                    if additive {
                        self.additive("compound assignment", lhs, rhs, line);
                    }
                    return;
                }
            }
        }
    }

    fn walk_let(&mut self) {
        self.bump(); // let
        if self.at_ident("mut") {
            self.bump();
        }
        // Simple `name [: Type] = expr` pattern?
        let mut bound: Option<(String, u32)> = None;
        let mut ty = String::new();
        if let Some(t) = self.peek(0) {
            if t.kind == TokKind::Ident
                && !t.is_ident("_")
                && self
                    .peek(1)
                    .is_some_and(|n| n.is_punct(':') || n.is_punct('=') || n.is_punct(';'))
            {
                bound = Some((t.text.clone(), t.line));
                self.bump();
                if self.at_punct(':') && !self.peek(1).is_some_and(|n| n.is_punct(':')) {
                    self.bump();
                    ty = self.flat_type_until(&['=', ';']);
                }
            }
        }
        if let Some((name, _)) = &bound {
            if ty.contains("HashMap") || ty.contains("HashSet") {
                self.hash_locals.push(name.clone());
            }
        }
        // Destructuring or other pattern: skip to `=` at depth 0.
        if bound.is_none() {
            let mut depth = 0usize;
            while let Some(t) = self.peek(0) {
                match t.kind {
                    TokKind::Punct if "([{".contains(&t.text) => depth += 1,
                    TokKind::Punct if ")]}".contains(&t.text) => {
                        depth = depth.saturating_sub(1);
                    }
                    TokKind::Punct if t.is_punct(';') && depth == 0 => return,
                    TokKind::Punct
                        if t.is_punct('=')
                            && depth == 0
                            && !self.peek(1).is_some_and(|n| n.is_punct('=')) =>
                    {
                        break
                    }
                    _ => {}
                }
                self.bump();
            }
        }
        if self.at_punct('=') {
            let line = self.line();
            self.bump();
            let rhs = self.parse_expr(true);
            if let Some((name, _)) = &bound {
                if let Some(u) = unit_of_ident(name) {
                    let name = name.clone();
                    if let EUnit::Known(r) = rhs {
                        if r != u {
                            let msg = mix_message(&format!("`let` binding of `{name}`"), u, r);
                            self.push_finding(RuleId::U2, line, msg);
                        }
                    }
                }
            }
            // `let … = expr else { … };`
            if self.at_ident("else") {
                self.bump();
                if self.at_punct('{') {
                    let inner_end = self.find_close('{', '}');
                    self.bump();
                    self.walk_stmts(inner_end.saturating_sub(1));
                    if self.at_punct('}') {
                        self.bump();
                    }
                }
            }
        }
        if self.at_punct(';') {
            self.bump();
        }
    }

    fn flat_type_until(&mut self, stops: &[char]) -> String {
        let mut depth = 0usize;
        let mut out = String::new();
        while let Some(t) = self.peek(0) {
            if depth == 0 && t.kind == TokKind::Punct && stops.iter().any(|&c| t.is_punct(c)) {
                break;
            }
            match t.kind {
                TokKind::Punct if "([<{".contains(&t.text) => depth += 1,
                TokKind::Punct if ")]>}".contains(&t.text) => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                TokKind::Ident => {
                    if !out.is_empty() {
                        out.push(' ');
                    }
                    out.push_str(&t.text);
                }
                _ => {}
            }
            self.bump();
        }
        out
    }

    // ---- expression level ----------------------------------------------

    fn parse_expr(&mut self, allow_struct: bool) -> EUnit {
        self.parse_bin(0, allow_struct)
    }

    fn parse_bin(&mut self, min_prec: u8, allow_struct: bool) -> EUnit {
        if self.depth > 64 || !self.spend() {
            self.bump();
            return EUnit::Unknown;
        }
        self.depth += 1;
        let mut lhs = self.parse_unary(allow_struct);
        loop {
            if !self.spend() {
                break;
            }
            let Some((op, len)) = self.peek_bin_op() else { break };
            if op.prec() < min_prec {
                break;
            }
            let line = self.line();
            for _ in 0..len {
                self.bump();
            }
            let rhs = self.parse_bin(op.prec() + 1, allow_struct);
            lhs = match op {
                BinOp::Add | BinOp::Sub => self.additive("arithmetic", lhs, rhs, line),
                BinOp::Cmp => {
                    self.additive("comparison", lhs, rhs, line);
                    EUnit::Scalar
                }
                BinOp::Range => {
                    self.additive("range", lhs, rhs, line);
                    EUnit::Unknown
                }
                BinOp::Mul => match (lhs, rhs) {
                    (EUnit::Known(u), EUnit::Scalar) | (EUnit::Scalar, EUnit::Known(u)) => {
                        EUnit::Known(u)
                    }
                    (EUnit::Scalar, EUnit::Scalar) => EUnit::Scalar,
                    _ => EUnit::Unknown,
                },
                BinOp::Div => match (lhs, rhs) {
                    (EUnit::Known(u), EUnit::Scalar) => EUnit::Known(u),
                    (EUnit::Known(a), EUnit::Known(b)) if a == b => EUnit::Scalar,
                    (EUnit::Scalar, EUnit::Scalar) => EUnit::Scalar,
                    _ => EUnit::Unknown,
                },
                BinOp::Rem | BinOp::Shift => lhs,
                BinOp::OrOr | BinOp::AndAnd => EUnit::Scalar,
                BinOp::BitOr | BinOp::BitXor | BinOp::BitAnd => EUnit::Unknown,
            };
        }
        self.depth -= 1;
        lhs
    }

    /// Recognize a binary operator at the cursor (from single-char punct
    /// tokens); `None` for assignment-like ops, `=>`, and `->`.
    fn peek_bin_op(&self) -> Option<(BinOp, usize)> {
        let a = self.peek(0)?;
        if a.kind != TokKind::Punct {
            return None;
        }
        let b = |c: char| self.peek(1).is_some_and(|t| t.is_punct(c));
        let c = |c: char| self.peek(2).is_some_and(|t| t.is_punct(c));
        match a.text.as_str() {
            "|" if b('|') => Some((BinOp::OrOr, 2)),
            "|" if b('=') => None,
            "|" => Some((BinOp::BitOr, 1)),
            "&" if b('&') => Some((BinOp::AndAnd, 2)),
            "&" if b('=') => None,
            "&" => Some((BinOp::BitAnd, 1)),
            "^" if b('=') => None,
            "^" => Some((BinOp::BitXor, 1)),
            "=" if b('=') => Some((BinOp::Cmp, 2)),
            "=" => None,
            "!" if b('=') => Some((BinOp::Cmp, 2)),
            "!" => None,
            "<" if b('=') => Some((BinOp::Cmp, 2)),
            "<" if b('<') => {
                if c('=') {
                    None
                } else {
                    Some((BinOp::Shift, 2))
                }
            }
            "<" => Some((BinOp::Cmp, 1)),
            ">" if b('=') => Some((BinOp::Cmp, 2)),
            ">" if b('>') => {
                if c('=') {
                    None
                } else {
                    Some((BinOp::Shift, 2))
                }
            }
            ">" => Some((BinOp::Cmp, 1)),
            "." if b('.') => {
                if c('=') {
                    Some((BinOp::Range, 3))
                } else {
                    Some((BinOp::Range, 2))
                }
            }
            "+" if b('=') => None,
            "+" => Some((BinOp::Add, 1)),
            "-" if b('=') || b('>') => None,
            "-" => Some((BinOp::Sub, 1)),
            "*" if b('=') => None,
            "*" => Some((BinOp::Mul, 1)),
            "/" if b('=') => None,
            "/" => Some((BinOp::Div, 1)),
            "%" if b('=') => None,
            "%" => Some((BinOp::Rem, 1)),
            _ => None,
        }
    }

    fn parse_unary(&mut self, allow_struct: bool) -> EUnit {
        if self.depth > 64 || !self.spend() {
            self.bump();
            return EUnit::Unknown;
        }
        let Some(t) = self.peek(0) else { return EUnit::Unknown };
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "-" | "!" => {
                    self.bump();
                    self.parse_unary(allow_struct)
                }
                "&" => {
                    self.bump();
                    if self.at_ident("mut") {
                        self.bump();
                    }
                    self.parse_unary(allow_struct)
                }
                "*" => {
                    self.bump();
                    self.parse_unary(allow_struct)
                }
                "|" => self.parse_closure(),
                _ => {
                    let (u, chain) = self.parse_primary(allow_struct);
                    self.parse_postfix(u, chain)
                }
            },
            _ => {
                let (u, chain) = self.parse_primary(allow_struct);
                self.parse_postfix(u, chain)
            }
        }
    }

    fn parse_closure(&mut self) -> EUnit {
        // `|params| body` or `|| body`; cursor at the first `|`.
        self.bump();
        if self.at_punct('|') {
            self.bump();
        } else {
            let mut depth = 0usize;
            while let Some(t) = self.peek(0) {
                match t.kind {
                    TokKind::Punct if "([<{".contains(&t.text) => depth += 1,
                    TokKind::Punct if ")]>}".contains(&t.text) => {
                        depth = depth.saturating_sub(1);
                    }
                    TokKind::Punct if t.is_punct('|') && depth == 0 => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                self.bump();
            }
        }
        // Optional `-> Type`.
        if self.at_punct('-') && self.peek(1).is_some_and(|n| n.is_punct('>')) {
            self.bump();
            self.bump();
            let _ = self.flat_type_until(&['{', ',', ')']);
        }
        self.closure_depth += 1;
        let u = if self.at_punct('{') {
            let inner_end = self.find_close('{', '}');
            self.bump();
            self.walk_stmts(inner_end.saturating_sub(1));
            if self.at_punct('}') {
                self.bump();
            }
            EUnit::Unknown
        } else {
            self.parse_expr(true)
        };
        self.closure_depth -= 1;
        u
    }

    #[allow(clippy::too_many_lines)]
    fn parse_primary(&mut self, allow_struct: bool) -> (EUnit, Chain) {
        let Some(t) = self.peek(0) else { return (EUnit::Unknown, Chain::default()) };
        let line = t.line;
        match t.kind {
            TokKind::Num => {
                self.bump();
                (EUnit::Scalar, Chain::default())
            }
            TokKind::Str => {
                self.bump();
                (EUnit::Unknown, Chain::default())
            }
            TokKind::Punct if t.is_punct('(') => {
                let close = self.find_close('(', ')');
                self.bump();
                let save_end = self.end;
                self.end = close.saturating_sub(1).min(save_end);
                let first = self.parse_expr(true);
                let mut tuple = false;
                while self.i < self.end {
                    if !self.spend() {
                        break;
                    }
                    let before = self.i;
                    if self.at_punct(',') {
                        tuple = true;
                        self.bump();
                        if self.i < self.end {
                            let _ = self.parse_expr(true);
                        }
                    }
                    if self.i == before {
                        self.bump();
                    }
                }
                self.i = close.min(save_end);
                self.end = save_end;
                (if tuple { EUnit::Unknown } else { first }, Chain::default())
            }
            TokKind::Punct if t.is_punct('[') => {
                let close = self.find_close('[', ']');
                self.bump();
                self.walk_stmts(close.saturating_sub(1));
                if self.at_punct(']') {
                    self.bump();
                }
                (EUnit::Unknown, Chain::default())
            }
            TokKind::Punct if t.is_punct('{') => {
                let close = self.find_close('{', '}');
                self.bump();
                self.walk_stmts(close.saturating_sub(1));
                if self.at_punct('}') {
                    self.bump();
                }
                (EUnit::Unknown, Chain::default())
            }
            TokKind::Punct if t.is_punct('$') => {
                // Macro metavariable: `$x` — opaque.
                self.bump();
                if self.peek(0).is_some_and(|t| t.kind == TokKind::Ident) {
                    self.bump();
                }
                (EUnit::Unknown, Chain::default())
            }
            TokKind::Punct => {
                self.bump();
                (EUnit::Unknown, Chain::default())
            }
            TokKind::Ident => match t.text.as_str() {
                "if" => {
                    self.bump();
                    let _ = self.parse_cond();
                    self.parse_block_operand();
                    while self.at_ident("else") {
                        self.bump();
                        if self.at_ident("if") {
                            self.bump();
                            let _ = self.parse_cond();
                        }
                        self.parse_block_operand();
                    }
                    (EUnit::Unknown, Chain::default())
                }
                "match" => {
                    self.bump();
                    let _ = self.parse_cond();
                    self.parse_block_operand();
                    (EUnit::Unknown, Chain::default())
                }
                "while" => {
                    self.bump();
                    let _ = self.parse_cond();
                    self.loop_depth += 1;
                    self.parse_block_operand();
                    self.loop_depth -= 1;
                    (EUnit::Unknown, Chain::default())
                }
                "loop" => {
                    self.bump();
                    self.loop_depth += 1;
                    self.parse_block_operand();
                    self.loop_depth -= 1;
                    (EUnit::Unknown, Chain::default())
                }
                "for" => {
                    self.bump();
                    // Skip the pattern up to `in` at depth 0.
                    let mut depth = 0usize;
                    while let Some(t) = self.peek(0) {
                        match t.kind {
                            TokKind::Ident if t.is_ident("in") && depth == 0 => break,
                            TokKind::Punct if "([{".contains(&t.text) => depth += 1,
                            TokKind::Punct if ")]}".contains(&t.text) => {
                                depth = depth.saturating_sub(1);
                            }
                            _ => {}
                        }
                        self.bump();
                    }
                    if self.at_ident("in") {
                        self.bump();
                        let _ = self.parse_cond();
                    }
                    self.loop_depth += 1;
                    self.parse_block_operand();
                    self.loop_depth -= 1;
                    (EUnit::Unknown, Chain::default())
                }
                "unsafe" => {
                    self.bump();
                    self.parse_block_operand();
                    (EUnit::Unknown, Chain::default())
                }
                "return" | "break" | "continue" => {
                    self.bump();
                    if !(self.at_punct(';') || self.at_punct(',') || self.at_punct(')')) {
                        let _ = self.parse_expr(allow_struct);
                    }
                    (EUnit::Unknown, Chain::default())
                }
                "move" => {
                    self.bump();
                    if self.at_punct('|') {
                        (self.parse_closure(), Chain::default())
                    } else {
                        self.parse_primary(allow_struct)
                    }
                }
                "let" => {
                    // `if let PAT = expr` condition position.
                    self.bump();
                    let mut depth = 0usize;
                    while let Some(t) = self.peek(0) {
                        match t.kind {
                            TokKind::Punct if "([{".contains(&t.text) => depth += 1,
                            TokKind::Punct if ")]}".contains(&t.text) => {
                                depth = depth.saturating_sub(1);
                            }
                            TokKind::Punct
                                if t.is_punct('=')
                                    && depth == 0
                                    && !self.peek(1).is_some_and(|n| n.is_punct('=')) =>
                            {
                                break
                            }
                            _ => {}
                        }
                        self.bump();
                    }
                    if self.at_punct('=') {
                        self.bump();
                        let _ = self.parse_expr(false);
                    }
                    (EUnit::Scalar, Chain::default())
                }
                _ => self.parse_path(line, allow_struct),
            },
        }
    }

    /// Condition position: no struct literals allowed.
    fn parse_cond(&mut self) -> EUnit {
        self.parse_expr(false)
    }

    /// A `{ … }` in statement/operand position after if/match/loop heads.
    fn parse_block_operand(&mut self) {
        if self.at_punct('{') {
            let close = self.find_close('{', '}');
            self.bump();
            self.walk_stmts(close.saturating_sub(1));
            if self.at_punct('}') {
                self.bump();
            }
        }
    }

    /// Path expression, call, macro invocation, or struct literal.
    fn parse_path(&mut self, line: u32, allow_struct: bool) -> (EUnit, Chain) {
        let mut segs: Vec<String> = Vec::new();
        while let Some(t) = self.peek(0) {
            if t.kind != TokKind::Ident {
                break;
            }
            segs.push(t.text.clone());
            self.bump();
            if self.at_punct(':') && self.peek(1).is_some_and(|n| n.is_punct(':')) {
                self.bump();
                self.bump();
                if self.at_punct('<') {
                    self.skip_group('<', '>'); // turbofish
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            return (EUnit::Unknown, Chain::default());
        }
        self.record_path_effects(&segs, line);
        let last = segs.last().cloned().unwrap_or_default();

        // Macro invocation.
        if self.at_punct('!')
            && self.peek(1).is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
        {
            self.bump(); // !
            if PRINT_MACROS.contains(&last.as_str()) {
                self.push_effect(EffectKind::Print, line, &format!("{last}!"));
            }
            let args = match self.peek(0) {
                Some(t) if t.is_punct('(') => self.parse_args('(', ')'),
                Some(t) if t.is_punct('[') => self.parse_args('[', ']'),
                _ => self.parse_args('{', '}'),
            };
            self.out.calls.push(CallSite {
                name: last,
                owner: None,
                is_method: false,
                is_macro: true,
                line,
                args,
                in_loop: self.in_reorderable(),
            });
            return (EUnit::Unknown, Chain::default());
        }

        // Call.
        if self.at_punct('(') {
            let args = self.parse_args('(', ')');
            let owner = if segs.len() >= 2 {
                let o = &segs[segs.len() - 2];
                if o.chars().next().is_some_and(char::is_uppercase) {
                    Some(o.clone())
                } else {
                    None
                }
            } else {
                None
            };
            let unit = self.call_result_unit(&last, &args, line);
            self.out.calls.push(CallSite {
                name: last,
                owner,
                is_method: false,
                is_macro: false,
                line,
                args,
                in_loop: self.in_reorderable(),
            });
            return (unit, Chain::default());
        }

        // Struct literal.
        if allow_struct && self.at_punct('{') && last.chars().next().is_some_and(char::is_uppercase)
        {
            self.parse_struct_literal();
            return (EUnit::Unknown, Chain::default());
        }

        // Plain path value.
        let unit = if segs.len() == 1 {
            unit_of_ident(&last).map_or(EUnit::Unknown, EUnit::Known)
        } else {
            // Multi-segment paths are constants/variants; the last
            // segment's suffix still speaks (`limits::QUEUE_MS`).
            unit_of_ident(&last).map_or(EUnit::Unknown, EUnit::Known)
        };
        let chain = Chain { hashy: self.hash_locals.contains(&last), iterated: false };
        (unit, chain)
    }

    /// The unit a call's result carries, from the callee's *name*;
    /// conversion functions also check their argument here.
    fn call_result_unit(&mut self, name: &str, args: &[ArgFact], line: u32) -> EUnit {
        if let Some((from, to)) = conversion_of(name) {
            if let Some(ArgFact { unit: EUnit::Known(got), .. }) = args.first() {
                if *got != from {
                    let msg = mix_message(&format!("argument of `{name}`"), from, *got);
                    self.push_finding(RuleId::U2, line, msg);
                }
            }
            return EUnit::Known(to);
        }
        unit_of_ident(name).map_or(EUnit::Unknown, EUnit::Known)
    }

    fn record_path_effects(&mut self, segs: &[String], line: u32) {
        for (si, s) in segs.iter().enumerate() {
            match s.as_str() {
                "Instant" | "SystemTime" => self.push_effect(EffectKind::WallClock, line, s),
                "thread_rng" | "from_entropy" | "OsRng" => {
                    self.push_effect(EffectKind::Entropy, line, s);
                }
                "fs" | "env" if si + 1 < segs.len() => {
                    self.push_effect(EffectKind::FsEnv, line, &format!("{s}::{}", segs[si + 1]));
                }
                _ => {}
            }
        }
        if segs.len() == 1 && self.static_muts.iter().any(|m| *m == segs[0]) {
            self.push_effect(EffectKind::GlobalMut, line, &format!("static mut {}", segs[0]));
        }
    }

    fn parse_struct_literal(&mut self) {
        // Cursor at `{`.
        let close = self.find_close('{', '}');
        self.bump();
        let save_end = self.end;
        self.end = close.saturating_sub(1).min(save_end);
        while self.i < self.end {
            if !self.spend() {
                break;
            }
            let before = self.i;
            // `..base` functional update.
            if self.at_punct('.') && self.peek(1).is_some_and(|n| n.is_punct('.')) {
                self.bump();
                self.bump();
                let _ = self.parse_expr(true);
            } else if let Some(t) = self.peek(0) {
                if t.kind == TokKind::Ident && self.peek(1).is_some_and(|n| n.is_punct(':')) {
                    let field = t.text.clone();
                    let line = t.line;
                    self.bump();
                    self.bump();
                    let value = self.parse_expr(true);
                    if let (Some(f), EUnit::Known(v)) = (unit_of_ident(&field), value) {
                        if f != v {
                            let msg = mix_message(&format!("field `{field}` initialization"), f, v);
                            self.push_finding(RuleId::U2, line, msg);
                        }
                    }
                } else if t.kind == TokKind::Ident {
                    self.bump(); // shorthand field
                } else if t.is_punct(',') {
                    self.bump();
                }
            }
            if self.i == before {
                self.bump();
            }
        }
        self.i = close.min(save_end);
        self.end = save_end;
    }

    /// Parse a delimited argument list; cursor at the opener.
    fn parse_args(&mut self, open: char, close_c: char) -> Vec<ArgFact> {
        let close = self.find_close(open, close_c);
        self.bump();
        let save_end = self.end;
        self.end = close.saturating_sub(1).min(save_end);
        let mut out = Vec::new();
        while self.i < self.end {
            if !self.spend() {
                break;
            }
            if self.at_punct(',') {
                self.bump();
                continue;
            }
            let start = self.i;
            let leading_mut_ref =
                self.at_punct('&') && self.peek(1).is_some_and(|n| n.is_ident("mut"));
            let unit = self.parse_expr(true);
            let span_end = self.i;
            let mut has_rng = false;
            let mut has_seed = false;
            for t in &self.toks[start..span_end.min(self.toks.len())] {
                if t.kind == TokKind::Ident {
                    let low = t.text.to_ascii_lowercase();
                    has_rng |= low.contains("rng");
                    has_seed |= low.contains("seed");
                }
            }
            out.push(ArgFact {
                unit,
                leading_mut_ref,
                has_rng_ident: has_rng,
                has_seed_ident: has_seed,
            });
            if self.i == start {
                self.bump();
            }
        }
        self.i = close.min(save_end);
        self.end = save_end;
        out
    }

    /// Postfix chain: field access, method calls, indexing, `?`, `as`.
    fn parse_postfix(&mut self, mut unit: EUnit, mut chain: Chain) -> EUnit {
        loop {
            if !self.spend() {
                break;
            }
            let Some(t) = self.peek(0) else { break };
            match t.kind {
                TokKind::Punct if t.is_punct('?') => self.bump(),
                TokKind::Punct if t.is_punct('[') => {
                    let close = self.find_close('[', ']');
                    self.bump();
                    self.walk_stmts(close.saturating_sub(1));
                    if self.at_punct(']') {
                        self.bump();
                    }
                    // Indexing keeps the container's element unit when the
                    // container name carried one (`times_ms[i]`).
                }
                TokKind::Punct if t.is_punct('(') => {
                    // Calling an expression result (closure variable).
                    let _ = self.parse_args('(', ')');
                    unit = EUnit::Unknown;
                    chain = Chain::default();
                }
                TokKind::Punct
                    if t.is_punct('.') && !self.peek(1).is_some_and(|n| n.is_punct('.')) =>
                {
                    self.bump();
                    let Some(m) = self.peek(0) else { break };
                    if m.kind == TokKind::Num {
                        // Tuple index.
                        self.bump();
                        unit = EUnit::Unknown;
                        continue;
                    }
                    if m.kind != TokKind::Ident {
                        break;
                    }
                    let mname = m.text.clone();
                    let mline = m.line;
                    self.bump();
                    if mname == "await" {
                        continue;
                    }
                    // Turbofish on methods: `.collect::<Vec<_>>()`.
                    if self.at_punct(':') && self.peek(1).is_some_and(|n| n.is_punct(':')) {
                        self.bump();
                        self.bump();
                        if self.at_punct('<') {
                            self.skip_group('<', '>');
                        }
                    }
                    if self.at_punct('(') {
                        let args = self.parse_args('(', ')');
                        // F2: hash-ordered iteration feeding a reducer.
                        if HASH_ITERS.contains(&mname.as_str()) && chain.hashy {
                            chain.iterated = true;
                        }
                        if FLOAT_REDUCERS.contains(&mname.as_str()) && chain.hashy && chain.iterated
                        {
                            self.push_finding(
                                RuleId::F2,
                                mline,
                                format!(
                                    "order-sensitive float accumulation: `.{mname}()` over \
                                     hash-ordered iteration; collect into a sorted container \
                                     first"
                                ),
                            );
                        }
                        // U2: min/max/clamp compare receiver and argument.
                        if UNIT_COMPARING.contains(&mname.as_str()) {
                            if let (EUnit::Known(r), Some(ArgFact { unit: EUnit::Known(a), .. })) =
                                (unit, args.first())
                            {
                                if r != *a {
                                    let msg =
                                        mix_message(&format!("`.{mname}()` comparison"), r, *a);
                                    self.push_finding(RuleId::U2, mline, msg);
                                }
                            }
                        }
                        let result = if UNIT_PRESERVING.contains(&mname.as_str()) {
                            unit
                        } else {
                            self.call_result_unit(&mname, &args, mline)
                        };
                        self.out.calls.push(CallSite {
                            name: mname,
                            owner: None,
                            is_method: true,
                            is_macro: false,
                            line: mline,
                            args,
                            in_loop: self.in_reorderable(),
                        });
                        unit = result;
                    } else {
                        // Field access: the field's suffix speaks.
                        unit = unit_of_ident(&mname).map_or(EUnit::Unknown, EUnit::Known);
                        chain.hashy = chain.hashy
                            || self.hash_fields.contains(&mname)
                            || self.hash_locals.contains(&mname);
                        chain.iterated = false;
                    }
                }
                TokKind::Ident if t.is_ident("as") => {
                    self.bump();
                    // Consume a simple type path; the cast keeps the unit.
                    while let Some(t) = self.peek(0) {
                        if t.kind == TokKind::Ident && !t.is_ident("as") {
                            self.bump();
                            if self.at_punct(':') && self.peek(1).is_some_and(|n| n.is_punct(':')) {
                                self.bump();
                                self.bump();
                                continue;
                            }
                            if self.at_punct('<') {
                                self.skip_group('<', '>');
                            }
                        }
                        break;
                    }
                }
                _ => break,
            }
        }
        unit
    }
}

/// Analyze one function body (a token index range produced by the item
/// parser). `static_muts` are the same-file `static mut` names (their
/// use is a GlobalMut effect); `hash_fields` are same-file struct fields
/// with hash-ordered types; `hash_params` seeds the tracked hash-typed
/// locals from the fn's own parameters; `in_macro` marks `macro_rules!`
/// pseudo-bodies (conservatively treated as reorderable positions).
#[must_use]
pub fn analyze_body(
    toks: &[Tok],
    range: (usize, usize),
    static_muts: &[String],
    hash_fields: &[String],
    hash_params: &[String],
    in_macro: bool,
) -> BodyFacts {
    let (start, end) = range;
    let end = end.min(toks.len());
    let start = start.min(end);
    let mut b = Body {
        toks,
        i: start,
        end,
        fuel: 8 * (end - start) + 64,
        depth: 0,
        loop_depth: 0,
        closure_depth: 0,
        in_macro,
        static_muts,
        hash_fields,
        hash_locals: hash_params.to_vec(),
        out: BodyFacts::default(),
    };
    b.walk_stmts(end);
    b.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_items;

    fn facts(body_src: &str) -> BodyFacts {
        let src = format!("fn t() {{ {body_src} }}\n");
        let lexed = lex(&src);
        let parsed = parse_items(&lexed.toks, &lexed.comments);
        let f = &parsed.fns[0];
        analyze_body(&lexed.toks, f.body.expect("body"), &[], &[], &[], false)
    }

    fn u2_count(src: &str) -> usize {
        facts(src).findings.iter().filter(|f| f.rule == RuleId::U2).count()
    }

    #[test]
    fn scalar_scaling_keeps_the_unit() {
        // The load-bearing case: numerically-correct ms→µs multiply is
        // dimensionally still ms, so a `_us` slot rejects it.
        assert_eq!(u2_count("let down_at_us = at_ms * 1000.0;"), 1);
        assert_eq!(u2_count("let down_at_ms = at_ms * 1000.0;"), 0);
        assert_eq!(u2_count("let x = at_ms * 1000.0;"), 0, "unsuffixed binding checks nothing");
    }

    #[test]
    fn named_conversions_change_the_unit() {
        assert_eq!(u2_count("let down_at_us = ms_to_us(at_ms);"), 0);
        assert_eq!(u2_count("let t_s = ms_to_s(at_ms);"), 0);
        assert_eq!(u2_count("let t_ms = ms_to_us(at_ms);"), 1, "conversion result is µs");
        assert_eq!(u2_count("let t_us = ms_to_us(at_us);"), 1, "wrong-unit argument");
    }

    #[test]
    fn additive_mixing_fires_and_same_unit_does_not() {
        assert_eq!(u2_count("let d = end_us - start_ms;"), 1);
        assert_eq!(u2_count("let d = end_us - start_us;"), 0);
        assert_eq!(u2_count("if deadline_ms < now_us { x(); }"), 1);
        assert_eq!(u2_count("let ok = kv_bytes + hbm_gb;"), 1, "cross-dimension");
    }

    #[test]
    fn division_of_same_units_is_a_ratio() {
        assert_eq!(u2_count("let frac = used_bytes / total_bytes; let y_ms = frac * t_ms;"), 0);
    }

    #[test]
    fn struct_literal_fields_are_checked() {
        assert_eq!(u2_count("let f = Flap { down_at_us: e.at_ms * 1000.0 };"), 1);
        assert_eq!(u2_count("let f = Flap { down_at_us: ms_to_us(e.at_ms) };"), 0);
    }

    #[test]
    fn assignment_and_compound_assignment_check_units() {
        assert_eq!(u2_count("total_us += step_ms;"), 1);
        assert_eq!(u2_count("total_us += step_us;"), 0);
        assert_eq!(u2_count("slot.end_us = t_ms;"), 1);
    }

    #[test]
    fn min_max_compare_units() {
        assert_eq!(u2_count("let t = a_ms.min(b_us);"), 1);
        assert_eq!(u2_count("let t_ms = a_ms.min(b_ms);"), 0, "min preserves the unit");
    }

    #[test]
    fn field_access_and_indexing_carry_units() {
        assert_eq!(u2_count("let t_us = flap.down_at_us;"), 0);
        assert_eq!(u2_count("let t_us = flap.down_at_ms;"), 1);
        assert_eq!(u2_count("let t_ms = times_ms[i];"), 0);
    }

    #[test]
    fn rates_are_unitless() {
        assert_eq!(u2_count("let gap_s = 1.0 / rate_per_s;"), 0);
    }

    #[test]
    fn f2_hash_iteration_accumulation_fires() {
        let src = "let m: HashMap<String, f64> = make(); let s: f64 = m.values().sum();";
        let f = facts(src);
        assert_eq!(f.findings.iter().filter(|x| x.rule == RuleId::F2).count(), 1);
        let ok = "let m: BTreeMap<String, f64> = make(); let s: f64 = m.values().sum();";
        assert_eq!(facts(ok).findings.iter().filter(|x| x.rule == RuleId::F2).count(), 0);
    }

    #[test]
    fn effects_are_recorded() {
        let f = facts(
            "let t = Instant::now(); let r = rand::thread_rng(); println!(\"x\"); \
             let h = std::fs::read_to_string(p); let v = std::env::var(k);",
        );
        let kinds: Vec<EffectKind> = f.effects.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EffectKind::WallClock));
        assert!(kinds.contains(&EffectKind::Entropy));
        assert!(kinds.contains(&EffectKind::Print));
        assert!(kinds.contains(&EffectKind::FsEnv));
    }

    #[test]
    fn call_sites_record_loop_and_rng_facts() {
        let f = facts("for i in 0..n { step(&mut jitter_rng, i); } init(&mut seed_rng);");
        let in_loop: Vec<(&str, bool)> =
            f.calls.iter().map(|c| (c.name.as_str(), c.in_loop)).collect();
        assert!(in_loop.contains(&("step", true)));
        assert!(in_loop.contains(&("init", false)));
        let step = f.calls.iter().find(|c| c.name == "step").expect("step");
        assert!(step.args[0].leading_mut_ref && step.args[0].has_rng_ident);
    }

    #[test]
    fn method_and_macro_calls_are_recorded() {
        let f = facts("self.step(q); retry!(q); Engine::tick(e);");
        let step = f.calls.iter().find(|c| c.name == "step").expect("step");
        assert!(step.is_method);
        let retry = f.calls.iter().find(|c| c.name == "retry").expect("retry");
        assert!(retry.is_macro);
        let tick = f.calls.iter().find(|c| c.name == "tick").expect("tick");
        assert_eq!(tick.owner.as_deref(), Some("Engine"));
    }

    #[test]
    fn closures_count_as_reorderable_positions() {
        let f = facts("items.retain(|x| keep(x));");
        let keep = f.calls.iter().find(|c| c.name == "keep").expect("keep");
        assert!(keep.in_loop);
    }

    #[test]
    fn garbage_bodies_terminate() {
        for src in ["(((((", "a + + *", "| | |", "x.....y", "match { { {", "&mut &mut"] {
            let _ = facts(src);
        }
    }
}
