//! A minimal, dependency-free Rust lexer.
//!
//! The linter's rules only need identifier and punctuation tokens with
//! line numbers — but producing *those* correctly requires skipping
//! everything that can contain look-alike text: line comments, nested
//! block comments, string literals (with escapes), raw strings with an
//! arbitrary number of `#` guards, byte strings, char literals, and raw
//! identifiers. Lifetimes (`'a`) must not be confused with char
//! literals (`'a'`). Comments are not discarded: they are collected on a
//! side channel so the waiver parser can read `lint:allow(...)` markers
//! — and *only* from comments, never from string literals.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `unwrap`).
    Ident,
    /// A single punctuation character (`.`, `!`, `{`, …).
    Punct,
    /// A numeric literal (`1000.0`, `0x6d74`, `1_000`). The semantic
    /// pass treats these as dimensionless scalars.
    Num,
    /// A string/char/byte literal, kept as an opaque placeholder so
    /// argument positions stay countable. Contents are never surfaced.
    Str,
}

/// One significant token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based source line.
    pub line: u32,
    /// Identifier or punctuation.
    pub kind: TokKind,
    /// Token text (one char for punctuation).
    pub text: String,
}

impl Tok {
    /// Is this punctuation `c`?
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Is this the identifier `s`?
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// A comment, kept for waiver parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment *starts* on.
    pub line: u32,
    /// Full text including the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: tokens, comments, and the total line count.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Identifier/punctuation tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// Number of lines in the file.
    pub lines: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Never fails: unterminated
/// constructs simply run to end of file, which is the right behavior for
/// a linter (the compiler will reject the file anyway).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lex(src: &str) -> Lexed {
    let cs: Vec<char> = src.chars().collect();
    let n = cs.len();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut out = Lexed::default();

    // Advance past a string literal body; `i` is at the opening quote.
    fn skip_string(cs: &[char], mut i: usize, line: &mut u32) -> usize {
        i += 1; // opening "
        while i < cs.len() {
            match cs[i] {
                '\\' => i += 2,
                '"' => return i + 1,
                '\n' => {
                    *line += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        i
    }

    // Advance past a char literal body; `i` is at the opening quote.
    fn skip_char_lit(cs: &[char], mut i: usize, line: &mut u32) -> usize {
        i += 1; // opening '
        if i < cs.len() && cs[i] == '\\' {
            i += 2; // the escape and its payload head (`\n`, `\u`, …)
        }
        while i < cs.len() && cs[i] != '\'' {
            if cs[i] == '\n' {
                *line += 1;
            }
            i += 1;
        }
        i + 1
    }

    // Advance past a raw-string body; `i` is at the opening quote and
    // the literal closes at `"` followed by `hashes` `#`s.
    fn skip_raw_string(cs: &[char], mut i: usize, hashes: usize, line: &mut u32) -> usize {
        i += 1; // opening "
        while i < cs.len() {
            if cs[i] == '\n' {
                *line += 1;
                i += 1;
                continue;
            }
            if cs[i] == '"' {
                let mut k = i + 1;
                let mut h = 0;
                while k < cs.len() && cs[k] == '#' && h < hashes {
                    h += 1;
                    k += 1;
                }
                if h == hashes {
                    return k;
                }
            }
            i += 1;
        }
        i
    }

    while i < n {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && cs[i + 1] == '/' {
            let start = i;
            while i < n && cs[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment { line, text: cs[start..i].iter().collect() });
            continue;
        }
        // Block comment, which Rust nests.
        if c == '/' && i + 1 < n && cs[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if cs[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if cs[i] == '/' && i + 1 < n && cs[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if cs[i] == '*' && i + 1 < n && cs[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment { line: start_line, text: cs[start..i].iter().collect() });
            continue;
        }
        // `r"…"`, `r#"…"#`, `br#"…"#` raw strings and `r#ident` raw
        // identifiers share a prefix; disambiguate by what follows the
        // hashes: a quote means raw string, an identifier means raw ident.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            let is_br = c == 'b' && j < n && cs[j] == 'r';
            if is_br {
                j += 1;
            }
            if c == 'r' || is_br {
                let mut hashes = 0usize;
                while j < n && cs[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && cs[j] == '"' {
                    let start_line = line;
                    i = skip_raw_string(&cs, j, hashes, &mut line);
                    out.toks.push(Tok {
                        line: start_line,
                        kind: TokKind::Str,
                        text: String::new(),
                    });
                    continue;
                }
                if c == 'r' && hashes == 1 && j < n && is_ident_start(cs[j]) {
                    // Raw identifier `r#match`: emit the bare name.
                    let s = j;
                    while j < n && is_ident_continue(cs[j]) {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Ident,
                        text: cs[s..j].iter().collect(),
                    });
                    i = j;
                    continue;
                }
            }
            // `b"…"` byte string / `b'…'` byte char.
            if c == 'b' && i + 1 < n && cs[i + 1] == '"' {
                let start_line = line;
                i = skip_string(&cs, i + 1, &mut line);
                out.toks.push(Tok { line: start_line, kind: TokKind::Str, text: String::new() });
                continue;
            }
            if c == 'b' && i + 1 < n && cs[i + 1] == '\'' {
                let start_line = line;
                i = skip_char_lit(&cs, i + 1, &mut line);
                out.toks.push(Tok { line: start_line, kind: TokKind::Str, text: String::new() });
                continue;
            }
            // Plain identifier starting with r/b: fall through.
        }
        if c == '"' {
            let start_line = line;
            i = skip_string(&cs, i, &mut line);
            out.toks.push(Tok { line: start_line, kind: TokKind::Str, text: String::new() });
            continue;
        }
        if c == '\'' {
            // Lifetime (`'a`, `'static`, `'_`) iff an identifier follows
            // and the char after *that first identifier char* is not a
            // closing quote (`'a'` is a char literal, `'a,` a lifetime).
            if i + 1 < n && is_ident_start(cs[i + 1]) && !(i + 2 < n && cs[i + 2] == '\'') {
                i += 1;
                while i < n && is_ident_continue(cs[i]) {
                    i += 1;
                }
                continue;
            }
            let start_line = line;
            i = skip_char_lit(&cs, i, &mut line);
            out.toks.push(Tok { line: start_line, kind: TokKind::Str, text: String::new() });
            continue;
        }
        if is_ident_start(c) {
            let s = i;
            while i < n && is_ident_continue(cs[i]) {
                i += 1;
            }
            out.toks.push(Tok { line, kind: TokKind::Ident, text: cs[s..i].iter().collect() });
            continue;
        }
        if c.is_ascii_digit() {
            // Numeric literal: digits, `_`, type suffixes, hex/bin
            // alphabetics, and a decimal point only when a digit follows
            // (`1..10` must leave the range dots alone).
            let s = i;
            i += 1;
            while i < n {
                if is_ident_continue(cs[i]) {
                    i += 1;
                } else if cs[i] == '.' && i + 1 < n && cs[i + 1].is_ascii_digit() {
                    i += 2;
                } else {
                    break;
                }
            }
            out.toks.push(Tok { line, kind: TokKind::Num, text: cs[s..i].iter().collect() });
            continue;
        }
        out.toks.push(Tok { line, kind: TokKind::Punct, text: c.to_string() });
        i += 1;
    }
    out.lines = line;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_produce_no_tokens() {
        let src = "let x = \"HashMap thread_rng\"; // HashMap here too\n/* and\nHashMap */";
        assert!(!idents(src).contains(&"HashMap".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still outer */ HashMap";
        assert_eq!(idents(src), vec!["HashMap"]);
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque() {
        let src = r####"let s = r#"unwrap() " quote "# ; let t = r##"panic!"## ; after"####;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(ids.contains(&"after".to_string()));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_opaque() {
        let src = "let a = b\"unwrap()\"; let b2 = br#\"panic!\"#; tail";
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(ids.contains(&"tail".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // A naive lexer treats `'a` as an unterminated char and swallows
        // the rest of the file; everything after must still tokenize.
        let src = "fn f<'a>(x: &'a str, c: char) { let y = 'z'; let nl = '\\n'; visible() }";
        let ids = idents(src);
        assert!(ids.contains(&"visible".to_string()));
        assert!(!ids.contains(&"z".to_string()));
    }

    #[test]
    fn char_literal_with_quote_escape_does_not_derail() {
        let src = "let q = '\\''; let p = '\"'; after";
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn raw_identifiers_emit_bare_names() {
        assert_eq!(idents("r#match r#fn plain"), vec!["match", "fn", "plain"]);
    }

    #[test]
    fn numeric_ranges_do_not_swallow_idents() {
        // `0..mtp` must produce the `mtp` identifier, not absorb it into
        // a malformed float literal.
        assert_eq!(idents("for i in 0..mtp.modules {}"), vec!["for", "i", "in", "mtp", "modules"]);
        assert_eq!(idents("let x = 1.5e3 + 0x6d74_7000;"), vec!["let", "x"]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* a\nb */\nlet s = \"x\ny\";\nfound";
        let lexed = lex(src);
        let f = lexed.toks.iter().find(|t| t.is_ident("found")).expect("found");
        assert_eq!(f.line, 5);
        assert_eq!(lexed.lines, 5);
    }
}
