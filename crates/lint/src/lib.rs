//! `dsv3-lint`: a from-scratch invariant linter for this workspace.
//!
//! The simulator's results are only trustworthy if the code obeys a
//! handful of invariants that `rustc` cannot check: simulated time never
//! reads the wall clock (D1), nothing iterates in hash order (D2), every
//! RNG descends from an explicit seed (D3), libraries return data
//! instead of printing (D4), library code propagates errors instead of
//! panicking (P1), every crate forbids `unsafe` (U1), and every
//! dependency resolves offline to `vendor/` or a workspace crate (V1).
//!
//! On top of the token rules sits a *semantic* pass — an item-level
//! parser ([`parser`]), a workspace symbol table ([`symbols`]), and a
//! conservative call graph ([`callgraph`]) — powering four more
//! families: unit-of-measure discipline over `_us`/`_ms`/`_bytes`-style
//! suffixes (U2), float-determinism (F2), RNG-stream discipline (R2),
//! and an effect-reachability analysis from `// lint:entry` functions
//! that gates the deterministic-parallel roadmap (P3, with its
//! parallel-readiness report).
//!
//! Inline waivers (`// lint:allow(<rule>) — <reason>`, reason
//! mandatory) are the only escape hatch — every exception is visible,
//! justified, and greppable.
//!
//! Deliberately dependency-free: the linter is the tool that enforces
//! the vendor policy, so it must not itself be a reason to vendor more.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod config;
pub mod diag;
pub mod expr;
pub mod lexer;
pub mod manifest;
pub mod parser;
pub mod rules;
pub mod source;
pub mod symbols;
pub mod units;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

use callgraph::GraphInput;
use config::LintConfig;
use diag::Report;
use expr::BodyFacts;
use rules::{RawFinding, RuleId};
use source::SourceModel;
use symbols::SymbolTable;

pub use callgraph::ReadinessReport;

/// The outcome of linting one source file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Findings that survived waiver application, plus W1/W2 findings
    /// about the waivers themselves.
    pub diagnostics: Vec<diag::Diagnostic>,
    /// Waivers that suppressed at least one finding.
    pub waivers_honored: usize,
}

/// A full analysis: the diagnostic report plus the P3 readiness report.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Findings, counts, and renderings.
    pub report: Report,
    /// Per-entry parallel-readiness verdicts.
    pub readiness: ReadinessReport,
}

/// Library-source universe for the cross-file checks (R2b, cross-file
/// U2, P3 reachability): everything except binaries, examples, tests,
/// and benches. Token/local rules are instead scoped per rule by
/// [`LintConfig::applies`].
fn is_lib_universe(rel: &str) -> bool {
    !["src/bin/", "examples/", "tests/", "/benches/"].iter().any(|f| rel.contains(f))
}

/// Apply a file's waivers to its raw findings and report waiver-hygiene
/// problems (W1/W2) under the active rule filter.
fn apply_waivers(
    rel: &str,
    model: &SourceModel,
    raw: Vec<RawFinding>,
    cfg: &LintConfig,
) -> FileScan {
    let mut out = FileScan::default();
    let mut used = vec![0usize; model.waivers.len()];
    for finding in raw {
        let suppressed = model.waivers.iter().enumerate().any(|(wi, w)| {
            let valid = w.malformed.is_none() && w.reason.is_some();
            let covers = w.target_line == Some(finding.line) && w.rules.contains(&finding.rule);
            if valid && covers {
                used[wi] += 1;
                true
            } else {
                false
            }
        });
        if !suppressed {
            out.diagnostics.push(finding.into_diag(rel));
        }
    }
    for (wi, w) in model.waivers.iter().enumerate() {
        if let Some(why) = &w.malformed {
            if cfg.enabled(RuleId::W1) {
                out.diagnostics.push(
                    RawFinding {
                        rule: RuleId::W1,
                        line: w.line,
                        message: format!("malformed waiver: {why}"),
                    }
                    .into_diag(rel),
                );
            }
        } else if w.reason.is_none() {
            if cfg.enabled(RuleId::W1) {
                out.diagnostics.push(
                    RawFinding {
                        rule: RuleId::W1,
                        line: w.line,
                        message: "waiver has no written reason (reasons are mandatory; the \
                                  waived finding still stands)"
                            .to_string(),
                    }
                    .into_diag(rel),
                );
            }
        } else if used[wi] == 0 {
            // A waiver naming only rules the filter disabled cannot be
            // judged stale — its findings were never computed.
            let judgeable = w.rules.iter().any(|r| cfg.enabled(*r));
            if cfg.enabled(RuleId::W2) && judgeable {
                out.diagnostics.push(
                    RawFinding {
                        rule: RuleId::W2,
                        line: w.line,
                        message: "waiver suppresses nothing (stale — remove it)".to_string(),
                    }
                    .into_diag(rel),
                );
            }
        } else {
            out.waivers_honored += 1;
        }
    }
    out
}

struct FileState {
    rel: String,
    model: SourceModel,
    raw: Vec<RawFinding>,
}

/// Analyze a set of in-memory sources as one workspace: pass 1 runs the
/// token rules and per-body semantic analysis per file; pass 2 runs the
/// cross-file checks over the symbol table and call graph; waivers are
/// applied last, once every finding is known.
#[must_use]
pub fn analyze_sources(files: &[(String, String)], cfg: &LintConfig) -> Analysis {
    let mut states: Vec<FileState> = Vec::new();
    let mut symbols = SymbolTable::default();
    let mut facts: Vec<BodyFacts> = Vec::new();
    let mut universe: Vec<bool> = Vec::new();

    // Pass 1: lex, token rules, item parse, per-body analysis.
    for (rel, src) in files {
        let model = SourceModel::parse(src);
        let mut raw = rules::scan_tokens(&model, &|r| cfg.applies(r, rel));
        if walk::is_lib_root(rel) && cfg.applies(RuleId::U1, rel) {
            if let Some(f) = rules::check_forbid_unsafe(&model) {
                raw.push(f);
            }
        }
        let parsed = parser::parse_items(&model.toks, &model.comments);
        symbols.add_file(rel, &parsed, &|l| model.in_test(l));
        let static_muts: Vec<String> =
            parsed.statics.iter().filter(|s| s.is_mut).map(|s| s.name.clone()).collect();
        let hash_fields: Vec<String> = parsed
            .structs
            .iter()
            .flat_map(|s| &s.fields)
            .filter(|f| f.ty.contains("HashMap") || f.ty.contains("HashSet"))
            .map(|f| f.name.clone())
            .collect();
        let lib_file = is_lib_universe(rel);
        for f in &parsed.fns {
            let bf = match f.body {
                Some(range) => {
                    let hash_params: Vec<String> = f
                        .params
                        .iter()
                        .filter(|p| p.ty.contains("HashMap") || p.ty.contains("HashSet"))
                        .map(|p| p.name.clone())
                        .collect();
                    expr::analyze_body(
                        &model.toks,
                        range,
                        &static_muts,
                        &hash_fields,
                        &hash_params,
                        f.is_macro,
                    )
                }
                None => BodyFacts::default(),
            };
            for sf in &bf.findings {
                if cfg.applies(sf.rule, rel) && !model.in_test(sf.line) {
                    raw.push(RawFinding {
                        rule: sf.rule,
                        line: sf.line,
                        message: sf.message.clone(),
                    });
                }
            }
            universe.push(lib_file && !model.in_test(f.line));
            facts.push(bf);
        }
        states.push(FileState { rel: rel.clone(), model, raw });
    }

    // Pass 2: cross-file checks over the call graph.
    let gi = GraphInput { symbols: &symbols, facts: &facts, universe: &universe };
    let mut pass2 = callgraph::rng_findings(&gi);
    pass2.extend(callgraph::call_arg_unit_findings(&gi));
    let (p3, readiness) = callgraph::effect_analysis(&gi);
    pass2.extend(p3);
    for ff in pass2 {
        let st = &mut states[ff.file];
        if cfg.applies(ff.finding.rule, &st.rel) && !st.model.in_test(ff.finding.line) {
            st.raw.push(RawFinding {
                rule: ff.finding.rule,
                line: ff.finding.line,
                message: ff.finding.message,
            });
        }
    }

    // Waivers last, once every finding for a file is known.
    let mut report = Report::default();
    for st in states {
        let scan = apply_waivers(&st.rel, &st.model, st.raw, cfg);
        report.diagnostics.extend(scan.diagnostics);
        report.waivers_honored += scan.waivers_honored;
        report.files_scanned += 1;
    }
    report.sort();
    Analysis { report, readiness }
}

/// Lint one file's source text. `rel` is the workspace-relative path
/// with `/` separators; it drives the per-rule allowlists, the U1
/// crate-root check, and the paths in the resulting diagnostics. The
/// file is analyzed as a one-file workspace, so same-file semantic
/// checks (including P3 over same-file `lint:entry` fns) all run.
#[must_use]
pub fn scan_source(rel: &str, src: &str, cfg: &LintConfig) -> FileScan {
    let analysis = analyze_sources(&[(rel.to_string(), src.to_string())], cfg);
    FileScan {
        diagnostics: analysis.report.diagnostics,
        waivers_honored: analysis.report.waivers_honored,
    }
}

/// Analyze a whole workspace rooted at `root`: sources through both
/// passes, manifests through the vendor policy (V1).
pub fn analyze_workspace(root: &Path, cfg: &LintConfig) -> io::Result<Analysis> {
    let work = walk::collect(root)?;
    let mut files = Vec::with_capacity(work.sources.len());
    for (rel, abs) in &work.sources {
        files.push((rel.clone(), fs::read_to_string(abs)?));
    }
    let mut analysis = analyze_sources(&files, cfg);
    for (rel, abs) in &work.manifests {
        if !cfg.applies(RuleId::V1, rel) {
            continue;
        }
        let src = fs::read_to_string(abs)?;
        analysis.report.diagnostics.extend(manifest::scan_manifest(rel, &src));
        analysis.report.manifests_scanned += 1;
    }
    analysis.report.sort();
    Ok(analysis)
}

/// Lint a whole workspace rooted at `root` with an explicit config.
pub fn scan_with_config(root: &Path, cfg: &LintConfig) -> io::Result<Report> {
    Ok(analyze_workspace(root, cfg)?.report)
}

/// Lint a whole workspace with the repository's default policy.
pub fn scan(root: &Path) -> io::Result<Report> {
    scan_with_config(root, &LintConfig::default_config())
}

/// Remove from `report` every diagnostic whose rendered line appears in
/// `baseline` (one rendered diagnostic per line, as produced by
/// `--write-baseline`). Returns how many were suppressed. Unmatched
/// baseline lines are ignored — a shrinking baseline is progress, not
/// an error.
pub fn apply_baseline(report: &mut Report, baseline: &str) -> usize {
    let lines: std::collections::BTreeSet<&str> =
        baseline.lines().map(str::trim_end).filter(|l| !l.is_empty()).collect();
    let before = report.diagnostics.len();
    report.diagnostics.retain(|d| !lines.contains(d.render().as_str()));
    before - report.diagnostics.len()
}

/// Render a report as a baseline file: the sorted diagnostic lines, one
/// per line, byte-stable.
#[must_use]
pub fn render_baseline(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&d.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> FileScan {
        scan_source("crates/x/src/m.rs", src, &LintConfig::default_config())
    }

    #[test]
    fn waiver_suppresses_matching_rule_on_target_line() {
        let s = lib("#![forbid(unsafe_code)]\nfn f() { x.unwrap(); } // lint:allow(P1) — seeded \
                     above\n");
        assert!(s.diagnostics.is_empty(), "{:?}", s.diagnostics);
        assert_eq!(s.waivers_honored, 1);
    }

    #[test]
    fn waiver_for_wrong_rule_suppresses_nothing() {
        let s = lib("fn f() { x.unwrap(); } // lint:allow(D2) — wrong rule\n");
        let rules: Vec<RuleId> = s.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&RuleId::P1), "finding stands");
        assert!(rules.contains(&RuleId::W2), "waiver reported stale");
    }

    #[test]
    fn reasonless_waiver_leaves_finding_and_adds_w1() {
        let s = lib("fn f() { x.unwrap(); } // lint:allow(P1)\n");
        let rules: Vec<RuleId> = s.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&RuleId::P1));
        assert!(rules.contains(&RuleId::W1));
    }

    #[test]
    fn own_line_waiver_covers_next_code_line() {
        let s = lib("// lint:allow(D2) — bounded map, order never iterated\nuse std::collections\
                     ::HashMap;\nfn f() -> HashMap<u8, u8> { HashMap::new() }\n");
        // Only line 2 is covered; the uses on line 3 still fire.
        let d2: Vec<u32> =
            s.diagnostics.iter().filter(|d| d.rule == RuleId::D2).map(|d| d.line).collect();
        assert_eq!(d2, vec![3, 3]);
        assert_eq!(s.waivers_honored, 1);
    }

    #[test]
    fn u1_fires_only_on_lib_roots() {
        let cfg = LintConfig::default_config();
        let missing = "pub fn f() {}\n";
        assert!(scan_source("crates/x/src/lib.rs", missing, &cfg)
            .diagnostics
            .iter()
            .any(|d| d.rule == RuleId::U1));
        assert!(scan_source("crates/x/src/util.rs", missing, &cfg).diagnostics.is_empty());
    }

    #[test]
    fn one_waiver_may_suppress_several_findings_on_its_line() {
        let s = lib("fn f() { a.unwrap(); b.unwrap(); } // lint:allow(P1) — both checked by \
                     caller\n");
        assert!(s.diagnostics.is_empty());
        assert_eq!(s.waivers_honored, 1);
    }

    #[test]
    fn u2_fires_through_scan_source_and_waives() {
        let s = lib("fn f(at_ms: f64) -> f64 { let down_at_us = at_ms * 1000.0; down_at_us }\n");
        assert!(s.diagnostics.iter().any(|d| d.rule == RuleId::U2), "{:?}", s.diagnostics);
        let s = lib("fn f(at_ms: f64) -> f64 { let down_at_us = at_ms * 1000.0; down_at_us } // \
                     lint:allow(U2) — legacy bridge, tracked\n");
        assert!(s.diagnostics.is_empty(), "{:?}", s.diagnostics);
    }

    #[test]
    fn rules_filter_scopes_findings_and_waiver_hygiene() {
        let src = "fn f() { x.unwrap(); let a_us = b_ms; }\n";
        let mut cfg = LintConfig::default_config();
        cfg.only = Some(vec![RuleId::U2]);
        let s = scan_source("crates/x/src/m.rs", src, &cfg);
        let rules: Vec<RuleId> = s.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec![RuleId::U2], "{rules:?}");
        // A P1 waiver must not be called stale while P1 is filtered out.
        let src = "fn g() { y.unwrap(); } // lint:allow(P1) — checked\n";
        let s = scan_source("crates/x/src/m.rs", src, &cfg);
        assert!(s.diagnostics.is_empty(), "{:?}", s.diagnostics);
    }

    #[test]
    fn p3_entry_in_single_file_reports_reachable_effects() {
        let src = "// lint:entry — sim loop\npub fn run() { helper(); }\nfn helper() { \
                   println!(\"x\"); }\n";
        let s = lib(src);
        assert!(s.diagnostics.iter().any(|d| d.rule == RuleId::P3), "{:?}", s.diagnostics);
        // The D4 finding fires too, at the same site.
        assert!(s.diagnostics.iter().any(|d| d.rule == RuleId::D4));
    }

    #[test]
    fn baseline_roundtrip_suppresses_exact_lines() {
        let cfg = LintConfig::default_config();
        let analysis = analyze_sources(
            &[("crates/x/src/m.rs".to_string(), "fn f() { x.unwrap(); }\n".to_string())],
            &cfg,
        );
        let mut report = analysis.report;
        let base = render_baseline(&report);
        assert!(base.contains("error[P1]"));
        let n = apply_baseline(&mut report, &base);
        assert_eq!(n, 1);
        assert!(report.diagnostics.is_empty());
        assert_eq!(apply_baseline(&mut report, "stale line\n"), 0, "unmatched lines ignored");
    }
}
