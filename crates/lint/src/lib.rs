//! `dsv3-lint`: a from-scratch invariant linter for this workspace.
//!
//! The simulator's results are only trustworthy if the code obeys a
//! handful of invariants that `rustc` cannot check: simulated time never
//! reads the wall clock (D1), nothing iterates in hash order (D2), every
//! RNG descends from an explicit seed (D3), libraries return data
//! instead of printing (D4), library code propagates errors instead of
//! panicking (P1), every crate forbids `unsafe` (U1), and every
//! dependency resolves offline to `vendor/` or a workspace crate (V1).
//! This crate machine-checks all seven, with inline waivers
//! (`// lint:allow(<rule>) — <reason>`, reason mandatory) as the only
//! escape hatch — so every exception is visible, justified, and
//! greppable.
//!
//! Deliberately dependency-free: the linter is the tool that enforces
//! the vendor policy, so it must not itself be a reason to vendor more.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod source;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

use config::LintConfig;
use diag::{Diagnostic, Report};
use rules::RuleId;
use source::SourceModel;

/// The outcome of linting one source file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Findings that survived waiver application, plus W1/W2 findings
    /// about the waivers themselves.
    pub diagnostics: Vec<Diagnostic>,
    /// Waivers that suppressed at least one finding.
    pub waivers_honored: usize,
}

/// Lint one file's source text. `rel` is the workspace-relative path
/// with `/` separators; it drives the per-rule allowlists, the U1
/// crate-root check, and the paths in the resulting diagnostics.
#[must_use]
pub fn scan_source(rel: &str, src: &str, cfg: &LintConfig) -> FileScan {
    let model = SourceModel::parse(src);
    let mut raw = rules::scan_tokens(&model, &|r| cfg.applies(r, rel));
    if walk::is_lib_root(rel) && cfg.applies(RuleId::U1, rel) {
        if let Some(f) = rules::check_forbid_unsafe(&model) {
            raw.push(f);
        }
    }

    let mut out = FileScan::default();
    let mut used = vec![0usize; model.waivers.len()];
    for finding in raw {
        let suppressed = model.waivers.iter().enumerate().any(|(wi, w)| {
            let valid = w.malformed.is_none() && w.reason.is_some();
            let covers = w.target_line == Some(finding.line) && w.rules.contains(&finding.rule);
            if valid && covers {
                used[wi] += 1;
                true
            } else {
                false
            }
        });
        if !suppressed {
            out.diagnostics.push(finding.into_diag(rel));
        }
    }
    for (wi, w) in model.waivers.iter().enumerate() {
        if let Some(why) = &w.malformed {
            out.diagnostics.push(
                rules::RawFinding {
                    rule: RuleId::W1,
                    line: w.line,
                    message: format!("malformed waiver: {why}"),
                }
                .into_diag(rel),
            );
        } else if w.reason.is_none() {
            out.diagnostics.push(
                rules::RawFinding {
                    rule: RuleId::W1,
                    line: w.line,
                    message: "waiver has no written reason (reasons are mandatory; the waived \
                              finding still stands)"
                        .to_string(),
                }
                .into_diag(rel),
            );
        } else if used[wi] == 0 {
            out.diagnostics.push(
                rules::RawFinding {
                    rule: RuleId::W2,
                    line: w.line,
                    message: "waiver suppresses nothing (stale — remove it)".to_string(),
                }
                .into_diag(rel),
            );
        } else {
            out.waivers_honored += 1;
        }
    }
    out
}

/// Lint a whole workspace rooted at `root` with an explicit config.
pub fn scan_with_config(root: &Path, cfg: &LintConfig) -> io::Result<Report> {
    let work = walk::collect(root)?;
    let mut report = Report::default();
    for (rel, abs) in &work.sources {
        let src = fs::read_to_string(abs)?;
        let scan = scan_source(rel, &src, cfg);
        report.diagnostics.extend(scan.diagnostics);
        report.waivers_honored += scan.waivers_honored;
        report.files_scanned += 1;
    }
    for (rel, abs) in &work.manifests {
        if !cfg.applies(RuleId::V1, rel) {
            continue;
        }
        let src = fs::read_to_string(abs)?;
        report.diagnostics.extend(manifest::scan_manifest(rel, &src));
        report.manifests_scanned += 1;
    }
    report.sort();
    Ok(report)
}

/// Lint a whole workspace with the repository's default policy.
pub fn scan(root: &Path) -> io::Result<Report> {
    scan_with_config(root, &LintConfig::default_config())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> FileScan {
        scan_source("crates/x/src/m.rs", src, &LintConfig::default_config())
    }

    #[test]
    fn waiver_suppresses_matching_rule_on_target_line() {
        let s = lib("#![forbid(unsafe_code)]\nfn f() { x.unwrap(); } // lint:allow(P1) — seeded \
                     above\n");
        assert!(s.diagnostics.is_empty(), "{:?}", s.diagnostics);
        assert_eq!(s.waivers_honored, 1);
    }

    #[test]
    fn waiver_for_wrong_rule_suppresses_nothing() {
        let s = lib("fn f() { x.unwrap(); } // lint:allow(D2) — wrong rule\n");
        let rules: Vec<RuleId> = s.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&RuleId::P1), "finding stands");
        assert!(rules.contains(&RuleId::W2), "waiver reported stale");
    }

    #[test]
    fn reasonless_waiver_leaves_finding_and_adds_w1() {
        let s = lib("fn f() { x.unwrap(); } // lint:allow(P1)\n");
        let rules: Vec<RuleId> = s.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&RuleId::P1));
        assert!(rules.contains(&RuleId::W1));
    }

    #[test]
    fn own_line_waiver_covers_next_code_line() {
        let s = lib("// lint:allow(D2) — bounded map, order never iterated\nuse std::collections\
                     ::HashMap;\nfn f() -> HashMap<u8, u8> { HashMap::new() }\n");
        // Only line 2 is covered; the uses on line 3 still fire.
        let d2: Vec<u32> =
            s.diagnostics.iter().filter(|d| d.rule == RuleId::D2).map(|d| d.line).collect();
        assert_eq!(d2, vec![3, 3]);
        assert_eq!(s.waivers_honored, 1);
    }

    #[test]
    fn u1_fires_only_on_lib_roots() {
        let cfg = LintConfig::default_config();
        let missing = "pub fn f() {}\n";
        assert!(scan_source("crates/x/src/lib.rs", missing, &cfg)
            .diagnostics
            .iter()
            .any(|d| d.rule == RuleId::U1));
        assert!(scan_source("crates/x/src/util.rs", missing, &cfg).diagnostics.is_empty());
    }

    #[test]
    fn one_waiver_may_suppress_several_findings_on_its_line() {
        let s = lib("fn f() { a.unwrap(); b.unwrap(); } // lint:allow(P1) — both checked by \
                     caller\n");
        assert!(s.diagnostics.is_empty());
        assert_eq!(s.waivers_honored, 1);
    }
}
