//! Rule V1: the offline vendor policy, checked at the manifest level.
//!
//! Every entry in a `[dependencies]`-family table must resolve to a
//! `vendor/` path or a workspace crate under `crates/` — never the
//! crates.io registry (a bare version string), never git. A tiny
//! line-oriented TOML-subset reader is enough: Cargo manifests in this
//! workspace (and the fixtures) only use section headers, `key = value`
//! lines, dotted keys, and inline tables.

use crate::diag::Diagnostic;
use crate::rules::RuleId;

/// Does `section` declare dependencies?
fn is_dep_section(section: &str) -> bool {
    matches!(section, "dependencies" | "dev-dependencies" | "build-dependencies")
        || section == "workspace.dependencies"
        || (section.starts_with("target.") && section.ends_with(".dependencies"))
}

/// `[dependencies.foo]`-style header: the table *is* one dependency.
fn dep_table_entry(section: &str) -> Option<&str> {
    for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(name) = section.strip_prefix(prefix) {
            if !name.contains('.') {
                return Some(name);
            }
        }
    }
    None
}

/// Strip a `#` comment, respecting basic (`"`) and literal (`'`) strings.
fn strip_comment(line: &str) -> &str {
    let (mut in_basic, mut in_literal, mut escaped) = (false, false, false);
    for (idx, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_basic => escaped = true,
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '#' if !in_basic && !in_literal => return &line[..idx],
            _ => {}
        }
    }
    line
}

/// Pull the first `"…"` quoted value out of `s`.
fn first_quoted(s: &str) -> Option<&str> {
    let start = s.find('"')? + 1;
    let len = s[start..].find('"')?;
    Some(&s[start..start + len])
}

/// Normalize `dir/“path”` relative-path joins: resolve `.` and `..`
/// lexically against the manifest's directory (itself root-relative).
/// Returns `None` when the path escapes the workspace root.
fn resolve(manifest_dir: &str, path: &str) -> Option<String> {
    let mut parts: Vec<&str> =
        manifest_dir.split('/').filter(|p| !p.is_empty() && *p != ".").collect();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                parts.pop()?;
            }
            s => parts.push(s),
        }
    }
    Some(parts.join("/"))
}

/// How one dependency entry is declared.
#[derive(Debug, Default)]
struct DepDecl {
    name: String,
    line: u32,
    has_workspace_true: bool,
    path: Option<String>,
    has_version: bool,
    has_git: bool,
    bare_version: bool,
}

impl DepDecl {
    /// Evaluate against the vendor policy, given the manifest's
    /// root-relative directory.
    fn verdict(&self, manifest_dir: &str) -> Option<String> {
        if self.has_workspace_true {
            return None; // resolved by [workspace.dependencies], checked there
        }
        if let Some(p) = &self.path {
            let Some(resolved) = resolve(manifest_dir, p) else {
                return Some(format!(
                    "dependency `{}` path `{p}` escapes the workspace root",
                    self.name
                ));
            };
            if resolved.starts_with("vendor/") || resolved.starts_with("crates/") {
                return None;
            }
            return Some(format!(
                "dependency `{}` path `{p}` resolves to `{resolved}`, outside vendor/ and crates/",
                self.name
            ));
        }
        if self.has_git {
            return Some(format!(
                "dependency `{}` is a git dependency (offline policy: vendor it)",
                self.name
            ));
        }
        if self.bare_version || self.has_version {
            return Some(format!(
                "dependency `{}` resolves to the crates.io registry (offline policy: use a \
                 vendor/ path or a workspace crate)",
                self.name
            ));
        }
        Some(format!("dependency `{}` declares neither a path nor workspace = true", self.name))
    }
}

/// Parse an inline table `{ k = v, … }` into a [`DepDecl`].
fn parse_inline_table(name: &str, line_no: u32, body: &str) -> DepDecl {
    let mut d = DepDecl { name: name.to_string(), line: line_no, ..DepDecl::default() };
    let inner = body.trim().trim_start_matches('{').trim_end_matches('}');
    // Split on top-level commas (none of our values nest tables).
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut parts = Vec::new();
    for (idx, c) in inner.char_indices() {
        match c {
            '[' | '{' => depth += 1,
            ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(&inner[start..idx]);
                start = idx + 1;
            }
            _ => {}
        }
    }
    parts.push(&inner[start..]);
    for part in parts {
        let Some((k, v)) = part.split_once('=') else { continue };
        apply_key(&mut d, k.trim(), v.trim());
    }
    d
}

/// Fold one `key = value` pair into the declaration.
fn apply_key(d: &mut DepDecl, key: &str, value: &str) {
    match key {
        "workspace" => d.has_workspace_true = value == "true",
        "path" => d.path = first_quoted(value).map(str::to_string),
        "version" => d.has_version = true,
        "git" | "branch" | "rev" | "tag" => d.has_git = true,
        _ => {} // features, optional, default-features, package, …
    }
}

/// Scan one manifest. `rel` is the workspace-relative path of the
/// `Cargo.toml` (used both for diagnostics and to resolve path deps).
#[must_use]
pub fn scan_manifest(rel: &str, src: &str) -> Vec<Diagnostic> {
    let manifest_dir = rel.rsplit_once('/').map_or("", |(d, _)| d);
    let mut out = Vec::new();
    let mut section = String::new();
    // A `[dependencies.foo]` table accumulates until the next header.
    let mut pending: Option<DepDecl> = None;
    let mut emit = |d: DepDecl| {
        if let Some(msg) = d.verdict(manifest_dir) {
            out.push(
                crate::rules::RawFinding { rule: RuleId::V1, line: d.line, message: msg }
                    .into_diag(rel),
            );
        }
    };
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if let Some(d) = pending.take() {
                emit(d);
            }
            section = line.trim_start_matches('[').trim_end_matches(']').trim().to_string();
            if let Some(name) = dep_table_entry(&section) {
                pending =
                    Some(DepDecl { name: name.to_string(), line: line_no, ..DepDecl::default() });
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let (key, value) = (key.trim(), value.trim());
        if let Some(d) = pending.as_mut() {
            apply_key(d, key, value);
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        // `name.workspace = true` / `name.path = "…"` dotted keys.
        if let Some((name, attr)) = key.split_once('.') {
            let mut d = DepDecl { name: name.to_string(), line: line_no, ..DepDecl::default() };
            apply_key(&mut d, attr, value);
            // A dotted declaration is complete on its line: only flag the
            // forms that positively pin a source (workspace/path/version/git);
            // `name.features = […]` alone says nothing about the source.
            if d.has_workspace_true || d.path.is_some() || d.has_version || d.has_git {
                emit(d);
            }
            continue;
        }
        if value.starts_with('{') {
            emit(parse_inline_table(key, line_no, value));
        } else if value.starts_with('"') {
            emit(DepDecl {
                name: key.to_string(),
                line: line_no,
                bare_version: true,
                ..DepDecl::default()
            });
        }
    }
    if let Some(d) = pending.take() {
        emit(d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(rel: &str, src: &str) -> Vec<(u32, bool)> {
        scan_manifest(rel, src).into_iter().map(|d| (d.line, true)).collect()
    }

    #[test]
    fn registry_and_git_deps_are_flagged() {
        let src = "[package]\nname = \"x\"\n\n[dependencies]\nrand = \"0.8\"\n\
                   serde = { version = \"1\", features = [\"derive\"] }\n\
                   foo = { git = \"https://example.com/foo\" }\n";
        assert_eq!(rules("crates/x/Cargo.toml", src), vec![(5, true), (6, true), (7, true)]);
    }

    #[test]
    fn vendor_and_workspace_paths_pass() {
        let src = "[dependencies]\nrand = { path = \"../../vendor/rand\" }\n\
                   dsv3-core.workspace = true\nserde = { workspace = true }\n";
        assert!(scan_manifest("crates/x/Cargo.toml", src).is_empty());
    }

    #[test]
    fn workspace_dependencies_table_is_checked() {
        let src = "[workspace.dependencies]\nrand = { path = \"vendor/rand\" }\nbad = \"1.0\"\n";
        let hits = scan_manifest("Cargo.toml", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 3);
        assert!(hits[0].message.contains("registry"));
    }

    #[test]
    fn relative_paths_resolve_through_the_manifest_dir() {
        // vendor/proptest depends on ../rand → vendor/rand: fine.
        assert!(scan_manifest(
            "vendor/proptest/Cargo.toml",
            "[dependencies]\nrand = { path = \"../rand\" }\n"
        )
        .is_empty());
        // ../../elsewhere escapes vendor/ and crates/: flagged.
        let hits = scan_manifest(
            "crates/x/Cargo.toml",
            "[dependencies]\nq = { path = \"../../elsewhere/q\" }\n",
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("outside vendor/ and crates/"));
    }

    #[test]
    fn dep_table_sections_are_one_entry() {
        let good = "[dependencies.rand]\npath = \"../../vendor/rand\"\n";
        assert!(scan_manifest("crates/x/Cargo.toml", good).is_empty());
        let bad = "[dependencies.rand]\nversion = \"0.8\"\nfeatures = [\"std\"]\n";
        let hits = scan_manifest("crates/x/Cargo.toml", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 1, "reported at the table header");
    }

    #[test]
    fn comments_and_non_dep_sections_are_ignored() {
        let src = "[package]\nversion = \"1.0\" # not a dep\n[features]\ndefault = []\n\
                   [dependencies]\n# rand = \"0.8\"\n";
        assert!(scan_manifest("Cargo.toml", src).is_empty());
    }
}
