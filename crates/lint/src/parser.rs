//! Item-level recursive-descent parser over the token stream.
//!
//! The semantic rules (U2/F2/R2/P3) need structure the lexer cannot
//! give them: which tokens form a function body, what the function's
//! parameters are called, which type an `impl` block extends, where
//! `static mut` state lives, and which functions carry a
//! `// lint:entry` marker. This parser recovers exactly that much — it
//! is *not* a Rust front end. It never fails: anything it does not
//! understand is skipped token-by-token, which is the right posture for
//! a linter (rustc rejects genuinely malformed files long before we
//! see them). The proptest suite feeds it arbitrary token soup and
//! asserts it terminates without panicking.

use crate::lexer::{Comment, Tok, TokKind};

/// One function parameter (or struct field): the name and the flat text
/// of its declared type.
#[derive(Debug, Clone)]
pub struct Param {
    /// Pattern/field name; empty for patterns we do not resolve
    /// (tuple/struct patterns), keeping positions countable.
    pub name: String,
    /// Type text with `::`/`<`/`>` squeezed to spaces — enough for
    /// substring checks (`HashMap`, `Rng`), not for type analysis.
    pub ty: String,
}

/// A parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (`run`, `link_schedule`).
    pub name: String,
    /// Enclosing `impl`/`trait` type, when any (`FaultDriver`).
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword (or `macro_rules!` name).
    pub line: u32,
    /// Whether the first parameter is a form of `self`.
    pub has_self: bool,
    /// Non-`self` parameters in declaration order.
    pub params: Vec<Param>,
    /// Flat text of the return type, empty when none.
    pub ret: String,
    /// Token index range of the body *contents* (inside the braces);
    /// `None` for bodiless trait signatures.
    pub body: Option<(usize, usize)>,
    /// True for `macro_rules!` pseudo-functions: their "body" is the
    /// macro definition, analyzed leniently.
    pub is_macro: bool,
    /// True when a `// lint:entry` marker names this fn a
    /// parallel-readiness entry point (rule P3 roots reachability here).
    pub is_entry: bool,
}

/// A parsed `struct` item with named fields.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named fields (empty for tuple/unit structs).
    pub fields: Vec<Param>,
}

/// A `static` item; `static mut` is global mutable state (effect for P3).
#[derive(Debug, Clone)]
pub struct StaticItem {
    /// Item name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// `static mut` — forbidden effect.
    pub is_mut: bool,
}

/// A `use` declaration, flattened to `a::b::c` text.
#[derive(Debug, Clone)]
pub struct UseItem {
    /// Flat path text.
    pub path: String,
    /// 1-based line.
    pub line: u32,
}

/// Everything the item parser recovered from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Functions (free, impl methods, trait defaults, macro pseudo-fns).
    pub fns: Vec<FnItem>,
    /// Structs with named fields.
    pub structs: Vec<StructItem>,
    /// Statics.
    pub statics: Vec<StaticItem>,
    /// Use declarations.
    pub uses: Vec<UseItem>,
}

/// Lines that carry a `// lint:entry` marker. The marker declares the
/// *next* `fn` item an entry point for the P3 effect analysis, the same
/// attachment rule waivers use.
#[must_use]
pub fn entry_marker_lines(comments: &[Comment]) -> Vec<u32> {
    comments
        .iter()
        .filter(|c| {
            c.text.trim_start_matches(['/', '*', '!']).trim_start().starts_with("lint:entry")
        })
        .map(|c| c.line)
        .collect()
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
    out: ParsedFile,
    /// Entry-marker lines not yet attached to a fn.
    entries: Vec<u32>,
}

impl<'a> Parser<'a> {
    fn peek(&self, off: usize) -> Option<&'a Tok> {
        self.toks.get(self.i + off)
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_ident(s))
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    /// Skip a balanced `(…)`, `[…]`, `{…}`, or `<…>` group; `self.i` is
    /// at the opener. `<` needs care: `->`'s `>` and shift-like `>>` are
    /// both handled by plain depth counting over single-char tokens, and
    /// a `>` preceded by `-` never closes a generic.
    fn skip_group(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                let arrow = close == '>'
                    && self.i > 0
                    && self.toks.get(self.i - 1).is_some_and(|p| p.is_punct('-'));
                if !arrow {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
            }
            self.bump();
        }
    }

    /// Skip one attribute `#[…]` / `#![…]`; `self.i` is at `#`.
    fn skip_attribute(&mut self) {
        self.bump(); // '#'
        if self.at_punct('!') {
            self.bump();
        }
        if self.at_punct('[') {
            self.skip_group('[', ']');
        }
    }

    /// Collect a flat type/path text up to any of `stops` at depth zero.
    fn flat_text_until(&mut self, stops: &[char]) -> String {
        let mut depth = 0usize;
        let mut out = String::new();
        while let Some(t) = self.peek(0) {
            if depth == 0 && t.kind == TokKind::Punct && stops.iter().any(|&c| t.is_punct(c)) {
                break;
            }
            match t.kind {
                TokKind::Punct if "([<{".contains(&t.text) => depth += 1,
                TokKind::Punct if ")]>}".contains(&t.text) => {
                    // `->` does not close anything.
                    let arrow = t.is_punct('>')
                        && self.i > 0
                        && self.toks.get(self.i - 1).is_some_and(|p| p.is_punct('-'));
                    if !arrow {
                        if depth == 0 {
                            break; // unbalanced closer ends the type
                        }
                        depth -= 1;
                    }
                }
                _ => {}
            }
            if t.kind == TokKind::Ident {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&t.text);
            }
            self.bump();
        }
        out
    }

    /// Parse a parameter list; `self.i` is at `(`. Returns
    /// (has_self, params).
    fn parse_params(&mut self) -> (bool, Vec<Param>) {
        let mut has_self = false;
        let mut params = Vec::new();
        if !self.at_punct('(') {
            return (has_self, params);
        }
        self.bump(); // '('
        let mut depth = 0usize; // nesting inside the param list
        let mut expecting = true; // at the start of a parameter
        while let Some(t) = self.peek(0) {
            if depth == 0 && t.is_punct(')') {
                self.bump();
                break;
            }
            match t.kind {
                TokKind::Punct if "([<{".contains(&t.text) => {
                    depth += 1;
                    self.bump();
                }
                TokKind::Punct if ")]>}".contains(&t.text) => {
                    let arrow = t.is_punct('>')
                        && self.i > 0
                        && self.toks.get(self.i - 1).is_some_and(|p| p.is_punct('-'));
                    if !arrow {
                        depth = depth.saturating_sub(1);
                    }
                    self.bump();
                }
                TokKind::Punct if t.is_punct(',') && depth == 0 => {
                    expecting = true;
                    self.bump();
                }
                _ if expecting => {
                    // Start of a parameter: `self` forms, `mut name`,
                    // `name: Type`, or an unresolvable pattern.
                    if t.is_punct('&') || t.is_ident("mut") {
                        self.bump();
                        continue; // stay in `expecting`
                    }
                    if t.is_ident("self") {
                        has_self = true;
                        expecting = false;
                        self.bump();
                        continue;
                    }
                    if t.kind == TokKind::Ident && self.peek(1).is_some_and(|n| n.is_punct(':')) {
                        let name = t.text.clone();
                        self.bump(); // name
                        self.bump(); // ':'
                        let ty = self.flat_text_until(&[',', ')']);
                        params.push(Param { name, ty });
                        expecting = false;
                        continue;
                    }
                    // Unresolvable pattern (tuple, struct, `_`): keep the
                    // position with an empty name.
                    params.push(Param { name: String::new(), ty: String::new() });
                    expecting = false;
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        (has_self, params)
    }

    /// Parse a `fn` item; `self.i` is at the `fn` keyword.
    fn parse_fn(&mut self, owner: Option<&str>) {
        let line = self.peek(0).map_or(0, |t| t.line);
        self.bump(); // 'fn'
        let Some(name_tok) = self.peek(0) else { return };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        self.bump();
        if self.at_punct('<') {
            self.skip_group('<', '>');
        }
        let (has_self, params) = self.parse_params();
        // Return type: `-> Type`, ended by `{`, `;`, or `where`.
        let mut ret = String::new();
        if self.at_punct('-') && self.peek(1).is_some_and(|t| t.is_punct('>')) {
            self.bump();
            self.bump();
            ret = self.flat_text_until(&['{', ';']);
        }
        // `where` clause folds into flat_text_until already (idents are
        // harmless); make sure we are now at `{` or `;`.
        while let Some(t) = self.peek(0) {
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            self.bump();
        }
        let mut body = None;
        if self.at_punct('{') {
            let start = self.i + 1;
            self.skip_group('{', '}');
            body = Some((start, self.i.saturating_sub(1)));
        } else if self.at_punct(';') {
            self.bump();
        }
        let is_entry = self.take_entry_for(line);
        self.out.fns.push(FnItem {
            name,
            owner: owner.map(str::to_string),
            line,
            has_self,
            params,
            ret,
            body,
            is_macro: false,
            is_entry,
        });
    }

    /// Consume a pending entry marker that targets a fn at `line`: the
    /// marker must sit strictly above the item and nothing but other
    /// markers/attributes/comments may intervene — approximated by
    /// "marker line is above `line`". Markers never match twice.
    fn take_entry_for(&mut self, line: u32) -> bool {
        if let Some(pos) = self.entries.iter().position(|&m| m < line) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Parse `struct Name { fields }` / tuple / unit struct.
    fn parse_struct(&mut self) {
        let line = self.peek(0).map_or(0, |t| t.line);
        self.bump(); // 'struct'
        let Some(name_tok) = self.peek(0) else { return };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        self.bump();
        if self.at_punct('<') {
            self.skip_group('<', '>');
        }
        let mut fields = Vec::new();
        if self.at_punct('(') {
            self.skip_group('(', ')');
            if self.at_punct(';') {
                self.bump();
            }
        } else if self.at_punct('{') {
            self.bump();
            // Field list: `pub? name : Type ,` — attributes and doc
            // comments already stripped by the lexer/attribute skipper.
            loop {
                while self.at_punct('#') {
                    self.skip_attribute();
                }
                if self.at_ident("pub") {
                    self.bump();
                    if self.at_punct('(') {
                        self.skip_group('(', ')');
                    }
                }
                let Some(t) = self.peek(0) else { break };
                if t.is_punct('}') {
                    self.bump();
                    break;
                }
                if t.kind == TokKind::Ident && self.peek(1).is_some_and(|n| n.is_punct(':')) {
                    let fname = t.text.clone();
                    self.bump();
                    self.bump();
                    let ty = self.flat_text_until(&[',', '}']);
                    fields.push(Param { name: fname, ty });
                    if self.at_punct(',') {
                        self.bump();
                    }
                } else {
                    self.bump();
                }
            }
        } else if self.at_punct(';') {
            self.bump();
        }
        self.out.structs.push(StructItem { name, line, fields });
    }

    /// Parse the contents of an `impl`/`trait` block body.
    fn parse_block_items(&mut self, owner: Option<&str>) {
        // `self.i` is at `{`.
        if !self.at_punct('{') {
            return;
        }
        let end_guard = {
            // Find the matching close so nested parsing cannot overrun.
            let save = self.i;
            self.skip_group('{', '}');
            let end = self.i;
            self.i = save + 1;
            end
        };
        while self.i < end_guard.saturating_sub(1) {
            if !self.parse_one_item(owner, end_guard.saturating_sub(1)) {
                break;
            }
        }
        self.i = end_guard;
    }

    /// Parse one item at the current position (bounded by `limit`).
    /// Returns false when no progress can be made.
    fn parse_one_item(&mut self, owner: Option<&str>, limit: usize) -> bool {
        while self.i < limit {
            let Some(t) = self.peek(0) else { return false };
            match t.kind {
                TokKind::Punct if t.is_punct('#') => self.skip_attribute(),
                TokKind::Ident => match t.text.as_str() {
                    "pub" => {
                        self.bump();
                        if self.at_punct('(') {
                            self.skip_group('(', ')');
                        }
                    }
                    "unsafe" | "async" | "default" => self.bump(),
                    "extern" => {
                        self.bump();
                        if self.peek(0).is_some_and(|t| t.kind == TokKind::Str) {
                            self.bump();
                        }
                    }
                    "const" => {
                        // `const fn` is a modifier; `const NAME: …;` is an item.
                        if self.peek(1).is_some_and(|n| n.is_ident("fn")) {
                            self.bump();
                        } else {
                            self.skip_to_semi(limit);
                            return true;
                        }
                    }
                    "fn" => {
                        self.parse_fn(owner);
                        return true;
                    }
                    "struct" => {
                        self.parse_struct();
                        return true;
                    }
                    "enum" | "union" => {
                        self.bump();
                        if self.peek(0).is_some_and(|t| t.kind == TokKind::Ident) {
                            self.bump();
                        }
                        if self.at_punct('<') {
                            self.skip_group('<', '>');
                        }
                        if self.at_punct('{') {
                            self.skip_group('{', '}');
                        }
                        return true;
                    }
                    "impl" | "trait" => {
                        let is_trait = t.text == "trait";
                        self.bump();
                        if self.at_punct('<') {
                            self.skip_group('<', '>');
                        }
                        // First type path; with `impl Trait for Type` the
                        // owner is the type after `for`.
                        let mut ty = self.next_type_head();
                        if self.at_ident("for") {
                            self.bump();
                            ty = self.next_type_head();
                        }
                        // Skip any remaining generics / where clause.
                        while self.i < limit {
                            if self.at_punct('{') || self.at_punct(';') {
                                break;
                            }
                            self.bump();
                        }
                        if self.at_punct('{') {
                            let _ = is_trait;
                            self.parse_block_items(ty.as_deref());
                        } else if self.at_punct(';') {
                            self.bump();
                        }
                        return true;
                    }
                    "mod" => {
                        self.bump();
                        if self.peek(0).is_some_and(|t| t.kind == TokKind::Ident) {
                            self.bump();
                        }
                        if self.at_punct('{') {
                            self.parse_block_items(owner);
                        } else if self.at_punct(';') {
                            self.bump();
                        }
                        return true;
                    }
                    "static" => {
                        let line = t.line;
                        self.bump();
                        let is_mut = self.at_ident("mut");
                        if is_mut {
                            self.bump();
                        }
                        if let Some(name_tok) = self.peek(0) {
                            if name_tok.kind == TokKind::Ident {
                                self.out.statics.push(StaticItem {
                                    name: name_tok.text.clone(),
                                    line,
                                    is_mut,
                                });
                            }
                        }
                        self.skip_to_semi(limit);
                        return true;
                    }
                    "use" => {
                        let line = t.line;
                        self.bump();
                        let mut path = String::new();
                        while self.i < limit {
                            let Some(t) = self.peek(0) else { break };
                            if t.is_punct(';') {
                                self.bump();
                                break;
                            }
                            if t.is_punct('{') {
                                self.skip_group('{', '}');
                                continue;
                            }
                            if t.kind == TokKind::Ident {
                                if !path.is_empty() {
                                    path.push_str("::");
                                }
                                path.push_str(&t.text);
                            }
                            self.bump();
                        }
                        self.out.uses.push(UseItem { path, line });
                        return true;
                    }
                    "macro_rules" => {
                        let line = t.line;
                        self.bump(); // macro_rules
                        if self.at_punct('!') {
                            self.bump();
                        }
                        let name = match self.peek(0) {
                            Some(t) if t.kind == TokKind::Ident => {
                                let n = t.text.clone();
                                self.bump();
                                n
                            }
                            _ => String::from("_macro"),
                        };
                        let mut body = None;
                        if self.at_punct('{') {
                            let start = self.i + 1;
                            self.skip_group('{', '}');
                            body = Some((start, self.i.saturating_sub(1)));
                        }
                        let is_entry = self.take_entry_for(line);
                        self.out.fns.push(FnItem {
                            name,
                            owner: None,
                            line,
                            has_self: false,
                            params: Vec::new(),
                            ret: String::new(),
                            body,
                            is_macro: true,
                            is_entry,
                        });
                        return true;
                    }
                    "type" => {
                        self.skip_to_semi(limit);
                        return true;
                    }
                    _ => self.bump(),
                },
                _ => self.bump(),
            }
        }
        false
    }

    /// Skip to just past the next `;` at group depth zero.
    fn skip_to_semi(&mut self, limit: usize) {
        let mut depth = 0usize;
        while self.i < limit {
            let Some(t) = self.peek(0) else { return };
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    ";" if depth == 0 => {
                        self.bump();
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Read the head identifier of a type path (`Foo` of `Foo<Bar>`,
    /// `fmt::Display` → `Display`).
    fn next_type_head(&mut self) -> Option<String> {
        let mut last = None;
        while let Some(t) = self.peek(0) {
            match t.kind {
                TokKind::Ident if t.text == "for" => break,
                TokKind::Ident => {
                    last = Some(t.text.clone());
                    self.bump();
                    if self.at_punct('<') {
                        self.skip_group('<', '>');
                    }
                    // Continue through `::`; anything else ends the path.
                    if self.at_punct(':') && self.peek(1).is_some_and(|n| n.is_punct(':')) {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    break;
                }
                TokKind::Punct if t.is_punct('&') || t.is_punct('*') => self.bump(),
                TokKind::Punct
                    if t.is_punct(':') && self.peek(1).is_some_and(|n| n.is_punct(':')) =>
                {
                    self.bump();
                    self.bump();
                }
                _ => break,
            }
        }
        last
    }
}

/// Parse the items of one file. `comments` supplies `lint:entry`
/// markers. Never panics; unknown constructs are skipped.
#[must_use]
pub fn parse_items(toks: &[Tok], comments: &[Comment]) -> ParsedFile {
    let mut p = Parser { toks, i: 0, out: ParsedFile::default(), entries: Vec::new() };
    // Markers attach to the next fn *below* them; sort descending so
    // `take_entry_for` (which scans for "marker above item") pairs the
    // closest marker first.
    p.entries = entry_marker_lines(comments);
    p.entries.sort_unstable_by(|a, b| b.cmp(a));
    let limit = toks.len();
    while p.i < limit {
        let before = p.i;
        if !p.parse_one_item(None, limit) && p.i == before {
            p.bump();
        }
    }
    p.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        let lexed = lex(src);
        parse_items(&lexed.toks, &lexed.comments)
    }

    #[test]
    fn free_fn_signature_and_body_are_recovered() {
        let p = parse("pub fn ms_to_us(ms: f64) -> f64 { ms * 1000.0 }\n");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "ms_to_us");
        assert!(!f.has_self);
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].name, "ms");
        assert_eq!(f.params[0].ty, "f64");
        assert_eq!(f.ret, "f64");
        assert!(f.body.is_some());
    }

    #[test]
    fn impl_methods_carry_their_owner() {
        let src = "impl<R: Rng> FaultDriver<R> {\n    pub fn poll(&mut self, now_ms: f64) {}\n    \
                   fn helper(x: u32) -> u32 { x }\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("FaultDriver"));
        assert!(p.fns[0].has_self);
        assert_eq!(p.fns[0].params.len(), 1);
        assert_eq!(p.fns[0].params[0].name, "now_ms");
        assert_eq!(p.fns[1].owner.as_deref(), Some("FaultDriver"));
        assert!(!p.fns[1].has_self);
    }

    #[test]
    fn impl_trait_for_type_owner_is_the_type() {
        let p = parse("impl fmt::Display for RuleId { fn fmt(&self, f: &mut F) -> R {} }\n");
        assert_eq!(p.fns[0].owner.as_deref(), Some("RuleId"));
    }

    #[test]
    fn struct_fields_are_collected() {
        let src = "pub struct LinkFlap {\n    pub link: usize,\n    pub down_at_us: f64,\n    \
                   pub repair_us: f64,\n}\n";
        let p = parse(src);
        assert_eq!(p.structs.len(), 1);
        let names: Vec<&str> = p.structs[0].fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["link", "down_at_us", "repair_us"]);
    }

    #[test]
    fn static_mut_is_detected() {
        let p = parse("static GOOD: u32 = 1;\nstatic mut EVIL: u32 = 2;\n");
        assert_eq!(p.statics.len(), 2);
        assert!(!p.statics[0].is_mut);
        assert!(p.statics[1].is_mut);
        assert_eq!(p.statics[1].name, "EVIL");
    }

    #[test]
    fn entry_marker_attaches_to_next_fn() {
        let src = "fn plain() {}\n// lint:entry — serving engine step loop\npub fn run(cfg: \
                   &Cfg) {}\nfn after() {}\n";
        let p = parse(src);
        let flags: Vec<(&str, bool)> =
            p.fns.iter().map(|f| (f.name.as_str(), f.is_entry)).collect();
        assert_eq!(flags, vec![("plain", false), ("run", true), ("after", false)]);
    }

    #[test]
    fn nested_mods_and_generic_fns_do_not_confuse_the_walker() {
        let src = "mod inner {\n    pub fn a<T: Into<B>>(x: T) -> Vec<u8> { vec![] }\n}\nfn b() \
                   {}\n";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn fn_with_where_clause_and_return_generics() {
        let src = "fn f<R>(rng: &mut R) -> Option<Vec<u8>> where R: Rng { None }\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].params[0].name, "rng");
        assert!(p.fns[0].params[0].ty.contains("R"));
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn macro_rules_becomes_a_pseudo_fn() {
        let p = parse("macro_rules! give_up {\n    ($req:expr) => {{ drop($req); }};\n}\n");
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].is_macro);
        assert_eq!(p.fns[0].name, "give_up");
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn use_paths_flatten() {
        let p = parse("use std::collections::BTreeMap;\nuse crate::lexer::{lex, Tok};\n");
        assert_eq!(p.uses.len(), 2);
        assert_eq!(p.uses[0].path, "std::collections::BTreeMap");
    }

    #[test]
    fn tuple_pattern_params_keep_positions() {
        let p = parse("fn f((a, b): (f64, f64), c_ms: f64) {}\n");
        assert_eq!(p.fns[0].params.len(), 2);
        assert_eq!(p.fns[0].params[0].name, "");
        assert_eq!(p.fns[0].params[1].name, "c_ms");
    }

    #[test]
    fn garbage_terminates_without_panic() {
        for src in ["fn", "fn (", "impl {", "struct", "fn f(x: ) -> {", "{{{{", ")]}>", "fn f<"] {
            let _ = parse(src);
        }
    }
}
