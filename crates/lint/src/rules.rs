//! The rule set: what each invariant is, how it is detected in the
//! token stream, and at what severity it reports.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Tok, TokKind};
use crate::source::SourceModel;

/// Every rule the linter knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No wall-clock sources (`Instant`, `SystemTime`) in simulation code.
    D1,
    /// No `HashMap`/`HashSet` in non-test library code.
    D2,
    /// No unseeded randomness (`thread_rng`, `from_entropy`, `OsRng`).
    D3,
    /// No `println!`/`eprintln!` outside binaries, examples, and tests.
    D4,
    /// No `unwrap()`/`expect()`/`panic!`-family in non-test library code.
    P1,
    /// Every library crate root carries `#![forbid(unsafe_code)]`.
    U1,
    /// Every manifest dependency resolves to `vendor/` or a workspace
    /// crate — never the registry.
    V1,
    /// A `lint:allow` waiver must be well-formed and carry a reason.
    W1,
    /// A well-formed waiver must actually suppress something.
    W2,
    /// Unit-of-measure discipline: arithmetic never mixes `_us`/`_ms`/
    /// `_s`/`_bytes`/`_gb`/`_tokens`/`_flops` quantities except through
    /// named conversions in `core::units`.
    U2,
    /// Float determinism: no `partial_cmp`-based orderings without a
    /// total-order shim, no float accumulation over hash iteration.
    F2,
    /// RNG-stream discipline: every RNG from a named seed derivation; no
    /// `&mut` RNG threaded across module boundaries into reorderable
    /// loops.
    R2,
    /// Effect analysis: configured entry points reach no forbidden
    /// effects (the parallel-readiness gate).
    P3,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 13] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::P1,
        RuleId::U1,
        RuleId::V1,
        RuleId::W1,
        RuleId::W2,
        RuleId::U2,
        RuleId::F2,
        RuleId::R2,
        RuleId::P3,
    ];

    /// Stable identifier used in output and in waivers.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::P1 => "P1",
            RuleId::U1 => "U1",
            RuleId::V1 => "V1",
            RuleId::W1 => "W1",
            RuleId::W2 => "W2",
            RuleId::U2 => "U2",
            RuleId::F2 => "F2",
            RuleId::R2 => "R2",
            RuleId::P3 => "P3",
        }
    }

    /// Parse a rule name as written in a waiver.
    #[must_use]
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.as_str() == s)
    }

    /// The invariant the rule encodes, one line.
    #[must_use]
    pub fn invariant(self) -> &'static str {
        match self {
            RuleId::D1 => "no wall-clock time sources in simulation code",
            RuleId::D2 => "no hash-ordered collections in non-test library code",
            RuleId::D3 => "no unseeded randomness anywhere",
            RuleId::D4 => "no console printing outside bin/examples/tests",
            RuleId::P1 => "no panicking calls in non-test library code",
            RuleId::U1 => "library crates forbid unsafe code",
            RuleId::V1 => "dependencies resolve to vendor/ or workspace paths only",
            RuleId::W1 => "waivers are well-formed and carry a written reason",
            RuleId::W2 => "waivers suppress at least one finding",
            RuleId::U2 => "arithmetic never mixes units except through named conversions",
            RuleId::F2 => "float orderings and reductions are total and order-independent",
            RuleId::R2 => "RNG streams derive from named seeds and stay module-local in loops",
            RuleId::P3 => "entry points reach no forbidden effects (parallel readiness)",
        }
    }

    /// Default severity. Everything that can silently break determinism,
    /// panic-freedom, or the vendor policy is an error; only waiver
    /// hygiene (`W2`) warns.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            RuleId::W2 => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A raw finding before waivers are applied.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Rule that fired.
    pub rule: RuleId,
    /// 1-based line.
    pub line: u32,
    /// Human message.
    pub message: String,
}

impl RawFinding {
    /// Attach a path and the rule's severity to make a [`Diagnostic`].
    #[must_use]
    pub fn into_diag(self, path: &str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line: self.line,
            rule: self.rule,
            severity: self.rule.severity(),
            message: self.message,
        }
    }
}

fn prev_is(toks: &[Tok], i: usize, c: char) -> bool {
    i > 0 && toks[i - 1].is_punct(c)
}

fn next_is(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(c))
}

/// Run the token-stream rules over one source file.
///
/// `rule_applies` has already folded in the per-rule path allowlists, so
/// this function only has to know which rules exempt `#[cfg(test)]`
/// regions (D2, D4, P1 — test code may print, panic, and hash-iterate).
#[must_use]
pub fn scan_tokens(model: &SourceModel, rule_applies: &dyn Fn(RuleId) -> bool) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let toks = &model.toks;
    let mut push = |rule: RuleId, line: u32, message: String| {
        out.push(RawFinding { rule, line, message });
    };
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let in_test = model.in_test(t.line);
        let name = t.text.as_str();
        match name {
            // D1 — wall clocks. Applies even in test regions: a test that
            // reads the clock is a flaky test.
            "Instant" | "SystemTime" if rule_applies(RuleId::D1) => {
                push(
                    RuleId::D1,
                    t.line,
                    format!("wall-clock source `{name}` (simulation time must come from the sim)"),
                );
            }
            // D3 — entropy. Applies everywhere for the same reason.
            "thread_rng" | "from_entropy" | "OsRng" if rule_applies(RuleId::D3) => {
                push(
                    RuleId::D3,
                    t.line,
                    format!(
                        "unseeded randomness `{name}` (derive every RNG from an explicit seed)"
                    ),
                );
            }
            // D2 — hash-ordered collections, library code only.
            "HashMap" | "HashSet" if rule_applies(RuleId::D2) && !in_test => {
                push(
                    RuleId::D2,
                    t.line,
                    format!(
                        "hash-ordered `{name}` in library code (use BTreeMap/BTreeSet or waive \
                         with a reason iteration order cannot leak)"
                    ),
                );
            }
            // D4 — console printing, library code only.
            "println" | "eprintln" | "print" | "eprint" | "dbg"
                if rule_applies(RuleId::D4) && !in_test && next_is(toks, i, '!') =>
            {
                push(
                    RuleId::D4,
                    t.line,
                    format!("`{name}!` in library code (return data; printing belongs in bin/)"),
                );
            }
            // F2 — partial orderings over floats, library code only. The
            // token-level half of the rule; the accumulation half lives
            // in the expression analyzer.
            "partial_cmp" if rule_applies(RuleId::F2) && !in_test && prev_is(toks, i, '.') => {
                push(
                    RuleId::F2,
                    t.line,
                    "`partial_cmp`-based float ordering is not total; use `f64::total_cmp` or a \
                     documented total-order shim"
                        .to_string(),
                );
            }
            // P1 — panicking calls, library code only.
            "unwrap" | "expect"
                if rule_applies(RuleId::P1)
                    && !in_test
                    && prev_is(toks, i, '.')
                    && next_is(toks, i, '(') =>
            {
                push(
                    RuleId::P1,
                    t.line,
                    format!(
                        "`.{name}()` in library code (propagate the error or document the \
                             invariant and waive)"
                    ),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if rule_applies(RuleId::P1) && !in_test && next_is(toks, i, '!') =>
            {
                push(
                    RuleId::P1,
                    t.line,
                    format!(
                        "`{name}!` in library code (propagate the error or document the \
                             invariant and waive)"
                    ),
                );
            }
            _ => {}
        }
    }
    out
}

/// U1: does the file open with `#![forbid(unsafe_code)]`? Called only
/// for library crate roots.
#[must_use]
pub fn check_forbid_unsafe(model: &SourceModel) -> Option<RawFinding> {
    let toks = &model.toks;
    let found = toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    });
    if found {
        None
    } else {
        Some(RawFinding {
            rule: RuleId::U1,
            line: 1,
            message: "library crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_all(src: &str) -> Vec<RawFinding> {
        scan_tokens(&SourceModel::parse(src), &|_| true)
    }

    #[test]
    fn p1_matches_only_method_calls() {
        let hits = scan_all("fn f() { x.unwrap(); y.expect(\"m\"); }\n");
        assert_eq!(hits.len(), 2);
        // `unwrap_or`, a field named expect, a fn def — all clean.
        assert!(
            scan_all("fn f() { x.unwrap_or(0); s.expect_tok; }\nfn expect(a: u8) {}\n").is_empty()
        );
    }

    #[test]
    fn p1_macros_match() {
        let hits = scan_all("fn f() { panic!(\"x\"); unreachable!(); todo!(); }\n");
        assert_eq!(hits.len(), 3);
        assert!(scan_all("fn f(p: Panic) { should_panic(); }\n").is_empty());
    }

    #[test]
    fn test_regions_exempt_p1_d2_d4_but_not_d1_d3() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        x.unwrap();\n        \
                   println!(\"ok\");\n        let m = HashMap::new();\n        \
                   let r = thread_rng();\n        let i = Instant::now();\n    }\n}\n";
        let hits = scan_all(src);
        let rules: Vec<RuleId> = hits.iter().map(|h| h.rule).collect();
        assert_eq!(rules, vec![RuleId::D3, RuleId::D1]);
    }

    #[test]
    fn u1_detects_presence_and_absence() {
        let ok = SourceModel::parse("//! docs\n#![forbid(unsafe_code)]\nfn f() {}\n");
        assert!(check_forbid_unsafe(&ok).is_none());
        let missing = SourceModel::parse("//! docs\nfn f() {}\n");
        let hit = check_forbid_unsafe(&missing).expect("must fire");
        assert_eq!(hit.rule, RuleId::U1);
    }

    #[test]
    fn d4_requires_the_bang() {
        assert!(scan_all("fn f(println: u8) { g(println); }\n").is_empty());
        assert_eq!(scan_all("fn f() { println!(\"x\"); }\n").len(), 1);
    }
}
