//! Per-file source model: the lexed token stream annotated with test
//! regions (`#[cfg(test)]` items, `mod tests` blocks) and parsed
//! `lint:allow` waivers.

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};
use crate::rules::RuleId;

/// An inline waiver: `// lint:allow(P1) — reason`.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line the waiver comment starts on.
    pub line: u32,
    /// Line whose findings it suppresses: its own line if that line has
    /// code, else the next line that does.
    pub target_line: Option<u32>,
    /// Rules the waiver names (unknown names leave this empty and
    /// `malformed` set).
    pub rules: Vec<RuleId>,
    /// A written reason is mandatory; `None` means the waiver is
    /// rejected (it suppresses nothing and is itself reported).
    pub reason: Option<String>,
    /// Why the waiver is malformed, if it is.
    pub malformed: Option<String>,
}

/// A lexed file plus the structure the rules need.
#[derive(Debug)]
pub struct SourceModel {
    /// The token stream.
    pub toks: Vec<Tok>,
    /// True for 1-based lines inside a test region.
    pub test_line: Vec<bool>,
    /// Parsed waivers in source order.
    pub waivers: Vec<Waiver>,
    /// All comments, kept for the item parser's `lint:entry` markers.
    pub comments: Vec<Comment>,
}

impl SourceModel {
    /// Build the model for one file's source text.
    #[must_use]
    pub fn parse(src: &str) -> Self {
        let lexed = lex(src);
        let test_line = test_mask(&lexed);
        let waivers = parse_waivers(&lexed);
        Self { toks: lexed.toks, test_line, waivers, comments: lexed.comments }
    }

    /// Is 1-based `line` inside a `#[cfg(test)]` / `mod tests` region?
    #[must_use]
    pub fn in_test(&self, line: u32) -> bool {
        self.test_line.get(line as usize).copied().unwrap_or(false)
    }
}

fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(c))
}

fn ident_at(toks: &[Tok], i: usize, s: &str) -> bool {
    toks.get(i).is_some_and(|t| t.is_ident(s))
}

/// Skip a bracketed attribute body; `i` is just past `#[`. Returns the
/// index past the matching `]` and whether the attribute marks test
/// code: `#[cfg(test)]` / `#[cfg(all(test, …))]`, or a bare `#[test]`.
fn skip_attr(toks: &[Tok], mut i: usize) -> (usize, bool) {
    let mut depth = 1usize;
    let (mut has_cfg, mut has_test) = (false, false);
    let mut idents = 0usize;
    while i < toks.len() && depth > 0 {
        let t = &toks[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
        } else if t.kind == TokKind::Ident {
            idents += 1;
            if t.is_ident("cfg") {
                has_cfg = true;
            } else if t.is_ident("test") {
                has_test = true;
            }
        }
        i += 1;
    }
    let bare_test = has_test && idents == 1;
    (i, (has_cfg && has_test) || bare_test)
}

/// Consume one item starting at `i` (after its attributes): everything
/// up to a `;` at brace depth zero or through a balanced `{…}` block.
/// Returns (index past the item, last line of the item).
fn skip_item(toks: &[Tok], mut i: usize, fallback_line: u32) -> (usize, u32) {
    let mut brace_depth = 0usize;
    let mut last_line = fallback_line;
    while i < toks.len() {
        let t = &toks[i];
        last_line = t.line;
        if t.is_punct('{') {
            brace_depth += 1;
        } else if t.is_punct('}') {
            brace_depth = brace_depth.saturating_sub(1);
            if brace_depth == 0 {
                return (i + 1, t.line);
            }
        } else if t.is_punct(';') && brace_depth == 0 {
            return (i + 1, t.line);
        }
        i += 1;
    }
    (i, last_line)
}

/// Mark every line belonging to a `#[cfg(test)]` item or a `mod tests`
/// block. Conservative in the right direction: a marked line exempts
/// code from the non-test-only rules, so false *negatives* (missing a
/// test region) surface as lint errors a human will immediately see,
/// while the tracker never marks code that precedes the attribute.
fn test_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.toks;
    let mut mask = vec![false; lexed.lines as usize + 2];
    let mut mark = |from: u32, to: u32| {
        for l in from..=to {
            if let Some(slot) = mask.get_mut(l as usize) {
                *slot = true;
            }
        }
    };
    let mut i = 0usize;
    while i < toks.len() {
        if punct_at(toks, i, '#') && punct_at(toks, i + 1, '[') {
            let start_line = toks[i].line;
            let (mut j, is_cfg_test) = skip_attr(toks, i + 2);
            if is_cfg_test {
                // Skip any further attributes, then the item itself.
                while punct_at(toks, j, '#') && punct_at(toks, j + 1, '[') {
                    j = skip_attr(toks, j + 2).0;
                }
                let (end, end_line) = skip_item(toks, j, start_line);
                mark(start_line, end_line);
                i = end;
            } else {
                i = j;
            }
            continue;
        }
        if ident_at(toks, i, "mod") && ident_at(toks, i + 1, "tests") && punct_at(toks, i + 2, '{')
        {
            let start_line = toks[i].line;
            let (end, end_line) = skip_item(toks, i + 2, start_line);
            mark(start_line, end_line);
            i = end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Parse waiver markers out of comments. A waiver must *lead* its
/// comment (after the `//`/`/*`/doc markers): prose that merely
/// mentions the marker syntax mid-sentence is inert, and so is the
/// marker inside a string literal — the lexer never surfaces string
/// contents here.
fn parse_waivers(lexed: &Lexed) -> Vec<Waiver> {
    let code_lines: std::collections::BTreeSet<u32> = lexed.toks.iter().map(|t| t.line).collect();
    let mut out = Vec::new();
    for Comment { line, text } in &lexed.comments {
        let content = text.trim_start_matches(['/', '*', '!']).trim_start();
        if !content.starts_with("lint:allow") {
            continue;
        }
        let rest = &content["lint:allow".len()..];
        let mut waiver = Waiver {
            line: *line,
            target_line: None,
            rules: Vec::new(),
            reason: None,
            malformed: None,
        };
        // The comment's own line if it trails code, else the next code line.
        waiver.target_line = if code_lines.contains(line) {
            Some(*line)
        } else {
            code_lines.range(line + 1..).next().copied()
        };
        let parsed = (|| -> Result<(Vec<RuleId>, Option<String>), String> {
            let rest = rest.trim_start();
            let inner = rest
                .strip_prefix('(')
                .ok_or_else(|| "expected '(' after lint:allow".to_string())?;
            let close = inner.find(')').ok_or_else(|| "missing ')'".to_string())?;
            let mut rules = Vec::new();
            for name in inner[..close].split(',') {
                let name = name.trim();
                let rule = RuleId::parse(name)
                    .ok_or_else(|| format!("unknown rule '{name}' in waiver"))?;
                rules.push(rule);
            }
            if rules.is_empty() {
                return Err("waiver names no rules".to_string());
            }
            let tail = inner[close + 1..]
                .trim_start_matches(|c: char| {
                    c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':' | ',')
                })
                .trim_end_matches(['*', '/'].as_slice()) // block-comment close
                .trim();
            let reason =
                if tail.chars().any(char::is_alphanumeric) { Some(tail.to_string()) } else { None };
            Ok((rules, reason))
        })();
        match parsed {
            Ok((rules, reason)) => {
                waiver.rules = rules;
                waiver.reason = reason;
            }
            Err(why) => waiver.malformed = Some(why),
        }
        out.push(waiver);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_region_is_masked() {
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let m = SourceModel::parse(src);
        assert!(!m.in_test(1));
        assert!(m.in_test(3), "attribute line is in the region");
        assert!(m.in_test(4) && m.in_test(5) && m.in_test(6));
        assert!(!m.in_test(7), "code after the closing brace is live again");
    }

    #[test]
    fn bare_mod_tests_block_is_masked() {
        let src = "fn lib() {}\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let m = SourceModel::parse(src);
        assert!(m.in_test(2) && m.in_test(3) && m.in_test(4));
        assert!(!m.in_test(1) && !m.in_test(5));
    }

    #[test]
    fn cfg_test_single_item_extends_only_over_that_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {\n}\n";
        let m = SourceModel::parse(src);
        assert!(m.in_test(1) && m.in_test(2));
        assert!(!m.in_test(3) && !m.in_test(4));
    }

    #[test]
    fn cfg_all_test_counts_and_other_cfgs_do_not() {
        let a = SourceModel::parse("#[cfg(all(test, unix))]\nfn t() {\n}\nfn live() {}\n");
        assert!(a.in_test(2) && a.in_test(3));
        assert!(!a.in_test(4));
        let b = SourceModel::parse("#[cfg(unix)]\nfn u() {\n}\n");
        assert!(!b.in_test(2));
    }

    #[test]
    fn bare_test_attribute_masks_its_fn() {
        let src = "#[test]\nfn t() {\n    boom();\n}\nfn live() {}\n";
        let m = SourceModel::parse(src);
        assert!(m.in_test(2) && m.in_test(3) && m.in_test(4));
        assert!(!m.in_test(5));
    }

    #[test]
    fn stacked_attributes_before_the_item_are_covered() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn t() {\n}\nfn live() {}\n";
        let m = SourceModel::parse(src);
        assert!(m.in_test(3) && m.in_test(4));
        assert!(!m.in_test(5));
    }

    #[test]
    fn waiver_parses_rules_and_reason() {
        let src = "let x = m.get(&k); // lint:allow(P1, D2) — invariant: key inserted above\n";
        let m = SourceModel::parse(src);
        assert_eq!(m.waivers.len(), 1);
        let w = &m.waivers[0];
        assert_eq!(w.rules, vec![RuleId::P1, RuleId::D2]);
        assert_eq!(w.target_line, Some(1));
        assert!(w.reason.as_deref().is_some_and(|r| r.contains("invariant")));
        assert!(w.malformed.is_none());
    }

    #[test]
    fn own_line_waiver_targets_next_code_line() {
        let src = "// lint:allow(D2) — order never observed\n// more prose\nuse std::x;\n";
        let m = SourceModel::parse(src);
        assert_eq!(m.waivers[0].target_line, Some(3));
    }

    #[test]
    fn waiver_without_reason_is_rejected() {
        let m = SourceModel::parse("foo(); // lint:allow(P1)\n");
        assert!(m.waivers[0].reason.is_none());
        assert!(m.waivers[0].malformed.is_none(), "syntactically fine, just reasonless");
        let m2 = SourceModel::parse("foo(); // lint:allow(P1) —   \n");
        assert!(m2.waivers[0].reason.is_none());
    }

    #[test]
    fn waiver_with_unknown_rule_is_malformed() {
        let m = SourceModel::parse("foo(); // lint:allow(Z9) — whatever\n");
        assert!(m.waivers[0].malformed.is_some());
    }

    #[test]
    fn prose_mentioning_the_marker_is_inert() {
        // Docs explaining the waiver syntax must not themselves waive:
        // only a comment that *starts* with the marker counts.
        let m =
            SourceModel::parse("//! Inline waivers look like `lint:allow(P1) — why`.\nfoo();\n");
        assert!(m.waivers.is_empty());
    }

    #[test]
    fn waiver_inside_string_literal_is_inert() {
        let m = SourceModel::parse("let s = \"lint:allow(P1) — nope\";\n");
        assert!(m.waivers.is_empty(), "strings must never waive");
    }

    #[test]
    fn block_comment_waiver_works() {
        let m = SourceModel::parse("bar(); /* lint:allow(D4) — demo binary */\n");
        let w = &m.waivers[0];
        assert_eq!(w.rules, vec![RuleId::D4]);
        assert!(w.reason.as_deref().is_some_and(|r| r.contains("demo")));
    }
}
