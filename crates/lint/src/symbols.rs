//! Workspace symbol table: every parsed `fn` across every scanned file,
//! indexed by name for conservative call resolution.
//!
//! Resolution is tiered — same file, then same crate, then the whole
//! workspace — and returns *all* candidates in the first non-empty
//! tier. Downstream checks are phrased so that multiple candidates only
//! strengthen them (a cross-file unit check fires only when every
//! candidate disagrees with the argument), which keeps a name-based
//! table sound enough for linting without real type resolution.

use std::collections::BTreeMap;

use crate::expr::CallSite;
use crate::parser::ParsedFile;

/// One file's identity inside the table.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Short crate name (`serving`, `netsim`; `root` for `src/`).
    pub krate: String,
}

/// One function, flattened for cross-file queries.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Index into [`SymbolTable::files`].
    pub file: usize,
    /// Bare name.
    pub name: String,
    /// `impl`/`trait` owner type.
    pub owner: Option<String>,
    /// 1-based line of the item.
    pub line: u32,
    /// Method (first param is `self`).
    pub has_self: bool,
    /// `macro_rules!` pseudo-function.
    pub is_macro: bool,
    /// Marked `// lint:entry` for the P3 analysis.
    pub is_entry: bool,
    /// Non-`self` parameter names in order.
    pub param_names: Vec<String>,
    /// The item line sits in a `#[cfg(test)]` region.
    pub in_test: bool,
}

impl FnInfo {
    /// `Owner::name` or bare `name` — the display form used in reports.
    #[must_use]
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace-wide function index.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Files in insertion (sorted-walk) order.
    pub files: Vec<FileMeta>,
    /// Functions in (file, source) order — ids are stable and sorted.
    pub fns: Vec<FnInfo>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// The short crate name a workspace-relative path belongs to.
#[must_use]
pub fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    "root".to_string()
}

impl SymbolTable {
    /// Register one parsed file; returns its file index. `in_test` is
    /// the file's test-region mask, queried at each fn's own line.
    pub fn add_file(
        &mut self,
        rel: &str,
        parsed: &ParsedFile,
        in_test: &dyn Fn(u32) -> bool,
    ) -> usize {
        let file = self.files.len();
        self.files.push(FileMeta { rel: rel.to_string(), krate: crate_of(rel) });
        for f in &parsed.fns {
            let id = self.fns.len();
            self.fns.push(FnInfo {
                file,
                name: f.name.clone(),
                owner: f.owner.clone(),
                line: f.line,
                has_self: f.has_self,
                is_macro: f.is_macro,
                is_entry: f.is_entry,
                param_names: f.params.iter().map(|p| p.name.clone()).collect(),
                in_test: in_test(f.line),
            });
            self.by_name.entry(f.name.clone()).or_default().push(id);
        }
        file
    }

    /// All candidate callees for `call` made from `from_file`, in the
    /// first non-empty tier of same-file → same-crate → workspace.
    /// Empty means the callee is external (std/vendor) — no checks run.
    #[must_use]
    pub fn resolve(&self, from_file: usize, call: &CallSite) -> Vec<usize> {
        let Some(ids) = self.by_name.get(&call.name) else { return Vec::new() };
        // Macro invocations resolve only to same-file `macro_rules!`.
        if call.is_macro {
            return ids
                .iter()
                .copied()
                .filter(|&id| self.fns[id].is_macro && self.fns[id].file == from_file)
                .collect();
        }
        let base: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&id| {
                let f = &self.fns[id];
                if f.is_macro {
                    return false;
                }
                if call.is_method && !f.has_self {
                    return false;
                }
                if !call.is_method && call.owner.is_none() && f.has_self {
                    return false;
                }
                match call.owner.as_deref() {
                    Some("Self") | None => true,
                    Some(o) => f.owner.as_deref() == Some(o),
                }
            })
            .collect();
        let from_crate = &self.files[from_file].krate;
        for tier in [
            base.iter().copied().filter(|&id| self.fns[id].file == from_file).collect::<Vec<_>>(),
            base.iter()
                .copied()
                .filter(|&id| &self.files[self.fns[id].file].krate == from_crate)
                .collect(),
            base,
        ] {
            if !tier.is_empty() {
                return tier;
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_items;

    fn add(table: &mut SymbolTable, rel: &str, src: &str) -> usize {
        let lexed = lex(src);
        let parsed = parse_items(&lexed.toks, &lexed.comments);
        table.add_file(rel, &parsed, &|_| false)
    }

    fn call(name: &str) -> CallSite {
        CallSite {
            name: name.to_string(),
            owner: None,
            is_method: false,
            is_macro: false,
            line: 1,
            args: Vec::new(),
            in_loop: false,
        }
    }

    #[test]
    fn crate_names_come_from_the_path() {
        assert_eq!(crate_of("crates/serving/src/engine.rs"), "serving");
        assert_eq!(crate_of("src/lib.rs"), "root");
    }

    #[test]
    fn same_file_candidates_shadow_the_workspace() {
        let mut t = SymbolTable::default();
        let a = add(&mut t, "crates/a/src/lib.rs", "fn work() {}\n");
        let _b = add(&mut t, "crates/b/src/lib.rs", "fn work() {}\n");
        let got = t.resolve(a, &call("work"));
        assert_eq!(got.len(), 1);
        assert_eq!(t.fns[got[0]].file, a);
    }

    #[test]
    fn same_crate_beats_global_and_global_returns_all() {
        let mut t = SymbolTable::default();
        let a1 = add(&mut t, "crates/a/src/lib.rs", "pub fn go() {}\n");
        let a2 = add(&mut t, "crates/a/src/other.rs", "fn caller() {}\n");
        let _b = add(&mut t, "crates/b/src/lib.rs", "pub fn go() {}\n");
        let got = t.resolve(a2, &call("go"));
        assert_eq!(got.len(), 1, "same-crate tier wins");
        assert_eq!(t.fns[got[0]].file, a1);

        let c = add(&mut t, "crates/c/src/lib.rs", "fn caller2() {}\n");
        let got = t.resolve(c, &call("go"));
        assert_eq!(got.len(), 2, "no local candidate: all workspace fns match");
    }

    #[test]
    fn method_calls_only_match_methods_and_owner_filters() {
        let mut t = SymbolTable::default();
        let f = add(
            &mut t,
            "crates/a/src/lib.rs",
            "impl Engine { pub fn step(&mut self) {} }\nimpl Other { pub fn step(&mut self) {} \
             }\nfn step() {}\n",
        );
        let mut m = call("step");
        m.is_method = true;
        let got = t.resolve(f, &m);
        assert_eq!(got.len(), 2, "methods only");
        let mut owned = call("step");
        owned.owner = Some("Engine".to_string());
        let got = t.resolve(f, &owned);
        assert_eq!(got.len(), 1);
        assert_eq!(t.fns[got[0]].owner.as_deref(), Some("Engine"));
        let free = t.resolve(f, &call("step"));
        assert_eq!(free.len(), 1, "unqualified non-method call skips methods");
        assert!(!t.fns[free[0]].has_self);
    }

    #[test]
    fn macros_resolve_same_file_only() {
        let mut t = SymbolTable::default();
        let a = add(&mut t, "crates/a/src/lib.rs", "macro_rules! give_up { () => {}; }\n");
        let b = add(&mut t, "crates/b/src/lib.rs", "fn f() {}\n");
        let mut mc = call("give_up");
        mc.is_macro = true;
        assert_eq!(t.resolve(a, &mc).len(), 1);
        assert!(t.resolve(b, &mc).is_empty(), "macros do not cross files");
    }
}
