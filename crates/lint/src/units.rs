//! The unit-of-measure model behind rule U2: which identifier suffixes
//! carry a unit, which units share a dimension, and which function
//! names count as sanctioned conversions.
//!
//! The analysis is deliberately *suffix-based*: this workspace already
//! encodes units in names (`at_ms`, `one_way_us`, `hbm_gb`,
//! `prompt_tokens`) with near-total consistency, so the name is the
//! type. A bare numeric literal is dimensionless — which makes scaling
//! by a literal (`at_ms * 1000.0`) keep the operand's unit. That is the
//! load-bearing design decision: the numerically-correct ad-hoc ms→µs
//! multiply is *dimensionally* still milliseconds, so assigning it to a
//! `_us` name is flagged until it is routed through a named conversion
//! (`ms_to_us`) whose signature declares the unit change.

/// One concrete unit a name can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Microseconds (`_us`).
    Us,
    /// Milliseconds (`_ms`).
    Ms,
    /// Seconds (`_s`).
    S,
    /// Bytes (`_bytes`).
    Bytes,
    /// Gigabytes (`_gb`).
    Gb,
    /// Token counts (`_tokens`).
    Tokens,
    /// Floating-point operations (`_flops`).
    Flops,
}

/// The dimension a unit measures; two units only ever *convert* within
/// one dimension, but mixing across dimensions in additive positions is
/// just as wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dimension {
    /// Time (µs/ms/s).
    Time,
    /// Data volume (bytes/GB).
    Data,
    /// Token counts.
    Tokens,
    /// Compute volume.
    Flops,
}

impl Unit {
    /// The unit's canonical suffix, without the leading underscore.
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            Unit::Us => "us",
            Unit::Ms => "ms",
            Unit::S => "s",
            Unit::Bytes => "bytes",
            Unit::Gb => "gb",
            Unit::Tokens => "tokens",
            Unit::Flops => "flops",
        }
    }

    /// Parse a bare suffix (`"us"`, `"gb"`, …).
    #[must_use]
    pub fn parse(s: &str) -> Option<Unit> {
        match s {
            "us" => Some(Unit::Us),
            "ms" => Some(Unit::Ms),
            "s" => Some(Unit::S),
            "bytes" => Some(Unit::Bytes),
            "gb" => Some(Unit::Gb),
            "tokens" => Some(Unit::Tokens),
            "flops" => Some(Unit::Flops),
            _ => None,
        }
    }

    /// The dimension this unit measures.
    #[must_use]
    pub fn dimension(self) -> Dimension {
        match self {
            Unit::Us | Unit::Ms | Unit::S => Dimension::Time,
            Unit::Bytes | Unit::Gb => Dimension::Data,
            Unit::Tokens => Dimension::Tokens,
            Unit::Flops => Dimension::Flops,
        }
    }
}

/// The unit an identifier carries, judged by its trailing `_suffix`.
/// Plural-of-unit names (`times_ms`) and single-segment names (`ms`,
/// `us`) both count; names whose *whole* text is a suffix only count
/// for the multi-letter units (a bare `s` is a generic variable, not
/// seconds).
#[must_use]
pub fn unit_of_ident(name: &str) -> Option<Unit> {
    // Constants carry units too (`DAY_MS`); compare case-insensitively.
    let name = name.to_ascii_lowercase();
    // Rate names (`rate_per_s`, `tokens_per_s`) measure a *ratio*; the
    // trailing unit is a denominator, not the quantity's unit.
    if name.contains("_per_") {
        return None;
    }
    if let Some((_, last)) = name.rsplit_once('_') {
        return Unit::parse(last);
    }
    // Un-underscored whole-name match: `ms`/`us`/`gb`/`bytes`/`tokens`/
    // `flops` read unambiguously as units; a lone `s` does not.
    if name != "s" {
        return Unit::parse(&name);
    }
    None
}

/// If `name` is a sanctioned conversion function (`ms_to_us`,
/// `gb_to_bytes`, …), the units it consumes and produces.
#[must_use]
pub fn conversion_of(name: &str) -> Option<(Unit, Unit)> {
    let (from, to) = name.split_once("_to_")?;
    let from = Unit::parse(from)?;
    let to = Unit::parse(to)?;
    if from.dimension() == to.dimension() && from != to {
        Some((from, to))
    } else {
        None
    }
}

/// Are two known units compatible in an additive/assignment position?
#[must_use]
pub fn compatible(a: Unit, b: Unit) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_extraction_reads_the_last_segment() {
        assert_eq!(unit_of_ident("at_ms"), Some(Unit::Ms));
        assert_eq!(unit_of_ident("one_way_us"), Some(Unit::Us));
        assert_eq!(unit_of_ident("crash_times_s"), Some(Unit::S));
        assert_eq!(unit_of_ident("hbm_gb"), Some(Unit::Gb));
        assert_eq!(unit_of_ident("prompt_tokens"), Some(Unit::Tokens));
        assert_eq!(unit_of_ident("dense_flops"), Some(Unit::Flops));
        assert_eq!(unit_of_ident("kv_bytes"), Some(Unit::Bytes));
    }

    #[test]
    fn non_unit_names_carry_nothing() {
        assert_eq!(unit_of_ident("at"), None);
        assert_eq!(unit_of_ident("planes"), None);
        assert_eq!(unit_of_ident("s"), None, "a lone `s` is a variable, not seconds");
        assert_eq!(unit_of_ident("repair"), None);
        assert_eq!(unit_of_ident("gbps"), None, "a rate is not a volume");
        assert_eq!(unit_of_ident("items"), None);
    }

    #[test]
    fn constants_match_case_insensitively() {
        assert_eq!(unit_of_ident("DAY_MS"), Some(Unit::Ms));
        assert_eq!(unit_of_ident("PEAK_FLOPS"), Some(Unit::Flops));
        assert_eq!(unit_of_ident("S"), None, "a lone `S` is still not seconds");
    }

    #[test]
    fn per_names_are_rates_not_quantities() {
        assert_eq!(unit_of_ident("rate_per_s"), None);
        assert_eq!(unit_of_ident("tokens_per_s"), None);
        assert_eq!(unit_of_ident("bytes_per_ms"), None);
    }

    #[test]
    fn bare_unit_names_count_except_s() {
        assert_eq!(unit_of_ident("ms"), Some(Unit::Ms));
        assert_eq!(unit_of_ident("us"), Some(Unit::Us));
        assert_eq!(unit_of_ident("bytes"), Some(Unit::Bytes));
    }

    #[test]
    fn conversion_names_parse_within_a_dimension_only() {
        assert_eq!(conversion_of("ms_to_us"), Some((Unit::Ms, Unit::Us)));
        assert_eq!(conversion_of("gb_to_bytes"), Some((Unit::Gb, Unit::Bytes)));
        assert_eq!(conversion_of("us_to_s"), Some((Unit::Us, Unit::S)));
        assert_eq!(conversion_of("ms_to_bytes"), None, "cross-dimension is no conversion");
        assert_eq!(conversion_of("ms_to_ms"), None, "identity is no conversion");
        assert_eq!(conversion_of("a_to_b"), None);
        assert_eq!(conversion_of("convert"), None);
    }

    #[test]
    fn dimensions_group_units() {
        assert_eq!(Unit::Us.dimension(), Dimension::Time);
        assert_eq!(Unit::Gb.dimension(), Dimension::Data);
        assert!(compatible(Unit::Ms, Unit::Ms));
        assert!(!compatible(Unit::Ms, Unit::Us));
    }
}
