//! Deterministic workspace walker: which files get scanned, in what
//! order, and which crate roots must carry `#![forbid(unsafe_code)]`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Everything the scan will look at, in sorted order.
#[derive(Debug, Default)]
pub struct Worklist {
    /// (workspace-relative path, absolute path) of `.rs` sources.
    pub sources: Vec<(String, PathBuf)>,
    /// (workspace-relative path, absolute path) of `Cargo.toml` files.
    pub manifests: Vec<(String, PathBuf)>,
}

/// Directories never scanned for sources. `vendor/` is third-party code
/// under its own upstream policies; the lint fixture corpus is
/// deliberately full of violations.
fn skip_dir(rel: &str) -> bool {
    let last = rel.rsplit('/').next().unwrap_or(rel);
    matches!(last, "target" | ".git") || rel == "vendor" || rel == "crates/lint/tests/fixtures"
}

fn rel_of(root: &Path, p: &Path) -> String {
    let r = p.strip_prefix(root).unwrap_or(p);
    // Normalize to `/` so reports and allowlists are platform-stable.
    r.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

fn visit(root: &Path, dir: &Path, out: &mut Worklist) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let rel = rel_of(root, &path);
        if path.is_dir() {
            if !skip_dir(&rel) {
                visit(root, &path, out)?;
            }
        } else if rel.ends_with(".rs") {
            out.sources.push((rel, path));
        } else if rel.ends_with("/Cargo.toml") || rel == "Cargo.toml" {
            out.manifests.push((rel, path));
        }
    }
    Ok(())
}

/// Walk the workspace at `root`. Sources come from everywhere except
/// the skip list; manifests additionally include `vendor/*/Cargo.toml`,
/// because the vendor policy (V1) must hold transitively — a vendored
/// crate that itself pulls from the registry would defeat the point.
pub fn collect(root: &Path) -> io::Result<Worklist> {
    let mut out = Worklist::default();
    visit(root, root, &mut out)?;
    let vendor = root.join("vendor");
    if vendor.is_dir() {
        let mut dirs: Vec<PathBuf> =
            fs::read_dir(&vendor)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
        dirs.sort();
        for d in dirs {
            let m = d.join("Cargo.toml");
            if m.is_file() {
                out.manifests.push((rel_of(root, &m), m));
            }
        }
    }
    out.sources.sort();
    out.manifests.sort();
    out.manifests.dedup();
    Ok(out)
}

/// Is `rel` a library crate root that rule U1 applies to? Covers
/// `crates/*/src/lib.rs` and the repo-root `src/lib.rs`.
#[must_use]
pub fn is_lib_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || (rel.starts_with("crates/")
            && rel.ends_with("/src/lib.rs")
            && rel.matches('/').count() == 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_list_covers_the_right_dirs() {
        assert!(skip_dir("target"));
        assert!(skip_dir("crates/core/target"));
        assert!(skip_dir(".git"));
        assert!(skip_dir("vendor"));
        assert!(skip_dir("crates/lint/tests/fixtures"));
        assert!(!skip_dir("crates/lint/tests"));
        assert!(!skip_dir("crates"));
    }

    #[test]
    fn lib_root_detection() {
        assert!(is_lib_root("crates/core/src/lib.rs"));
        assert!(is_lib_root("src/lib.rs"));
        assert!(!is_lib_root("crates/core/src/report.rs"));
        assert!(!is_lib_root("crates/core/src/bin/dsv3.rs"));
        assert!(!is_lib_root("vendor/rand/src/lib.rs"));
    }
}
