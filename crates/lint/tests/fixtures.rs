//! Golden-diagnostic tests: every fixture under `tests/fixtures/` has a
//! `.expected` twin holding the byte-exact rendered findings.

use std::fs;
use std::path::PathBuf;

use dsv3_lint::config::LintConfig;
use dsv3_lint::diag::Report;
use dsv3_lint::{manifest, scan_source};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures")
}

/// Fixtures are linted as if they lived at a workspace-relative path;
/// the `u1_*` pair must map to crate roots for U1 to be in scope.
fn pretend_rel(stem: &str, is_manifest: bool) -> String {
    if is_manifest {
        return "crates/fixture/Cargo.toml".to_string();
    }
    match stem {
        "u1_missing_forbid" | "u1_ok" => format!("crates/{stem}/src/lib.rs"),
        _ => format!("crates/fixture/src/{stem}.rs"),
    }
}

fn rendered(diags: Vec<dsv3_lint::diag::Diagnostic>) -> String {
    let mut report = Report { diagnostics: diags, ..Report::default() };
    report.sort();
    report.diagnostics.iter().map(|d| format!("{}\n", d.render())).collect()
}

#[test]
fn every_fixture_matches_its_golden_diagnostics() {
    let dir = fixtures_dir();
    let cfg = LintConfig::default_config();
    let mut entries: Vec<PathBuf> =
        fs::read_dir(&dir).expect("fixtures dir").map(|e| e.expect("dir entry").path()).collect();
    entries.sort();

    let mut checked = 0usize;
    for path in entries {
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        if ext != "rs" && ext != "toml" {
            continue;
        }
        let stem = path.file_stem().and_then(|s| s.to_str()).expect("utf8 stem");
        let src = fs::read_to_string(&path).expect("read fixture");
        let expected_path = path.with_extension("expected");
        let expected = fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("missing golden {}", expected_path.display()));

        let rel = pretend_rel(stem, ext == "toml");
        let diags = if ext == "toml" {
            manifest::scan_manifest(&rel, &src)
        } else {
            scan_source(&rel, &src, &cfg).diagnostics
        };
        let got = rendered(diags);
        assert_eq!(got, expected, "fixture {stem}: rendered diagnostics diverge from golden");
        checked += 1;
    }
    assert!(checked >= 19, "expected at least 19 fixtures, found {checked}");
}

#[test]
fn waiver_ok_fixture_honors_every_waiver() {
    let dir = fixtures_dir();
    let src = fs::read_to_string(dir.join("waiver_ok.rs")).expect("read fixture");
    let scan = scan_source("crates/fixture/src/waiver_ok.rs", &src, &LintConfig::default_config());
    assert!(scan.diagnostics.is_empty(), "{:?}", scan.diagnostics);
    assert_eq!(scan.waivers_honored, 3, "all three waivers must suppress something");
}
