//! Fixture: D1 — wall-clock sources are banned even in tests.

use std::time::{Duration, Instant};

pub fn elapsed() -> Duration {
    let start = Instant::now();
    start.elapsed()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timed() {
        let _ = std::time::SystemTime::now();
    }
}
