//! Fixture: D2 — hash-ordered collections in library code.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn count(xs: &[u32]) -> usize {
    let set: HashSet<u32> = xs.iter().copied().collect();
    set.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_side_maps_are_fine() {
        let m: std::collections::HashMap<u8, u8> = Default::default();
        assert!(m.is_empty());
    }
}
