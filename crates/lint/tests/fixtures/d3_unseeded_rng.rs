//! Fixture: D3 — unseeded randomness is banned everywhere.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}

#[cfg(test)]
mod tests {
    #[test]
    fn seeded_from_entropy() {
        use rand::SeedableRng;
        let _ = rand::rngs::StdRng::from_entropy();
        let _ = rand::rngs::OsRng;
    }
}
