//! Fixture: D4 — console printing in library code.

pub fn report(x: u32) {
    println!("x = {x}");
    eprintln!("warn");
    let _ = dbg!(x);
}

#[cfg(test)]
mod tests {
    #[test]
    fn printing_in_tests_is_fine() {
        println!("debugging a test is allowed");
    }
}
