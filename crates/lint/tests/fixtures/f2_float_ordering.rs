//! F2 fixture: partial orderings over floats, and float accumulation
//! over hash-ordered iteration. (The `HashMap` itself also trips D2.)

pub struct Acc {
    pub weights: HashMap<u64, f64>,
}

pub fn order(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn accumulate(acc: &Acc) -> f64 {
    acc.weights.values().sum()
}

pub fn total_order(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}
