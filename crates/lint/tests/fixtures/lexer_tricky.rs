//! Fixture: lexer stress — nothing may fire except the last function.

pub fn tricky<'a>(s: &'a str) -> usize {
    let raw = r#"HashMap::new() and x.unwrap() and panic!("no")"#;
    let b = b"println!(no)";
    let c = 'x';
    let q = '\'';
    /* nested /* HashMap */ still comment */
    let range: Vec<usize> = (0..s.len()).collect();
    let r#match = raw.len() + b.len() + c as usize + q as usize + range.len();
    r#match
}

pub fn one_real_finding() {
    Option::<u32>::None.unwrap(); // the lexer recovered: this must be seen
}
