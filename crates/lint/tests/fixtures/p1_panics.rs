//! Fixture: P1 — panicking calls in library code.

pub fn first(xs: &[u32]) -> u32 {
    let head = xs.first().unwrap();
    let tail = xs.last().expect("nonempty");
    head + tail
}

pub fn modes(x: u32) -> u32 {
    match x {
        0 => panic!("zero"),
        1 => unreachable!(),
        2 => todo!(),
        n => n.checked_mul(2).unwrap_or(n),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        super::modes(3);
        Some(1).unwrap();
    }
}
