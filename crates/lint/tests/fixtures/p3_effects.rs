//! P3 fixture: a `lint:entry` event loop that reaches a printing helper
//! two calls down. (The `println!` itself also trips D4.)

// lint:entry — fixture event loop
pub fn run() {
    step();
}

fn step() {
    emit();
}

fn emit() {
    println!("tick");
}
