//! R2 fixture: RNG construction must name its seed derivation.

fn derive_seed(seed: u64, lane: u64) -> u64 {
    seed ^ (lane << 32)
}

pub fn fresh_unnamed() -> StdRng {
    StdRng::seed_from_u64(42)
}

pub fn fresh_named(run_seed: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(run_seed, 7))
}
