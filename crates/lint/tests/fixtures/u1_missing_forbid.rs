//! Fixture: U1 — a library crate root without `#![forbid(unsafe_code)]`.

pub fn noop() {}
