//! Fixture: U1 satisfied by the crate-root attribute.

#![forbid(unsafe_code)]

pub fn noop() {}
