//! Seeded regression for the faults→netsim bridge: scheduling link flaps
//! in µs from a plan expressed in ms. Bypassing `core::units` with a
//! bare `* 1000.0` must fire U2; routing through `ms_to_us` must not.

pub struct LinkFlap {
    pub down_at_us: f64,
    pub repair_us: f64,
}

pub fn link_schedule_bypassing_units(down_at_ms: f64, repair_ms: f64) -> LinkFlap {
    LinkFlap { down_at_us: down_at_ms * 1000.0, repair_us: repair_ms * 1000.0 }
}

pub fn link_schedule_via_units(down_at_ms: f64, repair_ms: f64) -> LinkFlap {
    LinkFlap { down_at_us: ms_to_us(down_at_ms), repair_us: ms_to_us(repair_ms) }
}
