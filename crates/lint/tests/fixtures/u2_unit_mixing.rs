//! U2 fixture: every way arithmetic can mix units of measure.

pub struct Window {
    pub start_ms: f64,
}

fn helper(timeout_ms: f64) -> f64 {
    timeout_ms
}

pub fn mixes(at_ms: f64, dur_us: f64, cap_gb: f64, total_bytes: f64) {
    let deadline_us = at_ms + 5.0;
    let _sum = at_ms + dur_us;
    let mut acc_ms = 0.0;
    acc_ms += dur_us;
    let _w = Window { start_ms: dur_us };
    let _m = at_ms.max(dur_us);
    let _r = helper(dur_us);
    let _cross = cap_gb < total_bytes;
    let _ = deadline_us;
}
