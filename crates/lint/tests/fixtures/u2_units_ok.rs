//! U2 fixture: same-unit arithmetic, scalar scaling, named conversions,
//! and `_per_` rates never fire.

pub fn ok(at_ms: f64, dur_ms: f64, budget_bytes: f64) {
    let _t_ms = at_ms + dur_ms;
    let _scaled_ms = at_ms * 3.0;
    let _frac = at_ms / dur_ms;
    let _t_us = ms_to_us(at_ms);
    let _pool_bytes = gb_to_bytes(2.0) + budget_bytes;
    let _tokens_per_s = dur_ms / 7.0;
    let _clamped_ms = at_ms.clamp(0.0, dur_ms);
}
