//! Fixture: the waiver marker inside a string must not waive anything.

pub fn marker() -> (&'static str, u32) {
    let text = "lint:allow(P1) — not a real waiver";
    (text, Some(1).unwrap())
}
