//! Fixture: a waiver without a reason is rejected and reported.

pub fn boom() {
    panic!("kaboom"); // lint:allow(P1)
}
