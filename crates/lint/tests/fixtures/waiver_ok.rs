//! Fixture: waivers with reasons suppress findings.

use std::collections::HashMap; // lint:allow(D2) — fixture demonstrates a justified hash map

pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> u32 { // lint:allow(D2) — same demonstration, second site
    // lint:allow(P1) — fixture: the key is guaranteed present by construction
    *m.get(&k).unwrap()
}
