//! Fixture: a waiver that suppresses nothing is flagged W2.

pub fn add(a: u32, b: u32) -> u32 {
    a.wrapping_add(b) // lint:allow(P1) — nothing here actually panics
}
