//! Property-based tests for the semantic pass: the item parser and the
//! expression analyzer must never panic on arbitrary token soup, and
//! the U2 unit algebra must never fire on same-unit arithmetic.

use dsv3_lint::config::LintConfig;
use dsv3_lint::rules::RuleId;
use dsv3_lint::scan_source;
use proptest::prelude::*;

/// Fragments that, concatenated, cover every construct the parser and
/// analyzer special-case: items, generics, closures, macros, match
/// arms, struct literals, ranges, casts — plus plain garbage.
const FRAGMENTS: [&str; 49] = [
    "fn f(",
    ") {",
    "}",
    "impl X for Y {",
    "struct S {",
    "a_ms",
    "b_us",
    "n_bytes",
    "x",
    "Self::new",
    "|a, b|",
    "match x {",
    "=> {",
    "let y =",
    "+",
    "*",
    "/",
    "..",
    "..=",
    "::<",
    "<T: Ord>",
    "where T:",
    "macro_rules! m",
    "( $x:expr )",
    "$x",
    "1.0",
    "0xff_u64",
    "'a",
    "\"s\"",
    "r#\"raw\"#",
    "#[cfg(test)]",
    "// lint:entry",
    "// lint:allow(U2) — x",
    "as f64",
    ".max(",
    ".await",
    "?",
    "&mut rng",
    "for i in",
    "while let Some(v)",
    "return",
    "->",
    "=",
    "+=",
    ";",
    ",",
    "(",
    "[",
    "]",
];

const BIN_OPS: [&str; 4] = ["+", "-", "*", "/"];
const UNITS: [&str; 4] = ["ms", "us", "bytes", "tokens"];

proptest! {
    /// Identifier/punct soup round-trips through the whole pipeline —
    /// lexer, item parser, expression analyzer, waiver application —
    /// without panicking or hanging.
    #[test]
    fn parser_never_panics_on_token_soup(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..64),
    ) {
        let src = picks.iter().map(|&i| FRAGMENTS[i]).collect::<Vec<_>>().join(" ");
        let cfg = LintConfig::default_config();
        let _ = scan_source("crates/fixture/src/soup.rs", &src, &cfg);
        let _ = scan_source("crates/fixture/src/lib.rs", &src, &cfg);
    }

    /// Arithmetic over a single unit, at any nesting depth, is never a
    /// U2 finding: the algebra only objects to *mixing*.
    #[test]
    fn u2_never_fires_on_same_unit_arithmetic(
        ops in prop::collection::vec(0usize..BIN_OPS.len(), 1..8),
        unit_pick in 0usize..UNITS.len(),
    ) {
        let unit = UNITS[unit_pick];
        let mut expr = format!("a_{unit}");
        for (i, &op) in ops.iter().enumerate() {
            let op = BIN_OPS[op];
            // Multiplication/division by a bare scalar keeps the unit;
            // additive ops combine two quantities of the same unit.
            if op == "+" || op == "-" {
                expr = format!("({expr} {op} v{i}_{unit})");
            } else {
                expr = format!("({expr} {op} {}.0)", i + 2);
            }
        }
        let src = format!("pub fn f() {{ let out_{unit} = {expr}; }}\n");
        let scan =
            scan_source("crates/fixture/src/same_unit.rs", &src, &LintConfig::default_config());
        let u2: Vec<_> = scan.diagnostics.iter().filter(|d| d.rule == RuleId::U2).collect();
        prop_assert!(u2.is_empty(), "spurious U2 on {}: {:?}", src, u2);
    }
}
