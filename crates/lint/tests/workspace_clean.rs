//! The repository itself must be lint-clean: zero unwaived findings
//! under every rule family — including the semantic U2/F2/R2/P3 pass —
//! and every waiver in the tree earns its keep.

use std::path::PathBuf;

use dsv3_lint::config::LintConfig;

fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn workspace_has_zero_findings_and_no_stale_waivers() {
    let report = dsv3_lint::scan(&root()).expect("scan workspace");

    let lines: Vec<String> =
        report.diagnostics.iter().map(dsv3_lint::diag::Diagnostic::render).collect();
    assert!(lines.is_empty(), "workspace must be lint-clean, got:\n{}", lines.join("\n"));
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 0);
    assert!(report.files_scanned >= 100, "only {} source files scanned", report.files_scanned);
    assert!(report.manifests_scanned >= 15, "only {} manifests scanned", report.manifests_scanned);
    assert!(report.waivers_honored >= 5, "only {} waivers honored", report.waivers_honored);
}

#[test]
fn every_entry_point_is_parallel_ready() {
    let analysis = dsv3_lint::analyze_workspace(&root(), &LintConfig::default_config())
        .expect("analyze workspace");
    let r = &analysis.readiness;
    assert!(r.entries.len() >= 5, "expected at least 5 lint:entry fns, found {}", r.entries.len());
    // The two entries the roadmap's deterministic-parallel work gates on.
    for needle in ["run_overload_traced", "FlowSim::run_traced"] {
        assert!(
            r.entries.iter().any(|e| e.entry == needle),
            "readiness report must cover `{needle}`"
        );
    }
    for e in &r.entries {
        assert!(e.ready(), "entry `{}` is NOT READY: effects {:?}", e.entry, e.effects);
    }
    // Byte-stable renderings: the same analysis renders identically.
    assert_eq!(r.render_text(), r.render_text());
    assert_eq!(r.render_json(), r.render_json());
    assert!(r.render_text().contains("verdict: READY"));
}
