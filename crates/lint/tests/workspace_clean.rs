//! The repository itself must be lint-clean: zero unwaived findings,
//! and every waiver in the tree earns its keep.

use std::path::PathBuf;

#[test]
fn workspace_has_zero_findings_and_no_stale_waivers() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root");
    let report = dsv3_lint::scan(&root).expect("scan workspace");

    let lines: Vec<String> =
        report.diagnostics.iter().map(dsv3_lint::diag::Diagnostic::render).collect();
    assert!(lines.is_empty(), "workspace must be lint-clean, got:\n{}", lines.join("\n"));
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 0);
    assert!(report.files_scanned >= 100, "only {} source files scanned", report.files_scanned);
    assert!(report.manifests_scanned >= 15, "only {} manifests scanned", report.manifests_scanned);
    assert!(report.waivers_honored >= 5, "only {} waivers honored", report.waivers_honored);
}
