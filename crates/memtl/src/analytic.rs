//! Closed-form per-category curves, for validating the event walker.
//!
//! *Memory Analysis on the Training Course of DeepSeek Models* (arXiv
//! 2502.07846) decomposes training memory into analytic per-category
//! terms: parameter bytes `P·w`, gradient bytes `P·g` (ZeRO-2+ divides by
//! DP), optimizer bytes `12·P/DP`, and an activation term proportional to
//! the in-flight microbatch count of the schedule. For 1F1B the in-flight
//! count at stage `s` is exactly `min(PP − s, M)`, so every category has a
//! closed form and the event-driven timeline must land on it — the same
//! sim-vs-formula contract `faults` has with Young/Daly.

use crate::footprint::stage_footprint;
use crate::plan::{MemPlan, Offload, ScheduleKind, ZeroStage};
use crate::timeline::TimelineReport;
use dsv3_model::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// Analytic per-rank, per-category memory (GB).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticRank {
    /// Pipeline rank.
    pub rank: usize,
    /// Resident weights.
    pub weights_gb: f64,
    /// Persistent gradients.
    pub grads_gb: f64,
    /// HBM optimizer shard.
    pub optimizer_gb: f64,
    /// Peak activation stash: in-flight microbatches × per-micro stash.
    pub activation_peak_gb: f64,
    /// Transient workspace live at the peak (recompute buffer + ZeRO
    /// gathers during a backward chunk).
    pub workspace_gb: f64,
    /// Total peak.
    pub peak_gb: f64,
}

fn shard_bytes(params: f64, plan: &MemPlan) -> (f64, f64, f64) {
    let dp = plan.zero_dp as f64;
    let w_shard = if matches!(plan.zero_stage, ZeroStage::Z3) { dp } else { 1.0 };
    let g_shard = if matches!(plan.zero_stage, ZeroStage::Z2 | ZeroStage::Z3) { dp } else { 1.0 };
    let opt = match plan.offload {
        Offload::OptimizerCpu { .. } => 0.0,
        Offload::None => params * plan.optimizer_bytes / dp,
    };
    (params * plan.weight_bytes / w_shard, params * plan.grad_bytes / g_shard, opt)
}

/// The analytic curves for a 1F1B plan, rank by rank.
///
/// # Panics
///
/// Panics if the plan does not use [`ScheduleKind::OneFOneB`] (DualPipe's
/// greedy event schedule has no exact closed form; see
/// [`analytic_dualpipe_bound`]).
#[must_use]
pub fn analytic_1f1b(cfg: &ModelConfig, plan: &MemPlan) -> Vec<AnalyticRank> {
    assert!(plan.schedule == ScheduleKind::OneFOneB, "closed form is exact for 1F1B only");
    let tokens = plan.tokens_per_micro as f64;
    (0..plan.pp)
        .map(|r| {
            let sf = stage_footprint(cfg, plan, r);
            let (w, g, o) = shard_bytes(sf.params, plan);
            let in_flight = (plan.pp - r).min(plan.microbatches) as f64;
            let act = in_flight * sf.stored_bytes_per_token * tokens;
            // At the stash peak a backward chunk is running: its one-layer
            // recompute buffer, ZeRO-3 weight gather and (W being folded
            // into B) ZeRO-2 full-gradient buffer are live.
            let z3 = if matches!(plan.zero_stage, ZeroStage::Z3) {
                sf.max_layer_params * plan.weight_bytes
            } else {
                0.0
            };
            let z2 = if matches!(plan.zero_stage, ZeroStage::Z2 | ZeroStage::Z3) {
                sf.max_layer_params * plan.grad_bytes
            } else {
                0.0
            };
            let ws = sf.dropped_max_layer_bytes * tokens + z3 + z2;
            AnalyticRank {
                rank: r,
                weights_gb: w / 1e9,
                grads_gb: g / 1e9,
                optimizer_gb: o / 1e9,
                activation_peak_gb: act / 1e9,
                workspace_gb: ws / 1e9,
                peak_gb: (w + g + o + act + ws) / 1e9,
            }
        })
        .collect()
}

/// Upper bound on a throttled-DualPipe rank's peak: the per-direction
/// in-flight caps (`PP − v + 1` for the stage it runs Down, `r + 2` for
/// Up) times the per-micro stash of each held stage, plus the floor and
/// the worst co-executed workspace.
#[must_use]
pub fn analytic_dualpipe_bound(cfg: &ModelConfig, plan: &MemPlan, rank: usize) -> f64 {
    let tokens = plan.tokens_per_micro as f64;
    let down = stage_footprint(cfg, plan, rank);
    let mirror = plan.pp - 1 - rank;
    let up = stage_footprint(cfg, plan, mirror);
    let params = if mirror == rank { down.params } else { down.params + up.params };
    let (w, g, o) = shard_bytes(params, plan);
    let half = plan.microbatches / 2;
    let cap_down = (plan.pp - rank + 1).min(half) as f64;
    let cap_up = (rank + 2).min(half) as f64;
    // Per direction: up to `cap` microbatches hold a full stash (forwarded,
    // backward pending); the throttled scheduler additionally retains at
    // most `W_BACKLOG_CAP` backwarded microbatches' weight-gradient
    // operands until their W chunks retire.
    let retained = dsv3_parallel::dualpipe::W_BACKLOG_CAP as f64
        * down.wgrad_bytes_per_token.max(up.wgrad_bytes_per_token);
    let act =
        (cap_down * down.stored_bytes_per_token + cap_up * up.stored_bytes_per_token + retained)
            * tokens;
    let z3 = if matches!(plan.zero_stage, ZeroStage::Z3) { plan.weight_bytes } else { 0.0 };
    let z2 = if matches!(plan.zero_stage, ZeroStage::Z2 | ZeroStage::Z3) {
        plan.grad_bytes
    } else {
        0.0
    };
    // A co-executed F&B pair can hold both stages' ZeRO-3 gathers plus one
    // recompute buffer; a W chunk holds one ZeRO-2 gradient buffer.
    let ws = down.dropped_max_layer_bytes.max(up.dropped_max_layer_bytes) * tokens
        + (down.max_layer_params + up.max_layer_params) * z3
        + down.max_layer_params.max(up.max_layer_params) * z2;
    (w + g + o + act + ws) / 1e9
}

/// Largest relative error between the walked timeline and the analytic
/// curves, across every rank and category (weights, grads, optimizer,
/// activation peak, total peak). Categories that are zero in both are
/// skipped.
#[must_use]
pub fn max_rel_err(sim: &TimelineReport, analytic: &[AnalyticRank]) -> f64 {
    let mut worst = 0f64;
    let mut push = |a: f64, b: f64| {
        if a.abs() < 1e-12 && b.abs() < 1e-12 {
            return;
        }
        worst = worst.max((a - b).abs() / b.abs().max(1e-12));
    };
    for (s, a) in sim.ranks.iter().zip(analytic) {
        push(s.weights_gb, a.weights_gb);
        push(s.grads_gb, a.grads_gb);
        push(s.optimizer_gb, a.optimizer_gb);
        push(s.peak_activation_gb, a.activation_peak_gb);
        push(s.peak_gb, a.peak_gb);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{MemPlan, Recompute};
    use crate::timeline::simulate;
    use dsv3_model::zoo;

    fn production_1f1b() -> MemPlan {
        MemPlan { schedule: ScheduleKind::OneFOneB, ..MemPlan::deepseek_v3_production() }
    }

    #[test]
    fn timeline_reproduces_analytic_curves_within_5pct() {
        // The ISSUE acceptance criterion, at the production plan: every
        // per-category curve within 5% (the walker actually lands within
        // rounding error of the closed forms).
        let cfg = zoo::deepseek_v3();
        let plan = production_1f1b();
        let sim = simulate(&cfg, &plan);
        let ana = analytic_1f1b(&cfg, &plan);
        let err = max_rel_err(&sim, &ana);
        assert!(err < 0.05, "max relative error {err}");
        assert!(err < 1e-6, "and in fact the walk is exact up to rounding: {err}");
    }

    #[test]
    fn analytic_match_holds_across_policies() {
        let cfg = zoo::deepseek_v3();
        for recompute in [Recompute::None, Recompute::Selective, Recompute::Full] {
            for zero in [ZeroStage::Z1, ZeroStage::Z2, ZeroStage::Z3] {
                let plan = MemPlan { recompute, zero_stage: zero, ..production_1f1b() };
                let sim = simulate(&cfg, &plan);
                let ana = analytic_1f1b(&cfg, &plan);
                let err = max_rel_err(&sim, &ana);
                assert!(err < 0.05, "{recompute:?}/{zero:?}: {err}");
            }
        }
    }

    #[test]
    fn in_flight_cap_shapes_the_activation_curve() {
        // Stage 0 holds PP in-flight microbatches, the last stage one: the
        // analytic activation curve must fall monotonically across ranks
        // (layer-count jitter aside, stage 0 vs last is a ~PP× ratio).
        let cfg = zoo::deepseek_v3();
        let ana = analytic_1f1b(&cfg, &production_1f1b());
        let first = ana[0].activation_peak_gb;
        let last = ana[15].activation_peak_gb;
        assert!(first > 10.0 * last, "{first} vs {last}");
    }

    #[test]
    fn dualpipe_peaks_stay_under_the_bound() {
        let cfg = zoo::deepseek_v3();
        let plan = MemPlan::deepseek_v3_production();
        let sim = simulate(&cfg, &plan);
        for r in &sim.ranks {
            let bound = analytic_dualpipe_bound(&cfg, &plan, r.rank);
            assert!(
                r.peak_gb <= bound * 1.0 + 1e-9,
                "rank {}: {} > bound {bound}",
                r.rank,
                r.peak_gb
            );
        }
    }
}
