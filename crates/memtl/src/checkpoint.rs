//! Checkpoint sizing: what a full-state checkpoint weighs under a plan.
//!
//! The resilience simulator in `dsv3-faults` prices checkpoint writes and
//! restores from *bytes*, not from a hand-picked `checkpoint_write_s`
//! constant. This module derives those bytes from the same per-stage
//! parameter model the timeline walker uses, under the plan's schedule
//! (DualPipe ranks hold two stages), ZeRO stage, and precision:
//!
//! - **Weights** — the FP8/BF16 training weights a restoring rank must
//!   have resident: `params × weight_bytes`, divided across `zero_dp`
//!   only under ZeRO-3. Under Z1/Z2 the weights are replicated, so one
//!   checkpoint needs only a `1/zero_dp` slice *written* per rank.
//! - **Optimizer shard** — FP32 master weights plus Adam moments
//!   (`optimizer_bytes` per param), always sharded `1/zero_dp`. The
//!   shard is persisted whether it lives in HBM or (offloaded) in host
//!   DRAM — offload moves the bytes, not the obligation.
//! - **Gradients** — not checkpointed: a restart replays the partial
//!   step, so persistent gradient buffers die with the failure.
//!
//! `write_bytes` is therefore a rank's *unique contribution* to one
//! checkpoint (weights slice + optimizer shard) and `restore_bytes` is
//! what the rank must read back to resume (full resident weights +
//! optimizer shard).

use crate::footprint::stage_footprint;
use crate::plan::{MemPlan, ScheduleKind, ZeroStage};
use dsv3_model::config::ModelConfig;
use dsv3_units::bytes_to_gb;
use serde::{Deserialize, Serialize};

/// Checkpoint bytes of one pipeline rank (one GPU; EP/TP division is
/// already inside the per-stage parameter counts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankCheckpoint {
    /// Pipeline rank.
    pub rank: usize,
    /// Training weights resident on this rank (bytes): what a restore
    /// must deliver back into HBM.
    pub weights_bytes: f64,
    /// This rank's optimizer-state shard (bytes): FP32 master + moments,
    /// `1/zero_dp` of the held parameters.
    pub optimizer_shard_bytes: f64,
    /// Unique bytes this rank contributes to one checkpoint: its
    /// `1/zero_dp` weights slice plus its optimizer shard.
    pub write_bytes: f64,
    /// Bytes this rank reads to resume: resident weights plus the
    /// optimizer shard.
    pub restore_bytes: f64,
}

/// Checkpoint sizing for a whole pipeline under one plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointFootprint {
    /// Per-pipeline-rank byte counts.
    pub ranks: Vec<RankCheckpoint>,
    /// Largest per-rank write (bytes) — the straggler that paces a
    /// synchronous checkpoint or the first tier of an async drain.
    pub max_write_bytes: f64,
    /// Largest per-rank restore (bytes) — what paces a recovery.
    pub max_restore_bytes: f64,
    /// Bytes a remote store ingests per complete checkpoint, summed over
    /// the whole `pp × zero_dp` grid (GB). Every GPU persists its own
    /// write slice, so DualPipe's mirror-held stages and EP-replicated
    /// expert shards are counted once per holder, exactly as the
    /// timeline's resident-byte model counts them.
    pub job_ingest_gb: f64,
}

/// Pipeline stages held by rank `r` under the plan's schedule: 1F1B rank
/// `r` holds stage `r`; DualPipe rank `r` holds `r` and its mirror
/// `pp − 1 − r` (matching the timeline walker's floor model).
fn held_stages(plan: &MemPlan, r: usize) -> Vec<usize> {
    match plan.schedule {
        ScheduleKind::OneFOneB => vec![r],
        ScheduleKind::DualPipe => {
            let mirror = plan.pp - 1 - r;
            if mirror == r {
                vec![r]
            } else {
                vec![r, mirror]
            }
        }
    }
}

/// Size one full-state checkpoint of `cfg` under `plan`.
///
/// Shares the parameter model of [`crate::timeline::simulate`]: per-stage
/// resident params (EP/TP applied, embeddings on the edge stages), summed
/// over the rank's held stages.
#[must_use]
pub fn checkpoint_footprint(cfg: &ModelConfig, plan: &MemPlan) -> CheckpointFootprint {
    let dp = plan.zero_dp as f64;
    let weight_shard = if matches!(plan.zero_stage, ZeroStage::Z3) { dp } else { 1.0 };
    let mut ranks = Vec::with_capacity(plan.pp);
    let mut max_write_bytes = 0.0f64;
    let mut max_restore_bytes = 0.0f64;
    let mut job_ingest = 0.0f64;
    let stage_params: Vec<f64> =
        (0..plan.pp).map(|s| stage_footprint(cfg, plan, s).params).collect();
    for r in 0..plan.pp {
        let params: f64 = held_stages(plan, r).iter().map(|&s| stage_params[s]).sum();
        let weights_bytes = params * plan.weight_bytes / weight_shard;
        let optimizer_shard_bytes = params * plan.optimizer_bytes / dp;
        // Under Z3 the resident weights *are* this rank's unique slice;
        // under Z1/Z2 replication leaves each rank a 1/dp slice to write.
        let write_bytes = params * plan.weight_bytes / dp + optimizer_shard_bytes;
        let restore_bytes = weights_bytes + optimizer_shard_bytes;
        max_write_bytes = max_write_bytes.max(write_bytes);
        max_restore_bytes = max_restore_bytes.max(restore_bytes);
        job_ingest += write_bytes * dp;
        ranks.push(RankCheckpoint {
            rank: r,
            weights_bytes,
            optimizer_shard_bytes,
            write_bytes,
            restore_bytes,
        });
    }
    CheckpointFootprint {
        ranks,
        max_write_bytes,
        max_restore_bytes,
        job_ingest_gb: bytes_to_gb(job_ingest),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv3_model::zoo;

    fn plan() -> MemPlan {
        MemPlan::deepseek_v3_production()
    }

    #[test]
    fn production_checkpoint_is_optimizer_dominated() {
        let cfg = zoo::deepseek_v3();
        let f = checkpoint_footprint(&cfg, &plan());
        assert_eq!(f.ranks.len(), 16);
        for r in &f.ranks {
            // FP8 weights (1 B/param) vs 12 B/param optimizer over 128-way
            // ZeRO-1: the weights slice is 1/12 of the optimizer shard.
            assert!(r.optimizer_shard_bytes > 5.0 * r.write_bytes / 6.0, "{r:?}");
            assert!(r.restore_bytes > r.write_bytes, "replicated weights read > slice write");
        }
        assert!(f.max_write_bytes > 0.0 && f.max_restore_bytes > f.max_write_bytes);
    }

    #[test]
    fn job_ingest_sums_the_grid() {
        // The ingest volume is exactly every GPU's write slice: per
        // pipeline rank, `zero_dp` replicas each persist `write_bytes`.
        let cfg = zoo::deepseek_v3();
        let f = checkpoint_footprint(&cfg, &plan());
        let expect: f64 = f.ranks.iter().map(|r| r.write_bytes * 128.0).sum();
        assert!((f.job_ingest_gb - bytes_to_gb(expect)).abs() < 1e-9);
        // Scale sanity: hundreds of GB for the EP/TP-resident V3 state.
        assert!(f.job_ingest_gb > 100.0 && f.job_ingest_gb < 10_000.0, "{}", f.job_ingest_gb);
    }

    #[test]
    fn zero3_shards_the_restore_but_not_the_write() {
        let cfg = zoo::deepseek_v3();
        let z1 = checkpoint_footprint(&cfg, &plan());
        let z3 = checkpoint_footprint(&cfg, &MemPlan { zero_stage: ZeroStage::Z3, ..plan() });
        assert!(z3.max_restore_bytes < z1.max_restore_bytes, "Z3 restores a 1/dp weight shard");
        for (a, b) in z1.ranks.iter().zip(&z3.ranks) {
            assert!((a.write_bytes - b.write_bytes).abs() < 1e-6, "unique slice is stage-free");
        }
    }

    #[test]
    fn dualpipe_edge_ranks_carry_two_stages() {
        let cfg = zoo::deepseek_v3();
        let dual = checkpoint_footprint(&cfg, &plan());
        let single =
            checkpoint_footprint(&cfg, &MemPlan { schedule: ScheduleKind::OneFOneB, ..plan() });
        // Rank 0 under DualPipe holds stages 0 and 15; under 1F1B only 0.
        assert!(dual.ranks[0].restore_bytes > single.ranks[0].restore_bytes);
        // Every stage is mirror-held by two rank groups under DualPipe
        // (pp = 16 is even), so the grid persists each slice twice.
        assert!((dual.job_ingest_gb / single.job_ingest_gb - 2.0).abs() < 1e-9);
    }

    #[test]
    fn offload_does_not_shrink_the_checkpoint() {
        use crate::plan::Offload;
        let cfg = zoo::deepseek_v3();
        let hbm = checkpoint_footprint(&cfg, &plan());
        let off = checkpoint_footprint(
            &cfg,
            &MemPlan { offload: Offload::OptimizerCpu { pcie_gbps: 32.0 }, ..plan() },
        );
        assert_eq!(hbm, off, "offload moves optimizer bytes, not the durability obligation");
    }
}
