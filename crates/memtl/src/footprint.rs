//! Per-layer byte footprints: what one token leaves behind in one layer.
//!
//! The activation model follows the tensor inventory of *Memory Analysis
//! on the Training Course of DeepSeek Models* (arXiv 2502.07846): walk the
//! layer's dataflow, count the elements each op must keep for backward,
//! and let the recomputation policy decide which of them are stashed
//! versus recomputed. Three policies:
//!
//! * [`Recompute::None`] — everything: norm inputs, (for MLA) compression
//!   latents, expanded Q/K/V, the attention core output, the FFN gate/up
//!   expansions and activation product, and the residual boundaries.
//! * [`Recompute::Selective`] — V3's practice: recompute the norms and the
//!   Q/K/V + FFN up expansions (from the latents where MLA provides them),
//!   stash only boundaries, latents, the attention core output and the FFN
//!   activation product.
//! * [`Recompute::Full`] — stash only the layer input.
//!
//! All counts are *per token per layer*; tensor parallelism divides the
//! wide (per-head / per-intermediate) tensors, while the residual-stream
//! boundaries and latents are replicated.

use crate::plan::{MemPlan, Recompute};
use dsv3_model::attention::Attention;
use dsv3_model::config::{Ffn, ModelConfig};

/// Byte footprint of one layer under a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerFootprint {
    /// Bytes per token stored for backward with no recomputation.
    pub full_bytes: f64,
    /// Bytes per token stored under the plan's policy.
    pub stored_bytes: f64,
    /// Bytes per token recomputed during backward (`full − stored`).
    pub dropped_bytes: f64,
    /// Bytes per token that must outlive the input-gradient backward and
    /// survive until the weight-gradient chunk (the GEMM left operands:
    /// layer input, attention core output, FFN activation product). Always
    /// ≤ `stored_bytes`.
    pub wgrad_bytes: f64,
    /// Parameters resident for this layer on one GPU of its stage (EP and
    /// TP applied; embeddings are counted separately).
    pub params: f64,
}

/// Element counts for one layer, before precision/TP are applied.
struct LayerElems {
    /// Residual-stream boundaries + norm inputs (replicated under TP).
    narrow: f64,
    /// MLA compression latents (replicated under TP).
    latents: f64,
    /// Wide tensors that selective recomputation drops: expanded Q/K/V and
    /// FFN gate/up expansions (sharded under TP).
    wide_dropped: f64,
    /// Wide tensors selective recomputation keeps: attention core output
    /// and the FFN activation product (sharded under TP).
    wide_kept: f64,
    /// Wide weight-gradient GEMM operands (core output + FFN product).
    wide_wgrad: f64,
}

fn layer_elems(cfg: &ModelConfig, l: usize) -> LayerElems {
    let h = cfg.hidden as f64;
    let attn = &cfg.attention;
    let heads = attn.num_heads() as f64;
    let qk = attn.qk_dim() as f64;
    let vd = attn.v_dim() as f64;
    // Expanded K/V rows stored for the attention backward.
    let (k_elems, v_elems) = match *attn {
        Attention::Mha { heads, head_dim } => {
            (heads as f64 * head_dim as f64, heads as f64 * head_dim as f64)
        }
        Attention::Gqa { kv_heads, head_dim, .. } => {
            (kv_heads as f64 * head_dim as f64, kv_heads as f64 * head_dim as f64)
        }
        Attention::Mqa { head_dim, .. } => (head_dim as f64, head_dim as f64),
        Attention::Mla { .. } => (heads * qk, heads * vd),
    };
    let latents = match *attn {
        Attention::Mla { q_lora_rank, kv_lora_rank, qk_rope_head_dim, .. } => {
            (q_lora_rank + kv_lora_rank + qk_rope_head_dim) as f64
        }
        _ => 0.0,
    };
    let q_elems = heads * qk;
    let core_out = heads * vd;
    // FFN shape of this layer.
    let (ffn_expand, ffn_prod, router) = ffn_elems(cfg, l);
    LayerElems {
        // norm input, attention output, second norm input, FFN output,
        // router scores (narrow: O(h) per token).
        narrow: h + h + h + h + router,
        latents,
        wide_dropped: q_elems + k_elems + v_elems + ffn_expand,
        wide_kept: core_out + ffn_prod,
        wide_wgrad: core_out + ffn_prod,
    }
}

/// Gate/up expansion elems, activation-product elems, and router scores
/// for layer `l`.
fn ffn_elems(cfg: &ModelConfig, l: usize) -> (f64, f64, f64) {
    if cfg.layer_is_dense(l) {
        let inter = match cfg.ffn {
            Ffn::Dense { intermediate } => intermediate,
            Ffn::Moe { .. } => cfg.leading_dense_intermediate,
        } as f64;
        (2.0 * inter, inter, 0.0)
    } else if let Ffn::Moe { routed_experts, active_experts, shared_experts, expert_intermediate } =
        cfg.ffn
    {
        let e = (active_experts + shared_experts) as f64 * expert_intermediate as f64;
        (2.0 * e, e, routed_experts as f64)
    } else {
        (0.0, 0.0, 0.0)
    }
}

/// Parameters of layer `l` resident on one GPU of its stage: routed
/// experts divide across EP, everything divides across TP.
#[must_use]
pub fn layer_params_resident(cfg: &ModelConfig, plan: &MemPlan, l: usize) -> f64 {
    let h = cfg.hidden;
    let attn = cfg.attention.param_count(h) as f64;
    let ffn = if cfg.layer_is_dense(l) {
        let inter = match cfg.ffn {
            Ffn::Dense { intermediate } => intermediate,
            Ffn::Moe { .. } => cfg.leading_dense_intermediate,
        };
        (3 * h * inter) as f64
    } else if let Ffn::Moe { routed_experts, shared_experts, expert_intermediate, .. } = cfg.ffn {
        let per_expert = (3 * h * expert_intermediate) as f64;
        let resident = routed_experts as f64 / plan.ep as f64 + shared_experts as f64;
        resident * per_expert + (h * routed_experts) as f64
    } else {
        0.0
    };
    (attn + ffn) / plan.tp as f64
}

/// Embedding (or unembedding) parameters resident on an edge stage.
#[must_use]
pub fn embedding_params_resident(cfg: &ModelConfig, plan: &MemPlan) -> f64 {
    (cfg.vocab * cfg.hidden) as f64 / plan.tp as f64
}

/// The byte footprint of layer `l` under `plan`.
#[must_use]
pub fn layer_footprint(cfg: &ModelConfig, plan: &MemPlan, l: usize) -> LayerFootprint {
    let e = layer_elems(cfg, l);
    let tp = plan.tp as f64;
    let narrow = e.narrow + e.latents;
    let full_elems = narrow + (e.wide_dropped + e.wide_kept) / tp;
    let stored_elems = match plan.recompute {
        Recompute::None => full_elems,
        Recompute::Selective => narrow + e.wide_kept / tp,
        Recompute::Full => cfg.hidden as f64,
    };
    // GEMM left operands for dW: the layer input plus the wide kept
    // tensors — capped by what is actually stashed.
    let wgrad_elems = (cfg.hidden as f64 + e.wide_wgrad / tp).min(stored_elems);
    LayerFootprint {
        full_bytes: full_elems * plan.act_bytes,
        stored_bytes: stored_elems * plan.act_bytes,
        dropped_bytes: (full_elems - stored_elems) * plan.act_bytes,
        wgrad_bytes: wgrad_elems * plan.act_bytes,
        params: layer_params_resident(cfg, plan, l),
    }
}

/// Contiguous layer range of pipeline stage `s` (remainder layers go to
/// the leading stages, matching Megatron's default split).
#[must_use]
pub fn stage_layers(layers: usize, pp: usize, s: usize) -> std::ops::Range<usize> {
    let base = layers / pp;
    let rem = layers % pp;
    let extra = s.min(rem);
    let start = s * base + extra;
    let len = base + usize::from(s < rem);
    start..(start + len)
}

/// Aggregated footprint of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageFootprint {
    /// Bytes stashed per token of one microbatch traversing the stage.
    pub stored_bytes_per_token: f64,
    /// Bytes per token with no recomputation (for the ρ overhead proxy).
    pub full_bytes_per_token: f64,
    /// Largest single-layer recompute buffer (backward re-materializes
    /// dropped tensors one layer at a time).
    pub dropped_max_layer_bytes: f64,
    /// Bytes per token retained until the weight-gradient chunk.
    pub wgrad_bytes_per_token: f64,
    /// Parameters resident on one GPU of this stage, embeddings included.
    pub params: f64,
    /// Largest single-layer resident parameter count (ZeRO-3 gathers and
    /// ZeRO-2 full-gradient workspaces are one layer at a time).
    pub max_layer_params: f64,
}

/// Aggregate the per-layer footprints of stage `s`.
#[must_use]
pub fn stage_footprint(cfg: &ModelConfig, plan: &MemPlan, s: usize) -> StageFootprint {
    let mut out = StageFootprint::default();
    for l in stage_layers(cfg.layers, plan.pp, s) {
        let f = layer_footprint(cfg, plan, l);
        out.stored_bytes_per_token += f.stored_bytes;
        out.full_bytes_per_token += f.full_bytes;
        out.dropped_max_layer_bytes = out.dropped_max_layer_bytes.max(f.dropped_bytes);
        out.wgrad_bytes_per_token += f.wgrad_bytes;
        out.params += f.params;
        out.max_layer_params = out.max_layer_params.max(f.params);
    }
    if s == 0 {
        out.params += embedding_params_resident(cfg, plan);
    }
    if s + 1 == plan.pp {
        out.params += embedding_params_resident(cfg, plan);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::MemPlan;
    use dsv3_model::zoo;

    fn v3_plan() -> MemPlan {
        MemPlan::deepseek_v3_production()
    }

    #[test]
    fn stage_layers_partition_the_model() {
        // 61 layers over 16 stages: 13 stages of 4, 3 stages of 3.
        let mut total = 0;
        for s in 0..16 {
            let r = stage_layers(61, 16, s);
            assert!(r.len() == 3 || r.len() == 4);
            total += r.len();
        }
        assert_eq!(total, 61);
        assert_eq!(stage_layers(61, 16, 0), 0..4);
        assert_eq!(stage_layers(61, 16, 15), 58..61);
    }

    #[test]
    fn per_stage_params_sum_to_param_counts_total() {
        // The per-layer parameter model must agree exactly with the flops
        // crate's count at EP = TP = 1 (embeddings included).
        let cfg = zoo::deepseek_v3();
        let plan = MemPlan { ep: 1, ..v3_plan() };
        let total: f64 = (0..plan.pp).map(|s| stage_footprint(&cfg, &plan, s).params).sum();
        let expect = dsv3_model::flops::param_counts(&cfg).total as f64;
        assert!((total / expect - 1.0).abs() < 1e-12, "{total} vs {expect}");
    }

    #[test]
    fn recompute_strictly_shrinks_the_stash() {
        let cfg = zoo::deepseek_v3();
        let none = MemPlan { recompute: Recompute::None, ..v3_plan() };
        let sel = MemPlan { recompute: Recompute::Selective, ..v3_plan() };
        let full = MemPlan { recompute: Recompute::Full, ..v3_plan() };
        for l in [0, 3, 60] {
            let a = layer_footprint(&cfg, &none, l).stored_bytes;
            let b = layer_footprint(&cfg, &sel, l).stored_bytes;
            let c = layer_footprint(&cfg, &full, l).stored_bytes;
            assert!(a > b && b > c, "layer {l}: {a} {b} {c}");
            assert!((c - 2.0 * 7168.0).abs() < 1e-9, "full recompute keeps the input only");
        }
    }

    #[test]
    fn selective_stash_lands_near_the_production_constant() {
        // The steady-state calculator assumes 20·hidden bytes per token
        // per layer under selective recomputation; the tensor-inventory
        // model must land within 10% of it for a V3 MoE layer.
        let cfg = zoo::deepseek_v3();
        let f = layer_footprint(&cfg, &v3_plan(), 30);
        let assumed = dsv3_parallel::memory::SELECTIVE_ACTIVATION_BYTES_PER_HIDDEN * 7168.0;
        assert!((f.stored_bytes / assumed - 1.0).abs() < 0.10, "{} vs {assumed}", f.stored_bytes);
    }

    #[test]
    fn wgrad_retention_is_a_subset_of_the_stash() {
        let cfg = zoo::deepseek_v3();
        for rc in [Recompute::None, Recompute::Selective, Recompute::Full] {
            let plan = MemPlan { recompute: rc, ..v3_plan() };
            for l in [0, 10, 60] {
                let f = layer_footprint(&cfg, &plan, l);
                assert!(f.wgrad_bytes <= f.stored_bytes + 1e-9);
                assert!(f.wgrad_bytes > 0.0);
            }
        }
    }

    #[test]
    fn tensor_parallelism_divides_only_wide_tensors() {
        let cfg = zoo::qwen25_72b();
        let tp1 = layer_footprint(&cfg, &MemPlan { tp: 1, ..v3_plan() }, 10);
        let tp8 = layer_footprint(&cfg, &MemPlan { tp: 8, ..v3_plan() }, 10);
        assert!(tp8.full_bytes < tp1.full_bytes);
        // Boundaries are replicated, so the reduction is less than 8×.
        assert!(tp8.full_bytes > tp1.full_bytes / 8.0);
        assert!((tp8.params - tp1.params / 8.0).abs() < 1e-6);
    }

    #[test]
    fn mla_latents_are_tiny_next_to_expanded_kv() {
        // Table 1's point, in stash terms: what MLA must keep to
        // re-expand K/V (the latents) is a small fraction of the expanded
        // K/V a non-latent architecture would have to stash outright.
        let cfg = zoo::deepseek_v3();
        let sel = layer_footprint(&cfg, &v3_plan(), 30);
        let none = layer_footprint(&cfg, &MemPlan { recompute: Recompute::None, ..v3_plan() }, 30);
        assert!(sel.stored_bytes < 0.45 * none.stored_bytes);
    }
}
