//! Fit-frontier search: the deepest variant of a model that still fits.
//!
//! The paper motivates DeepSeek-V3's memory choices by what 2048 × 80 GB
//! can hold. The frontier search inverts the timeline: for a GPU count it
//! scales the candidate model's depth (the cheapest axis that leaves the
//! per-layer shapes — and therefore the footprint model — intact), walks
//! the timeline for each candidate, and binary-searches the largest layer
//! count whose peak rank fits the HBM budget.

use crate::plan::{GpuSpec, MemPlan};
use crate::timeline::simulate;
use dsv3_model::config::ModelConfig;
use dsv3_model::flops::param_counts;
use serde::{Deserialize, Serialize};

/// One fleet size to probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontierQuery {
    /// Total GPUs in the fleet.
    pub gpus: usize,
    /// The GPU each rank must fit.
    pub spec: GpuSpec,
}

/// The frontier at one fleet size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontierRow {
    /// Fleet size probed.
    pub gpus: usize,
    /// Largest layer count that fits (0 = even one layer per stage does
    /// not fit, or the fleet cannot host the plan's PP × TP grid).
    pub max_layers: usize,
    /// Total parameters of that largest model (billions).
    pub params_b: f64,
    /// Peak-rank memory of that largest model (GB).
    pub peak_gb: f64,
    /// ZeRO data-parallel width the fleet affords (`gpus / (pp·tp)`).
    pub zero_dp: usize,
}

/// Scale `cfg` to `layers` layers, keeping every per-layer shape.
fn scaled(cfg: &ModelConfig, layers: usize) -> ModelConfig {
    ModelConfig {
        layers,
        leading_dense_layers: cfg.leading_dense_layers.min(layers),
        ..cfg.clone()
    }
}

/// Specialize the plan template to a fleet of `gpus` GPUs: the PP × TP
/// grid is kept and the remaining factor becomes the ZeRO width (EP is
/// clamped into it). Microbatch count drops to the smallest steady-state
/// schedule (`2·pp`) — the in-flight caps saturate there, so the peak
/// matches the full-step peak at a fraction of the walk cost.
fn specialize(plan: &MemPlan, gpus: usize) -> Option<MemPlan> {
    let grid = plan.pp * plan.tp;
    if gpus < grid {
        return None;
    }
    let zero_dp = gpus / grid;
    // 2·pp microbatches saturate both schedules' in-flight caps (and is
    // the DualPipe minimum), so the peak equals the full-step peak.
    let micro = 2 * plan.pp;
    Some(MemPlan { zero_dp, ep: plan.ep.min(zero_dp.max(1)), microbatches: micro, ..*plan })
}

fn peak_at(cfg: &ModelConfig, plan: &MemPlan, layers: usize) -> f64 {
    simulate(&scaled(cfg, layers), plan).peak_gb
}

/// The largest `cfg` variant (by depth) whose timeline fits `q`.
///
/// Doubles from one layer per stage until the peak overflows, then binary
/// searches the boundary. The plan's `pp`/`tp`/policy knobs are kept; the
/// ZeRO width is derived from the fleet.
#[must_use]
pub fn largest_fitting(cfg: &ModelConfig, plan: &MemPlan, q: &FrontierQuery) -> FrontierRow {
    let budget = q.spec.budget_gb();
    let empty =
        |zero_dp| FrontierRow { gpus: q.gpus, max_layers: 0, params_b: 0.0, peak_gb: 0.0, zero_dp };
    let Some(plan) = specialize(plan, q.gpus) else {
        return empty(0);
    };
    let floor_layers = plan.pp;
    if peak_at(cfg, &plan, floor_layers) > budget {
        return empty(plan.zero_dp);
    }
    // Exponential probe: find an overflowing depth.
    let mut lo = floor_layers;
    let mut hi = floor_layers;
    while peak_at(cfg, &plan, hi) <= budget {
        lo = hi;
        hi *= 2;
        if hi > 4096 {
            break;
        }
    }
    // Invariant: lo fits, hi does not (or the 4096-layer backstop fits).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if peak_at(cfg, &plan, mid) <= budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let best = scaled(cfg, lo);
    FrontierRow {
        gpus: q.gpus,
        max_layers: lo,
        params_b: param_counts(&best).total as f64 / 1e9,
        peak_gb: simulate(&best, &plan).peak_gb,
        zero_dp: plan.zero_dp,
    }
}

/// Sweep the frontier across fleet sizes.
#[must_use]
pub fn frontier_sweep(
    cfg: &ModelConfig,
    plan: &MemPlan,
    queries: &[FrontierQuery],
) -> Vec<FrontierRow> {
    queries.iter().map(|q| largest_fitting(cfg, plan, q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv3_model::zoo;

    fn query(gpus: usize) -> FrontierQuery {
        FrontierQuery { gpus, spec: GpuSpec::h800() }
    }

    #[test]
    fn production_fleet_holds_the_production_depth() {
        // 2048 H800s must fit at least the 61-layer V3 under the
        // production plan — the model did, after all, train.
        let cfg = zoo::deepseek_v3();
        let plan = MemPlan::deepseek_v3_production();
        let row = largest_fitting(&cfg, &plan, &query(2048));
        assert_eq!(row.zero_dp, 128);
        assert!(row.max_layers >= 61, "frontier {} < 61", row.max_layers);
        assert!(row.peak_gb <= GpuSpec::h800().budget_gb());
    }

    #[test]
    fn frontier_grows_with_fleet_size() {
        // More GPUs → wider ZeRO shards → deeper models fit (weakly).
        let cfg = zoo::deepseek_v3();
        let plan = MemPlan::deepseek_v3_production();
        let rows = frontier_sweep(&cfg, &plan, &[query(16), query(64), query(256), query(2048)]);
        for w in rows.windows(2) {
            assert!(
                w[1].max_layers >= w[0].max_layers,
                "{} gpus: {} layers, then {} gpus: {} layers",
                w[0].gpus,
                w[0].max_layers,
                w[1].gpus,
                w[1].max_layers
            );
        }
    }

    #[test]
    fn too_small_fleet_reports_zero() {
        let cfg = zoo::deepseek_v3();
        let plan = MemPlan::deepseek_v3_production();
        let row = largest_fitting(&cfg, &plan, &query(8));
        assert_eq!(row.max_layers, 0, "8 GPUs cannot host a PP16 grid");
        assert_eq!(row.zero_dp, 0);
    }

    #[test]
    fn naive_frontier_sits_below_the_production_frontier() {
        let cfg = zoo::deepseek_v3();
        let prod = largest_fitting(&cfg, &MemPlan::deepseek_v3_production(), &query(2048));
        let naive = largest_fitting(&cfg, &MemPlan::naive(), &query(2048));
        assert!(
            naive.max_layers < prod.max_layers,
            "naive {} vs production {}",
            naive.max_layers,
            prod.max_layers
        );
    }
}
