//! Training memory timeline simulator.
//!
//! The steady-state calculator in `dsv3_parallel::memory` answers "how
//! many bytes, on average" — this crate answers "how many bytes, *when*".
//! It replays a pipeline schedule's chunk events (1F1B or throttled
//! DualPipe, from `dsv3_parallel`) and walks every rank's live bytes per
//! category: resident weights, persistent gradients, optimizer shard,
//! per-microbatch activation stash and transient workspace. On top of the
//! walker sit the knobs the paper's §Memory discussion turns — activation
//! recomputation ([`Recompute`]), ZeRO sharding ([`ZeroStage`]),
//! optimizer-state CPU offload with its PCIe step-time penalty
//! ([`Offload`]) — plus a closed-form cross-check ([`analytic_1f1b`])
//! against the curves of *Memory Analysis on the Training Course of
//! DeepSeek Models* (arXiv 2502.07846), and a fit-frontier search
//! ([`largest_fitting`]) for the deepest model a fleet of 80 GB parts can
//! train.
//!
//! Modules:
//!
//! - [`plan`]: [`MemPlan`] (parallelism × precision × policy) and
//!   [`GpuSpec`] budgets.
//! - [`footprint`]: per-token, per-layer stash/workspace byte model for
//!   any [`dsv3_model::config::ModelConfig`] (MLA latents vs MHA K/V).
//! - [`timeline`]: the event walker — [`simulate`] and the
//!   telemetry-traced [`simulate_traced`].
//! - [`analytic`]: closed 1F1B forms and the DualPipe peak bound.
//! - [`frontier`]: "largest model that fits N × 80 GB" search.
//! - [`checkpoint`]: full-state checkpoint sizing (per-rank write and
//!   restore bytes) for the `dsv3-faults` resilience simulator.

#![forbid(unsafe_code)]

pub mod analytic;
pub mod checkpoint;
pub mod footprint;
pub mod frontier;
pub mod plan;
pub mod timeline;

pub use analytic::{analytic_1f1b, analytic_dualpipe_bound, max_rel_err, AnalyticRank};
pub use checkpoint::{checkpoint_footprint, CheckpointFootprint, RankCheckpoint};
pub use footprint::{
    layer_footprint, stage_footprint, stage_layers, LayerFootprint, StageFootprint,
};
pub use frontier::{frontier_sweep, largest_fitting, FrontierQuery, FrontierRow};
pub use plan::{GpuSpec, MemPlan, Offload, Recompute, ScheduleKind, ZeroStage};
pub use timeline::{simulate, simulate_traced, RankTimeline, TimelineReport};
