//! Memory plans: the knobs that move bytes around the step.
//!
//! A [`MemPlan`] extends [`dsv3_parallel::memory::MemoryPlan`]'s
//! steady-state view with everything that changes *when* bytes are live:
//! the pipeline schedule, the activation recomputation policy, the ZeRO
//! stage, and optimizer-state offload. The production constructor mirrors
//! DeepSeek-V3's training deployment (PP16 × EP64, 128-way ZeRO-1 DP,
//! selective recomputation, DualPipe).

use dsv3_parallel::trainstep::{chunk_times, TrainStepConfig};
use dsv3_parallel::ChunkTimes;
use serde::{Deserialize, Serialize};

/// ZeRO partitioning stage (Rajbhandari et al.): what is sharded across
/// the `zero_dp` data-parallel replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ZeroStage {
    /// Optimizer state sharded; weights and gradients replicated.
    Z1,
    /// Z1 plus persistent gradients sharded (a transient one-layer full
    /// gradient exists while the weight-gradient chunk runs).
    Z2,
    /// Z2 plus weights sharded (a transient one-layer weight gather exists
    /// while any forward/backward chunk runs).
    Z3,
}

/// Activation recomputation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recompute {
    /// Stash every intermediate needed by backward.
    None,
    /// Recompute norms and the QKV / FFN up-projection expansions from the
    /// residual stream (and, for MLA, from the compression latents); stash
    /// only layer boundaries, latents and the FFN activation product.
    Selective,
    /// Stash only each layer's input; recompute the whole layer in
    /// backward.
    Full,
}

/// Optimizer-state placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Offload {
    /// Optimizer state lives in HBM.
    None,
    /// Optimizer state lives in host DRAM; each step pays the PCIe round
    /// trip of the gradient shard down and the updated weight shard up.
    OptimizerCpu {
        /// Effective host-link bandwidth (GB/s).
        pcie_gbps: f64,
    },
}

/// Pipeline schedule driving the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// Classic 1F1B (W folded into B); rank `r` holds stage `r`.
    OneFOneB,
    /// Bidirectional DualPipe with in-flight throttling; rank `r` holds
    /// stages `r` and `PP−1−r` (double weights, decoupled W chunks).
    DualPipe,
}

/// A full training memory plan: parallelism, precision, schedule and the
/// memory/time trade-off knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemPlan {
    /// Pipeline stages.
    pub pp: usize,
    /// Expert-parallel group size (routed experts divided across it).
    pub ep: usize,
    /// Tensor-parallel group size (wide activations and all parameters
    /// divided across it; V3 trains with TP = 1).
    pub tp: usize,
    /// Data-parallel replicas sharing ZeRO shards.
    pub zero_dp: usize,
    /// What ZeRO shards.
    pub zero_stage: ZeroStage,
    /// Activation recomputation policy.
    pub recompute: Recompute,
    /// Optimizer-state placement.
    pub offload: Offload,
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
    /// Microbatches per step (DualPipe needs an even count ≥ 2·pp).
    pub microbatches: usize,
    /// Tokens per microbatch per pipeline.
    pub tokens_per_micro: usize,
    /// Bytes per weight element (1 = FP8).
    pub weight_bytes: f64,
    /// Bytes per gradient element (2 = BF16).
    pub grad_bytes: f64,
    /// Optimizer bytes per parameter (FP32 master + two Adam moments = 12).
    pub optimizer_bytes: f64,
    /// Bytes per stashed activation element (2 = BF16).
    pub act_bytes: f64,
    /// Per-microbatch chunk durations.
    pub times: ChunkTimes,
    /// Optimizer step seconds (before any offload penalty).
    pub optimizer_seconds: f64,
}

impl MemPlan {
    /// DeepSeek-V3's production training plan: PP16 × EP64, TP1, 128-way
    /// ZeRO-1, selective recomputation, no offload, DualPipe, 120
    /// microbatches of 4096 tokens, FP8 weights / BF16 grads and
    /// activations. Chunk times come from the Table 4 harness so the
    /// timeline shares the trainstep model's clock.
    #[must_use]
    pub fn deepseek_v3_production() -> Self {
        let ts = TrainStepConfig::deepseek_v3(1.0);
        Self {
            pp: 16,
            ep: 64,
            tp: 1,
            zero_dp: 128,
            zero_stage: ZeroStage::Z1,
            recompute: Recompute::Selective,
            offload: Offload::None,
            schedule: ScheduleKind::DualPipe,
            microbatches: 120,
            tokens_per_micro: 4096,
            weight_bytes: 1.0,
            grad_bytes: 2.0,
            optimizer_bytes: 12.0,
            act_bytes: 2.0,
            times: chunk_times(&ts),
            optimizer_seconds: ts.optimizer_seconds,
        }
    }

    /// The naive foil: same parallelism and precision, but no
    /// recomputation, plain 1F1B, ZeRO-1, everything in HBM. This is the
    /// plan the acceptance test shows does *not* fit 80 GB.
    #[must_use]
    pub fn naive() -> Self {
        Self {
            recompute: Recompute::None,
            schedule: ScheduleKind::OneFOneB,
            ..Self::deepseek_v3_production()
        }
    }

    /// Basic sanity of the degrees of freedom.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.pp > 0
            && self.ep > 0
            && self.tp > 0
            && self.zero_dp > 0
            && self.microbatches > 0
            && self.tokens_per_micro > 0
            && self.weight_bytes > 0.0
            && self.grad_bytes > 0.0
            && self.optimizer_bytes > 0.0
            && self.act_bytes > 0.0
            && self.optimizer_seconds >= 0.0
            && self.times.is_valid()
            && (self.schedule != ScheduleKind::DualPipe
                || (self.microbatches.is_multiple_of(2) && self.microbatches >= 2 * self.pp))
    }
}

/// The GPU the plan must fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// HBM capacity (GB).
    pub hbm_gb: f64,
    /// Runtime reserve (fragmentation, NCCL buffers, CUDA context).
    pub reserve_gb: f64,
}

impl GpuSpec {
    /// An 80 GB H800 with a 10 GB runtime reserve, matching the
    /// steady-state calculator's fit test.
    #[must_use]
    pub fn h800() -> Self {
        Self { hbm_gb: 80.0, reserve_gb: 10.0 }
    }

    /// Usable capacity.
    #[must_use]
    pub fn budget_gb(&self) -> f64 {
        self.hbm_gb - self.reserve_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_plan_is_valid() {
        assert!(MemPlan::deepseek_v3_production().is_valid());
        assert!(MemPlan::naive().is_valid());
    }

    #[test]
    fn dualpipe_needs_enough_even_microbatches() {
        let mut p = MemPlan::deepseek_v3_production();
        p.microbatches = 31;
        assert!(!p.is_valid());
        p.microbatches = 30;
        assert!(!p.is_valid(), "30 < 2·16");
        p.schedule = ScheduleKind::OneFOneB;
        assert!(p.is_valid(), "1F1B takes any count");
    }

    #[test]
    fn h800_budget() {
        let g = GpuSpec::h800();
        assert!((g.budget_gb() - 70.0).abs() < 1e-12);
    }
}
