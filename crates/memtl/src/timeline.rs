//! The event-driven memory timeline: live bytes per category over a step.
//!
//! The walker takes the chunk events of a pipeline schedule
//! ([`dsv3_parallel::schedule::one_f_one_b_events`] or
//! [`dsv3_parallel::dualpipe::dualpipe_events`] with throttling) and plays
//! them against a [`MemPlan`]:
//!
//! * **Forward end** — the microbatch's stash for that stage becomes live.
//! * **Backward start/end** — a one-layer recompute buffer (the dropped
//!   tensors) plus ZeRO workspaces are live for the chunk; at the end the
//!   stash is freed — entirely under 1F1B (W folded into B), or down to
//!   the weight-gradient operands under DualPipe.
//! * **WeightGrad end** — the retained operands are freed.
//! * **Optimizer** — runs after the last chunk; CPU offload empties the
//!   HBM optimizer shard but pays the PCIe round trip of the gradient
//!   shard down and the updated weight shard back up.
//!
//! Activation and workspace bytes are tracked as integers so a drained
//! timeline ends at exactly zero — the no-leak property the proptests pin.
//! Recomputation stretches the backward chunks by `ρ·f`, where `ρ` is the
//! recomputed fraction of forward work, so the same walk also yields the
//! step-time cost of trading memory for FLOPs.

use crate::footprint::{stage_footprint, StageFootprint};
use crate::plan::{GpuSpec, MemPlan, Offload, ScheduleKind, ZeroStage};
use dsv3_model::config::ModelConfig;
use dsv3_parallel::dualpipe::{dualpipe_events, stage_of_global};
use dsv3_parallel::schedule::{one_f_one_b_events, ChunkEvent, ChunkKind, ChunkTimes};
use dsv3_telemetry::Recorder;
use serde::{Deserialize, Serialize};

/// Per-rank summary of the walked timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankTimeline {
    /// Pipeline rank.
    pub rank: usize,
    /// Resident weight bytes (GB) — two stages' worth under DualPipe.
    pub weights_gb: f64,
    /// Persistent gradient bytes (GB), sharded under ZeRO ≥ 2.
    pub grads_gb: f64,
    /// HBM optimizer bytes (GB); zero when offloaded.
    pub optimizer_gb: f64,
    /// Persistent floor: weights + grads + optimizer.
    pub floor_gb: f64,
    /// Peak total (GB) over the step.
    pub peak_gb: f64,
    /// Peak activation stash (GB).
    pub peak_activation_gb: f64,
    /// Peak transient workspace (GB): recompute buffers + ZeRO gathers.
    pub peak_workspace_gb: f64,
    /// Simulation time of the total peak (seconds).
    pub peak_time_s: f64,
    /// Activation bytes still live after the last chunk — zero for a
    /// leak-free walk.
    pub end_activation_bytes: i64,
    /// Optimizer phase duration including any offload penalty (seconds).
    pub optimizer_span_s: f64,
}

/// The walked timeline of one (model, plan) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineReport {
    /// Model name.
    pub model: String,
    /// The plan that was walked.
    pub plan: MemPlan,
    /// Per-rank summaries, rank order.
    pub ranks: Vec<RankTimeline>,
    /// Peak total across ranks (GB).
    pub peak_gb: f64,
    /// Rank holding the peak.
    pub peak_rank: usize,
    /// Schedule makespan before the optimizer (seconds).
    pub compute_time_s: f64,
    /// Full step time: makespan + optimizer + offload penalty (seconds).
    pub step_time_s: f64,
    /// Largest per-rank offload penalty (seconds; zero without offload).
    pub offload_penalty_s: f64,
    /// Recomputed fraction of forward work (stretches backward by ρ·f).
    pub recompute_overhead_frac: f64,
    /// Chunk events walked.
    pub chunk_events: usize,
}

impl TimelineReport {
    /// Whether the peak rank fits the GPU.
    #[must_use]
    pub fn fits(&self, spec: &GpuSpec) -> bool {
        self.peak_gb <= spec.budget_gb()
    }
}

/// Integer per-microbatch byte quanta of one stage (exact accounting).
#[derive(Debug, Clone, Copy, Default)]
struct StageBytes {
    /// Stash per microbatch (stored × tokens).
    stash: i64,
    /// Portion of the stash retained until the W chunk.
    wgrad: i64,
    /// One-layer recompute buffer during backward.
    rc_ws: i64,
    /// One-layer weight gather during F/B chunks (ZeRO-3).
    z3_ws: i64,
    /// One-layer full gradient during the weight-grad work (ZeRO-2/3).
    z2_ws: i64,
}

fn stage_bytes(sf: &StageFootprint, plan: &MemPlan) -> StageBytes {
    let tokens = plan.tokens_per_micro as f64;
    let z3 = matches!(plan.zero_stage, ZeroStage::Z3);
    let z2 = matches!(plan.zero_stage, ZeroStage::Z2 | ZeroStage::Z3);
    StageBytes {
        stash: (sf.stored_bytes_per_token * tokens).round() as i64,
        wgrad: (sf.wgrad_bytes_per_token.min(sf.stored_bytes_per_token) * tokens).round() as i64,
        rc_ws: (sf.dropped_max_layer_bytes * tokens).round() as i64,
        z3_ws: if z3 { (sf.max_layer_params * plan.weight_bytes).round() as i64 } else { 0 },
        z2_ws: if z2 { (sf.max_layer_params * plan.grad_bytes).round() as i64 } else { 0 },
    }
}

/// One state change: at `t`, rank `rank` gains/loses bytes. Frees sort
/// before allocations at equal timestamps so instantaneous handoffs do not
/// register phantom peaks.
struct Delta {
    t: f64,
    rank: usize,
    /// 0 = free, 1 = alloc.
    pri: u8,
    act: i64,
    ws: i64,
}

/// Walk the timeline of `plan` applied to `cfg`.
///
/// # Panics
///
/// Panics if the plan is invalid for the schedule (see
/// [`MemPlan::is_valid`]) or the model has fewer layers than stages need.
#[must_use]
pub fn simulate(cfg: &ModelConfig, plan: &MemPlan) -> TimelineReport {
    simulate_traced(cfg, plan, &mut Recorder::disabled())
}

/// [`simulate`], additionally exporting the timeline to `rec`: one trace
/// process per rank with chunk spans (`fwd`/`bwd`/`wgrad` threads) and
/// `act_gb`/`ws_gb`/`total_gb` counter tracks, plus aggregate metrics.
/// With a disabled recorder this is byte-identical to [`simulate`].
#[must_use]
#[allow(clippy::too_many_lines)]
// lint:entry — memtl schedule walker (training memory timeline).
pub fn simulate_traced(cfg: &ModelConfig, plan: &MemPlan, rec: &mut Recorder) -> TimelineReport {
    assert!(plan.is_valid(), "invalid memory plan");
    assert!(cfg.layers >= 1, "model needs at least one layer");
    let pp = plan.pp;
    let dp = plan.zero_dp as f64;

    // Per-stage footprints and byte quanta.
    let stages: Vec<StageFootprint> = (0..pp).map(|s| stage_footprint(cfg, plan, s)).collect();
    let quanta: Vec<StageBytes> = stages.iter().map(|sf| stage_bytes(sf, plan)).collect();

    // Recompute overhead ρ: recomputed fraction of forward work, weighted
    // across the whole model.
    let full_total: f64 = stages.iter().map(|s| s.full_bytes_per_token).sum();
    let stored_total: f64 = stages.iter().map(|s| s.stored_bytes_per_token).sum();
    let rho = if full_total > 0.0 { (full_total - stored_total) / full_total } else { 0.0 };
    let times = ChunkTimes { b: plan.times.b + rho * plan.times.f, ..plan.times };

    // Schedule the chunks.
    let (outcome, events) = match plan.schedule {
        ScheduleKind::OneFOneB => one_f_one_b_events(pp, plan.microbatches, times),
        ScheduleKind::DualPipe => dualpipe_events(pp, plan.microbatches, times, true),
    };
    let stage_for = |e: &ChunkEvent| -> usize {
        match plan.schedule {
            ScheduleKind::OneFOneB => e.rank,
            ScheduleKind::DualPipe => stage_of_global(pp, e.rank, e.micro, plan.microbatches),
        }
    };
    // Under 1F1B the weight-gradient work runs inside B, so the stash is
    // freed whole at B end; under DualPipe the W chunk frees the retained
    // operands.
    let folded_w = matches!(plan.schedule, ScheduleKind::OneFOneB);

    // Persistent floor per rank.
    let held_stages: Vec<Vec<usize>> = (0..pp)
        .map(|r| match plan.schedule {
            ScheduleKind::OneFOneB => vec![r],
            ScheduleKind::DualPipe => {
                let mirror = pp - 1 - r;
                if mirror == r {
                    vec![r]
                } else {
                    vec![r, mirror]
                }
            }
        })
        .collect();
    let rank_params: Vec<f64> =
        held_stages.iter().map(|ss| ss.iter().map(|&s| stages[s].params).sum()).collect();
    let weights_b: Vec<f64> = rank_params
        .iter()
        .map(|p| {
            let shard = if matches!(plan.zero_stage, ZeroStage::Z3) { dp } else { 1.0 };
            p * plan.weight_bytes / shard
        })
        .collect();
    let grads_b: Vec<f64> = rank_params
        .iter()
        .map(|p| {
            let shard =
                if matches!(plan.zero_stage, ZeroStage::Z2 | ZeroStage::Z3) { dp } else { 1.0 };
            p * plan.grad_bytes / shard
        })
        .collect();
    let opt_b: Vec<f64> = rank_params
        .iter()
        .map(|p| match plan.offload {
            Offload::OptimizerCpu { .. } => 0.0,
            Offload::None => p * plan.optimizer_bytes / dp,
        })
        .collect();

    // Expand chunks into deltas.
    let mut deltas: Vec<Delta> = Vec::with_capacity(events.len() * 3);
    for e in &events {
        let s = stage_for(e);
        let q = quanta[s];
        match e.kind {
            ChunkKind::Forward => {
                if q.z3_ws > 0 {
                    deltas.push(Delta { t: e.start, rank: e.rank, pri: 1, act: 0, ws: q.z3_ws });
                    deltas.push(Delta { t: e.end, rank: e.rank, pri: 0, act: 0, ws: -q.z3_ws });
                }
                deltas.push(Delta { t: e.end, rank: e.rank, pri: 1, act: q.stash, ws: 0 });
            }
            ChunkKind::Backward => {
                // Recompute buffer + ZeRO-3 gather (+ the ZeRO-2 full
                // gradient when W is folded in).
                let ws = q.rc_ws + q.z3_ws + if folded_w { q.z2_ws } else { 0 };
                if ws > 0 {
                    deltas.push(Delta { t: e.start, rank: e.rank, pri: 1, act: 0, ws });
                    deltas.push(Delta { t: e.end, rank: e.rank, pri: 0, act: 0, ws: -ws });
                }
                let freed = if folded_w { q.stash } else { q.stash - q.wgrad };
                deltas.push(Delta { t: e.end, rank: e.rank, pri: 0, act: -freed, ws: 0 });
            }
            ChunkKind::WeightGrad => {
                if q.z2_ws > 0 {
                    deltas.push(Delta { t: e.start, rank: e.rank, pri: 1, act: 0, ws: q.z2_ws });
                    deltas.push(Delta { t: e.end, rank: e.rank, pri: 0, act: 0, ws: -q.z2_ws });
                }
                deltas.push(Delta { t: e.end, rank: e.rank, pri: 0, act: -q.wgrad, ws: 0 });
            }
        }
    }
    // Stable sort: schedule order is already deterministic, so equal keys
    // keep their insertion order.
    deltas.sort_by(|a, b| {
        a.t.total_cmp(&b.t).then_with(|| a.pri.cmp(&b.pri)).then_with(|| a.rank.cmp(&b.rank))
    });

    // Trace plumbing (labels only formatted when recording).
    let mut pids = vec![0u64; pp];
    if rec.is_enabled() {
        for (r, slot) in pids.iter_mut().enumerate() {
            let pid = rec.process(&format!("rank{r:02}"));
            *slot = pid;
            // Register thread tracks in a fixed order per rank.
            for label in ["fwd", "bwd", "wgrad"] {
                rec.thread(pid, label);
            }
        }
        for e in &events {
            let pid = pids[e.rank];
            let (tid, label) = match e.kind {
                ChunkKind::Forward => (rec.thread(pid, "fwd"), "F"),
                ChunkKind::Backward => (rec.thread(pid, "bwd"), "B"),
                ChunkKind::WeightGrad => (rec.thread(pid, "wgrad"), "W"),
            };
            rec.span(
                pid,
                tid,
                "chunk",
                &format!("{label} m{}", e.micro),
                e.start * 1e6,
                e.end * 1e6,
            );
        }
    }

    // Walk.
    let mut act = vec![0i64; pp];
    let mut ws = vec![0i64; pp];
    let mut peak_total = vec![f64::NEG_INFINITY; pp];
    let mut peak_act = vec![0i64; pp];
    let mut peak_ws = vec![0i64; pp];
    let mut peak_t = vec![0f64; pp];
    let floors: Vec<f64> = (0..pp).map(|r| (weights_b[r] + grads_b[r] + opt_b[r]) / 1e9).collect();
    for r in 0..pp {
        // The floor itself is the initial peak (and the whole story for a
        // rank that never stashes).
        peak_total[r] = floors[r];
        if rec.is_enabled() {
            rec.counter_sample(pids[r], "floor_gb", 0.0, floors[r]);
        }
    }
    for d in &deltas {
        let r = d.rank;
        act[r] += d.act;
        ws[r] += d.ws;
        let total = floors[r] + (act[r] + ws[r]) as f64 / 1e9;
        if total > peak_total[r] {
            peak_total[r] = total;
            peak_t[r] = d.t;
        }
        peak_act[r] = peak_act[r].max(act[r]);
        peak_ws[r] = peak_ws[r].max(ws[r]);
        if rec.is_enabled() {
            rec.counter_sample(pids[r], "act_gb", d.t * 1e6, act[r] as f64 / 1e9);
            rec.counter_sample(pids[r], "ws_gb", d.t * 1e6, ws[r] as f64 / 1e9);
            rec.counter_sample(pids[r], "total_gb", d.t * 1e6, total);
        }
    }

    // Optimizer phase.
    let mut last_end = vec![0f64; pp];
    for e in &events {
        last_end[e.rank] = last_end[e.rank].max(e.end);
    }
    let penalty: Vec<f64> = rank_params
        .iter()
        .map(|p| match plan.offload {
            Offload::OptimizerCpu { pcie_gbps } => {
                assert!(pcie_gbps > 0.0, "offload needs positive PCIe bandwidth");
                // Gradient shard down, updated weight shard back up.
                p / dp * (plan.grad_bytes + plan.weight_bytes) / (pcie_gbps * 1e9)
            }
            Offload::None => 0.0,
        })
        .collect();
    let mut step_time = 0f64;
    let mut ranks = Vec::with_capacity(pp);
    for r in 0..pp {
        let span = plan.optimizer_seconds + penalty[r];
        let opt_end = last_end[r] + span;
        step_time = step_time.max(opt_end);
        if rec.is_enabled() {
            let pid = pids[r];
            let tid = rec.thread(pid, "bwd");
            rec.span(pid, tid, "opt", "optimizer", last_end[r] * 1e6, opt_end * 1e6);
            rec.observe("memtl.rank_peak_gb", peak_total[r]);
        }
        ranks.push(RankTimeline {
            rank: r,
            weights_gb: weights_b[r] / 1e9,
            grads_gb: grads_b[r] / 1e9,
            optimizer_gb: opt_b[r] / 1e9,
            floor_gb: floors[r],
            peak_gb: peak_total[r],
            peak_activation_gb: peak_act[r] as f64 / 1e9,
            peak_workspace_gb: peak_ws[r] as f64 / 1e9,
            peak_time_s: peak_t[r],
            end_activation_bytes: act[r] + ws[r],
            optimizer_span_s: span,
        });
    }
    let (peak_rank, peak_gb) = ranks
        .iter()
        .map(|r| (r.rank, r.peak_gb))
        .fold((0, f64::NEG_INFINITY), |best, cur| if cur.1 > best.1 { cur } else { best });
    let max_penalty = penalty.iter().copied().fold(0.0f64, f64::max);
    if rec.is_enabled() {
        rec.counter_add("memtl.chunks", events.len() as u64);
        rec.gauge_set("memtl.peak_gb", peak_gb);
        rec.gauge_set("memtl.step_time_s", step_time);
    }
    TimelineReport {
        model: cfg.name.clone(),
        plan: *plan,
        ranks,
        peak_gb,
        peak_rank,
        compute_time_s: outcome.total_time,
        step_time_s: step_time,
        offload_penalty_s: max_penalty,
        recompute_overhead_frac: rho,
        chunk_events: events.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{MemPlan, Offload, Recompute, ScheduleKind, ZeroStage};
    use dsv3_model::zoo;

    fn small_plan() -> MemPlan {
        MemPlan { pp: 4, zero_dp: 8, microbatches: 8, ..MemPlan::deepseek_v3_production() }
    }

    #[test]
    fn production_plan_fits_but_naive_does_not() {
        // The acceptance headline: selective recomputation + DualPipe
        // keeps the peak under an H800's budget; switching off
        // recomputation blows through it.
        let cfg = zoo::deepseek_v3();
        let spec = crate::plan::GpuSpec::h800();
        let prod = simulate(&cfg, &MemPlan::deepseek_v3_production());
        assert!(prod.fits(&spec), "production peak {} GB", prod.peak_gb);
        assert!(prod.peak_gb > 25.0, "not trivially empty: {}", prod.peak_gb);
        let naive = simulate(&cfg, &MemPlan::naive());
        assert!(!naive.fits(&spec), "naive peak {} GB should exceed 70", naive.peak_gb);
    }

    #[test]
    fn timeline_drains_to_zero() {
        let cfg = zoo::deepseek_v3();
        for schedule in [ScheduleKind::OneFOneB, ScheduleKind::DualPipe] {
            for zero in [ZeroStage::Z1, ZeroStage::Z2, ZeroStage::Z3] {
                let plan = MemPlan { schedule, zero_stage: zero, ..small_plan() };
                let r = simulate(&cfg, &plan);
                for rank in &r.ranks {
                    assert_eq!(rank.end_activation_bytes, 0, "{schedule:?} {zero:?}");
                }
            }
        }
    }

    #[test]
    fn recompute_cuts_peak_and_stretches_backward() {
        let cfg = zoo::deepseek_v3();
        let none = simulate(&cfg, &MemPlan { recompute: Recompute::None, ..small_plan() });
        let sel = simulate(&cfg, &MemPlan { recompute: Recompute::Selective, ..small_plan() });
        let full = simulate(&cfg, &MemPlan { recompute: Recompute::Full, ..small_plan() });
        assert!(none.peak_gb > sel.peak_gb && sel.peak_gb > full.peak_gb);
        assert!(none.recompute_overhead_frac.abs() < 1e-12);
        assert!(full.recompute_overhead_frac > sel.recompute_overhead_frac);
        assert!(full.compute_time_s > sel.compute_time_s);
        assert!(sel.compute_time_s > none.compute_time_s);
    }

    #[test]
    fn zero3_shrinks_the_floor() {
        let cfg = zoo::deepseek_v3();
        let z1 = simulate(&cfg, &MemPlan { zero_stage: ZeroStage::Z1, ..small_plan() });
        let z2 = simulate(&cfg, &MemPlan { zero_stage: ZeroStage::Z2, ..small_plan() });
        let z3 = simulate(&cfg, &MemPlan { zero_stage: ZeroStage::Z3, ..small_plan() });
        let floor = |r: &TimelineReport| r.ranks[0].floor_gb;
        assert!(floor(&z1) > floor(&z2));
        assert!(floor(&z2) > floor(&z3));
    }

    #[test]
    fn offload_empties_hbm_optimizer_and_costs_step_time() {
        let cfg = zoo::deepseek_v3();
        let base = simulate(&cfg, &small_plan());
        let off = simulate(
            &cfg,
            &MemPlan { offload: Offload::OptimizerCpu { pcie_gbps: 25.0 }, ..small_plan() },
        );
        assert!(off.ranks[0].optimizer_gb.abs() < 1e-12);
        assert!(base.ranks[0].optimizer_gb > 0.0);
        assert!(off.offload_penalty_s > 0.0);
        assert!(off.step_time_s > base.step_time_s);
        // Sanity of the PCIe model: shard bytes / bandwidth.
        let halved = simulate(
            &cfg,
            &MemPlan { offload: Offload::OptimizerCpu { pcie_gbps: 12.5 }, ..small_plan() },
        );
        assert!((halved.offload_penalty_s / off.offload_penalty_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dualpipe_doubles_resident_weights() {
        let cfg = zoo::deepseek_v3();
        let one = simulate(&cfg, &MemPlan { schedule: ScheduleKind::OneFOneB, ..small_plan() });
        let dual = simulate(&cfg, &MemPlan { schedule: ScheduleKind::DualPipe, ..small_plan() });
        // Rank 0 holds stages 0 and pp−1 under DualPipe.
        let w1 = one.ranks[0].weights_gb;
        let w2 = dual.ranks[0].weights_gb;
        assert!(w2 > 1.5 * w1, "{w2} vs {w1}");
    }

    #[test]
    fn traced_run_matches_plain_run() {
        let cfg = zoo::deepseek_v3();
        let plan = small_plan();
        let plain = simulate(&cfg, &plan);
        let mut rec = Recorder::new();
        let traced = simulate_traced(&cfg, &plan, &mut rec);
        assert_eq!(plain, traced);
        assert!(!rec.events().is_empty());
        assert!(rec.counters()["memtl.chunks"] > 0);
        // And the trace is valid Chrome JSON.
        let json = rec.export_trace().to_json();
        let stats = dsv3_telemetry::validate_chrome_trace(&json).expect("valid trace");
        assert!(stats.spans > 0 && stats.counters > 0);
    }

    #[test]
    fn mla_vs_mha_peak_contrast() {
        // Same geometry, MHA heads instead of latent attention: the
        // no-recompute stash is larger because full K/V rows are stashed
        // per head (and there is no latent to re-expand from cheaply).
        let v3 = zoo::deepseek_v3();
        let mut mha = v3.clone();
        mha.attention = dsv3_model::attention::Attention::Mha { heads: 128, head_dim: 128 };
        mha.name = "V3-geometry MHA".into();
        let plan = MemPlan { recompute: Recompute::None, ..small_plan() };
        let a = simulate(&v3, &plan);
        let b = simulate(&mha, &plan);
        assert!(b.peak_gb > 0.0 && a.peak_gb > 0.0);
        // MLA's qk=192 expansions actually stash *more* than MHA's 128 under
        // no recompute; the latent path wins once selective recompute drops
        // the expansions. Pin the selective ordering.
        let sel = MemPlan { recompute: Recompute::Selective, ..small_plan() };
        let asel = simulate(&v3, &sel);
        let bsel = simulate(&mha, &sel);
        let act = |r: &TimelineReport| r.ranks[0].peak_activation_gb;
        assert!(act(&asel) < act(&a), "selective must cut V3's stash");
        assert!(act(&bsel) < act(&b));
    }
}
