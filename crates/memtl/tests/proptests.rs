//! Property-based tests for the memory timeline walker.

use dsv3_memtl::{simulate, MemPlan, Offload, Recompute, ScheduleKind, ZeroStage};
use dsv3_model::config::ModelConfig;
use dsv3_model::zoo;
use dsv3_parallel::ChunkTimes;
use proptest::prelude::*;

fn arb_schedule() -> impl Strategy<Value = ScheduleKind> {
    (0usize..2).prop_map(|i| [ScheduleKind::OneFOneB, ScheduleKind::DualPipe][i])
}

fn arb_recompute() -> impl Strategy<Value = Recompute> {
    (0usize..3).prop_map(|i| [Recompute::None, Recompute::Selective, Recompute::Full][i])
}

fn arb_zero() -> impl Strategy<Value = ZeroStage> {
    (0usize..3).prop_map(|i| [ZeroStage::Z1, ZeroStage::Z2, ZeroStage::Z3][i])
}

/// A small but non-degenerate plan space: every stage holds ≥ 2 layers of
/// the scaled model and the DP width leaves ZeRO room to matter.
fn arb_plan() -> impl Strategy<Value = MemPlan> {
    (
        (2usize..=6, 1usize..=4, 4usize..=32, 1usize..=4),
        (arb_schedule(), arb_recompute(), arb_zero()),
    )
        .prop_map(
            |((pp, micro_scale, zero_dp, tokens_k), (schedule, recompute, zero_stage))| MemPlan {
                pp,
                ep: 4,
                tp: 1,
                zero_dp,
                zero_stage,
                recompute,
                offload: Offload::None,
                schedule,
                microbatches: 2 * pp * micro_scale,
                tokens_per_micro: 1024 * tokens_k,
                times: ChunkTimes { f: 1.0, b: 2.0, w: 1.0 },
                ..MemPlan::deepseek_v3_production()
            },
        )
}

/// A model deep enough for any generated `pp` (2 layers per stage at
/// `pp = 6`), with V3's per-layer shapes.
fn model(layers: usize) -> ModelConfig {
    ModelConfig {
        layers,
        leading_dense_layers: zoo::deepseek_v3().leading_dense_layers.min(layers),
        ..zoo::deepseek_v3()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every timeline drains: after the last chunk no activation bytes
    /// remain on any rank — the walker's alloc/free pairing is exact.
    #[test]
    fn timelines_drain_to_zero(plan in arb_plan(), extra_layers in 0usize..8) {
        let cfg = model(2 * plan.pp + extra_layers);
        let rep = simulate(&cfg, &plan);
        for r in &rep.ranks {
            prop_assert_eq!(r.end_activation_bytes, 0, "rank {} leaked", r.rank);
        }
        prop_assert!(rep.peak_gb > 0.0);
    }

    /// More recomputation never raises the peak: None ≥ Selective ≥ Full,
    /// rank by rank (the stash shrinks; floors and schedules are equal).
    #[test]
    fn recompute_is_monotone(plan in arb_plan(), extra_layers in 0usize..8) {
        let cfg = model(2 * plan.pp + extra_layers);
        let order = [Recompute::None, Recompute::Selective, Recompute::Full];
        let peaks: Vec<f64> = order
            .iter()
            .map(|&recompute| simulate(&cfg, &MemPlan { recompute, ..plan }).peak_gb)
            .collect();
        for w in peaks.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9, "{peaks:?}");
        }
    }

    /// A higher ZeRO stage never raises the peak when the sharded shards
    /// outweigh the transient gather buffers (guaranteed here: every stage
    /// holds at least two layers, and one-layer gathers divide by nothing).
    #[test]
    fn zero_stage_is_monotone(plan in arb_plan(), extra_layers in 0usize..8) {
        prop_assume!(plan.zero_dp >= 4);
        let cfg = model(2 * plan.pp + extra_layers);
        let order = [ZeroStage::Z1, ZeroStage::Z2, ZeroStage::Z3];
        let peaks: Vec<f64> = order
            .iter()
            .map(|&zero_stage| simulate(&cfg, &MemPlan { zero_stage, ..plan }).peak_gb)
            .collect();
        for w in peaks.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9, "{peaks:?}");
        }
    }

    /// Offload empties the HBM optimizer term and only ever adds step
    /// time; the memory peak never grows.
    #[test]
    fn offload_trades_time_for_memory(plan in arb_plan(), pcie in 8f64..128.0) {
        let cfg = model(2 * plan.pp);
        let kept = simulate(&cfg, &plan);
        let off = simulate(
            &cfg,
            &MemPlan { offload: Offload::OptimizerCpu { pcie_gbps: pcie }, ..plan },
        );
        prop_assert!(off.peak_gb <= kept.peak_gb + 1e-9);
        prop_assert!(off.step_time_s >= kept.step_time_s - 1e-9);
        prop_assert!(off.offload_penalty_s > 0.0);
        for r in &off.ranks {
            prop_assert!(r.optimizer_gb.abs() < 1e-12);
        }
    }
}
