//! Cross-check against the steady-state calculator.
//!
//! `dsv3_parallel::memory::breakdown` models the per-GPU *average*:
//! parameters spread evenly over PP (experts additionally over EP), and a
//! flat `tokens_in_flight` activation term. The timeline walker resolves
//! the same plan per rank and per event — so its floors must average back
//! to the steady-state figures exactly, and its stage-0 1F1B activation
//! peak (which realizes `tokens_in_flight = PP × micro_tokens`) must land
//! near the flat term, differing only by layer-rounding and the stash
//! constant (20·hidden vs the element-derived footprint).

use dsv3_memtl::{simulate, MemPlan, Recompute, ScheduleKind};
use dsv3_model::zoo;
use dsv3_parallel::memory::{breakdown, MemoryPlan};

#[test]
fn timeline_floors_average_to_the_steady_state_breakdown() {
    let cfg = zoo::deepseek_v3();
    let plan = MemPlan { schedule: ScheduleKind::OneFOneB, ..MemPlan::deepseek_v3_production() };
    let rep = simulate(&cfg, &plan);
    let ss = breakdown(&cfg, &MemoryPlan::deepseek_v3_production());

    let pp = plan.pp as f64;
    let mean = |f: fn(&dsv3_memtl::RankTimeline) -> f64| -> f64 {
        rep.ranks.iter().map(f).sum::<f64>() / pp
    };
    let w = mean(|r| r.weights_gb);
    let g = mean(|r| r.grads_gb);
    let o = mean(|r| r.optimizer_gb);
    // Same parameter mass, same sharding: the means agree to rounding.
    assert!((w - ss.weights_gb).abs() / ss.weights_gb < 1e-6, "{w} vs {}", ss.weights_gb);
    assert!((g - ss.gradients_gb).abs() / ss.gradients_gb < 1e-6, "{g} vs {}", ss.gradients_gb);
    assert!((o - ss.optimizer_gb).abs() / ss.optimizer_gb < 1e-6, "{o} vs {}", ss.optimizer_gb);
}

#[test]
fn stage0_activation_peak_matches_the_flat_steady_state_term() {
    let cfg = zoo::deepseek_v3();
    let plan = MemPlan {
        schedule: ScheduleKind::OneFOneB,
        recompute: Recompute::Selective,
        ..MemPlan::deepseek_v3_production()
    };
    let rep = simulate(&cfg, &plan);
    let ss = breakdown(&cfg, &MemoryPlan::deepseek_v3_production());
    // Stage 0 holds PP microbatches in flight — exactly the steady-state
    // plan's tokens_in_flight. The remaining gap is the 20·hidden stash
    // constant vs the element-derived selective footprint, plus stage 0
    // getting 4 of 61 layers instead of 61/16.
    let sim = rep.ranks[0].peak_activation_gb;
    let rel = (sim - ss.activations_gb).abs() / ss.activations_gb;
    assert!(rel < 0.15, "sim {sim} vs steady-state {} (rel {rel})", ss.activations_gb);
}

#[test]
fn both_models_agree_the_production_plan_fits_80gb() {
    let cfg = zoo::deepseek_v3();
    let ss = breakdown(&cfg, &MemoryPlan::deepseek_v3_production());
    let tl = simulate(&cfg, &MemPlan::deepseek_v3_production());
    assert!(ss.fits(80.0, 10.0));
    assert!(tl.fits(&dsv3_memtl::GpuSpec::h800()));
}
