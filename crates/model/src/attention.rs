//! Attention-variant descriptors and exact per-token KV-cache sizes.
//!
//! §2.1.2 of the paper compares the per-token KV cache of MLA against
//! GQA-based models (Table 1). The cache size is a pure function of the
//! attention configuration:
//!
//! * MHA/GQA/MQA cache 2 (K and V) × `kv_heads` × `head_dim` elements per
//!   layer per token.
//! * MLA caches only the compressed latent (`kv_lora_rank`) plus the decoupled
//!   RoPE key (`qk_rope_head_dim`) per layer per token.

use serde::{Deserialize, Serialize};

/// An attention mechanism, parameterized exactly as the public model configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Attention {
    /// Classic multi-head attention (every head has its own K/V).
    Mha {
        /// Number of query (= key/value) heads.
        heads: usize,
        /// Per-head dimension.
        head_dim: usize,
    },
    /// Grouped-query attention: `heads` query heads share `kv_heads` K/V heads.
    Gqa {
        /// Number of query heads.
        heads: usize,
        /// Number of key/value heads (`kv_heads ≤ heads`).
        kv_heads: usize,
        /// Per-head dimension.
        head_dim: usize,
    },
    /// Multi-query attention (one K/V head).
    Mqa {
        /// Number of query heads.
        heads: usize,
        /// Per-head dimension.
        head_dim: usize,
    },
    /// Multi-head latent attention (DeepSeek-V2/V3).
    Mla {
        /// Number of query heads.
        heads: usize,
        /// Query low-rank compression dimension (0 = no query compression).
        q_lora_rank: usize,
        /// KV low-rank latent dimension (the cached part).
        kv_lora_rank: usize,
        /// Per-head non-positional query/key dimension.
        qk_nope_head_dim: usize,
        /// Decoupled RoPE key dimension (cached once, shared by all heads).
        qk_rope_head_dim: usize,
        /// Per-head value dimension.
        v_head_dim: usize,
    },
}

impl Attention {
    /// KV-cache elements stored per token per layer.
    #[must_use]
    pub fn kv_elems_per_token_layer(&self) -> usize {
        match *self {
            Attention::Mha { heads, head_dim } => 2 * heads * head_dim,
            Attention::Gqa { kv_heads, head_dim, .. } => 2 * kv_heads * head_dim,
            Attention::Mqa { head_dim, .. } => 2 * head_dim,
            Attention::Mla { kv_lora_rank, qk_rope_head_dim, .. } => {
                kv_lora_rank + qk_rope_head_dim
            }
        }
    }

    /// KV-cache bytes per token per layer at `bytes_per_elem` precision.
    #[must_use]
    pub fn kv_bytes_per_token_layer(&self, bytes_per_elem: usize) -> usize {
        self.kv_elems_per_token_layer() * bytes_per_elem
    }

    /// Number of query heads.
    #[must_use]
    pub fn num_heads(&self) -> usize {
        match *self {
            Attention::Mha { heads, .. }
            | Attention::Gqa { heads, .. }
            | Attention::Mqa { heads, .. }
            | Attention::Mla { heads, .. } => heads,
        }
    }

    /// Per-head query-key dot-product dimension (nope+rope for MLA).
    #[must_use]
    pub fn qk_dim(&self) -> usize {
        match *self {
            Attention::Mha { head_dim, .. }
            | Attention::Gqa { head_dim, .. }
            | Attention::Mqa { head_dim, .. } => head_dim,
            Attention::Mla { qk_nope_head_dim, qk_rope_head_dim, .. } => {
                qk_nope_head_dim + qk_rope_head_dim
            }
        }
    }

    /// Per-head value dimension.
    #[must_use]
    pub fn v_dim(&self) -> usize {
        match *self {
            Attention::Mha { head_dim, .. }
            | Attention::Gqa { head_dim, .. }
            | Attention::Mqa { head_dim, .. } => head_dim,
            Attention::Mla { v_head_dim, .. } => v_head_dim,
        }
    }

    /// Attention projection parameter count for one layer with model width
    /// `hidden`.
    #[must_use]
    pub fn param_count(&self, hidden: usize) -> usize {
        match *self {
            Attention::Mha { heads, head_dim } => {
                // Q, K, V, O each hidden × heads·head_dim.
                4 * hidden * heads * head_dim
            }
            Attention::Gqa { heads, kv_heads, head_dim } => {
                2 * hidden * heads * head_dim + 2 * hidden * kv_heads * head_dim
            }
            Attention::Mqa { heads, head_dim } => {
                2 * hidden * heads * head_dim + 2 * hidden * head_dim
            }
            Attention::Mla {
                heads,
                q_lora_rank,
                kv_lora_rank,
                qk_nope_head_dim,
                qk_rope_head_dim,
                v_head_dim,
            } => {
                let qk = qk_nope_head_dim + qk_rope_head_dim;
                let q = if q_lora_rank == 0 {
                    hidden * heads * qk
                } else {
                    hidden * q_lora_rank + q_lora_rank * heads * qk
                };
                // Down-projection produces the latent + the shared RoPE key.
                let kv_down = hidden * (kv_lora_rank + qk_rope_head_dim);
                let k_up = kv_lora_rank * heads * qk_nope_head_dim;
                let v_up = kv_lora_rank * heads * v_head_dim;
                let o = heads * v_head_dim * hidden;
                q + kv_down + k_up + v_up + o
            }
        }
    }
}

/// KV retention policy (§2.1.2's survey: full cache vs sliding window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CachePolicy {
    /// Keep every token's KV.
    Full,
    /// Keep only the last `window` tokens (Longformer-style); cheaper but
    /// "compromises long-context reasoning".
    Windowed {
        /// Sliding-window length.
        window: usize,
    },
}

impl CachePolicy {
    /// Cached tokens for a context of `tokens`.
    #[must_use]
    pub fn cached_tokens(&self, tokens: usize) -> usize {
        match *self {
            CachePolicy::Full => tokens,
            CachePolicy::Windowed { window } => tokens.min(window),
        }
    }
}

/// Total cache bytes for `tokens` of context under a policy.
#[must_use]
pub fn cache_bytes(
    attn: &Attention,
    policy: CachePolicy,
    tokens: usize,
    layers: usize,
    bytes_per_elem: usize,
) -> usize {
    policy.cached_tokens(tokens) * attn.kv_bytes_per_token_layer(bytes_per_elem) * layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mla_cache_is_latent_plus_rope() {
        let a = Attention::Mla {
            heads: 128,
            q_lora_rank: 1536,
            kv_lora_rank: 512,
            qk_nope_head_dim: 128,
            qk_rope_head_dim: 64,
            v_head_dim: 128,
        };
        assert_eq!(a.kv_elems_per_token_layer(), 576);
        assert_eq!(a.kv_bytes_per_token_layer(2), 1152);
    }

    #[test]
    fn gqa_cache() {
        let a = Attention::Gqa { heads: 64, kv_heads: 8, head_dim: 128 };
        assert_eq!(a.kv_elems_per_token_layer(), 2048);
    }

    #[test]
    fn mqa_is_single_group_gqa() {
        let mqa = Attention::Mqa { heads: 32, head_dim: 128 };
        let gqa1 = Attention::Gqa { heads: 32, kv_heads: 1, head_dim: 128 };
        assert_eq!(mqa.kv_elems_per_token_layer(), gqa1.kv_elems_per_token_layer());
    }

    #[test]
    fn mha_dwarfs_mla() {
        let mha = Attention::Mha { heads: 128, head_dim: 128 };
        let mla = Attention::Mla {
            heads: 128,
            q_lora_rank: 1536,
            kv_lora_rank: 512,
            qk_nope_head_dim: 128,
            qk_rope_head_dim: 64,
            v_head_dim: 128,
        };
        assert!(mha.kv_elems_per_token_layer() > 50 * mla.kv_elems_per_token_layer());
    }

    #[test]
    fn param_counts_positive_and_sane() {
        let gqa = Attention::Gqa { heads: 64, kv_heads: 8, head_dim: 128 };
        // Q/O dominate: 2*h*8192 vs KV 2*h*1024.
        let p = gqa.param_count(8192);
        assert_eq!(p, 2 * 8192 * 8192 + 2 * 8192 * 1024);
    }

    #[test]
    fn windowed_cache_caps_memory() {
        let gqa = Attention::Gqa { heads: 64, kv_heads: 8, head_dim: 128 };
        let full = cache_bytes(&gqa, CachePolicy::Full, 100_000, 80, 2);
        let win = cache_bytes(&gqa, CachePolicy::Windowed { window: 4096 }, 100_000, 80, 2);
        assert!(win < full / 20);
        // Short contexts are unaffected by the window.
        assert_eq!(
            cache_bytes(&gqa, CachePolicy::Windowed { window: 4096 }, 1000, 80, 2),
            cache_bytes(&gqa, CachePolicy::Full, 1000, 80, 2)
        );
    }

    #[test]
    fn qk_v_dims() {
        let a = Attention::Mla {
            heads: 128,
            q_lora_rank: 1536,
            kv_lora_rank: 512,
            qk_nope_head_dim: 128,
            qk_rope_head_dim: 64,
            v_head_dim: 128,
        };
        assert_eq!(a.qk_dim(), 192);
        assert_eq!(a.v_dim(), 128);
        assert_eq!(a.num_heads(), 128);
    }
}
