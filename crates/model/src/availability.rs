//! Checkpoint/restart availability: MTBF → Young/Daly interval → goodput.
//!
//! Large training jobs (§6.1's reliability concerns) lose work to node
//! failures and pay to checkpoint. With exponential failures at mean
//! `mtbf_s`, a checkpoint write cost `C`, and restart cost `R`, the
//! expected wall clock to complete one segment of `τ` useful seconds is
//! the classic resilience result
//!
//! ```text
//! E[T(τ)] = (M + R) · (e^((τ + C)/M) − 1)
//! ```
//!
//! and goodput is `τ / E[T(τ)]`. Young's first-order optimum for the
//! interval, refined by Daly, is `τ_opt ≈ sqrt(2 · C · M)` — checkpoint
//! too often and the writes dominate, too rarely and lost work dominates.
//! `dsv3_faults::training::simulate_goodput` replays the same regime
//! against a concrete failure timeline; the `fault_drill` experiment
//! checks the two agree within 5%.

use serde::{Deserialize, Serialize};

/// Failure and checkpoint cost parameters of a training deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityModel {
    /// Mean time between failures, seconds (exponential arrivals).
    pub mtbf_s: f64,
    /// Time to write one checkpoint, seconds.
    pub checkpoint_write_s: f64,
    /// Time from failure to compute resuming (reschedule + load), seconds.
    pub restart_s: f64,
}

impl AvailabilityModel {
    /// The Young/Daly first-order optimal checkpoint interval,
    /// `sqrt(2 · C · MTBF)` seconds of useful compute per checkpoint.
    #[must_use]
    pub fn young_daly_interval_s(&self) -> f64 {
        (2.0 * self.checkpoint_write_s * self.mtbf_s).sqrt()
    }

    /// Expected wall-clock seconds to bank `interval_s` of useful compute
    /// (compute + checkpoint + expected rework and restarts).
    #[must_use]
    pub fn expected_segment_wall_s(&self, interval_s: f64) -> f64 {
        let s = interval_s + self.checkpoint_write_s;
        (self.mtbf_s + self.restart_s) * (s / self.mtbf_s).exp_m1()
    }

    /// Goodput fraction at a given interval: useful seconds banked per
    /// wall-clock second, in `(0, 1)`.
    #[must_use]
    pub fn goodput_fraction(&self, interval_s: f64) -> f64 {
        interval_s / self.expected_segment_wall_s(interval_s)
    }

    /// Goodput fraction at the Young/Daly interval.
    #[must_use]
    pub fn optimal_goodput(&self) -> f64 {
        self.goodput_fraction(self.young_daly_interval_s())
    }

    /// First-order expected useful seconds lost per failure at a given
    /// interval: the failure lands uniformly inside the `τ + C` segment
    /// (good approximation while `τ ≪ MTBF`), so half a segment on
    /// average. The resilience simulator reports its *measured*
    /// wasted-work-per-failure against this reference.
    #[must_use]
    pub fn expected_rework_s(&self, interval_s: f64) -> f64 {
        (interval_s + self.checkpoint_write_s) / 2.0
    }

    /// First-order expected time to recovery per failure: the restart
    /// cost plus the rework to regain the pre-failure progress point.
    #[must_use]
    pub fn expected_ettr_s(&self, interval_s: f64) -> f64 {
        self.restart_s + self.expected_rework_s(interval_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AvailabilityModel {
        AvailabilityModel { mtbf_s: 3_600.0, checkpoint_write_s: 60.0, restart_s: 180.0 }
    }

    #[test]
    fn young_daly_interval_matches_formula() {
        let av = model();
        assert!((av.young_daly_interval_s() - (2.0 * 60.0 * 3_600.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn optimum_beats_neighbours() {
        let av = model();
        let tau = av.young_daly_interval_s();
        let best = av.goodput_fraction(tau);
        // Young/Daly is first-order optimal; the true optimum of the exact
        // expression sits nearby, so a coarse bracket must not beat it.
        assert!(best > av.goodput_fraction(tau / 4.0));
        assert!(best > av.goodput_fraction(tau * 4.0));
        assert!(best > 0.0 && best < 1.0);
    }

    #[test]
    fn rare_failures_approach_checkpoint_only_overhead() {
        let av = AvailabilityModel { mtbf_s: 1e9, checkpoint_write_s: 60.0, restart_s: 180.0 };
        let tau = 3_600.0;
        let ideal = tau / (tau + 60.0);
        assert!((av.goodput_fraction(tau) - ideal).abs() < 1e-3);
    }

    #[test]
    fn ettr_combines_restart_and_half_a_segment() {
        let av = model();
        let tau = av.young_daly_interval_s();
        assert!((av.expected_rework_s(tau) - (tau + 60.0) / 2.0).abs() < 1e-12);
        assert!((av.expected_ettr_s(tau) - (180.0 + (tau + 60.0) / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn shorter_mtbf_means_lower_goodput() {
        let healthy = model();
        let flaky = AvailabilityModel { mtbf_s: 600.0, ..healthy };
        assert!(flaky.optimal_goodput() < healthy.optimal_goodput());
    }
}
