//! Model configurations and the zoo used by the paper's tables.
//!
//! Dimensions follow the published configuration files of each model
//! (DeepSeek-V2/V3 technical reports, Qwen2.5 and Llama-3.1 model cards).

use crate::attention::Attention;
use serde::{Deserialize, Serialize};

/// Feed-forward network of a layer: dense or DeepSeekMoE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ffn {
    /// Dense (SwiGLU: gate/up/down) with the given intermediate size.
    Dense {
        /// Intermediate (hidden) size of the FFN.
        intermediate: usize,
    },
    /// DeepSeekMoE: routed experts plus always-active shared experts.
    Moe {
        /// Total routed experts.
        routed_experts: usize,
        /// Routed experts activated per token.
        active_experts: usize,
        /// Shared experts (always active).
        shared_experts: usize,
        /// Per-expert intermediate size.
        expert_intermediate: usize,
    },
}

/// A transformer architecture, sufficient for the paper's analytical models.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name (as used in the paper's tables).
    pub name: String,
    /// Number of transformer layers.
    pub layers: usize,
    /// Model width.
    pub hidden: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Attention mechanism.
    pub attention: Attention,
    /// FFN used by most layers.
    pub ffn: Ffn,
    /// Leading layers that use a dense FFN instead of `ffn` (DeepSeek MoE
    /// models replace the first k MoE layers with dense ones).
    pub leading_dense_layers: usize,
    /// Intermediate size of those leading dense layers.
    pub leading_dense_intermediate: usize,
    /// Number of Multi-Token Prediction modules (0 = none).
    pub mtp_modules: usize,
}

impl ModelConfig {
    /// KV-cache bytes per token across all layers at `bytes_per_elem`.
    ///
    /// This is exactly the quantity of Table 1 (with `bytes_per_elem = 2`
    /// for BF16).
    ///
    /// ```
    /// use dsv3_model::zoo;
    ///
    /// assert_eq!(zoo::deepseek_v3().kv_cache_bytes_per_token(2), 70_272);
    /// ```
    #[must_use]
    pub fn kv_cache_bytes_per_token(&self, bytes_per_elem: usize) -> usize {
        self.attention.kv_bytes_per_token_layer(bytes_per_elem) * self.layers
    }

    /// Convenience: KV cache per token in KB (decimal, as the paper reports).
    #[must_use]
    pub fn kv_cache_kb_per_token(&self, bytes_per_elem: usize) -> f64 {
        self.kv_cache_bytes_per_token(bytes_per_elem) as f64 / 1000.0
    }

    /// Whether layer `l` (0-based) uses a dense FFN.
    #[must_use]
    pub fn layer_is_dense(&self, l: usize) -> bool {
        l < self.leading_dense_layers || matches!(self.ffn, Ffn::Dense { .. })
    }
}

/// The model zoo of the paper's tables.
pub mod zoo {
    use super::*;

    /// DeepSeek-V3 (671B total / 37B activated, 61 layers, MLA + MoE).
    #[must_use]
    pub fn deepseek_v3() -> ModelConfig {
        ModelConfig {
            name: "DeepSeek-V3".into(),
            layers: 61,
            hidden: 7168,
            vocab: 129_280,
            attention: Attention::Mla {
                heads: 128,
                q_lora_rank: 1536,
                kv_lora_rank: 512,
                qk_nope_head_dim: 128,
                qk_rope_head_dim: 64,
                v_head_dim: 128,
            },
            ffn: Ffn::Moe {
                routed_experts: 256,
                active_experts: 8,
                shared_experts: 1,
                expert_intermediate: 2048,
            },
            leading_dense_layers: 3,
            leading_dense_intermediate: 18_432,
            mtp_modules: 1,
        }
    }

    /// DeepSeek-V2 (236B total / 21B activated, 60 layers, MLA + MoE).
    #[must_use]
    pub fn deepseek_v2() -> ModelConfig {
        ModelConfig {
            name: "DeepSeek-V2".into(),
            layers: 60,
            hidden: 5120,
            vocab: 102_400,
            attention: Attention::Mla {
                heads: 128,
                q_lora_rank: 1536,
                kv_lora_rank: 512,
                qk_nope_head_dim: 128,
                qk_rope_head_dim: 64,
                v_head_dim: 128,
            },
            ffn: Ffn::Moe {
                routed_experts: 160,
                active_experts: 6,
                shared_experts: 2,
                expert_intermediate: 1536,
            },
            leading_dense_layers: 1,
            leading_dense_intermediate: 12_288,
            mtp_modules: 0,
        }
    }

    /// Qwen2.5-72B (dense, GQA).
    #[must_use]
    pub fn qwen25_72b() -> ModelConfig {
        ModelConfig {
            name: "Qwen-2.5 72B".into(),
            layers: 80,
            hidden: 8192,
            vocab: 152_064,
            attention: Attention::Gqa { heads: 64, kv_heads: 8, head_dim: 128 },
            ffn: Ffn::Dense { intermediate: 29_568 },
            leading_dense_layers: 0,
            leading_dense_intermediate: 0,
            mtp_modules: 0,
        }
    }

    /// LLaMA-3.1 405B (dense, GQA).
    #[must_use]
    pub fn llama31_405b() -> ModelConfig {
        ModelConfig {
            name: "LLaMA-3.1 405B".into(),
            layers: 126,
            hidden: 16_384,
            vocab: 128_256,
            attention: Attention::Gqa { heads: 128, kv_heads: 8, head_dim: 128 },
            ffn: Ffn::Dense { intermediate: 53_248 },
            leading_dense_layers: 0,
            leading_dense_intermediate: 0,
            mtp_modules: 0,
        }
    }

    /// All four models of Tables 1–2, in the paper's order.
    #[must_use]
    pub fn table_models() -> Vec<ModelConfig> {
        vec![deepseek_v2(), deepseek_v3(), qwen25_72b(), llama31_405b()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_kv_cache_exact() {
        // Paper Table 1, BF16: 70.272 KB / 327.680 KB / 516.096 KB.
        assert_eq!(zoo::deepseek_v3().kv_cache_bytes_per_token(2), 70_272);
        assert_eq!(zoo::qwen25_72b().kv_cache_bytes_per_token(2), 327_680);
        assert_eq!(zoo::llama31_405b().kv_cache_bytes_per_token(2), 516_096);
    }

    #[test]
    fn table1_multipliers() {
        let v3 = zoo::deepseek_v3().kv_cache_kb_per_token(2);
        let qwen = zoo::qwen25_72b().kv_cache_kb_per_token(2);
        let llama = zoo::llama31_405b().kv_cache_kb_per_token(2);
        assert!((qwen / v3 - 4.66).abs() < 0.01);
        // The exact ratio of the paper's own byte counts is 7.34; the table
        // prints 7.28 (likely rounded differently), so allow that slack.
        assert!((llama / v3 - 7.28).abs() < 0.1);
    }

    #[test]
    fn fp8_halves_kv_cache() {
        let v3 = zoo::deepseek_v3();
        assert_eq!(v3.kv_cache_bytes_per_token(1) * 2, v3.kv_cache_bytes_per_token(2));
    }

    #[test]
    fn dense_layer_flags() {
        let v3 = zoo::deepseek_v3();
        assert!(v3.layer_is_dense(0));
        assert!(v3.layer_is_dense(2));
        assert!(!v3.layer_is_dense(3));
        let qwen = zoo::qwen25_72b();
        assert!(qwen.layer_is_dense(50));
    }
}
