//! Expert placement and load balancing for EP inference (§2.3.2).
//!
//! "To achieve the fastest possible inference speed, each device should
//! ideally perform computations for a single expert" — but real routing is
//! skewed, so the slowest (hottest) device gates the whole step. DeepSeek's
//! production answer (open-sourced as EPLB) replicates hot experts and
//! packs replicas across GPUs. This module implements greedy
//! longest-processing-time placement with optional redundant replicas and
//! quantifies the resulting load balance.

use serde::{Deserialize, Serialize};

/// A placement of (possibly replicated) experts onto GPUs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// `gpu_of[replica]` — owning GPU of each replica.
    pub gpu_of: Vec<usize>,
    /// `expert_of[replica]` — the expert each replica serves.
    pub expert_of: Vec<usize>,
    /// Per-GPU total load (expert load split evenly across its replicas).
    pub gpu_load: Vec<f64>,
}

impl Placement {
    /// Max GPU load over mean GPU load (1.0 = perfect balance).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let mean = self.gpu_load.iter().sum::<f64>() / self.gpu_load.len() as f64;
        let max = self.gpu_load.iter().copied().fold(0.0, f64::max);
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }
}

/// Place `loads[e]` (tokens routed to expert `e`) onto `gpus` GPUs with
/// `redundant` extra replicas granted to the hottest experts, using greedy
/// LPT (heaviest replica first onto the least-loaded GPU).
///
/// ```
/// use dsv3_model::eplb::{place, zipf_loads};
///
/// let loads = zipf_loads(64, 1.1, 100_000.0);
/// let balanced = place(&loads, 8, 16);
/// assert!(balanced.imbalance() < place(&loads, 8, 0).imbalance());
/// ```
///
/// # Panics
///
/// Panics if there are fewer expert replicas than GPUs or no experts.
#[must_use]
pub fn place(loads: &[f64], gpus: usize, redundant: usize) -> Placement {
    assert!(!loads.is_empty(), "no experts");
    assert!(gpus > 0, "no gpus");
    // Replica counts: every expert gets one; the `redundant` extra replicas
    // go to the experts with the highest per-replica load, iteratively.
    let mut replicas = vec![1usize; loads.len()];
    for _ in 0..redundant {
        let Some(hottest) = (0..loads.len()).max_by(|&a, &b| {
            (loads[a] / replicas[a] as f64).total_cmp(&(loads[b] / replicas[b] as f64))
        }) else {
            break;
        };
        replicas[hottest] += 1;
    }
    let total_replicas: usize = replicas.iter().sum();
    assert!(total_replicas >= gpus, "fewer replicas than GPUs leaves GPUs idle");
    // Build replica list with per-replica load, heaviest first.
    let mut replica_list: Vec<(usize, f64)> = Vec::with_capacity(total_replicas);
    for (e, &r) in replicas.iter().enumerate() {
        for _ in 0..r {
            replica_list.push((e, loads[e] / r as f64));
        }
    }
    replica_list.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    // LPT packing.
    let mut gpu_load = vec![0f64; gpus];
    let mut gpu_of = Vec::with_capacity(total_replicas);
    let mut expert_of = Vec::with_capacity(total_replicas);
    for (e, l) in replica_list {
        let Some(g) =
            (0..gpus).min_by(|&a, &b| gpu_load[a].total_cmp(&gpu_load[b]).then(a.cmp(&b)))
        else {
            break;
        };
        gpu_load[g] += l;
        gpu_of.push(g);
        expert_of.push(e);
    }
    Placement { gpu_of, expert_of, gpu_load }
}

/// Skewed expert-load generator (Zipf-like with exponent `alpha`), scaled to
/// `total_tokens` assignments.
#[must_use]
pub fn zipf_loads(experts: usize, alpha: f64, total_tokens: f64) -> Vec<f64> {
    assert!(experts > 0, "no experts");
    let raw: Vec<f64> = (1..=experts).map(|r| (r as f64).powf(-alpha)).collect();
    let z: f64 = raw.iter().sum();
    raw.iter().map(|v| v / z * total_tokens).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_loads_balance_perfectly() {
        let loads = vec![100.0; 64];
        let p = place(&loads, 8, 0);
        assert!((p.imbalance() - 1.0).abs() < 1e-9);
        assert_eq!(p.gpu_of.len(), 64);
    }

    #[test]
    fn load_conserved() {
        let loads = zipf_loads(64, 1.0, 10_000.0);
        let p = place(&loads, 8, 8);
        let placed: f64 = p.gpu_load.iter().sum();
        assert!((placed - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn redundancy_improves_skewed_balance() {
        let loads = zipf_loads(64, 1.2, 100_000.0);
        let base = place(&loads, 8, 0);
        let replicated = place(&loads, 8, 16);
        assert!(
            replicated.imbalance() < base.imbalance(),
            "{} vs {}",
            replicated.imbalance(),
            base.imbalance()
        );
        // With generous replication the hottest GPU is within 15% of mean.
        assert!(replicated.imbalance() < 1.15, "{}", replicated.imbalance());
    }

    #[test]
    fn replicas_go_to_hot_experts() {
        let mut loads = vec![10.0; 16];
        loads[3] = 1000.0;
        let p = place(&loads, 4, 3);
        let replicas_of_3 = p.expert_of.iter().filter(|e| **e == 3).count();
        assert_eq!(replicas_of_3, 4, "all extra replicas serve the hot expert");
    }

    #[test]
    fn imbalance_bounds_step_time() {
        // The step time is proportional to the max GPU load; EPLB's benefit
        // is exactly the imbalance ratio.
        let loads = zipf_loads(256, 1.0, 1_000_000.0);
        let before = place(&loads, 32, 0);
        let after = place(&loads, 32, 32);
        let speedup = before.gpu_load.iter().copied().fold(0.0, f64::max)
            / after.gpu_load.iter().copied().fold(0.0, f64::max);
        assert!(speedup > 1.2, "replication speeds the step by {speedup}x");
    }

    #[test]
    #[should_panic(expected = "fewer replicas")]
    fn too_few_replicas_panics() {
        let _ = place(&[1.0, 2.0], 8, 0);
    }
}
