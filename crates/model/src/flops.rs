//! Parameter counting and FLOPs-per-token models (Table 2).
//!
//! The training-cost model follows the convention the paper's Table 2
//! numbers are consistent with: `6 × activated parameters` for all matrix
//! multiplies (2 forward + 4 backward FLOPs per parameter per token) plus
//! `3 ×` the causal attention-core FLOPs (QKᵀ and attention×V, forward +
//! 2× backward), evaluated at an average attended length of `seq / 2`.

use crate::config::{Ffn, ModelConfig};
use serde::{Deserialize, Serialize};

/// Parameter-count breakdown of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamCounts {
    /// All parameters, including every routed expert and embeddings.
    pub total: usize,
    /// Parameters touched by one token (active experts only).
    pub activated: usize,
    /// Embedding + unembedding parameters (included in the two above).
    pub embedding: usize,
}

impl ParamCounts {
    /// Activated parameters that participate in matrix multiplies: the input
    /// embedding is a table lookup, not a GEMM, so it contributes no FLOPs
    /// (the unembedding head does and stays included).
    #[must_use]
    pub fn activated_matmul(&self) -> usize {
        self.activated - self.embedding / 2
    }
}

/// SwiGLU FFN parameter count (gate, up, down projections).
fn ffn_params(hidden: usize, intermediate: usize) -> usize {
    3 * hidden * intermediate
}

/// Count parameters of `cfg`.
#[must_use]
pub fn param_counts(cfg: &ModelConfig) -> ParamCounts {
    let attn = cfg.attention.param_count(cfg.hidden) * cfg.layers;
    let embedding = 2 * cfg.vocab * cfg.hidden;
    let mut total_ffn = 0usize;
    let mut active_ffn = 0usize;
    for l in 0..cfg.layers {
        if cfg.layer_is_dense(l) {
            let inter = match cfg.ffn {
                Ffn::Dense { intermediate } => intermediate,
                Ffn::Moe { .. } => cfg.leading_dense_intermediate,
            };
            let p = ffn_params(cfg.hidden, inter);
            total_ffn += p;
            active_ffn += p;
        } else if let Ffn::Moe {
            routed_experts,
            active_experts,
            shared_experts,
            expert_intermediate,
        } = cfg.ffn
        {
            let per_expert = ffn_params(cfg.hidden, expert_intermediate);
            total_ffn += (routed_experts + shared_experts) * per_expert;
            active_ffn += (active_experts + shared_experts) * per_expert;
            // Router weights.
            total_ffn += cfg.hidden * routed_experts;
            active_ffn += cfg.hidden * routed_experts;
        }
    }
    ParamCounts {
        total: attn + total_ffn + embedding,
        activated: attn + active_ffn + embedding,
        embedding,
    }
}

/// Causal attention-core FLOPs per token for a *forward* pass over all
/// layers, at sequence length `seq` (average attended length `seq/2`).
#[must_use]
pub fn attention_core_flops_per_token(cfg: &ModelConfig, seq: usize) -> f64 {
    let heads = cfg.attention.num_heads() as f64;
    let qk = cfg.attention.qk_dim() as f64;
    let v = cfg.attention.v_dim() as f64;
    let avg_len = seq as f64 / 2.0;
    // QKᵀ: 2·len·qk per head; A·V: 2·len·v per head.
    let per_layer = heads * (2.0 * avg_len * qk + 2.0 * avg_len * v);
    per_layer * cfg.layers as f64
}

/// Training FLOPs per token at sequence length `seq` (Table 2's metric).
#[must_use]
pub fn training_flops_per_token(cfg: &ModelConfig, seq: usize) -> f64 {
    let p = param_counts(cfg);
    6.0 * p.activated_matmul() as f64 + 3.0 * attention_core_flops_per_token(cfg, seq)
}

/// Training GFLOPs per token at sequence length `seq`.
#[must_use]
pub fn training_gflops_per_token(cfg: &ModelConfig, seq: usize) -> f64 {
    training_flops_per_token(cfg, seq) / 1e9
}

/// Inference (decode) FLOPs per token at context length `context`:
/// `2 × activated params` plus the attention core over the full cached
/// context.
#[must_use]
pub fn decode_flops_per_token(cfg: &ModelConfig, context: usize) -> f64 {
    let p = param_counts(cfg);
    let heads = cfg.attention.num_heads() as f64;
    let qk = cfg.attention.qk_dim() as f64;
    let v = cfg.attention.v_dim() as f64;
    let core = heads * (2.0 * context as f64 * (qk + v)) * cfg.layers as f64;
    2.0 * p.activated_matmul() as f64 + core
}

/// Bytes of weights read per decoded token (memory-bound decode model):
/// activated parameters × bytes per parameter.
#[must_use]
pub fn decode_weight_bytes_per_token(cfg: &ModelConfig, bytes_per_param: f64) -> f64 {
    param_counts(cfg).activated as f64 * bytes_per_param
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::zoo;

    fn within(value: f64, target: f64, tol: f64) -> bool {
        (value - target).abs() / target <= tol
    }

    #[test]
    fn v3_param_counts_match_published() {
        let p = param_counts(&zoo::deepseek_v3());
        assert!(within(p.total as f64, 671e9, 0.03), "total {}", p.total);
        assert!(within(p.activated as f64, 37e9, 0.03), "activated {}", p.activated);
    }

    #[test]
    fn v2_param_counts_match_published() {
        let p = param_counts(&zoo::deepseek_v2());
        assert!(within(p.total as f64, 236e9, 0.03), "total {}", p.total);
        assert!(within(p.activated as f64, 21e9, 0.05), "activated {}", p.activated);
    }

    #[test]
    fn dense_param_counts_match_published() {
        let q = param_counts(&zoo::qwen25_72b());
        assert!(within(q.total as f64, 72.7e9, 0.03), "qwen {}", q.total);
        let l = param_counts(&zoo::llama31_405b());
        assert!(within(l.total as f64, 405e9, 0.03), "llama {}", l.total);
    }

    #[test]
    fn table2_training_cost_shape() {
        // Paper Table 2 (seq 4096): 155 / 250 / 394 / 2448 GFLOPs per token.
        let g = |cfg| training_gflops_per_token(&cfg, 4096);
        let v2 = g(zoo::deepseek_v2());
        let v3 = g(zoo::deepseek_v3());
        let qwen = g(zoo::qwen25_72b());
        let llama = g(zoo::llama31_405b());
        assert!(within(v2, 155.0, 0.05), "v2 {v2}");
        assert!(within(v3, 250.0, 0.05), "v3 {v3}");
        // Qwen2.5-72B is the one model where the paper's number (394) implies a
        // smaller FFN than the published 29568 intermediate size; with the
        // real config the cost comes out ~13% higher. See EXPERIMENTS.md.
        assert!(within(qwen, 394.0, 0.15), "qwen {qwen}");
        assert!(within(llama, 2448.0, 0.05), "llama {llama}");
        // The headline claim: MoE models cost a fraction of comparable dense.
        assert!(v3 < qwen, "671B MoE cheaper to train per token than 72B dense");
        assert!(llama / v3 > 9.0, "405B dense ~an order of magnitude above V3");
    }

    #[test]
    fn activated_much_smaller_than_total_for_moe() {
        let p = param_counts(&zoo::deepseek_v3());
        assert!(p.total / p.activated > 15);
        let q = param_counts(&zoo::qwen25_72b());
        assert_eq!(q.total, q.activated, "dense models activate everything");
    }

    #[test]
    fn decode_flops_grow_with_context() {
        let cfg = zoo::deepseek_v3();
        assert!(decode_flops_per_token(&cfg, 8192) > decode_flops_per_token(&cfg, 1024));
    }

    #[test]
    fn decode_weight_traffic() {
        let cfg = zoo::deepseek_v3();
        let b = decode_weight_bytes_per_token(&cfg, 1.0); // FP8
        assert!(within(b, 37e9, 0.05), "{b}");
    }
}
