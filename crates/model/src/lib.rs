//! Model-architecture substrate for the DeepSeek-V3 reproduction.
//!
//! Everything in §2 of the paper that is a property of the *architecture* —
//! KV-cache footprints (Table 1), training FLOPs per token (Table 2), the
//! MLA latent-cache mechanism, the DeepSeekMoE node-limited gate (§4.3), and
//! the Multi-Token Prediction statistics (§2.3.3) — is implemented here, both
//! as analytical models over [`config::ModelConfig`] and as small functional
//! reference implementations on real tensors.
//!
//! * [`config`] — architecture descriptions + the model zoo used by the
//!   paper's tables (DeepSeek-V2/V3, Qwen2.5-72B, LLaMA-3.1-405B).
//! * [`attention`] — MHA/GQA/MQA/MLA descriptors and exact per-token KV
//!   cache sizes.
//! * [`flops`] — parameter counting and training/inference FLOPs per token.
//! * [`mla`] — a functional Multi-head Latent Attention layer with a latent
//!   cache, checked against explicit-KV attention.
//! * [`moe`] — the DeepSeekMoE sigmoid gate with node-limited (group-limited)
//!   top-k routing and load statistics.
//! * [`mtp`] — Multi-Token Prediction speculative-decoding statistics.
//! * [`eplb`] — expert placement / redundant-replica load balancing for
//!   EP inference (§2.3.2).
//! * [`train`] — a tiny trainer with pluggable precision backends for the
//!   FP8-vs-BF16 accuracy experiment (§2.4).
//! * [`availability`] — MTBF-driven Young/Daly checkpoint-interval and
//!   training-goodput model (§6.1 reliability).

#![forbid(unsafe_code)]

pub mod attention;
pub mod availability;
pub mod config;
pub mod eplb;
pub mod flops;
pub mod mla;
pub mod moe;
pub mod mtp;
pub mod train;
pub mod transformer;

pub use attention::Attention;
pub use config::{zoo, ModelConfig};
