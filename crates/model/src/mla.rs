//! A functional Multi-head Latent Attention layer with a latent KV cache.
//!
//! §2.1.2: MLA "compresses the KV representations of all attention heads
//! into a smaller latent vector using a projection matrix"; at inference time
//! only the latent (plus the decoupled RoPE key) is cached. This module
//! implements that computation on real tensors and verifies that attending
//! through the latent cache produces *identical* outputs to an explicit-KV
//! attention whose K/V are the up-projected latents — i.e. MLA trades cache
//! memory for up-projection compute with no change in the attended result.
//!
//! Positional rotation (RoPE) is applied as identity here: the decoupled
//! rope dimensions flow through the same cache path, which is what the
//! memory accounting and the equivalence property depend on.

use dsv3_numerics::minifloat::Format;
use dsv3_numerics::Matrix;
use serde::{Deserialize, Serialize};

/// Dimensions of an MLA layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlaDims {
    /// Model width.
    pub hidden: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Query low-rank dimension.
    pub q_lora_rank: usize,
    /// KV latent dimension (the cached part, excluding rope).
    pub kv_lora_rank: usize,
    /// Per-head non-positional QK dimension.
    pub qk_nope_head_dim: usize,
    /// Shared decoupled rope dimension.
    pub qk_rope_head_dim: usize,
    /// Per-head value dimension.
    pub v_head_dim: usize,
}

impl MlaDims {
    /// A small configuration for tests and examples.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            hidden: 64,
            heads: 4,
            q_lora_rank: 32,
            kv_lora_rank: 16,
            qk_nope_head_dim: 8,
            qk_rope_head_dim: 4,
            v_head_dim: 8,
        }
    }

    /// Cached elements per token (latent + shared rope key).
    #[must_use]
    pub fn latent_elems_per_token(&self) -> usize {
        self.kv_lora_rank + self.qk_rope_head_dim
    }

    /// Elements per token an explicit (MHA-style) cache would hold.
    #[must_use]
    pub fn explicit_elems_per_token(&self) -> usize {
        self.heads * (self.qk_nope_head_dim + self.qk_rope_head_dim + self.v_head_dim)
    }
}

/// One MLA layer: projection weights plus the growing latent cache.
#[derive(Debug, Clone)]
pub struct MlaLayer {
    /// Dimensions.
    pub dims: MlaDims,
    w_dq: Matrix,
    w_uq: Matrix,
    w_dkv: Matrix,
    w_uk: Matrix,
    w_uv: Matrix,
    w_o: Matrix,
    /// Latent cache: one row of `kv_lora_rank + rope` per past token.
    cache: Vec<Vec<f32>>,
}

impl MlaLayer {
    /// Create a layer with deterministic random weights.
    #[must_use]
    pub fn new(dims: MlaDims, seed: u64) -> Self {
        let qk = dims.qk_nope_head_dim + dims.qk_rope_head_dim;
        let s = |i: u64| seed.wrapping_mul(1000).wrapping_add(i);
        let init = |r: usize, c: usize, i: u64| Matrix::random(r, c, 1.0 / (r as f32).sqrt(), s(i));
        Self {
            w_dq: init(dims.hidden, dims.q_lora_rank, 1),
            w_uq: init(dims.q_lora_rank, dims.heads * qk, 2),
            w_dkv: init(dims.hidden, dims.kv_lora_rank + dims.qk_rope_head_dim, 3),
            w_uk: init(dims.kv_lora_rank, dims.heads * dims.qk_nope_head_dim, 4),
            w_uv: init(dims.kv_lora_rank, dims.heads * dims.v_head_dim, 5),
            w_o: init(dims.heads * dims.v_head_dim, dims.hidden, 6),
            dims,
            cache: Vec::new(),
        }
    }

    /// Number of cached tokens.
    #[must_use]
    pub fn cached_tokens(&self) -> usize {
        self.cache.len()
    }

    /// Bytes held by the latent cache at `bytes_per_elem` precision.
    #[must_use]
    pub fn cache_bytes(&self, bytes_per_elem: usize) -> usize {
        self.cache.len() * self.dims.latent_elems_per_token() * bytes_per_elem
    }

    /// Clear the cache (new sequence).
    pub fn reset(&mut self) {
        self.cache.clear();
    }

    /// Drop the last `n` cached tokens (speculative-decoding rollback).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the cached length.
    pub fn truncate_cache(&mut self, n: usize) {
        assert!(n <= self.cache.len(), "cannot roll back {n} of {} tokens", self.cache.len());
        self.cache.truncate(self.cache.len() - n);
    }

    /// Quantize every cached latent through `format` with a per-token scale
    /// (§2.1.2's "Quantized Compression": low-bit KV storage on top of the
    /// latent compression). Returns the storage bytes per element the format
    /// implies (1 for FP8, 2 for BF16).
    pub fn quantize_cache(&mut self, format: Format) -> usize {
        for row in &mut self.cache {
            let amax = row.iter().map(|v| v.abs() as f64).fold(0.0, f64::max);
            let scale = if amax > 0.0 { amax / format.max_finite() } else { 1.0 };
            for v in row.iter_mut() {
                *v = (format.quantize(f64::from(*v) / scale) * scale) as f32;
            }
        }
        format.total_bits().div_ceil(8) as usize
    }

    /// Project `x` (one token, `hidden` long) to its latent row.
    fn latent_of(&self, x: &[f32]) -> Vec<f32> {
        let x = Matrix::from_vec(1, self.dims.hidden, x.to_vec());
        x.matmul(&self.w_dkv).data
    }

    /// Run one decode step: append `x`'s latent to the cache and return the
    /// attention output (`hidden` long).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != hidden`.
    pub fn decode_step(&mut self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.dims.hidden, "input width mismatch");
        self.cache.push(self.latent_of(x));
        self.attend(x)
    }

    /// Attention for query token `x` over the current latent cache,
    /// up-projecting K/V from latents on the fly (the MLA inference path).
    fn attend(&self, x: &[f32]) -> Vec<f32> {
        let d = &self.dims;
        let qk = d.qk_nope_head_dim + d.qk_rope_head_dim;
        let xq = Matrix::from_vec(1, d.hidden, x.to_vec());
        let q = xq.matmul(&self.w_dq).matmul(&self.w_uq); // 1 × heads*qk
        let t = self.cache.len();
        let scale = 1.0 / (qk as f64).sqrt();
        let mut heads_out = vec![0f32; d.heads * d.v_head_dim];
        for h in 0..d.heads {
            let q_nope = &q.data[h * qk..h * qk + d.qk_nope_head_dim];
            let q_rope = &q.data[h * qk + d.qk_nope_head_dim..(h + 1) * qk];
            // Scores over cached tokens.
            let mut scores = Vec::with_capacity(t);
            for c in &self.cache {
                let latent = &c[..d.kv_lora_rank];
                let k_rope = &c[d.kv_lora_rank..];
                // k_nope = latent × W_UK[:, h-slice]
                let mut dot = 0f64;
                for (j, qn) in q_nope.iter().enumerate() {
                    let mut k_j = 0f64;
                    for (l, lat) in latent.iter().enumerate() {
                        k_j += f64::from(*lat)
                            * f64::from(self.w_uk.get(l, h * d.qk_nope_head_dim + j));
                    }
                    dot += f64::from(*qn) * k_j;
                }
                for (qr, kr) in q_rope.iter().zip(k_rope) {
                    dot += f64::from(*qr) * f64::from(*kr);
                }
                scores.push(dot * scale);
            }
            let attn = softmax(&scores);
            // Weighted sum of up-projected values.
            for j in 0..d.v_head_dim {
                let mut acc = 0f64;
                for (a, c) in attn.iter().zip(&self.cache) {
                    let latent = &c[..d.kv_lora_rank];
                    let mut v_j = 0f64;
                    for (l, lat) in latent.iter().enumerate() {
                        v_j += f64::from(*lat) * f64::from(self.w_uv.get(l, h * d.v_head_dim + j));
                    }
                    acc += a * v_j;
                }
                heads_out[h * d.v_head_dim + j] = acc as f32;
            }
        }
        Matrix::from_vec(1, d.heads * d.v_head_dim, heads_out).matmul(&self.w_o).data
    }

    /// Reference path: materialize the explicit K/V cache (as an MHA engine
    /// would store it) and attend over it. Mathematically identical to
    /// [`decode_step`](Self::decode_step)'s latent path.
    ///
    /// Returns `(output, explicit_cache_elems)`.
    #[must_use]
    pub fn attend_explicit(&self, x: &[f32]) -> (Vec<f32>, usize) {
        let d = &self.dims;
        let qk = d.qk_nope_head_dim + d.qk_rope_head_dim;
        // Materialize K and V for every cached token.
        let t = self.cache.len();
        let mut k = vec![0f32; t * d.heads * qk];
        let mut v = vec![0f32; t * d.heads * d.v_head_dim];
        for (ti, c) in self.cache.iter().enumerate() {
            let latent = Matrix::from_vec(1, d.kv_lora_rank, c[..d.kv_lora_rank].to_vec());
            let k_nope = latent.matmul(&self.w_uk); // 1 × heads*nope
            let vv = latent.matmul(&self.w_uv); // 1 × heads*v
            for h in 0..d.heads {
                for j in 0..d.qk_nope_head_dim {
                    k[(ti * d.heads + h) * qk + j] = k_nope.data[h * d.qk_nope_head_dim + j];
                }
                for (j, kr) in c[d.kv_lora_rank..].iter().enumerate() {
                    k[(ti * d.heads + h) * qk + d.qk_nope_head_dim + j] = *kr;
                }
                for j in 0..d.v_head_dim {
                    v[(ti * d.heads + h) * d.v_head_dim + j] = vv.data[h * d.v_head_dim + j];
                }
            }
        }
        let xq = Matrix::from_vec(1, d.hidden, x.to_vec());
        let q = xq.matmul(&self.w_dq).matmul(&self.w_uq);
        let scale = 1.0 / (qk as f64).sqrt();
        let mut heads_out = vec![0f32; d.heads * d.v_head_dim];
        for h in 0..d.heads {
            let qh = &q.data[h * qk..(h + 1) * qk];
            let scores: Vec<f64> = (0..t)
                .map(|ti| {
                    let kh = &k[(ti * d.heads + h) * qk..(ti * d.heads + h + 1) * qk];
                    qh.iter().zip(kh).map(|(a, b)| f64::from(*a) * f64::from(*b)).sum::<f64>()
                        * scale
                })
                .collect();
            let attn = softmax(&scores);
            for j in 0..d.v_head_dim {
                let acc: f64 = attn
                    .iter()
                    .enumerate()
                    .map(|(ti, a)| a * f64::from(v[(ti * d.heads + h) * d.v_head_dim + j]))
                    .sum();
                heads_out[h * d.v_head_dim + j] = acc as f32;
            }
        }
        let out = Matrix::from_vec(1, d.heads * d.v_head_dim, heads_out).matmul(&self.w_o).data;
        (out, t * d.explicit_elems_per_token())
    }
}

/// Numerically stable softmax.
fn softmax(scores: &[f64]) -> Vec<f64> {
    let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|s| (s - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.iter().map(|e| e / z).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token(i: u64, hidden: usize) -> Vec<f32> {
        Matrix::random(1, hidden, 1.0, 777 + i).data
    }

    #[test]
    fn latent_and_explicit_paths_agree() {
        let mut layer = MlaLayer::new(MlaDims::tiny(), 1);
        for i in 0..6 {
            let x = token(i, layer.dims.hidden);
            let _ = layer.decode_step(&x);
        }
        let x = token(99, layer.dims.hidden);
        let via_latent = {
            let mut l2 = layer.clone();
            l2.decode_step(&x)
        };
        layer.cache.push(layer.latent_of(&x));
        let (via_explicit, elems) = layer.attend_explicit(&x);
        for (a, b) in via_latent.iter().zip(&via_explicit) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        assert_eq!(elems, 7 * layer.dims.explicit_elems_per_token());
    }

    #[test]
    fn cache_is_much_smaller_than_explicit() {
        let d = MlaDims::tiny();
        assert!(d.explicit_elems_per_token() > 3 * d.latent_elems_per_token());
        // And for the real V3 dims, the ratio is what makes Table 1 work:
        let v3 = MlaDims {
            hidden: 7168,
            heads: 128,
            q_lora_rank: 1536,
            kv_lora_rank: 512,
            qk_nope_head_dim: 128,
            qk_rope_head_dim: 64,
            v_head_dim: 128,
        };
        assert_eq!(v3.latent_elems_per_token(), 576);
        assert_eq!(v3.explicit_elems_per_token(), 128 * (128 + 64 + 128));
        assert!(v3.explicit_elems_per_token() / v3.latent_elems_per_token() > 70);
    }

    #[test]
    fn cache_grows_and_resets() {
        let mut layer = MlaLayer::new(MlaDims::tiny(), 2);
        for i in 0..5 {
            let x = token(i, layer.dims.hidden);
            let _ = layer.decode_step(&x);
        }
        assert_eq!(layer.cached_tokens(), 5);
        assert_eq!(layer.cache_bytes(2), 5 * 20 * 2);
        layer.reset();
        assert_eq!(layer.cached_tokens(), 0);
    }

    #[test]
    fn attention_weights_are_a_distribution() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn single_token_attends_to_itself() {
        let mut layer = MlaLayer::new(MlaDims::tiny(), 3);
        let x = token(0, layer.dims.hidden);
        let out = layer.decode_step(&x);
        assert_eq!(out.len(), layer.dims.hidden);
        assert!(out.iter().any(|v| *v != 0.0));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut layer = MlaLayer::new(MlaDims::tiny(), 4);
        let _ = layer.decode_step(&[0.0; 3]);
    }

    #[test]
    fn quantized_cache_keeps_attention_accurate() {
        // §2.1.2: KV pairs stored in low-bit representations achieve
        // "significant compression with minimal impact". FP8-quantizing the
        // latent cache perturbs the attention output only slightly, and
        // wider formats perturb it less.
        let dims = MlaDims::tiny();
        let mut exact = MlaLayer::new(dims, 9);
        for i in 0..16 {
            let x = token(i, dims.hidden);
            let _ = exact.decode_step(&x);
        }
        let q = token(99, dims.hidden);
        let reference = {
            let mut l = exact.clone();
            l.decode_step(&q)
        };
        let err_for = |fmt: Format| -> f64 {
            let mut l = exact.clone();
            let _ = l.quantize_cache(fmt);
            let out = l.decode_step(&q);
            let num: f64 = reference
                .iter()
                .zip(&out)
                .map(|(a, b)| (f64::from(*a) - f64::from(*b)).powi(2))
                .sum::<f64>()
                .sqrt();
            let den: f64 = reference.iter().map(|a| f64::from(*a).powi(2)).sum::<f64>().sqrt();
            num / den
        };
        let e_fp8 = err_for(Format::E4M3);
        let e_bf16 = err_for(Format::BF16);
        assert!(e_fp8 < 0.05, "fp8 cache error {e_fp8}");
        assert!(e_bf16 < e_fp8, "bf16 {e_bf16} vs fp8 {e_fp8}");
    }

    #[test]
    fn quantized_cache_halves_bytes() {
        let mut l = MlaLayer::new(MlaDims::tiny(), 10);
        let x = token(0, l.dims.hidden);
        let _ = l.decode_step(&x);
        let bpe = l.quantize_cache(Format::E4M3);
        assert_eq!(bpe, 1);
        assert_eq!(l.cache_bytes(bpe) * 2, l.cache_bytes(2));
    }

    #[test]
    fn truncate_rolls_back_speculation() {
        let dims = MlaDims::tiny();
        let mut a = MlaLayer::new(dims, 11);
        let mut b = MlaLayer::new(dims, 11);
        let toks: Vec<Vec<f32>> = (0..5).map(|i| token(i, dims.hidden)).collect();
        for t in &toks[..4] {
            let _ = a.decode_step(t);
        }
        for t in &toks[..3] {
            let _ = b.decode_step(t);
        }
        // a speculated one extra token; rolling it back re-synchronizes.
        a.truncate_cache(1);
        assert_eq!(a.cached_tokens(), b.cached_tokens());
        let out_a = a.decode_step(&toks[4]);
        let out_b = b.decode_step(&toks[4]);
        assert_eq!(out_a, out_b);
    }

    #[test]
    #[should_panic(expected = "roll back")]
    fn truncate_too_far_panics() {
        let mut l = MlaLayer::new(MlaDims::tiny(), 12);
        l.truncate_cache(1);
    }

    #[test]
    fn outputs_deterministic_for_seed() {
        let mut a = MlaLayer::new(MlaDims::tiny(), 5);
        let mut b = MlaLayer::new(MlaDims::tiny(), 5);
        let x = token(1, a.dims.hidden);
        assert_eq!(a.decode_step(&x), b.decode_step(&x));
    }
}
