//! The DeepSeekMoE gate with node-limited (group-limited) top-k routing.
//!
//! §4.3: the 256 routed experts are arranged into 8 groups of 32, one group
//! per node; the router algorithmically guarantees each token touches at most
//! `top_groups` (4) nodes, so the deduplicated inter-node (IB) traffic per
//! token is `M·t` with `M ≤ 4` instead of `8·t`.
//!
//! The selection procedure follows DeepSeek-V3: sigmoid affinity scores, a
//! per-group score equal to the sum of the group's top-2 expert affinities,
//! top-`top_groups` group selection, then top-`top_k` experts within the
//! surviving groups. Gate weights are the selected affinities normalized to
//! sum to 1. An optional per-expert bias implements the auxiliary-loss-free
//! load balancing (bias steers *selection* only, never the weights).

use dsv3_numerics::Matrix;
use serde::{Deserialize, Serialize};

/// Routing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoeGateConfig {
    /// Total routed experts.
    pub experts: usize,
    /// Expert groups (= nodes under the paper's deployment).
    pub groups: usize,
    /// Maximum groups (nodes) a token may touch.
    pub top_groups: usize,
    /// Routed experts selected per token.
    pub top_k: usize,
}

impl MoeGateConfig {
    /// DeepSeek-V3's production configuration: 256 experts, 8 groups,
    /// ≤4 groups, top-8.
    #[must_use]
    pub fn deepseek_v3() -> Self {
        Self { experts: 256, groups: 8, top_groups: 4, top_k: 8 }
    }

    /// Experts per group.
    ///
    /// # Panics
    ///
    /// Panics if `experts` is not divisible by `groups`.
    #[must_use]
    pub fn experts_per_group(&self) -> usize {
        assert_eq!(self.experts % self.groups, 0, "experts must divide evenly into groups");
        self.experts / self.groups
    }

    /// Validity check used by constructors of dependent types.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.experts > 0
            && self.groups > 0
            && self.experts.is_multiple_of(self.groups)
            && self.top_groups > 0
            && self.top_groups <= self.groups
            && self.top_k > 0
            && self.top_k <= self.top_groups * (self.experts / self.groups)
    }
}

/// Result of routing one token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Routing {
    /// Selected routed expert indices (length `top_k`, unordered).
    pub experts: Vec<usize>,
    /// Normalized gate weights, aligned with `experts`.
    pub weights: Vec<f32>,
    /// Distinct groups (nodes) the token touches.
    pub groups_used: Vec<usize>,
}

impl Routing {
    /// Number of distinct nodes this token's experts live on (the `M` of
    /// §4.3).
    #[must_use]
    pub fn nodes_touched(&self) -> usize {
        self.groups_used.len()
    }
}

/// Route one token given its per-expert affinity `scores` (sigmoid outputs)
/// and optional selection `bias` (auxiliary-loss-free balancing).
///
/// ```
/// use dsv3_model::moe::{route, MoeGateConfig};
///
/// let cfg = MoeGateConfig::deepseek_v3();
/// let scores = vec![0.5f32; 256];
/// let r = route(&scores, None, &cfg);
/// assert_eq!(r.experts.len(), 8);
/// assert!(r.nodes_touched() <= 4);
/// ```
///
/// # Panics
///
/// Panics if the config is invalid, `scores.len() != experts`, or a provided
/// `bias` has the wrong length.
#[must_use]
pub fn route(scores: &[f32], bias: Option<&[f32]>, cfg: &MoeGateConfig) -> Routing {
    assert!(cfg.is_valid(), "invalid gate config {cfg:?}");
    assert_eq!(scores.len(), cfg.experts, "score vector length mismatch");
    if let Some(b) = bias {
        assert_eq!(b.len(), cfg.experts, "bias length mismatch");
    }
    let epg = cfg.experts_per_group();
    let biased = |e: usize| scores[e] + bias.map_or(0.0, |b| b[e]);

    // Group score: sum of the top-2 biased affinities within the group.
    let mut group_scores: Vec<(usize, f32)> = (0..cfg.groups)
        .map(|g| {
            let (mut best, mut second) = (f32::NEG_INFINITY, f32::NEG_INFINITY);
            for e in g * epg..(g + 1) * epg {
                let s = biased(e);
                if s > best {
                    second = best;
                    best = s;
                } else if s > second {
                    second = s;
                }
            }
            (g, best + if epg > 1 { second } else { 0.0 })
        })
        .collect();
    group_scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let allowed: Vec<usize> = group_scores[..cfg.top_groups].iter().map(|(g, _)| *g).collect();

    // Top-k experts within the allowed groups.
    let mut candidates: Vec<usize> = allowed.iter().flat_map(|g| g * epg..(g + 1) * epg).collect();
    candidates.sort_by(|a, b| biased(*b).total_cmp(&biased(*a)).then(a.cmp(b)));
    let experts: Vec<usize> = candidates[..cfg.top_k].to_vec();

    // Gate weights: *unbiased* affinities of the selected experts, normalized.
    let raw: Vec<f32> = experts.iter().map(|&e| scores[e]).collect();
    let z: f32 = raw.iter().sum::<f32>().max(1e-20);
    let weights: Vec<f32> = raw.iter().map(|r| r / z).collect();

    let mut groups_used: Vec<usize> = experts.iter().map(|e| e / epg).collect();
    groups_used.sort_unstable();
    groups_used.dedup();
    Routing { experts, weights, groups_used }
}

/// A full gate: affinity projection + balancing bias.
#[derive(Debug, Clone)]
pub struct MoeGate {
    /// Routing configuration.
    pub cfg: MoeGateConfig,
    w: Matrix,
    bias: Vec<f32>,
}

impl MoeGate {
    /// New gate for inputs of width `hidden`, deterministic in `seed`.
    #[must_use]
    pub fn new(hidden: usize, cfg: MoeGateConfig, seed: u64) -> Self {
        assert!(cfg.is_valid(), "invalid gate config {cfg:?}");
        Self {
            w: Matrix::random(hidden, cfg.experts, 1.0, seed),
            bias: vec![0.0; cfg.experts],
            cfg,
        }
    }

    /// Sigmoid affinity scores for one token.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the gate's input width.
    #[must_use]
    pub fn scores(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.w.rows, "input width mismatch");
        let logits = Matrix::from_vec(1, x.len(), x.to_vec()).matmul(&self.w);
        logits.data.iter().map(|l| 1.0 / (1.0 + (-l).exp())).collect()
    }

    /// Route one token end to end.
    #[must_use]
    pub fn route_token(&self, x: &[f32]) -> Routing {
        route(&self.scores(x), Some(&self.bias), &self.cfg)
    }

    /// Auxiliary-loss-free balancing update (§ of the V3 report): raise the
    /// bias of underloaded experts and lower overloaded ones by `gamma`,
    /// given observed per-expert token counts.
    ///
    /// # Panics
    ///
    /// Panics if `loads.len() != experts`.
    pub fn update_bias(&mut self, loads: &[usize], gamma: f32) {
        assert_eq!(loads.len(), self.cfg.experts, "load vector length mismatch");
        let mean = loads.iter().sum::<usize>() as f32 / loads.len() as f32;
        for (b, &l) in self.bias.iter_mut().zip(loads) {
            if (l as f32) > mean {
                *b -= gamma;
            } else if (l as f32) < mean {
                *b += gamma;
            }
        }
    }

    /// Current balancing bias.
    #[must_use]
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }
}

/// Aggregate routing statistics over a batch of tokens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingStats {
    /// Tokens routed.
    pub tokens: usize,
    /// Per-expert assignment counts.
    pub expert_loads: Vec<usize>,
    /// Histogram of nodes touched per token (`hist[m]` = tokens touching
    /// exactly `m` nodes; index 0 unused).
    pub nodes_touched_hist: Vec<usize>,
    /// Mean nodes touched per token (the `M` of §4.3).
    pub mean_nodes_touched: f64,
    /// Max expert load divided by the ideal balanced load.
    pub load_imbalance: f64,
}

/// Compute [`RoutingStats`] for a set of per-token routings.
///
/// # Panics
///
/// Panics if `routings` is empty.
#[must_use]
pub fn routing_stats(routings: &[Routing], cfg: &MoeGateConfig) -> RoutingStats {
    assert!(!routings.is_empty(), "need at least one routed token");
    let mut expert_loads = vec![0usize; cfg.experts];
    let mut hist = vec![0usize; cfg.groups + 1];
    let mut total_nodes = 0usize;
    for r in routings {
        for &e in &r.experts {
            expert_loads[e] += 1;
        }
        let m = r.nodes_touched();
        hist[m] += 1;
        total_nodes += m;
    }
    let tokens = routings.len();
    let ideal = (tokens * cfg.top_k) as f64 / cfg.experts as f64;
    let max_load = expert_loads.iter().copied().max().unwrap_or(0) as f64;
    RoutingStats {
        tokens,
        expert_loads,
        nodes_touched_hist: hist,
        mean_nodes_touched: total_nodes as f64 / tokens as f64,
        load_imbalance: if ideal > 0.0 { max_load / ideal } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores_from_seed(n: usize, seed: u64) -> Vec<f32> {
        Matrix::random(1, n, 1.0, seed).data.iter().map(|v| 1.0 / (1.0 + (-v).exp())).collect()
    }

    #[test]
    fn routes_top_k_unique_experts() {
        let cfg = MoeGateConfig::deepseek_v3();
        let s = scores_from_seed(256, 1);
        let r = route(&s, None, &cfg);
        assert_eq!(r.experts.len(), 8);
        let mut uniq = r.experts.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8, "experts must be distinct");
    }

    #[test]
    fn node_limit_enforced() {
        let cfg = MoeGateConfig::deepseek_v3();
        for seed in 0..200 {
            let s = scores_from_seed(256, seed);
            let r = route(&s, None, &cfg);
            assert!(
                r.nodes_touched() <= cfg.top_groups,
                "token touched {} nodes",
                r.nodes_touched()
            );
        }
    }

    #[test]
    fn weights_normalized_and_aligned() {
        let cfg = MoeGateConfig::deepseek_v3();
        let s = scores_from_seed(256, 7);
        let r = route(&s, None, &cfg);
        assert!((r.weights.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        // Weight ordering mirrors raw score ordering.
        for w in &r.weights {
            assert!(*w > 0.0);
        }
    }

    #[test]
    fn unconstrained_routing_can_touch_more_nodes() {
        // With top_groups == groups the limiter is off; concentrated scores
        // per node boundary show the difference.
        let free = MoeGateConfig { experts: 64, groups: 8, top_groups: 8, top_k: 8 };
        let limited = MoeGateConfig { experts: 64, groups: 8, top_groups: 4, top_k: 8 };
        // One strong expert per group => free routing touches 8 nodes.
        let mut s = vec![0.01f32; 64];
        for g in 0..8 {
            s[g * 8] = 0.9;
        }
        let rf = route(&s, None, &free);
        let rl = route(&s, None, &limited);
        assert_eq!(rf.nodes_touched(), 8);
        assert!(rl.nodes_touched() <= 4);
    }

    #[test]
    fn bias_steers_selection_not_weights() {
        let cfg = MoeGateConfig { experts: 8, groups: 2, top_groups: 2, top_k: 2 };
        let s = vec![0.5, 0.49, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1];
        let no_bias = route(&s, None, &cfg);
        assert_eq!(
            {
                let mut e = no_bias.experts.clone();
                e.sort_unstable();
                e
            },
            vec![0, 1]
        );
        // Bias expert 5 heavily: it gets selected, but its *weight* comes
        // from the raw score.
        let mut bias = vec![0.0f32; 8];
        bias[5] = 10.0;
        let b = route(&s, Some(&bias), &cfg);
        assert!(b.experts.contains(&5));
        let w5 = b.weights[b.experts.iter().position(|e| *e == 5).unwrap()];
        let w0 = b.weights[b.experts.iter().position(|e| *e == 0).unwrap()];
        assert!(w5 < w0, "biased expert keeps its small raw-score weight");
    }

    #[test]
    fn gate_end_to_end_and_balancing() {
        let cfg = MoeGateConfig { experts: 32, groups: 4, top_groups: 2, top_k: 4 };
        let mut gate = MoeGate::new(16, cfg, 3);
        let tokens: Vec<Vec<f32>> =
            (0..400).map(|i| Matrix::random(1, 16, 1.0, 1000 + i).data).collect();
        let run = |g: &MoeGate| -> RoutingStats {
            let routings: Vec<Routing> = tokens.iter().map(|t| g.route_token(t)).collect();
            routing_stats(&routings, &cfg)
        };
        let before = run(&gate);
        // Several rounds of aux-free balancing must reduce imbalance.
        let mut stats = before.clone();
        for _ in 0..30 {
            gate.update_bias(&stats.expert_loads, 0.01);
            stats = run(&gate);
        }
        assert!(
            stats.load_imbalance < before.load_imbalance,
            "balancing {} -> {}",
            before.load_imbalance,
            stats.load_imbalance
        );
    }

    #[test]
    fn stats_conservation() {
        let cfg = MoeGateConfig::deepseek_v3();
        let routings: Vec<Routing> =
            (0..100).map(|i| route(&scores_from_seed(256, 500 + i), None, &cfg)).collect();
        let st = routing_stats(&routings, &cfg);
        assert_eq!(st.expert_loads.iter().sum::<usize>(), 100 * 8);
        assert_eq!(st.nodes_touched_hist.iter().sum::<usize>(), 100);
        assert!(st.mean_nodes_touched <= 4.0);
        assert!(st.mean_nodes_touched >= 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_score_len_panics() {
        let cfg = MoeGateConfig::deepseek_v3();
        let _ = route(&[0.5; 10], None, &cfg);
    }

    #[test]
    fn single_group_config() {
        let cfg = MoeGateConfig { experts: 4, groups: 1, top_groups: 1, top_k: 2 };
        let r = route(&[0.1, 0.9, 0.5, 0.2], None, &cfg);
        assert_eq!(
            {
                let mut e = r.experts.clone();
                e.sort_unstable();
                e
            },
            vec![1, 2]
        );
        assert_eq!(r.nodes_touched(), 1);
    }
}

/// One expert: a SwiGLU feed-forward block.
#[derive(Debug, Clone)]
pub struct Expert {
    w_gate: Matrix,
    w_up: Matrix,
    w_down: Matrix,
}

impl Expert {
    /// New expert with deterministic random weights.
    #[must_use]
    pub fn new(hidden: usize, intermediate: usize, seed: u64) -> Self {
        let s = 1.0 / (hidden as f32).sqrt();
        Self {
            w_gate: Matrix::random(hidden, intermediate, s, seed.wrapping_mul(3) + 1),
            w_up: Matrix::random(hidden, intermediate, s, seed.wrapping_mul(3) + 2),
            w_down: Matrix::random(
                intermediate,
                hidden,
                1.0 / (intermediate as f32).sqrt(),
                seed.wrapping_mul(3) + 3,
            ),
        }
    }

    /// SwiGLU forward for one token.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the expert's hidden size.
    #[must_use]
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.w_gate.rows, "input width mismatch");
        let x = Matrix::from_vec(1, x.len(), x.to_vec());
        let gate = x.matmul(&self.w_gate);
        let up = x.matmul(&self.w_up);
        let hidden: Vec<f32> = gate.data.iter().zip(&up.data).map(|(g, u)| silu(*g) * u).collect();
        Matrix::from_vec(1, hidden.len(), hidden).matmul(&self.w_down).data
    }
}

fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// A full DeepSeekMoE layer: gate + routed experts + shared experts.
#[derive(Debug, Clone)]
pub struct MoeLayer {
    /// The router.
    pub gate: MoeGate,
    routed: Vec<Expert>,
    shared: Vec<Expert>,
}

impl MoeLayer {
    /// Build a layer with `cfg.experts` routed and `shared` shared experts.
    #[must_use]
    pub fn new(
        hidden: usize,
        intermediate: usize,
        cfg: MoeGateConfig,
        shared: usize,
        seed: u64,
    ) -> Self {
        let routed = (0..cfg.experts)
            .map(|e| Expert::new(hidden, intermediate, seed.wrapping_mul(1000) + e as u64))
            .collect();
        let shared = (0..shared)
            .map(|e| {
                Expert::new(hidden, intermediate, seed.wrapping_mul(1000) + 900_000 + e as u64)
            })
            .collect();
        Self { gate: MoeGate::new(hidden, cfg, seed), routed, shared }
    }

    /// Forward one token: shared experts always fire; routed experts are
    /// combined with the gate weights. Returns the output and the routing
    /// (for traffic/load analysis).
    #[must_use]
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, Routing) {
        let routing = self.gate.route_token(x);
        let mut out = vec![0f32; x.len()];
        for s in &self.shared {
            for (o, v) in out.iter_mut().zip(s.forward(x)) {
                *o += v;
            }
        }
        for (&e, &w) in routing.experts.iter().zip(&routing.weights) {
            for (o, v) in out.iter_mut().zip(self.routed[e].forward(x)) {
                *o += w * v;
            }
        }
        (out, routing)
    }
}

#[cfg(test)]
mod layer_tests {
    use super::*;

    fn tiny_cfg() -> MoeGateConfig {
        MoeGateConfig { experts: 16, groups: 4, top_groups: 2, top_k: 4 }
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let layer = MoeLayer::new(32, 64, tiny_cfg(), 1, 5);
        let x = Matrix::random(1, 32, 1.0, 77).data;
        let (y1, r1) = layer.forward(&x);
        let (y2, r2) = layer.forward(&x);
        assert_eq!(y1, y2);
        assert_eq!(r1, r2);
        assert_eq!(y1.len(), 32);
        assert_eq!(r1.experts.len(), 4);
    }

    #[test]
    fn output_is_convex_in_gate_weights() {
        // With weights summing to 1, scaling all routed expert outputs by a
        // common factor scales the routed contribution linearly: check the
        // routed part equals the weighted sum of individual expert outputs.
        let layer = MoeLayer::new(16, 32, tiny_cfg(), 0, 6);
        let x = Matrix::random(1, 16, 1.0, 88).data;
        let (y, r) = layer.forward(&x);
        let mut manual = vec![0f32; 16];
        for (&e, &w) in r.experts.iter().zip(&r.weights) {
            for (m, v) in manual.iter_mut().zip(layer.routed[e].forward(&x)) {
                *m += w * v;
            }
        }
        for (a, b) in y.iter().zip(&manual) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn shared_expert_always_contributes() {
        let with_shared = MoeLayer::new(16, 32, tiny_cfg(), 1, 7);
        let without = MoeLayer { shared: Vec::new(), ..with_shared.clone() };
        let x = Matrix::random(1, 16, 1.0, 99).data;
        let (a, _) = with_shared.forward(&x);
        let (b, _) = without.forward(&x);
        assert_ne!(a, b, "shared expert changes the output");
    }

    #[test]
    fn different_tokens_use_different_experts() {
        let layer = MoeLayer::new(32, 64, tiny_cfg(), 1, 8);
        let mut expert_sets = std::collections::HashSet::new();
        for i in 0..20 {
            let x = Matrix::random(1, 32, 1.0, 2000 + i).data;
            let (_, r) = layer.forward(&x);
            let mut e = r.experts.clone();
            e.sort_unstable();
            expert_sets.insert(e);
        }
        assert!(expert_sets.len() > 5, "routing is input-dependent: {}", expert_sets.len());
    }

    #[test]
    fn silu_properties() {
        assert_eq!(silu(0.0), 0.0);
        assert!(silu(5.0) > 4.9);
        assert!(silu(-5.0) > -0.05 && silu(-5.0) < 0.0);
    }
}
