//! Multi-Token Prediction (MTP) speculative-decoding statistics (§2.3.3).
//!
//! Each MTP module drafts one additional token per decoding step; drafted
//! tokens are verified in parallel by the full model. With a per-position
//! acceptance rate `p` (the paper reports 80–90% for the second token), the
//! expected tokens emitted per step is `1 + p + p² + … + p^modules` (a draft
//! chain breaks at the first rejection), and the TPS speedup over plain
//! autoregressive decoding is that expectation divided by the per-step
//! overhead of running the (single-layer, lightweight) MTP modules.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Analytical expected tokens emitted per decoding step.
///
/// # Panics
///
/// Panics if `acceptance` is outside `[0, 1]`.
#[must_use]
pub fn expected_tokens_per_step(acceptance: f64, modules: usize) -> f64 {
    assert!((0.0..=1.0).contains(&acceptance), "acceptance must be a probability");
    let mut total = 1.0;
    let mut chain = 1.0;
    for _ in 0..modules {
        chain *= acceptance;
        total += chain;
    }
    total
}

/// TPS speedup from MTP: expected tokens per step divided by the relative
/// per-step cost `1 + step_overhead` (each MTP module is a single extra
/// layer, so the overhead is small but nonzero).
///
/// # Panics
///
/// Panics if `step_overhead < 0`.
#[must_use]
pub fn tps_speedup(acceptance: f64, modules: usize, step_overhead: f64) -> f64 {
    assert!(step_overhead >= 0.0, "overhead cannot be negative");
    expected_tokens_per_step(acceptance, modules) / (1.0 + step_overhead)
}

/// Result of a Monte-Carlo speculative-decoding simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MtpSimResult {
    /// Decoding steps executed.
    pub steps: usize,
    /// Tokens emitted.
    pub tokens: usize,
    /// Empirical tokens per step.
    pub tokens_per_step: f64,
    /// Empirical acceptance rate of the first drafted token.
    pub first_draft_acceptance: f64,
}

/// Simulate `target_tokens` of generation with `modules` MTP modules whose
/// drafts are accepted independently with probability `acceptance`.
///
/// # Panics
///
/// Panics if `acceptance` is outside `[0, 1]` or `target_tokens == 0`.
#[must_use]
pub fn simulate(acceptance: f64, modules: usize, target_tokens: usize, seed: u64) -> MtpSimResult {
    assert!((0.0..=1.0).contains(&acceptance), "acceptance must be a probability");
    assert!(target_tokens > 0, "need a positive token budget");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tokens = 0usize;
    let mut steps = 0usize;
    let mut first_accepts = 0usize;
    while tokens < target_tokens {
        steps += 1;
        tokens += 1; // the verified model token always lands
        for m in 0..modules {
            if rng.gen_bool(acceptance) {
                tokens += 1;
                if m == 0 {
                    first_accepts += 1;
                }
            } else {
                break;
            }
        }
    }
    MtpSimResult {
        steps,
        tokens,
        tokens_per_step: tokens as f64 / steps as f64,
        first_draft_acceptance: first_accepts as f64 / steps as f64,
    }
}

/// Batch-size amplification: verifying `modules` drafted tokens alongside
/// the real one multiplies the effective EP batch per step (§2.3.3 notes this
/// boosts computational intensity).
#[must_use]
pub fn effective_batch_multiplier(modules: usize) -> usize {
    1 + modules
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expectation_closed_form() {
        assert_eq!(expected_tokens_per_step(0.0, 1), 1.0);
        assert_eq!(expected_tokens_per_step(1.0, 1), 2.0);
        assert!((expected_tokens_per_step(0.8, 1) - 1.8).abs() < 1e-12);
        assert!((expected_tokens_per_step(0.5, 2) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn paper_acceptance_band_gives_1_8x() {
        // §2.3.3: 80–90% acceptance -> ~1.8× TPS with one MTP module.
        for p in [0.8, 0.85, 0.9] {
            let s = tps_speedup(p, 1, 0.02);
            assert!((1.7..2.0).contains(&s), "p={p}: speedup {s}");
        }
    }

    #[test]
    fn simulation_matches_expectation() {
        let p = 0.85;
        let sim = simulate(p, 1, 200_000, 42);
        let expect = expected_tokens_per_step(p, 1);
        assert!((sim.tokens_per_step - expect).abs() < 0.01, "{} vs {expect}", sim.tokens_per_step);
        assert!((sim.first_draft_acceptance - p).abs() < 0.01);
    }

    #[test]
    fn more_modules_more_tokens_but_diminishing() {
        let one = expected_tokens_per_step(0.8, 1);
        let two = expected_tokens_per_step(0.8, 2);
        let three = expected_tokens_per_step(0.8, 3);
        assert!(two > one && three > two);
        assert!(three - two < two - one, "diminishing returns");
    }

    #[test]
    fn zero_modules_is_plain_decoding() {
        assert_eq!(expected_tokens_per_step(0.9, 0), 1.0);
        let sim = simulate(0.9, 0, 1000, 1);
        assert_eq!(sim.tokens_per_step, 1.0);
    }

    #[test]
    fn batch_multiplier() {
        assert_eq!(effective_batch_multiplier(1), 2);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_acceptance_panics() {
        let _ = expected_tokens_per_step(1.5, 1);
    }
}
