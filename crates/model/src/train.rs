//! Tiny trainer with pluggable precision backends (§2.4's validation
//! methodology, scaled down).
//!
//! The paper validates FP8 training by comparing against BF16 on smaller
//! models and reports a relative loss gap below 0.25%, attributing the
//! result to fine-grained quantization and high-precision accumulation. We
//! reproduce the *mechanism* at laptop scale: a two-layer MLP regression
//! task whose input features span several orders of magnitude (the outlier
//! structure that motivates 1×128 tiles), trained with every GEMM routed
//! through one of four precision backends:
//!
//! * [`Precision::F32`] — float32 reference.
//! * [`Precision::Bf16`] — operands rounded to BF16.
//! * [`Precision::Fp8Fine`] — fine-grained (tile/block) FP8 with FP32
//!   promotion, i.e. the DeepGEMM recipe.
//! * [`Precision::Fp8Coarse`] — per-tensor FP8 scaling (the baseline the
//!   paper's recipe improves on).

use dsv3_numerics::gemm::{gemm_fp8, gemm_fp8_per_tensor, Fp8GemmConfig};
use dsv3_numerics::minifloat::Format;
use dsv3_numerics::Matrix;
use serde::{Deserialize, Serialize};

/// Precision backend for training GEMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// Full float32.
    F32,
    /// Operands rounded to BF16 before the multiply.
    Bf16,
    /// Fine-grained FP8 (1×128 / 128×128 scales, FP32 promotion).
    Fp8Fine,
    /// Per-tensor FP8 scaling.
    Fp8Coarse,
}

/// One GEMM through the selected backend.
#[must_use]
pub fn gemm(a: &Matrix, b: &Matrix, p: Precision) -> Matrix {
    match p {
        Precision::F32 => a.matmul(b),
        Precision::Bf16 => {
            let q = |m: &Matrix| {
                let data =
                    m.data.iter().map(|v| Format::BF16.quantize(f64::from(*v)) as f32).collect();
                Matrix::from_vec(m.rows, m.cols, data)
            };
            q(a).matmul(&q(b))
        }
        Precision::Fp8Fine => gemm_fp8(a, b, Fp8GemmConfig::default()),
        Precision::Fp8Coarse => gemm_fp8_per_tensor(a, b, Format::E4M3),
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Output dimension.
    pub output_dim: usize,
    /// Batch size per step.
    pub batch: usize,
    /// SGD steps.
    pub steps: usize,
    /// Learning rate.
    pub lr: f32,
    /// Data/teacher/initialization seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            input_dim: 256,
            hidden_dim: 32,
            output_dim: 4,
            batch: 16,
            steps: 300,
            lr: 0.02,
            seed: 17,
        }
    }
}

/// Outcome of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Backend used.
    pub precision: Precision,
    /// Eval loss (f32 forward on held-out data) after training.
    pub final_loss: f64,
    /// Eval loss trajectory (every 10 steps).
    pub losses: Vec<f64>,
}

/// The synthetic regression task: inputs whose feature scales span several
/// orders of magnitude, targets from a fixed random teacher MLP.
struct Task {
    teacher_w1: Matrix,
    teacher_w2: Matrix,
    feature_scale: Vec<f32>,
    cfg: TrainConfig,
}

impl Task {
    fn new(cfg: TrainConfig) -> Self {
        let feature_scale: Vec<f32> = vec![1.0; cfg.input_dim];
        let teacher_w1 = Matrix::random(cfg.input_dim, cfg.hidden_dim, 0.5, cfg.seed ^ 0xA);
        let teacher_w2 = Matrix::random(cfg.hidden_dim, cfg.output_dim, 0.5, cfg.seed ^ 0xB);
        Self { teacher_w1, teacher_w2, feature_scale, cfg }
    }

    fn batch(&self, index: u64) -> (Matrix, Matrix) {
        let mut x = Matrix::random(
            self.cfg.batch,
            self.cfg.input_dim,
            1.0,
            self.cfg.seed ^ (index * 2 + 1),
        );
        for r in 0..x.rows {
            for c in 0..x.cols {
                let v = x.get(r, c) * self.feature_scale[c];
                x.set(r, c, v);
            }
        }
        let y = relu(&x.matmul(&self.teacher_w1)).matmul(&self.teacher_w2);
        (x, y)
    }
}

fn relu(m: &Matrix) -> Matrix {
    Matrix::from_vec(m.rows, m.cols, m.data.iter().map(|v| v.max(0.0)).collect())
}

fn mse(pred: &Matrix, target: &Matrix) -> f64 {
    pred.data
        .iter()
        .zip(&target.data)
        .map(|(p, t)| (f64::from(*p) - f64::from(*t)).powi(2))
        .sum::<f64>()
        / pred.data.len() as f64
}

/// Adam optimizer state for one weight matrix.
struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: i32,
}

impl Adam {
    fn new(len: usize) -> Self {
        Self { m: vec![0.0; len], v: vec![0.0; len], t: 0 }
    }

    fn step(&mut self, w: &mut Matrix, g: &Matrix, lr: f32) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t);
        let bc2 = 1.0 - B2.powi(self.t);
        for ((w, g), (m, v)) in
            w.data.iter_mut().zip(&g.data).zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            let g = f64::from(*g);
            *m = B1 * *m + (1.0 - B1) * g;
            *v = B2 * *v + (1.0 - B2) * g * g;
            let update = (*m / bc1) / ((*v / bc2).sqrt() + EPS);
            *w -= (f64::from(lr) * update) as f32;
        }
    }
}

/// Train the student MLP with the given precision backend.
///
/// Master weights and optimizer (Adam) state stay in f32/f64, as in the
/// paper's framework — only GEMMs run through the backend. Adam's
/// per-parameter scaling absorbs the deliberately ill-conditioned feature
/// scales so the comparison isolates quantization effects.
#[must_use]
pub fn train(precision: Precision, cfg: TrainConfig) -> TrainReport {
    let task = Task::new(cfg);
    let mut w1 = Matrix::random(
        cfg.input_dim,
        cfg.hidden_dim,
        1.0 / (cfg.input_dim as f32).sqrt(),
        cfg.seed ^ 0x1,
    );
    let mut w2 = Matrix::random(
        cfg.hidden_dim,
        cfg.output_dim,
        1.0 / (cfg.hidden_dim as f32).sqrt(),
        cfg.seed ^ 0x2,
    );
    let mut opt1 = Adam::new(w1.data.len());
    let mut opt2 = Adam::new(w2.data.len());
    let (eval_x, eval_y) = task.batch(u64::MAX / 2);
    let mut losses = Vec::new();
    for step in 0..cfg.steps {
        let (x, y) = task.batch(step as u64);
        // Forward.
        let h_pre = gemm(&x, &w1, precision);
        let h = relu(&h_pre);
        let pred = gemm(&h, &w2, precision);
        // Backward (dL/dpred for MSE).
        let n = pred.data.len() as f32;
        let dy = Matrix::from_vec(
            pred.rows,
            pred.cols,
            pred.data.iter().zip(&y.data).map(|(p, t)| 2.0 * (p - t) / n).collect(),
        );
        let dw2 = gemm(&h.transpose(), &dy, precision);
        let dh = gemm(&dy, &w2.transpose(), precision);
        let dh_pre = Matrix::from_vec(
            dh.rows,
            dh.cols,
            dh.data.iter().zip(&h_pre.data).map(|(g, z)| if *z > 0.0 { *g } else { 0.0 }).collect(),
        );
        let dw1 = gemm(&x.transpose(), &dh_pre, precision);
        opt1.step(&mut w1, &dw1, cfg.lr);
        opt2.step(&mut w2, &dw2, cfg.lr);
        if step % 10 == 0 {
            let p = relu(&eval_x.matmul(&w1)).matmul(&w2);
            losses.push(mse(&p, &eval_y));
        }
    }
    let p = relu(&eval_x.matmul(&w1)).matmul(&w2);
    let final_loss = mse(&p, &eval_y);
    losses.push(final_loss);
    TrainReport { precision, final_loss, losses }
}

/// Relative loss gap of `candidate` vs `reference` (positive = worse).
#[must_use]
pub fn relative_loss_gap(reference: &TrainReport, candidate: &TrainReport) -> f64 {
    (candidate.final_loss - reference.final_loss) / reference.final_loss
}

/// Deterministic single-step probe of gradient fidelity under activation
/// outliers.
///
/// Builds one batch whose second 128-channel tile carries huge pure-noise
/// activations (magnitude `outlier_scale`), runs one forward/backward pass
/// through `precision`, and returns the relative Frobenius error of the
/// informative rows of `∂L/∂W₁` against the f32 gradient. Per-tensor FP8
/// flushes the informative tile of `xᵀ` below E4M3's subnormal range, so its
/// gradient is destroyed; 1×128 tiles keep it. This is the mechanism behind
/// the paper's fine-grained-quantization requirement, isolated from
/// optimizer noise.
#[must_use]
pub fn gradient_probe(precision: Precision, outlier_scale: f32, seed: u64) -> f64 {
    let (batch, input, hidden, output) = (16, 256, 32, 4);
    let mut x = Matrix::random(batch, input, 1.0, seed ^ 0x11);
    for r in 0..batch {
        for c in 128..input {
            let v = x.get(r, c) * outlier_scale;
            x.set(r, c, v);
        }
    }
    let w1 = Matrix::random(input, hidden, 0.1, seed ^ 0x12);
    let w2 = Matrix::random(hidden, output, 0.1, seed ^ 0x13);
    let y = Matrix::random(batch, output, 1.0, seed ^ 0x14);
    let grad_w1 = |p: Precision| -> Matrix {
        let h_pre = gemm(&x, &w1, p);
        let h = relu(&h_pre);
        let pred = gemm(&h, &w2, p);
        let n = pred.data.len() as f32;
        let dy = Matrix::from_vec(
            pred.rows,
            pred.cols,
            pred.data.iter().zip(&y.data).map(|(a, t)| 2.0 * (a - t) / n).collect(),
        );
        let dh = gemm(&dy, &w2.transpose(), p);
        let dh_pre = Matrix::from_vec(
            dh.rows,
            dh.cols,
            dh.data.iter().zip(&h_pre.data).map(|(g, z)| if *z > 0.0 { *g } else { 0.0 }).collect(),
        );
        gemm(&x.transpose(), &dh_pre, p)
    };
    let reference = grad_w1(Precision::F32);
    let candidate = grad_w1(precision);
    // Informative rows only (the outlier rows dwarf the norm otherwise).
    let rows = 128 * hidden;
    let num: f64 = reference.data[..rows]
        .iter()
        .zip(&candidate.data[..rows])
        .map(|(a, b)| (f64::from(*a) - f64::from(*b)).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = reference.data[..rows].iter().map(|a| f64::from(*a).powi(2)).sum::<f64>().sqrt();
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> TrainConfig {
        TrainConfig::default()
    }

    #[test]
    fn f32_training_converges() {
        let r = train(Precision::F32, quick_cfg());
        assert!(
            r.losses[0] > r.final_loss * 3.0,
            "loss must drop: {:?}",
            (r.losses[0], r.final_loss)
        );
    }

    #[test]
    fn bf16_close_to_f32() {
        let f32r = train(Precision::F32, quick_cfg());
        let bf = train(Precision::Bf16, quick_cfg());
        let gap = relative_loss_gap(&f32r, &bf).abs();
        assert!(gap < 0.05, "bf16 gap {gap}");
    }

    #[test]
    fn fp8_fine_close_to_bf16() {
        // The paper's claim at small scale: fine-grained FP8 with
        // high-precision accumulation trains within a fraction of a percent
        // of BF16 relative loss.
        let bf = train(Precision::Bf16, quick_cfg());
        let fp8 = train(Precision::Fp8Fine, quick_cfg());
        let gap = relative_loss_gap(&bf, &fp8);
        assert!(gap < 0.10, "fp8-fine gap {gap}");
    }

    #[test]
    fn fine_grained_gradients_beat_coarse_under_outliers() {
        let fine = gradient_probe(Precision::Fp8Fine, 1e5, 3);
        let coarse = gradient_probe(Precision::Fp8Coarse, 1e5, 3);
        assert!(fine < 0.15, "fine-grained gradient error {fine}");
        assert!(coarse > 3.0 * fine, "coarse {coarse} vs fine {fine}");
    }

    #[test]
    fn gradient_probe_clean_without_outliers() {
        // With no outliers the two quantization granularities coincide.
        let fine = gradient_probe(Precision::Fp8Fine, 1.0, 4);
        let coarse = gradient_probe(Precision::Fp8Coarse, 1.0, 4);
        assert!(fine < 0.2 && coarse < 0.2, "fine {fine} coarse {coarse}");
    }

    #[test]
    fn bf16_gradient_probe_is_tight() {
        let bf = gradient_probe(Precision::Bf16, 1e5, 5);
        assert!(bf < 0.02, "bf16 gradient error {bf}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = train(Precision::F32, quick_cfg());
        let b = train(Precision::F32, quick_cfg());
        assert_eq!(a.final_loss, b.final_loss);
    }
}
