//! A functional miniature DeepSeek-V3: MLA attention + DeepSeekMoE blocks
//! with a working speculative-decoding loop (Figure 1, §2.3.3).
//!
//! This is the architecture of Figure 1 at toy scale, end to end on real
//! tensors: tied token embeddings, RMS-normed residual blocks of
//! [`MlaLayer`] attention and [`MoeLayer`] FFNs, greedy decoding, and —
//! crucially — the full MTP-style speculative-decoding control flow:
//! draft, parallel verify, accept or roll the latent cache back. The draft
//! source is pluggable; tests drive it with a controlled-accuracy oracle so
//! the measured acceptance/TPS matches the closed forms of [`crate::mtp`].

use crate::mla::{MlaDims, MlaLayer};
use crate::moe::{MoeGateConfig, MoeLayer, Routing};
use dsv3_numerics::Matrix;
use serde::{Deserialize, Serialize};

/// Toy model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TinyConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Number of blocks.
    pub blocks: usize,
    /// MLA dimensions (defines the model width).
    pub mla: MlaDims,
    /// Gate configuration for the MoE FFN.
    pub gate: MoeGateConfig,
    /// Per-expert intermediate size.
    pub expert_intermediate: usize,
    /// Shared experts per MoE layer.
    pub shared_experts: usize,
}

impl TinyConfig {
    /// A small but structurally faithful configuration.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            vocab: 64,
            blocks: 2,
            mla: MlaDims::tiny(),
            gate: MoeGateConfig { experts: 16, groups: 4, top_groups: 2, top_k: 4 },
            expert_intermediate: 32,
            shared_experts: 1,
        }
    }
}

struct Block {
    attn: MlaLayer,
    ffn: MoeLayer,
}

/// The miniature model with its decoding state (latent caches).
///
/// ```
/// use dsv3_model::transformer::{TinyConfig, TinyDeepSeek};
///
/// let mut m = TinyDeepSeek::new(TinyConfig::tiny(), 42);
/// let tokens = m.generate(&[1, 2, 3], 5);
/// assert_eq!(tokens.len(), 5);
/// ```
pub struct TinyDeepSeek {
    /// Configuration.
    pub cfg: TinyConfig,
    embed: Matrix,
    blocks: Vec<Block>,
    /// Routings observed for the most recent token (one per MoE block),
    /// exposed for traffic analysis.
    pub last_routings: Vec<Routing>,
}

impl TinyDeepSeek {
    /// Build with deterministic random weights.
    ///
    /// # Panics
    ///
    /// Panics on an invalid gate configuration.
    #[must_use]
    pub fn new(cfg: TinyConfig, seed: u64) -> Self {
        let hidden = cfg.mla.hidden;
        let blocks = (0..cfg.blocks)
            .map(|i| Block {
                attn: MlaLayer::new(cfg.mla, seed.wrapping_mul(97) + i as u64),
                ffn: MoeLayer::new(
                    hidden,
                    cfg.expert_intermediate,
                    cfg.gate,
                    cfg.shared_experts,
                    seed.wrapping_mul(131) + i as u64,
                ),
            })
            .collect();
        Self {
            embed: Matrix::random(cfg.vocab, hidden, 1.0 / (hidden as f32).sqrt(), seed ^ 0xE),
            blocks,
            cfg,
            last_routings: Vec::new(),
        }
    }

    /// Number of tokens currently in the cache.
    #[must_use]
    pub fn cached_tokens(&self) -> usize {
        self.blocks.first().map_or(0, |b| b.attn.cached_tokens())
    }

    /// Clear all caches (new sequence).
    pub fn reset(&mut self) {
        for b in &mut self.blocks {
            b.attn.reset();
        }
    }

    /// Roll back the last `n` cached tokens in every block.
    pub fn truncate(&mut self, n: usize) {
        for b in &mut self.blocks {
            b.attn.truncate_cache(n);
        }
    }

    /// Process one token and return the logits for the next position.
    ///
    /// # Panics
    ///
    /// Panics if `token ≥ vocab`.
    pub fn forward_token(&mut self, token: usize) -> Vec<f32> {
        assert!(token < self.cfg.vocab, "token {token} out of vocabulary");
        let mut h: Vec<f32> = self.embed.row(token).to_vec();
        self.last_routings.clear();
        for block in &mut self.blocks {
            let normed = rms_norm(&h);
            let attn = block.attn.decode_step(&normed);
            for (a, b) in h.iter_mut().zip(&attn) {
                *a += b;
            }
            let normed = rms_norm(&h);
            let (ffn, routing) = block.ffn.forward(&normed);
            self.last_routings.push(routing);
            for (a, b) in h.iter_mut().zip(&ffn) {
                *a += b;
            }
        }
        let h = rms_norm(&h);
        // Tied unembedding: logits = h · embedᵀ.
        (0..self.cfg.vocab)
            .map(|v| self.embed.row(v).iter().zip(&h).map(|(w, x)| w * x).sum())
            .collect()
    }

    /// Greedy autoregressive generation: feed `prompt`, then emit `n`
    /// tokens.
    pub fn generate(&mut self, prompt: &[usize], n: usize) -> Vec<usize> {
        assert!(!prompt.is_empty(), "need a prompt token");
        let mut logits = Vec::new();
        for &t in prompt {
            logits = self.forward_token(t);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let next = argmax(&logits);
            out.push(next);
            if out.len() == n {
                break;
            }
            logits = self.forward_token(next);
        }
        out
    }
}

/// Statistics from a speculative generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpeculativeStats {
    /// Decoding steps executed.
    pub steps: usize,
    /// Tokens emitted.
    pub emitted: usize,
    /// Drafts accepted.
    pub accepted: usize,
    /// Drafts rejected (cache rolled back).
    pub rejected: usize,
}

impl SpeculativeStats {
    /// Empirical tokens per step.
    #[must_use]
    pub fn tokens_per_step(&self) -> f64 {
        self.emitted as f64 / self.steps as f64
    }

    /// Empirical draft acceptance rate.
    #[must_use]
    pub fn acceptance(&self) -> f64 {
        self.accepted as f64 / (self.accepted + self.rejected).max(1) as f64
    }
}

/// Speculative generation with one draft token per step (the MTP shape).
///
/// `draft` receives the verified token about to be fed (`a`) and the true
/// next token the verifier will compute (`b_true`) and returns the draft —
/// tests use a controlled-accuracy oracle; a real system would call its MTP
/// head. Rejected drafts trigger a one-token cache rollback in every block.
///
/// # Panics
///
/// Panics if the prompt is empty.
pub fn generate_speculative(
    model: &mut TinyDeepSeek,
    prompt: &[usize],
    n: usize,
    mut draft: impl FnMut(usize, usize) -> usize,
) -> (Vec<usize>, SpeculativeStats) {
    assert!(!prompt.is_empty(), "need a prompt token");
    let mut logits = Vec::new();
    for &t in prompt {
        logits = model.forward_token(t);
    }
    let mut out = Vec::with_capacity(n);
    let mut stats = SpeculativeStats { steps: 0, emitted: 0, accepted: 0, rejected: 0 };
    while out.len() < n {
        stats.steps += 1;
        // Emit the verified token for this position.
        let a = argmax(&logits);
        out.push(a);
        stats.emitted += 1;
        if out.len() >= n {
            break;
        }
        // Verify forward for `a` (this is the "parallel" leg of the batch).
        let logits_a = model.forward_token(a);
        let b_true = argmax(&logits_a);
        // Draft the following token and speculatively extend the cache.
        let d = draft(a, b_true);
        let logits_d = model.forward_token(d);
        if d == b_true {
            stats.accepted += 1;
            out.push(d);
            stats.emitted += 1;
            logits = logits_d;
        } else {
            stats.rejected += 1;
            model.truncate(1); // roll the speculative token back
            logits = logits_a;
        }
    }
    (out, stats)
}

fn rms_norm(x: &[f32]) -> Vec<f32> {
    let ms: f64 = x.iter().map(|v| f64::from(*v) * f64::from(*v)).sum::<f64>() / x.len() as f64;
    let inv = 1.0 / (ms + 1e-6).sqrt();
    x.iter().map(|v| (f64::from(*v) * inv) as f32).collect()
}

fn argmax(logits: &[f32]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
        .map_or(0, |(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mtp::expected_tokens_per_step;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn model(seed: u64) -> TinyDeepSeek {
        TinyDeepSeek::new(TinyConfig::tiny(), seed)
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = model(1);
        let mut b = model(1);
        assert_eq!(a.generate(&[3, 14], 12), b.generate(&[3, 14], 12));
    }

    #[test]
    fn cache_consistency_incremental_vs_fresh() {
        // Feeding t0..t3 incrementally leaves the model in the same state a
        // fresh model reaches with the same tokens.
        let mut a = model(2);
        for t in [5usize, 9, 20, 33] {
            let _ = a.forward_token(t);
        }
        let la = a.forward_token(40);
        let mut b = model(2);
        for t in [5usize, 9, 20, 33] {
            let _ = b.forward_token(t);
        }
        let lb = b.forward_token(40);
        assert_eq!(la, lb);
        assert_eq!(a.cached_tokens(), 5);
    }

    #[test]
    fn truncate_equals_never_having_fed() {
        let mut a = model(3);
        let _ = a.forward_token(1);
        let _ = a.forward_token(2);
        let _ = a.forward_token(60); // speculative
        a.truncate(1);
        let la = a.forward_token(7);
        let mut b = model(3);
        let _ = b.forward_token(1);
        let _ = b.forward_token(2);
        let lb = b.forward_token(7);
        assert_eq!(la, lb);
    }

    #[test]
    fn perfect_drafts_give_two_tokens_per_step() {
        let mut m = model(4);
        let (out, stats) = generate_speculative(&mut m, &[1], 40, |_, b_true| b_true);
        assert_eq!(out.len(), 40);
        assert!((stats.tokens_per_step() - 2.0).abs() < 0.06, "{}", stats.tokens_per_step());
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn hopeless_drafts_give_one_token_per_step() {
        let mut m = model(5);
        let (out, stats) = generate_speculative(&mut m, &[1], 30, |_, b_true| (b_true + 1) % 64);
        assert_eq!(out.len(), 30);
        assert!((stats.tokens_per_step() - 1.0).abs() < 0.06, "{}", stats.tokens_per_step());
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn controlled_acceptance_matches_mtp_statistics() {
        let mut m = model(6);
        let mut rng = StdRng::seed_from_u64(9);
        let p = 0.85;
        let (out, stats) = generate_speculative(&mut m, &[2], 600, |_, b_true| {
            if rng.gen_bool(p) {
                b_true
            } else {
                (b_true + 7) % 64
            }
        });
        assert_eq!(out.len(), 600);
        assert!((stats.acceptance() - p).abs() < 0.06, "acceptance {}", stats.acceptance());
        let expect = expected_tokens_per_step(p, 1);
        assert!(
            (stats.tokens_per_step() - expect).abs() < 0.1,
            "{} vs {expect}",
            stats.tokens_per_step()
        );
    }

    #[test]
    fn speculative_output_matches_plain_greedy() {
        // Speculation must never change the emitted sequence — only speed.
        let mut plain = model(7);
        let reference = plain.generate(&[4, 8], 25);
        let mut spec = model(7);
        let mut rng = StdRng::seed_from_u64(11);
        let (out, _) = generate_speculative(&mut spec, &[4, 8], 25, |_, b_true| {
            if rng.gen_bool(0.5) {
                b_true
            } else {
                rng.gen_range(0..64)
            }
        });
        // generate() consumes the prompt then emits; align lengths.
        assert_eq!(
            out[..reference.len().min(out.len())],
            reference[..reference.len().min(out.len())]
        );
    }

    #[test]
    fn moe_routing_is_observable_per_block() {
        let mut m = model(8);
        let _ = m.forward_token(10);
        assert_eq!(m.last_routings.len(), 2);
        for r in &m.last_routings {
            assert_eq!(r.experts.len(), 4);
            assert!(r.nodes_touched() <= 2);
        }
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_panics() {
        let mut m = model(9);
        let _ = m.forward_token(64);
    }
}
