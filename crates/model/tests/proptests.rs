//! Property-based tests for the model substrate.

use dsv3_model::attention::Attention;
use dsv3_model::moe::{route, routing_stats, MoeGateConfig};
use dsv3_model::mtp::{expected_tokens_per_step, tps_speedup};
use proptest::prelude::*;

fn arb_gate() -> impl Strategy<Value = MoeGateConfig> {
    (1usize..6, 1usize..9, 1usize..9).prop_flat_map(|(epg, groups, _)| {
        let experts = epg * 8 * groups;
        (Just(experts), Just(groups), 1..=groups, 1usize..=(epg * 8)).prop_map(
            |(experts, groups, top_groups, k_per_group)| MoeGateConfig {
                experts,
                groups,
                top_groups,
                top_k: (k_per_group * top_groups).min(top_groups * (experts / groups)).max(1),
            },
        )
    })
}

proptest! {
    /// Routing always returns distinct experts, respects the node limit,
    /// and yields weights that sum to one.
    #[test]
    fn routing_invariants(cfg in arb_gate(), seed in 0u64..1000) {
        prop_assume!(cfg.is_valid());
        let scores: Vec<f32> = dsv3_numerics::Matrix::random(1, cfg.experts, 1.0, seed)
            .data
            .iter()
            .map(|v| 1.0 / (1.0 + (-v).exp()))
            .collect();
        let r = route(&scores, None, &cfg);
        prop_assert_eq!(r.experts.len(), cfg.top_k);
        let mut uniq = r.experts.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), cfg.top_k, "distinct experts");
        prop_assert!(r.nodes_touched() <= cfg.top_groups);
        let wsum: f32 = r.weights.iter().sum();
        prop_assert!((wsum - 1.0).abs() < 1e-4);
        // Every selected expert lives in a selected group.
        let epg = cfg.experts / cfg.groups;
        for &e in &r.experts {
            prop_assert!(r.groups_used.contains(&(e / epg)));
        }
    }

    /// Routing statistics conserve assignments.
    #[test]
    fn stats_conserve(seed in 0u64..200) {
        let cfg = MoeGateConfig::deepseek_v3();
        let routings: Vec<_> = (0..50)
            .map(|i| {
                let scores: Vec<f32> = dsv3_numerics::Matrix::random(1, 256, 1.0, seed * 100 + i)
                    .data
                    .iter()
                    .map(|v| 1.0 / (1.0 + (-v).exp()))
                    .collect();
                route(&scores, None, &cfg)
            })
            .collect();
        let st = routing_stats(&routings, &cfg);
        prop_assert_eq!(st.expert_loads.iter().sum::<usize>(), 50 * 8);
        prop_assert_eq!(st.nodes_touched_hist.iter().sum::<usize>(), 50);
    }

    /// KV cache bytes scale linearly in precision and layers for every
    /// attention variant.
    #[test]
    fn kv_bytes_linear(heads_pow in 0u32..4, kv_heads_pow in 0u32..4, dim_pow in 4u32..8) {
        let heads = 1usize << (heads_pow + kv_heads_pow);
        let kv_heads = 1usize << kv_heads_pow;
        let head_dim = 1usize << dim_pow;
        for a in [
            Attention::Mha { heads, head_dim },
            Attention::Gqa { heads, kv_heads, head_dim },
            Attention::Mqa { heads, head_dim },
        ] {
            prop_assert_eq!(a.kv_bytes_per_token_layer(2), 2 * a.kv_bytes_per_token_layer(1));
        }
        // GQA degenerates to MHA at kv_heads == heads and to MQA at 1.
        let gqa_full = Attention::Gqa { heads, kv_heads: heads, head_dim };
        prop_assert_eq!(
            gqa_full.kv_elems_per_token_layer(),
            Attention::Mha { heads, head_dim }.kv_elems_per_token_layer()
        );
    }

    /// MTP expectations are monotone in acceptance and bounded by 1+modules.
    #[test]
    fn mtp_monotone(p1 in 0.0f64..1.0, p2 in 0.0f64..1.0, modules in 0usize..4) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(expected_tokens_per_step(lo, modules) <= expected_tokens_per_step(hi, modules));
        prop_assert!(expected_tokens_per_step(hi, modules) <= 1.0 + modules as f64 + 1e-12);
        prop_assert!(tps_speedup(hi, modules, 0.1) <= expected_tokens_per_step(hi, modules));
    }
}
