//! Credit-based flow control and head-of-line blocking (§6.3).
//!
//! A lossless fabric pauses an upstream link when a downstream buffer runs
//! out of credits. With one shared credit pool per link, a single congested
//! destination stalls *every* flow crossing that link — the pathological
//! head-of-line blocking the paper warns "naively triggering flow control"
//! causes. Per-virtual-channel credits (or endpoint-driven congestion
//! control that slows only the hot flow) confine the stall.
//!
//! The model: an upstream link carries a hot flow (to a congested port
//! draining at a fraction of line rate) and a victim flow (to an idle
//! port) for a window of `duration_us`.

use serde::{Deserialize, Serialize};

/// Flow-control discipline on the shared upstream link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowControl {
    /// One shared credit pool: when the hot destination backs up, the whole
    /// upstream link pauses.
    SharedCredits,
    /// Per-virtual-channel credits: only the hot flow's VC pauses.
    PerVcCredits,
    /// Endpoint congestion control: the sender of the hot flow slows to the
    /// drain rate before the buffer ever fills (no pause at all).
    EndpointCc,
}

/// The congestion scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CbfcScenario {
    /// Upstream link rate, GB/s.
    pub link_gbps: f64,
    /// Drain rate of the congested destination, GB/s.
    pub hot_drain_gbps: f64,
    /// Offered rate of the hot flow, GB/s.
    pub hot_offered_gbps: f64,
    /// Offered rate of the victim flow, GB/s.
    pub victim_offered_gbps: f64,
}

impl CbfcScenario {
    /// A typical incast-y mix: hot flow offered at line rate into a port
    /// draining at 20%, victim offered at 40% of line rate.
    #[must_use]
    pub fn default_mix() -> Self {
        Self {
            link_gbps: 50.0,
            hot_drain_gbps: 10.0,
            hot_offered_gbps: 50.0,
            victim_offered_gbps: 20.0,
        }
    }

    /// Steady-state victim throughput (GB/s) under a discipline.
    #[must_use]
    pub fn victim_throughput(&self, fc: FlowControl) -> f64 {
        match fc {
            FlowControl::SharedCredits => {
                // The upstream link is paused whenever the hot buffer is
                // full; in steady state it forwards at exactly the hot drain
                // rate, and the victim gets only its time-share of the
                // unpaused window.
                let duty = (self.hot_drain_gbps / self.hot_offered_gbps).min(1.0);
                (self.victim_offered_gbps * duty).min(self.link_gbps * duty)
            }
            FlowControl::PerVcCredits | FlowControl::EndpointCc => {
                // The hot flow is throttled to its drain rate; link capacity
                // is then shared max-min between the two flows.
                let hot_cap = self.hot_drain_gbps.min(self.hot_offered_gbps);
                let victim_cap = self.victim_offered_gbps;
                if hot_cap + victim_cap <= self.link_gbps {
                    victim_cap
                } else {
                    let fair = self.link_gbps / 2.0;
                    if victim_cap <= fair {
                        victim_cap
                    } else if hot_cap <= fair {
                        self.link_gbps - hot_cap
                    } else {
                        fair
                    }
                }
            }
        }
    }

    /// Hot-flow steady-state throughput (identical across disciplines: the
    /// drain is the bottleneck; flow control only decides who else suffers).
    #[must_use]
    pub fn hot_throughput(&self) -> f64 {
        self.hot_drain_gbps.min(self.hot_offered_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_credits_starve_the_victim() {
        let s = CbfcScenario::default_mix();
        let shared = s.victim_throughput(FlowControl::SharedCredits);
        let vc = s.victim_throughput(FlowControl::PerVcCredits);
        assert!(shared < 0.25 * vc, "shared {shared} vs per-VC {vc}");
        assert!((vc - 20.0).abs() < 1e-9, "victim unaffected with isolation");
    }

    #[test]
    fn endpoint_cc_equals_per_vc_in_steady_state() {
        let s = CbfcScenario::default_mix();
        assert_eq!(
            s.victim_throughput(FlowControl::PerVcCredits),
            s.victim_throughput(FlowControl::EndpointCc)
        );
    }

    #[test]
    fn hot_flow_is_drain_limited_regardless() {
        let s = CbfcScenario::default_mix();
        assert_eq!(s.hot_throughput(), 10.0);
    }

    #[test]
    fn no_congestion_no_difference() {
        let s = CbfcScenario { hot_drain_gbps: 50.0, ..CbfcScenario::default_mix() };
        let shared = s.victim_throughput(FlowControl::SharedCredits);
        let vc = s.victim_throughput(FlowControl::PerVcCredits);
        assert!((shared - vc).abs() < 1e-9);
    }

    #[test]
    fn victim_capped_by_leftover_capacity() {
        let s = CbfcScenario { victim_offered_gbps: 60.0, ..CbfcScenario::default_mix() };
        assert_eq!(s.victim_throughput(FlowControl::PerVcCredits), 40.0);
    }
}
