//! Fault-tolerant flow simulation: scheduled link failures, reroute
//! policies, and timeout/backoff retransmission (paper §5, Figures 5–8).
//!
//! [`crate::FlowSim`] assumes a healthy fabric: every flow gets one fixed
//! path at `add_flow` and no link ever fails. The paper's argument for the
//! multi-plane two-layer fat-tree is precisely about the *unhealthy* case —
//! a failed link degrades one plane while traffic fails over — so this
//! module drops the assumption:
//!
//! * [`LinkSchedule`] is a seeded, time-scheduled link up/down event
//!   stream, generalizing `collectives::failures::FlapSchedule` from whole
//!   planes to individual links. A failed link's capacity is zero for the
//!   duration, and the schedule's change points are folded into the max-min
//!   rate recomputation horizons of [`ChaosSim`].
//! * [`ReroutePolicy`] decides what an affected flow does: `Stall` (wait
//!   for repair on the same path), `StaticRehash` (oblivious re-pick over
//!   the precomputed ECMP path set — may land on another dead link), or
//!   `Adaptive` (re-pick among currently-healthy paths, least-loaded
//!   first).
//! * [`RetransmitConfig`] models recovery cost: in-flight bytes on the
//!   dead link (up to one window) are lost and re-sent after a detection
//!   timeout plus exponential backoff, under a per-flow retry budget.
//!   Flows that exhaust the budget — or miss their deadline — are
//!   *stranded* and accounted in [`ChaosReport`].
//!
//! With an empty schedule, no deadline, and single-path flows, [`ChaosSim`]
//! reproduces [`crate::FlowSim::run`] bit-for-bit: both use the shared
//! progressive-filling kernel and identical horizon arithmetic.

use crate::sim::{max_min_rates_for, Link, LinkId};
use dsv3_telemetry::Recorder;
use dsv3_units::us_to_ms;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Identifier of a flow within a [`ChaosSim`].
pub type FlowId = usize;

const EPS: f64 = 1e-9;

/// One link-down interval: `link` is down in `[down_at_us, down_at_us +
/// repair_us)` — down-inclusive, up-exclusive, matching the repair-wins-ties
/// convention of `collectives::failures::PlaneFlap`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFlap {
    /// The failed link.
    pub link: LinkId,
    /// Failure instant (µs).
    pub down_at_us: f64,
    /// Repair duration (µs); the link is healthy again at
    /// `down_at_us + repair_us`.
    pub repair_us: f64,
}

impl LinkFlap {
    /// Instant the link comes back up.
    #[must_use]
    pub fn up_at_us(&self) -> f64 {
        self.down_at_us + self.repair_us
    }

    /// Is this flap holding its link down at time `t_us`?
    #[must_use]
    pub fn is_down_at(&self, t_us: f64) -> bool {
        self.down_at_us <= t_us && t_us < self.up_at_us()
    }
}

/// A time-scheduled stream of individual link failures.
///
/// Overlapping flaps of the same link are fine: the link is down whenever
/// *any* flap holds it down.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkSchedule {
    /// The failure intervals, in no particular order.
    pub flaps: Vec<LinkFlap>,
}

/// Seeded Poisson link-failure generator parameters for
/// [`LinkSchedule::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkChaosConfig {
    /// Number of links in the fabric (failures pick uniformly among them).
    pub links: usize,
    /// Fabric-wide mean time between link failures (µs); `INFINITY`
    /// disables generation.
    pub mtbf_us: f64,
    /// Repair duration of every generated failure (µs).
    pub repair_us: f64,
    /// Generation horizon (µs): no failures arrive after this.
    pub horizon_us: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LinkSchedule {
    /// The empty (fault-free) schedule.
    #[must_use]
    pub fn healthy() -> Self {
        Self { flaps: Vec::new() }
    }

    /// True when no failures are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flaps.is_empty()
    }

    /// Fail every link in `links` at `down_at_us` for `repair_us`.
    #[must_use]
    pub fn fail_links(links: &[LinkId], down_at_us: f64, repair_us: f64) -> Self {
        Self { flaps: links.iter().map(|&link| LinkFlap { link, down_at_us, repair_us }).collect() }
    }

    /// Fail a seeded-random `fraction` of `candidates` (rounded to the
    /// nearest count) at `down_at_us` for `repair_us`. Deterministic for a
    /// fixed seed; the chosen links are sorted for stable reporting.
    #[must_use]
    pub fn fail_fraction(
        candidates: &[LinkId],
        fraction: f64,
        seed: u64,
        down_at_us: f64,
        repair_us: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
        let n = ((fraction * candidates.len() as f64).round() as usize).min(candidates.len());
        let mut pool: Vec<LinkId> = candidates.to_vec();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6672_6163); // "frac"
        pool.shuffle(&mut rng);
        let mut chosen: Vec<LinkId> = pool.into_iter().take(n).collect();
        chosen.sort_unstable();
        Self::fail_links(&chosen, down_at_us, repair_us)
    }

    /// Seeded Poisson arrivals: fabric-wide exponential inter-failure times
    /// with mean `mtbf_us`, each failing a uniformly-chosen link.
    #[must_use]
    pub fn generate(cfg: &LinkChaosConfig) -> Self {
        let mut flaps = Vec::new();
        if cfg.links == 0 || !cfg.mtbf_us.is_finite() {
            return Self { flaps };
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6c69_6e6b); // "link"
        let mut t = 0.0;
        loop {
            t += exponential(&mut rng) * cfg.mtbf_us;
            if t > cfg.horizon_us {
                break;
            }
            let link = rng.gen_range(0..cfg.links);
            flaps.push(LinkFlap { link, down_at_us: t, repair_us: cfg.repair_us });
        }
        Self { flaps }
    }

    /// Is `link` down at time `t_us`?
    #[must_use]
    pub fn is_down(&self, link: LinkId, t_us: f64) -> bool {
        self.flaps.iter().any(|f| f.link == link && f.is_down_at(t_us))
    }

    /// Is every link of `path` up at time `t_us`?
    #[must_use]
    pub fn path_healthy_at(&self, path: &[LinkId], t_us: f64) -> bool {
        path.iter().all(|&l| !self.is_down(l, t_us))
    }

    /// All distinct fail/heal instants, sorted ascending.
    #[must_use]
    pub fn change_points_us(&self) -> Vec<f64> {
        let mut pts: Vec<f64> = self
            .flaps
            .iter()
            .flat_map(|f| [f.down_at_us, f.up_at_us()])
            .filter(|t| t.is_finite())
            .collect();
        pts.sort_by(f64::total_cmp);
        pts.dedup();
        pts
    }

    /// Earliest `t >= t_us` at which every link of `path` is up.
    ///
    /// Returns `t_us` itself if the path is healthy now, otherwise the first
    /// change point at which it heals. Returns `INFINITY` only if some flap
    /// never repairs (non-finite `repair_us`).
    #[must_use]
    pub fn next_healthy_at(&self, path: &[LinkId], t_us: f64) -> f64 {
        if self.path_healthy_at(path, t_us) {
            return t_us;
        }
        for cp in self.change_points_us() {
            if cp > t_us && self.path_healthy_at(path, cp) {
                return cp;
            }
        }
        f64::INFINITY
    }
}

/// What a flow does when a link on its current path fails (or when its
/// retransmit timer expires and it must pick a path again).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReroutePolicy {
    /// Keep the original path and wait for repair. Models a fabric with no
    /// multipathing: recovery time is bounded below by the repair time.
    Stall,
    /// Oblivious ECMP-style re-pick: hash (flow, attempt, seed) over the
    /// precomputed path set without consulting link health — the re-pick
    /// may land on another dead link and burn a retry on the detection
    /// timeout. This is the paper's "static routing" strawman.
    StaticRehash {
        /// Hash seed (deterministic per-fabric salt).
        seed: u64,
    },
    /// Re-pick among currently-healthy paths, choosing the one whose most
    /// loaded link carries the fewest active flows (ties to the lowest
    /// path index). If no path is healthy, wait for the earliest heal.
    #[default]
    Adaptive,
}

/// Timeout + exponential-backoff retransmission model.
///
/// When a link on an active flow's path fails, up to one
/// `inflight_window_bytes` window of the current attempt's progress is
/// lost (returned to the flow's remaining bytes and re-sent). The flow
/// waits `detect_timeout_us + backoff_delay_us(attempt)` before its next
/// attempt; after `max_retries` failed attempts it is stranded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetransmitConfig {
    /// Failure-detection timeout (µs) charged before every retry. Must be
    /// positive so retry loops always advance simulated time.
    pub detect_timeout_us: f64,
    /// First backoff delay (µs).
    pub backoff_base_us: f64,
    /// Multiplier applied per additional attempt (≥ 1).
    pub backoff_factor: f64,
    /// Backoff cap (µs).
    pub backoff_max_us: f64,
    /// Retry budget: attempt `max_retries + 1` failures strand the flow.
    pub max_retries: u32,
    /// Maximum unacknowledged bytes lost per failure (the transport
    /// window).
    pub inflight_window_bytes: f64,
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        Self {
            detect_timeout_us: 100.0,
            backoff_base_us: 50.0,
            backoff_factor: 2.0,
            backoff_max_us: 5_000.0,
            max_retries: 4,
            inflight_window_bytes: 1_048_576.0,
        }
    }
}

impl RetransmitConfig {
    /// Backoff before retry attempt `attempt` (1-based):
    /// `base · factor^(attempt−1)`, capped at `backoff_max_us`. Attempt 0
    /// (the initial send) has no backoff.
    #[must_use]
    pub fn backoff_delay_us(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        let mut d = self.backoff_base_us;
        for _ in 1..attempt {
            d *= self.backoff_factor;
            if d >= self.backoff_max_us {
                return self.backoff_max_us;
            }
        }
        d.min(self.backoff_max_us)
    }
}

/// Full fault configuration for one [`ChaosSim`] run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// The link up/down event stream.
    pub schedule: LinkSchedule,
    /// Reroute policy applied to every flow.
    pub policy: ReroutePolicy,
    /// Retransmission model.
    pub retransmit: RetransmitConfig,
    /// Optional per-flow deadline (µs after the flow's start): a flow not
    /// finished by `start_us + deadline_us` is aborted and stranded.
    pub deadline_us: Option<f64>,
}

/// Per-flow outcome of a chaos run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosFlowOutcome {
    /// Completion instant (µs, includes path latency); `None` if stranded.
    pub finish_us: Option<f64>,
    /// Stranding instant (retry budget exhausted or deadline missed).
    pub stranded_us: Option<f64>,
    /// Bytes that reached the destination.
    pub delivered_bytes: f64,
    /// Bytes lost on failed links (later re-sent unless stranded first).
    pub lost_bytes: f64,
    /// Total bytes put on the wire (`delivered + lost`, modulo float
    /// completion rounding).
    pub sent_bytes: f64,
    /// Failed attempts (interruptions and dead re-picks).
    pub retries: u32,
    /// Times the flow resumed on a different path than it failed on.
    pub reroutes: u64,
    /// Index into the flow's path set it last transmitted on.
    pub final_path: usize,
}

/// Aggregate report of a [`ChaosSim`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Per-flow outcomes, indexed by [`FlowId`].
    pub flows: Vec<ChaosFlowOutcome>,
    /// Latest completion instant among finished flows (0 if none).
    pub makespan_us: f64,
    /// Flows that delivered all bytes.
    pub completed: usize,
    /// Flows aborted by retry-budget exhaustion or deadline.
    pub stranded: usize,
    /// Total bytes lost on failed links and re-sent.
    pub retransmitted_bytes: f64,
    /// Total path changes across all flows.
    pub total_reroutes: u64,
    /// Total failed attempts across all flows.
    pub total_retries: u64,
    /// Scheduled link failures (flap count).
    pub link_failures: usize,
    /// Scheduled link repairs that completed within finite time.
    pub link_repairs: usize,
}

impl ChaosReport {
    /// Project onto a [`crate::SimReport`] when every flow completed.
    ///
    /// With an empty schedule and no deadline the result is bit-identical
    /// to [`crate::FlowSim::run`] on the same flows (same finish times,
    /// same makespan fold).
    #[must_use]
    pub fn to_sim_report(&self) -> Option<crate::SimReport> {
        let mut finish_us = Vec::with_capacity(self.flows.len());
        for f in &self.flows {
            finish_us.push(f.finish_us?);
        }
        let makespan_us = finish_us.iter().copied().fold(0.0, f64::max);
        Some(crate::SimReport { finish_us, makespan_us })
    }

    /// Byte-conservation check: for every flow,
    /// `sent ≈ delivered + lost` and completed flows delivered all their
    /// bytes. `tol` is the relative tolerance (completion rounding).
    #[must_use]
    pub fn bytes_balanced(&self, expected_bytes: &[f64], tol: f64) -> bool {
        self.flows.iter().zip(expected_bytes).all(|(f, &bytes)| {
            let scale = f.sent_bytes.abs().max(bytes).max(1.0);
            let balanced = (f.sent_bytes - f.delivered_bytes - f.lost_bytes).abs() <= tol * scale;
            let complete_ok =
                f.finish_us.is_none() || (f.delivered_bytes - bytes).abs() <= tol * scale;
            balanced && complete_ok
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Waiting to (re)start at `until`; `pick` re-runs path selection.
    Waiting {
        until: f64,
        pick: bool,
    },
    Active,
    Done,
    Stranded,
}

/// One flow's immutable spec: a *set* of candidate paths (ECMP group).
#[derive(Debug, Clone)]
struct ChaosFlowSpec {
    paths: Vec<Vec<LinkId>>,
    bytes: f64,
    start_us: f64,
    latency_us: f64,
}

/// Per-flow mutable run state.
#[derive(Debug, Clone)]
struct Rt {
    phase: Phase,
    /// Current index into the spec's path set.
    current: usize,
    /// Path index at the moment of the last interruption.
    path_at_fail: usize,
    remaining: f64,
    attempt_sent: f64,
    sent: f64,
    lost: f64,
    retries: u32,
    reroutes: u64,
    finish_us: Option<f64>,
    stranded_us: Option<f64>,
}

/// A [`crate::FlowSim`] that survives a hostile fabric.
///
/// Flows carry a precomputed ECMP *path set* instead of a single path; a
/// [`ChaosConfig`] supplies the failure schedule, reroute policy,
/// retransmission model, and deadline. `run` borrows the sim immutably, so
/// the same flow set can be replayed under many configurations.
///
/// ```
/// use dsv3_netsim::chaos::{ChaosConfig, ChaosSim, LinkSchedule, ReroutePolicy};
/// use dsv3_netsim::Link;
///
/// // Two parallel 50 GB/s links; the first dies at t=0 for good.
/// let mut sim = ChaosSim::new(vec![Link { capacity_gbps: 50.0 }; 2]);
/// sim.add_flow(vec![vec![0], vec![1]], 1e6, 0.0, 0.0);
/// let cfg = ChaosConfig {
///     schedule: LinkSchedule::fail_links(&[0], 0.0, 1e12),
///     policy: ReroutePolicy::Adaptive,
///     ..ChaosConfig::default()
/// };
/// let report = sim.run(&cfg);
/// assert_eq!(report.completed, 1); // failed over to link 1
/// ```
#[derive(Debug, Clone)]
pub struct ChaosSim {
    links: Vec<Link>,
    flows: Vec<ChaosFlowSpec>,
}

impl ChaosSim {
    /// New simulator over the given links.
    #[must_use]
    pub fn new(links: Vec<Link>) -> Self {
        Self { links, flows: Vec::new() }
    }

    /// Number of links.
    #[must_use]
    pub fn links(&self) -> usize {
        self.links.len()
    }

    /// Number of flows.
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Add a flow of `bytes` with the candidate path set `paths` (the
    /// precomputed ECMP group; index 0 is the "home" path used before any
    /// failure under `Stall`/`StaticRehash` attempt 0 hashing or as the
    /// adaptive default). Semantics of `start_us`/`latency_us` match
    /// [`crate::FlowSim::add_flow`]; zero-capacity links are legal (static
    /// dead links). Returns the flow id.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty, a path references an unknown link,
    /// `bytes` is negative, or a link capacity is negative.
    pub fn add_flow(
        &mut self,
        paths: Vec<Vec<LinkId>>,
        bytes: f64,
        start_us: f64,
        latency_us: f64,
    ) -> FlowId {
        assert!(!paths.is_empty(), "a flow needs at least one candidate path");
        assert!(bytes >= 0.0, "bytes must be non-negative");
        for path in &paths {
            for &l in path {
                assert!(l < self.links.len(), "unknown link {l}");
                assert!(self.links[l].capacity_gbps >= 0.0, "link {l} has negative capacity");
            }
        }
        self.flows.push(ChaosFlowSpec { paths, bytes, start_us, latency_us });
        self.flows.len() - 1
    }

    /// Run to completion (or stranding) under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if no flows were added, the schedule references an unknown
    /// link or a non-finite instant, or `cfg.retransmit.detect_timeout_us`
    /// is not positive (retry loops must advance time).
    #[must_use]
    pub fn run(&self, cfg: &ChaosConfig) -> ChaosReport {
        self.run_impl(cfg, None)
    }

    /// [`ChaosSim::run`] plus telemetry: one span per flow (start to finish
    /// or stranding), `fail link{l}` / `heal link{l}` instants on a `links`
    /// thread, reroute/retry/retransmitted-bytes counters, and a
    /// `{scope}.chaos.flow_us` completion histogram. With a disabled
    /// recorder this is exactly [`ChaosSim::run`].
    ///
    /// # Panics
    ///
    /// As [`ChaosSim::run`].
    #[must_use]
    // lint:entry — ChaosSim event loop (link flaps + reroute under faults).
    pub fn run_traced(&self, rec: &mut Recorder, scope: &str, cfg: &ChaosConfig) -> ChaosReport {
        if rec.is_enabled() {
            self.run_impl(cfg, Some((rec, scope)))
        } else {
            self.run_impl(cfg, None)
        }
    }

    fn validate(&self, cfg: &ChaosConfig) {
        assert!(!self.flows.is_empty(), "no flows to simulate");
        for f in &cfg.schedule.flaps {
            assert!(f.link < self.links.len(), "schedule references unknown link {}", f.link);
            assert!(
                f.down_at_us.is_finite() && f.down_at_us >= 0.0,
                "failure instants must be finite and non-negative"
            );
            assert!(f.repair_us >= 0.0, "repair duration must be non-negative");
        }
        assert!(
            cfg.retransmit.detect_timeout_us > 0.0,
            "detect_timeout_us must be positive so retries advance time"
        );
        assert!(cfg.retransmit.backoff_base_us >= 0.0, "backoff base must be non-negative");
        assert!(cfg.retransmit.backoff_factor >= 1.0, "backoff factor must be >= 1");
        assert!(
            cfg.retransmit.inflight_window_bytes >= 0.0,
            "in-flight window must be non-negative"
        );
        if let Some(d) = cfg.deadline_us {
            assert!(d > 0.0, "deadline must be positive");
        }
    }

    #[allow(clippy::too_many_lines)]
    fn run_impl(&self, cfg: &ChaosConfig, mut tel: Option<(&mut Recorder, &str)>) -> ChaosReport {
        self.validate(cfg);
        let change_points = cfg.schedule.change_points_us();
        let mut rt: Vec<Rt> = self
            .flows
            .iter()
            .map(|spec| Rt {
                phase: Phase::Waiting { until: spec.start_us, pick: true },
                current: 0,
                path_at_fail: 0,
                remaining: spec.bytes,
                attempt_sent: 0.0,
                sent: 0.0,
                lost: 0.0,
                retries: 0,
                reroutes: 0,
                finish_us: None,
                stranded_us: None,
            })
            .collect();
        let n = self.flows.len();
        let mut now = 0f64;
        loop {
            // 1. Deadline aborts: any live flow past `start + deadline` is
            // stranded at exactly its deadline instant.
            if let Some(d) = cfg.deadline_us {
                for (f, r) in rt.iter_mut().enumerate() {
                    let live = matches!(r.phase, Phase::Waiting { .. } | Phase::Active);
                    let dl = self.flows[f].start_us + d;
                    if live && dl <= now + EPS {
                        r.phase = Phase::Stranded;
                        r.stranded_us = Some(dl.max(self.flows[f].start_us));
                    }
                }
            }
            // 2. Interrupt active flows whose current path just lost a link:
            // one in-flight window of the attempt's progress is lost and
            // queued for retransmission; the flow backs off (or strands).
            for (f, r) in rt.iter_mut().enumerate() {
                if r.phase != Phase::Active
                    || cfg.schedule.path_healthy_at(&self.flows[f].paths[r.current], now)
                {
                    continue;
                }
                let lost = cfg.retransmit.inflight_window_bytes.min(r.attempt_sent);
                r.remaining += lost;
                r.lost += lost;
                r.attempt_sent = 0.0;
                r.path_at_fail = r.current;
                r.retries += 1;
                if r.retries > cfg.retransmit.max_retries {
                    r.phase = Phase::Stranded;
                    r.stranded_us = Some(now);
                } else {
                    let wait = cfg.retransmit.detect_timeout_us
                        + cfg.retransmit.backoff_delay_us(r.retries);
                    r.phase = Phase::Waiting { until: now + wait, pick: true };
                }
            }
            // 3. Resume due waiting flows, applying the reroute policy. Link
            // load (for adaptive placement) counts active flows and is
            // updated as flows activate, so simultaneous resumes spread out
            // deterministically in flow-id order.
            let mut link_load = vec![0u32; self.links.len()];
            for (f, r) in rt.iter().enumerate() {
                if r.phase == Phase::Active {
                    for &l in &self.flows[f].paths[r.current] {
                        link_load[l] += 1;
                    }
                }
            }
            for (f, r) in rt.iter_mut().enumerate() {
                let Phase::Waiting { until, pick } = r.phase else { continue };
                if until > now + EPS {
                    continue;
                }
                let spec = &self.flows[f];
                let activate = |r: &mut Rt, idx: usize, load: &mut [u32], paths: &[Vec<LinkId>]| {
                    if r.retries > 0 && idx != r.path_at_fail {
                        r.reroutes += 1;
                    }
                    r.current = idx;
                    r.attempt_sent = 0.0;
                    r.phase = Phase::Active;
                    for &l in &paths[idx] {
                        load[l] += 1;
                    }
                };
                match cfg.policy {
                    ReroutePolicy::Stall => {
                        // Never re-picks: wait out the repair on the same path.
                        let idx = r.current;
                        if cfg.schedule.path_healthy_at(&spec.paths[idx], now) {
                            activate(r, idx, &mut link_load, &spec.paths);
                        } else {
                            let heal = cfg.schedule.next_healthy_at(&spec.paths[idx], now);
                            r.phase = Phase::Waiting { until: heal, pick: false };
                        }
                    }
                    ReroutePolicy::StaticRehash { seed } => {
                        let idx = if pick {
                            (rehash(f as u64, u64::from(r.retries), seed) % spec.paths.len() as u64)
                                as usize
                        } else {
                            r.current
                        };
                        if cfg.schedule.path_healthy_at(&spec.paths[idx], now) {
                            activate(r, idx, &mut link_load, &spec.paths);
                        } else {
                            // Oblivious pick landed on a dead link: the
                            // detection timeout burns a retry before the
                            // next hash.
                            r.current = idx;
                            r.retries += 1;
                            if r.retries > cfg.retransmit.max_retries {
                                r.phase = Phase::Stranded;
                                r.stranded_us = Some(now);
                            } else {
                                let wait = cfg.retransmit.detect_timeout_us
                                    + cfg.retransmit.backoff_delay_us(r.retries);
                                r.phase = Phase::Waiting { until: now + wait, pick: true };
                            }
                        }
                    }
                    ReroutePolicy::Adaptive => {
                        // Least-loaded healthy path (max link load on the
                        // path, ties to the lowest index).
                        let mut best: Option<(u32, usize)> = None;
                        for (idx, path) in spec.paths.iter().enumerate() {
                            if !cfg.schedule.path_healthy_at(path, now) {
                                continue;
                            }
                            let score = path.iter().map(|&l| link_load[l]).max().unwrap_or(0);
                            if best.is_none_or(|(bs, _)| score < bs) {
                                best = Some((score, idx));
                            }
                        }
                        if let Some((_, idx)) = best {
                            activate(r, idx, &mut link_load, &spec.paths);
                        } else {
                            // Whole path set dark: wait for the earliest heal.
                            let heal = spec
                                .paths
                                .iter()
                                .map(|p| cfg.schedule.next_healthy_at(p, now))
                                .fold(f64::INFINITY, f64::min);
                            r.phase = Phase::Waiting { until: heal, pick: true };
                        }
                    }
                }
            }
            // 4. Zero-work flows finish immediately (pure-latency messages).
            let mut finished_any = false;
            for (f, r) in rt.iter_mut().enumerate() {
                if r.phase == Phase::Active && r.remaining <= EPS {
                    r.remaining = 0.0;
                    r.finish_us = Some(now + self.flows[f].latency_us);
                    r.phase = Phase::Done;
                    finished_any = true;
                }
            }
            if finished_any {
                continue;
            }
            // 5. Wake candidates: waiting resumes, schedule change points,
            // and live-flow deadlines.
            let mut next_wake =
                change_points.iter().copied().find(|&cp| cp > now + EPS).unwrap_or(f64::INFINITY);
            for (f, r) in rt.iter().enumerate() {
                if let Phase::Waiting { until, .. } = r.phase {
                    next_wake = next_wake.min(until);
                }
                if let Some(d) = cfg.deadline_us {
                    let live = matches!(r.phase, Phase::Waiting { .. } | Phase::Active);
                    let dl = self.flows[f].start_us + d;
                    if live && dl > now + EPS {
                        next_wake = next_wake.min(dl);
                    }
                }
            }
            let active: Vec<usize> = (0..n).filter(|&f| rt[f].phase == Phase::Active).collect();
            if active.is_empty() {
                if next_wake.is_finite() {
                    now = next_wake;
                    continue;
                }
                break;
            }
            // 6. Max-min rates over the active flows' current paths (shared
            // kernel with FlowSim), then advance to the nearest horizon.
            let paths: Vec<&[LinkId]> =
                active.iter().map(|&f| self.flows[f].paths[rt[f].current].as_slice()).collect();
            let rates = max_min_rates_for(&self.links, &paths);
            let mut next_done = f64::INFINITY;
            for (i, &f) in active.iter().enumerate() {
                if rates[i] > 0.0 {
                    // 1 GB/s = 1000 B/µs, as in FlowSim::run.
                    let us = rt[f].remaining / (rates[i] * 1000.0);
                    next_done = next_done.min(now + us);
                }
            }
            let horizon = next_done.min(next_wake);
            assert!(horizon.is_finite(), "simulation cannot progress (all rates zero)");
            let dt = horizon - now;
            for (i, &f) in active.iter().enumerate() {
                let moved = rates[i] * 1000.0 * dt;
                let r = &mut rt[f];
                r.remaining = (r.remaining - moved).max(0.0);
                r.attempt_sent += moved;
                r.sent += moved;
                if r.remaining <= EPS.max(1e-6 * moved) {
                    r.remaining = 0.0;
                    r.finish_us = Some(horizon + self.flows[f].latency_us);
                    r.phase = Phase::Done;
                }
            }
            now = horizon;
        }
        // Safety net: flows left waiting on a never-healing path set (all
        // repair times non-finite and no deadline) are stranded where the
        // simulation stopped making progress.
        for r in &mut rt {
            if matches!(r.phase, Phase::Waiting { .. } | Phase::Active) {
                r.phase = Phase::Stranded;
                r.stranded_us = Some(now);
            }
        }
        let flows: Vec<ChaosFlowOutcome> = rt
            .iter()
            .zip(&self.flows)
            .map(|(r, spec)| ChaosFlowOutcome {
                finish_us: r.finish_us,
                stranded_us: r.stranded_us,
                delivered_bytes: spec.bytes - r.remaining,
                lost_bytes: r.lost,
                sent_bytes: r.sent,
                retries: r.retries,
                reroutes: r.reroutes,
                final_path: r.current,
            })
            .collect();
        let makespan_us = flows.iter().filter_map(|f| f.finish_us).fold(0.0, f64::max);
        let report = ChaosReport {
            completed: flows.iter().filter(|f| f.finish_us.is_some()).count(),
            stranded: flows.iter().filter(|f| f.stranded_us.is_some()).count(),
            retransmitted_bytes: flows.iter().map(|f| f.lost_bytes).sum(),
            total_reroutes: flows.iter().map(|f| f.reroutes).sum(),
            total_retries: flows.iter().map(|f| u64::from(f.retries)).sum(),
            link_failures: cfg.schedule.flaps.len(),
            link_repairs: cfg.schedule.flaps.iter().filter(|f| f.up_at_us().is_finite()).count(),
            flows,
            makespan_us,
        };
        if let Some((rec, scope)) = tel.as_mut() {
            let pid = rec.process(&format!("{scope}/chaos"));
            let links_tid = rec.thread(pid, "links");
            for flap in &cfg.schedule.flaps {
                rec.instant(
                    pid,
                    links_tid,
                    "link",
                    &format!("fail link{}", flap.link),
                    flap.down_at_us,
                );
                if flap.up_at_us().is_finite() {
                    rec.instant(
                        pid,
                        links_tid,
                        "link",
                        &format!("heal link{}", flap.link),
                        flap.up_at_us(),
                    );
                }
            }
            // Concurrently-down link count over time, as a series for the
            // changepoint detector. Heals sort before fails at equal
            // timestamps so an instantaneous swap never overcounts.
            let mut edges: Vec<(f64, i32)> = Vec::new();
            for flap in &cfg.schedule.flaps {
                edges.push((flap.down_at_us, 1));
                if flap.up_at_us().is_finite() {
                    edges.push((flap.up_at_us(), -1));
                }
            }
            edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let series_name = format!("{scope}.links_down");
            let mut down = 0i32;
            for (us, delta) in edges {
                down += delta;
                // Series timestamps are ms; the trace above stays in µs.
                rec.series(&series_name, us_to_ms(us), f64::from(down));
            }
            for (f, out) in report.flows.iter().enumerate() {
                let spec = &self.flows[f];
                let end = out.finish_us.or(out.stranded_us).unwrap_or(report.makespan_us);
                let tid = rec.thread(pid, &format!("flow{f}"));
                let cat = if out.finish_us.is_some() { "flow" } else { "stranded" };
                rec.span(pid, tid, cat, &format!("flow{f}"), spec.start_us, end);
                if let Some(done) = out.finish_us {
                    rec.observe(&format!("{scope}.chaos.flow_us"), done - spec.start_us);
                }
            }
            rec.counter_add(&format!("{scope}.chaos.flows"), report.flows.len() as u64);
            rec.counter_add(&format!("{scope}.chaos.completed"), report.completed as u64);
            rec.counter_add(&format!("{scope}.chaos.stranded"), report.stranded as u64);
            rec.counter_add(&format!("{scope}.chaos.reroutes"), report.total_reroutes);
            rec.counter_add(&format!("{scope}.chaos.retries"), report.total_retries);
            rec.counter_add(
                &format!("{scope}.chaos.retransmitted_bytes"),
                report.retransmitted_bytes.round() as u64,
            );
            rec.counter_add(&format!("{scope}.chaos.link_failures"), report.link_failures as u64);
        }
        report
    }
}

/// SplitMix64-style avalanche over (flow, attempt, seed) — the oblivious
/// `StaticRehash` path pick. Deterministic and attempt-varying, but blind
/// to link health.
#[must_use]
fn rehash(flow: u64, attempt: u64, seed: u64) -> u64 {
    let mut x = seed
        ^ flow.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ attempt.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Unit-mean exponential sample (inverse-CDF), mirroring
/// `dsv3-faults::plan`'s arrival sampling.
fn exponential(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -(1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowSim;

    fn links(caps: &[f64]) -> Vec<Link> {
        caps.iter().map(|&c| Link { capacity_gbps: c }).collect()
    }

    #[test]
    fn flap_boundaries_down_inclusive_up_exclusive() {
        let f = LinkFlap { link: 0, down_at_us: 10.0, repair_us: 5.0 };
        assert!(!f.is_down_at(9.999));
        assert!(f.is_down_at(10.0));
        assert!(f.is_down_at(14.999));
        assert!(!f.is_down_at(15.0));
    }

    #[test]
    fn schedule_dedupes_overlapping_flaps_of_same_link() {
        let s = LinkSchedule {
            flaps: vec![
                LinkFlap { link: 3, down_at_us: 0.0, repair_us: 10.0 },
                LinkFlap { link: 3, down_at_us: 5.0, repair_us: 10.0 },
            ],
        };
        assert!(s.is_down(3, 7.0));
        assert!(s.is_down(3, 12.0)); // second flap still holds it
        assert!(!s.is_down(3, 15.0));
        assert_eq!(s.change_points_us(), vec![0.0, 5.0, 10.0, 15.0]);
    }

    #[test]
    fn next_healthy_at_scans_change_points() {
        let s = LinkSchedule {
            flaps: vec![
                LinkFlap { link: 0, down_at_us: 10.0, repair_us: 10.0 },
                LinkFlap { link: 1, down_at_us: 15.0, repair_us: 10.0 },
            ],
        };
        assert_eq!(s.next_healthy_at(&[0, 1], 0.0), 0.0);
        assert_eq!(s.next_healthy_at(&[0], 12.0), 20.0);
        // Path crossing both: link 0 heals at 20 but link 1 is down until 25.
        assert_eq!(s.next_healthy_at(&[0, 1], 12.0), 25.0);
        // Never-healing flap: INFINITY.
        let s2 = LinkSchedule {
            flaps: vec![LinkFlap { link: 0, down_at_us: 0.0, repair_us: f64::INFINITY }],
        };
        assert_eq!(s2.next_healthy_at(&[0], 1.0), f64::INFINITY);
    }

    #[test]
    fn backoff_caps() {
        let r = RetransmitConfig {
            backoff_base_us: 10.0,
            backoff_factor: 3.0,
            backoff_max_us: 80.0,
            ..RetransmitConfig::default()
        };
        assert_eq!(r.backoff_delay_us(0), 0.0);
        assert_eq!(r.backoff_delay_us(1), 10.0);
        assert_eq!(r.backoff_delay_us(2), 30.0);
        assert_eq!(r.backoff_delay_us(3), 80.0); // 90 capped
        assert_eq!(r.backoff_delay_us(10), 80.0);
    }

    #[test]
    fn generate_is_deterministic_and_disableable() {
        let cfg = LinkChaosConfig {
            links: 16,
            mtbf_us: 100.0,
            repair_us: 50.0,
            horizon_us: 1000.0,
            seed: 7,
        };
        let a = LinkSchedule::generate(&cfg);
        let b = LinkSchedule::generate(&cfg);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "mtbf 100 over 1000 µs should fire");
        assert!(a.flaps.iter().all(|f| f.link < 16 && f.down_at_us <= 1000.0));
        let off = LinkSchedule::generate(&LinkChaosConfig { mtbf_us: f64::INFINITY, ..cfg });
        assert!(off.is_empty());
    }

    #[test]
    fn fail_fraction_picks_requested_count() {
        let candidates: Vec<LinkId> = (0..40).collect();
        let s = LinkSchedule::fail_fraction(&candidates, 0.25, 3, 5.0, 100.0);
        assert_eq!(s.flaps.len(), 10);
        let again = LinkSchedule::fail_fraction(&candidates, 0.25, 3, 5.0, 100.0);
        assert_eq!(s, again);
        assert!(LinkSchedule::fail_fraction(&candidates, 0.0, 3, 5.0, 100.0).is_empty());
    }

    /// The acceptance-criterion identity: with an empty schedule, no
    /// deadline, and single-path flows, the chaos engine's report is
    /// bit-identical to `FlowSim::run` — for every policy.
    #[test]
    fn empty_schedule_bit_identical_to_flowsim() {
        let caps = [40.0, 100.0, 25.0];
        let flows: [(Vec<LinkId>, f64, f64, f64); 5] = [
            (vec![0, 1], 1e6, 0.0, 3.0),
            (vec![0], 2.5e6, 0.0, 0.5),
            (vec![1, 2], 7e5, 12.0, 1.0),
            (vec![2], 0.0, 5.0, 2.8), // pure-latency message
            (vec![0, 2], 3e6, 40.0, 0.0),
        ];
        let mut fs = FlowSim::new(links(&caps));
        for (path, bytes, start, lat) in &flows {
            fs.add_flow(path.clone(), *bytes, *start, *lat);
        }
        let want = fs.run();
        for policy in [
            ReroutePolicy::Stall,
            ReroutePolicy::StaticRehash { seed: 99 },
            ReroutePolicy::Adaptive,
        ] {
            let mut cs = ChaosSim::new(links(&caps));
            for (path, bytes, start, lat) in &flows {
                cs.add_flow(vec![path.clone()], *bytes, *start, *lat);
            }
            let report = cs.run(&ChaosConfig { policy, ..ChaosConfig::default() });
            assert_eq!(report.stranded, 0);
            assert_eq!(report.retransmitted_bytes, 0.0);
            assert_eq!(report.total_reroutes, 0);
            let got = report.to_sim_report().expect("all complete");
            assert_eq!(got.finish_us.len(), want.finish_us.len());
            for (a, b) in got.finish_us.iter().zip(&want.finish_us) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
            }
            assert_eq!(got.makespan_us.to_bits(), want.makespan_us.to_bits());
        }
    }

    #[test]
    fn stall_waits_out_repair_and_resends_lost_window() {
        // 100 GB/s link; 2 MB flow would finish at 20 µs. Link dies at 10
        // (1 MB delivered, 0.5 MB window lost), heals at 30.
        let mut sim = ChaosSim::new(links(&[100.0]));
        sim.add_flow(vec![vec![0]], 2e6, 0.0, 0.0);
        let cfg = ChaosConfig {
            schedule: LinkSchedule::fail_links(&[0], 10.0, 20.0),
            policy: ReroutePolicy::Stall,
            retransmit: RetransmitConfig {
                detect_timeout_us: 5.0,
                backoff_base_us: 10.0,
                inflight_window_bytes: 0.5e6,
                ..RetransmitConfig::default()
            },
            deadline_us: None,
        };
        let r = sim.run(&cfg);
        // Timer expires at 10 + 5 + 10 = 25, still down -> waits to 30;
        // 1.5 MB left at 100 GB/s = 15 µs -> finish 45.
        let out = &r.flows[0];
        assert_eq!(out.finish_us, Some(45.0));
        assert_eq!(out.lost_bytes, 0.5e6);
        assert_eq!(out.retries, 1);
        assert_eq!(out.reroutes, 0, "stall never changes path");
        assert!((out.sent_bytes - 2.5e6).abs() < 1.0);
        assert!(r.bytes_balanced(&[2e6], 1e-6));
    }

    #[test]
    fn adaptive_fails_over_to_healthy_path() {
        // Path 0 dies at 10 and never heals; path 1 stays up.
        let mut sim = ChaosSim::new(links(&[100.0, 100.0]));
        sim.add_flow(vec![vec![0], vec![1]], 2e6, 0.0, 0.0);
        let cfg = ChaosConfig {
            schedule: LinkSchedule::fail_links(&[0], 10.0, 1e12),
            policy: ReroutePolicy::Adaptive,
            retransmit: RetransmitConfig {
                detect_timeout_us: 5.0,
                backoff_base_us: 5.0,
                inflight_window_bytes: 0.25e6,
                ..RetransmitConfig::default()
            },
            deadline_us: None,
        };
        let r = sim.run(&cfg);
        let out = &r.flows[0];
        // Resumes on path 1 at 10 + 5 + 5 = 20 with 1 MB + 0.25 MB lost
        // window to resend: 12.5 µs -> 32.5.
        assert_eq!(out.finish_us, Some(32.5));
        assert_eq!(out.reroutes, 1);
        assert_eq!(out.final_path, 1);
        assert_eq!(r.completed, 1);
        assert!(r.bytes_balanced(&[2e6], 1e-6));
    }

    #[test]
    fn static_rehash_can_strand_on_dead_links() {
        // Every candidate path is dead for the whole run: the oblivious
        // rehash burns the retry budget and strands the flow.
        let mut sim = ChaosSim::new(links(&[50.0, 50.0]));
        sim.add_flow(vec![vec![0], vec![1]], 1e6, 0.0, 0.0);
        let cfg = ChaosConfig {
            schedule: LinkSchedule::fail_links(&[0, 1], 0.0, 1e12),
            policy: ReroutePolicy::StaticRehash { seed: 1 },
            retransmit: RetransmitConfig { max_retries: 2, ..RetransmitConfig::default() },
            deadline_us: None,
        };
        let r = sim.run(&cfg);
        assert_eq!(r.completed, 0);
        assert_eq!(r.stranded, 1);
        assert_eq!(r.flows[0].retries, 3, "budget of 2 retries + stranding pick");
        assert_eq!(r.flows[0].delivered_bytes, 0.0);
    }

    #[test]
    fn stall_on_long_outage_hits_deadline() {
        let mut sim = ChaosSim::new(links(&[100.0]));
        sim.add_flow(vec![vec![0]], 2e6, 0.0, 0.0);
        let cfg = ChaosConfig {
            schedule: LinkSchedule::fail_links(&[0], 10.0, 1e9),
            policy: ReroutePolicy::Stall,
            retransmit: RetransmitConfig::default(),
            deadline_us: Some(500.0),
        };
        let r = sim.run(&cfg);
        assert_eq!(r.stranded, 1);
        assert_eq!(r.flows[0].stranded_us, Some(500.0));
        assert!(r.flows[0].delivered_bytes < 2e6);
    }

    #[test]
    fn adaptive_waits_when_all_paths_dark_then_recovers() {
        // Both paths down 5..25; adaptive waits for the earliest heal.
        let mut sim = ChaosSim::new(links(&[100.0, 100.0]));
        sim.add_flow(vec![vec![0], vec![1]], 1e6, 0.0, 0.0);
        let cfg = ChaosConfig {
            schedule: LinkSchedule::fail_links(&[0, 1], 5.0, 20.0),
            policy: ReroutePolicy::Adaptive,
            retransmit: RetransmitConfig {
                detect_timeout_us: 2.0,
                backoff_base_us: 1.0,
                inflight_window_bytes: 1e9,
                ..RetransmitConfig::default()
            },
            deadline_us: None,
        };
        let r = sim.run(&cfg);
        assert_eq!(r.completed, 1);
        // All 0.5 MB progress lost at 5; timer at 8, dark -> waits to 25;
        // full 1 MB resend takes 10 µs -> 35.
        assert_eq!(r.flows[0].finish_us, Some(35.0));
        assert!(r.bytes_balanced(&[1e6], 1e-6));
    }

    #[test]
    fn zero_capacity_static_link_gets_zero_rate() {
        let sim = {
            let mut s = ChaosSim::new(links(&[0.0, 50.0]));
            s.add_flow(vec![vec![0]], 1e6, 0.0, 0.0);
            s.add_flow(vec![vec![1]], 1e6, 0.0, 0.0);
            s
        };
        // Flow 0 can never progress (static dead link, no failover) — the
        // run strands it via the safety net once flow 1 completes.
        let r = sim.run(&ChaosConfig { deadline_us: Some(100.0), ..ChaosConfig::default() });
        assert_eq!(r.flows[1].finish_us, Some(20.0));
        assert!(r.flows[0].stranded_us.is_some());
    }

    #[test]
    fn traced_disabled_is_strict_noop() {
        let mut sim = ChaosSim::new(links(&[50.0]));
        sim.add_flow(vec![vec![0]], 1e6, 0.0, 0.0);
        let cfg = ChaosConfig::default();
        let plain = sim.run(&cfg);
        let mut rec = Recorder::disabled();
        let traced = sim.run_traced(&mut rec, "net", &cfg);
        assert_eq!(plain, traced);
        assert!(rec.events().is_empty());
        assert!(rec.counters().is_empty());
    }

    #[test]
    fn traced_records_fail_heal_instants_and_counters() {
        let mut sim = ChaosSim::new(links(&[100.0, 100.0]));
        sim.add_flow(vec![vec![0], vec![1]], 2e6, 0.0, 0.0);
        let cfg = ChaosConfig {
            schedule: LinkSchedule::fail_links(&[0], 10.0, 40.0),
            policy: ReroutePolicy::Adaptive,
            retransmit: RetransmitConfig {
                detect_timeout_us: 5.0,
                backoff_base_us: 5.0,
                ..RetransmitConfig::default()
            },
            deadline_us: None,
        };
        let mut rec = Recorder::new();
        let traced = sim.run_traced(&mut rec, "net", &cfg);
        assert_eq!(traced, sim.run(&cfg), "tracing must not perturb the simulation");
        let instants: Vec<_> = rec.events().iter().filter(|e| e.ph == "i").collect();
        assert!(instants.iter().any(|e| e.name == "fail link0"));
        assert!(instants.iter().any(|e| e.name == "heal link0"));
        assert_eq!(rec.counters()["net.chaos.flows"], 1);
        assert_eq!(rec.counters()["net.chaos.reroutes"], 1);
        assert!(rec.counters()["net.chaos.retransmitted_bytes"] > 0);
        assert!(rec.histogram("net.chaos.flow_us").is_some());
    }

    #[test]
    fn conservation_under_repeated_flaps() {
        // A flapping link with generous retry budget: every byte is either
        // delivered or accounted as lost-and-resent.
        let mut sim = ChaosSim::new(links(&[50.0, 50.0]));
        for i in 0..4 {
            sim.add_flow(vec![vec![0], vec![1]], 2e6, f64::from(i) * 7.0, 0.5);
        }
        let cfg = ChaosConfig {
            schedule: LinkSchedule {
                flaps: vec![
                    LinkFlap { link: 0, down_at_us: 10.0, repair_us: 15.0 },
                    LinkFlap { link: 1, down_at_us: 30.0, repair_us: 15.0 },
                    LinkFlap { link: 0, down_at_us: 60.0, repair_us: 10.0 },
                ],
            },
            policy: ReroutePolicy::Adaptive,
            retransmit: RetransmitConfig {
                detect_timeout_us: 3.0,
                backoff_base_us: 2.0,
                max_retries: 10,
                inflight_window_bytes: 0.5e6,
                ..RetransmitConfig::default()
            },
            deadline_us: None,
        };
        let r = sim.run(&cfg);
        assert_eq!(r.completed, 4, "generous budget completes everything");
        assert!(r.bytes_balanced(&[2e6; 4], 1e-6));
        assert!(r.retransmitted_bytes > 0.0, "flaps mid-transfer must cost bytes");
        let rerun = sim.run(&cfg);
        assert_eq!(r, rerun, "chaos runs are deterministic");
    }

    #[test]
    fn rehash_varies_by_attempt_and_seed() {
        let picks: Vec<u64> = (0..4).map(|a| rehash(3, a, 42) % 8).collect();
        assert!(picks.windows(2).any(|w| w[0] != w[1]), "attempts must vary: {picks:?}");
        assert_ne!(rehash(3, 0, 42), rehash(3, 0, 43));
        assert_ne!(rehash(3, 0, 42), rehash(4, 0, 42));
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn schedule_with_unknown_link_panics() {
        let mut sim = ChaosSim::new(links(&[50.0]));
        sim.add_flow(vec![vec![0]], 1.0, 0.0, 0.0);
        let cfg = ChaosConfig {
            schedule: LinkSchedule::fail_links(&[9], 0.0, 1.0),
            ..ChaosConfig::default()
        };
        let _ = sim.run(&cfg);
    }

    #[test]
    #[should_panic(expected = "at least one candidate path")]
    fn empty_path_set_panics() {
        let mut sim = ChaosSim::new(links(&[50.0]));
        sim.add_flow(Vec::new(), 1.0, 0.0, 0.0);
    }
}
