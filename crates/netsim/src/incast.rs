//! Incast congestion and traffic isolation (§5.2.2).
//!
//! EP's all-to-all produces bursty many-to-one transfers; on a switch with
//! shared output queues those bursts head-of-line-block unrelated traffic
//! (DP all-reduce) sharing the same egress. Virtual output queuing (VOQ)
//! gives each flow its own queue so the victim only shares *bandwidth*, not
//! queue occupancy. This module models one egress port as a FIFO (shared
//! queue) versus fair-shared service (VOQ) and reports the victim flow's
//! latency.

use serde::{Deserialize, Serialize};

/// An incast scenario on one switch egress port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncastScenario {
    /// Egress port bandwidth, GB/s.
    pub port_gbps: f64,
    /// Number of synchronized burst senders (the many-to-one).
    pub burst_senders: usize,
    /// Bytes per burst sender.
    pub burst_bytes: f64,
    /// The victim flow's bytes (latency-sensitive, e.g. an all-reduce chunk).
    pub victim_bytes: f64,
}

impl IncastScenario {
    /// A typical EP-burst-vs-allreduce mix.
    #[must_use]
    pub fn ep_burst_vs_allreduce() -> Self {
        Self { port_gbps: 50.0, burst_senders: 16, burst_bytes: 1e6, victim_bytes: 0.25e6 }
    }

    /// Victim completion time (µs) with a shared FIFO queue: the burst
    /// arrived first and the victim drains behind all of it.
    #[must_use]
    pub fn victim_time_shared_queue(&self) -> f64 {
        let burst = self.burst_senders as f64 * self.burst_bytes;
        (burst + self.victim_bytes) / (self.port_gbps * 1000.0)
    }

    /// Victim completion time (µs) with VOQ / per-QP queues: the victim
    /// fair-shares the port with the burst aggregate (one queue vs many,
    /// served round-robin ⇒ the victim gets `1/(senders+1)` of the port
    /// until it finishes).
    #[must_use]
    pub fn victim_time_voq(&self) -> f64 {
        let share = self.port_gbps / (self.burst_senders as f64 + 1.0);
        self.victim_bytes / (share * 1000.0)
    }

    /// Head-of-line blocking penalty factor.
    #[must_use]
    pub fn hol_penalty(&self) -> f64 {
        self.victim_time_shared_queue() / self.victim_time_voq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voq_protects_the_victim() {
        let s = IncastScenario::ep_burst_vs_allreduce();
        assert!(s.victim_time_voq() < s.victim_time_shared_queue());
        // 16 MB of burst ahead of a 0.25 MB victim: ~4x penalty at least.
        assert!(s.hol_penalty() > 3.0, "{}", s.hol_penalty());
    }

    #[test]
    fn penalty_grows_with_burst_size() {
        let base = IncastScenario::ep_burst_vs_allreduce();
        let bigger = IncastScenario { burst_bytes: 4e6, ..base };
        assert!(bigger.hol_penalty() > base.hol_penalty());
    }

    #[test]
    fn no_burst_no_penalty() {
        let s = IncastScenario { burst_senders: 0, ..IncastScenario::ep_burst_vs_allreduce() };
        assert!((s.hol_penalty() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn times_scale_with_port_speed() {
        let slow = IncastScenario::ep_burst_vs_allreduce();
        let fast = IncastScenario { port_gbps: 100.0, ..slow };
        assert!((slow.victim_time_voq() / fast.victim_time_voq() - 2.0).abs() < 1e-9);
    }
}
