//! Per-hop latency parameters, calibrated to Table 5.
//!
//! Table 5 reports CPU-side end-to-end latency for a 64 B transfer:
//!
//! | link layer | same leaf | cross leaf |
//! |------------|-----------|------------|
//! | RoCE       | 3.6 µs    | 5.6 µs     |
//! | InfiniBand | 2.8 µs    | 3.7 µs     |
//! | NVLink     | 3.33 µs   | —          |
//!
//! We decompose e2e latency as `endpoint_overhead + links·per_link +
//! switches·per_switch`. A same-leaf path is 2 links + 1 switch; cross-leaf
//! is 4 links + 3 switches. Solving the two IB (resp. RoCE) equations gives
//! the presets below exactly; NVLink's single value pins its endpoint
//! overhead given shared per-hop costs.

use serde::{Deserialize, Serialize};

/// Additive latency components of one link layer.
///
/// ```
/// use dsv3_netsim::LatencyParams;
///
/// assert!((LatencyParams::INFINIBAND.cross_leaf_us() - 3.7).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyParams {
    /// Fixed send+receive software/NIC overhead (µs, both ends total).
    pub endpoint_overhead_us: f64,
    /// Per-cable propagation + serialization (µs).
    pub per_link_us: f64,
    /// Per-switch forwarding latency (µs).
    pub per_switch_us: f64,
}

impl LatencyParams {
    /// InfiniBand (CX7 NDR class): reproduces 2.8 / 3.7 µs.
    pub const INFINIBAND: LatencyParams =
        LatencyParams { endpoint_overhead_us: 2.2, per_link_us: 0.15, per_switch_us: 0.3 };
    /// RoCE over generic Ethernet switches: reproduces 3.6 / 5.6 µs.
    pub const ROCE: LatencyParams =
        LatencyParams { endpoint_overhead_us: 2.45, per_link_us: 0.15, per_switch_us: 0.85 };
    /// NVLink through one NVSwitch hop: reproduces 3.33 µs.
    pub const NVLINK: LatencyParams =
        LatencyParams { endpoint_overhead_us: 2.73, per_link_us: 0.15, per_switch_us: 0.3 };

    /// End-to-end latency of a path with `links` cables and `switches` hops.
    #[must_use]
    pub fn path_us(&self, links: usize, switches: usize) -> f64 {
        self.endpoint_overhead_us
            + links as f64 * self.per_link_us
            + switches as f64 * self.per_switch_us
    }

    /// Same-leaf path (host → leaf → host).
    #[must_use]
    pub fn same_leaf_us(&self) -> f64 {
        self.path_us(2, 1)
    }

    /// Cross-leaf path (host → leaf → spine → leaf → host).
    #[must_use]
    pub fn cross_leaf_us(&self) -> f64 {
        self.path_us(4, 3)
    }
}

/// One row of Table 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Link layer name.
    pub link_layer: String,
    /// Same-leaf 64 B latency (µs).
    pub same_leaf_us: f64,
    /// Cross-leaf 64 B latency (µs); `None` for NVLink.
    pub cross_leaf_us: Option<f64>,
}

/// Generate the three rows of Table 5 from the calibrated parameters.
#[must_use]
pub fn table5_rows() -> Vec<Table5Row> {
    vec![
        Table5Row {
            link_layer: "RoCE".into(),
            same_leaf_us: LatencyParams::ROCE.same_leaf_us(),
            cross_leaf_us: Some(LatencyParams::ROCE.cross_leaf_us()),
        },
        Table5Row {
            link_layer: "InfiniBand".into(),
            same_leaf_us: LatencyParams::INFINIBAND.same_leaf_us(),
            cross_leaf_us: Some(LatencyParams::INFINIBAND.cross_leaf_us()),
        },
        Table5Row {
            link_layer: "NVLink".into(),
            same_leaf_us: LatencyParams::NVLINK.same_leaf_us(),
            cross_leaf_us: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_exact() {
        assert!((LatencyParams::INFINIBAND.same_leaf_us() - 2.8).abs() < 1e-9);
        assert!((LatencyParams::INFINIBAND.cross_leaf_us() - 3.7).abs() < 1e-9);
        assert!((LatencyParams::ROCE.same_leaf_us() - 3.6).abs() < 1e-9);
        assert!((LatencyParams::ROCE.cross_leaf_us() - 5.6).abs() < 1e-9);
        assert!((LatencyParams::NVLINK.same_leaf_us() - 3.33).abs() < 1e-9);
    }

    #[test]
    fn ib_beats_roce_everywhere() {
        let ib = LatencyParams::INFINIBAND;
        let ro = LatencyParams::ROCE;
        for (l, s) in [(2, 1), (4, 3), (6, 5)] {
            assert!(ib.path_us(l, s) < ro.path_us(l, s));
        }
    }

    #[test]
    fn rows_complete() {
        let rows = table5_rows();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().any(|r| r.link_layer == "NVLink" && r.cross_leaf_us.is_none()));
    }

    #[test]
    fn longer_paths_cost_more() {
        let ib = LatencyParams::INFINIBAND;
        assert!(ib.cross_leaf_us() > ib.same_leaf_us());
    }
}
