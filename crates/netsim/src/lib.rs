//! Flow-level discrete-event network simulator.
//!
//! The paper's network results (Figures 5–8, Table 5, the §2.3.2 speed
//! limits) are bandwidth-sharing and latency phenomena. This crate models
//! them at flow granularity: links have capacity (GB/s) and per-hop latency;
//! flows follow fixed link paths and share capacity max-min fairly
//! (progressive filling); the simulation advances between flow arrival and
//! completion events.
//!
//! * [`sim`] — the simulator core ([`sim::FlowSim`]).
//! * [`chaos`] — the fault-tolerant layer ([`chaos::ChaosSim`]): seeded
//!   link up/down schedules, reroute policies (stall / static rehash /
//!   adaptive), and timeout + backoff retransmission (§5, Figures 5–8).
//! * [`latency`] — per-hop latency parameters calibrated so end-to-end 64B
//!   latencies reproduce Table 5 (IB / RoCE / NVLink, same- and cross-leaf).
//! * [`ordering`] — memory-semantic ordering: sender fences vs hardware
//!   Region Acquire/Release (§6.4).
//! * [`multiport`] — multi-port NICs with packet spraying and out-of-order
//!   placement (Figure 4).
//! * [`incast`] — many-to-one bursts vs a victim flow: shared queues vs
//!   VOQ isolation (§5.2.2).

#![forbid(unsafe_code)]

pub mod cbfc;
pub mod chaos;
pub mod incast;
pub mod latency;
pub mod multiport;
pub mod ordering;
pub mod sim;

pub use chaos::{ChaosConfig, ChaosReport, ChaosSim, LinkSchedule, ReroutePolicy};
pub use latency::LatencyParams;
pub use sim::{FlowSim, Link, SimReport};
