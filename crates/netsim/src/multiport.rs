//! Multi-port NICs and packet spraying (Figure 4, §5.1).
//!
//! The ideal multi-plane network gives each NIC several physical ports, one
//! per plane, bonded into a single logical interface: a queue pair sprays
//! packets across all ports, which requires the receiving NIC to place
//! packets out of order. Without out-of-order placement the QP must stay on
//! one port (today's ConnectX-7 situation, which is why DeepSeek's deployed
//! MPFT routes one QP per plane). This module models a message across a
//! multi-port NIC under both capabilities, plus port-failure behaviour.

use serde::{Deserialize, Serialize};

/// A bonded multi-port NIC.
///
/// ```
/// use dsv3_netsim::multiport::MultiPortNic;
///
/// let nic = MultiPortNic::cx8_four_plane();
/// assert_eq!(nic.qp_bandwidth_gbps(true, 0), 200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiPortNic {
    /// Physical ports (planes).
    pub ports: usize,
    /// Per-port bandwidth, GB/s.
    pub port_gbps: f64,
    /// One-way latency per port, µs.
    pub latency_us: f64,
}

impl MultiPortNic {
    /// The ConnectX-8-style four-plane part the paper points to.
    #[must_use]
    pub fn cx8_four_plane() -> Self {
        Self { ports: 4, port_gbps: 50.0, latency_us: 3.7 }
    }

    /// Message completion time (µs) for `bytes` on one QP.
    ///
    /// With out-of-order placement the QP sprays across every healthy port;
    /// without, it is pinned to a single healthy port. `failed_ports` of the
    /// ports are down (links re-converge transparently — the robustness
    /// property of Figure 4).
    ///
    /// # Panics
    ///
    /// Panics if all ports failed or the NIC is degenerate.
    #[must_use]
    pub fn message_time_us(
        &self,
        bytes: f64,
        out_of_order_placement: bool,
        failed_ports: usize,
    ) -> f64 {
        assert!(self.ports > 0 && self.port_gbps > 0.0, "degenerate NIC");
        assert!(failed_ports < self.ports, "no healthy port left");
        let healthy = (self.ports - failed_ports) as f64;
        let bw = if out_of_order_placement { healthy * self.port_gbps } else { self.port_gbps };
        self.latency_us + bytes / (bw * 1000.0)
    }

    /// Effective single-QP bandwidth (GB/s).
    #[must_use]
    pub fn qp_bandwidth_gbps(&self, out_of_order_placement: bool, failed_ports: usize) -> f64 {
        assert!(failed_ports < self.ports, "no healthy port left");
        if out_of_order_placement {
            (self.ports - failed_ports) as f64 * self.port_gbps
        } else {
            self.port_gbps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spraying_multiplies_single_qp_bandwidth() {
        let nic = MultiPortNic::cx8_four_plane();
        assert_eq!(nic.qp_bandwidth_gbps(true, 0), 200.0);
        assert_eq!(nic.qp_bandwidth_gbps(false, 0), 50.0);
        let bytes = 10e6;
        let sprayed = nic.message_time_us(bytes, true, 0);
        let pinned = nic.message_time_us(bytes, false, 0);
        assert!(pinned > 3.5 * sprayed, "{pinned} vs {sprayed}");
    }

    #[test]
    fn port_failure_is_graceful_degradation() {
        let nic = MultiPortNic::cx8_four_plane();
        let full = nic.qp_bandwidth_gbps(true, 0);
        let degraded = nic.qp_bandwidth_gbps(true, 1);
        assert_eq!(degraded, full * 0.75);
        // A pinned QP survives a failure too (it fails over to a healthy
        // port) at unchanged bandwidth.
        assert_eq!(nic.qp_bandwidth_gbps(false, 3), 50.0);
    }

    #[test]
    fn tiny_messages_are_latency_bound_either_way() {
        let nic = MultiPortNic::cx8_four_plane();
        let s = nic.message_time_us(64.0, true, 0);
        let p = nic.message_time_us(64.0, false, 0);
        assert!((s - p).abs() < 0.01, "{s} vs {p}");
    }

    #[test]
    #[should_panic(expected = "no healthy port")]
    fn all_ports_down_panics() {
        let nic = MultiPortNic::cx8_four_plane();
        let _ = nic.qp_bandwidth_gbps(true, 4);
    }
}
