//! Memory-semantic communication ordering (§6.4).
//!
//! After writing payload data, a sender using load/store semantics must
//! issue a memory fence before setting the completion flag, stalling until
//! every in-flight store is acknowledged — one extra RTT per notification
//! that also blocks subsequent stores from issuing. The paper's proposed
//! Region Acquire/Release (RAR) mechanism moves ordering to the receiver
//! (a bitmap over the RNR region), letting the flag ride immediately behind
//! the data. This module models both disciplines for a stream of
//! payload+flag message groups and quantifies the throughput/latency gap.

use serde::{Deserialize, Serialize};

/// One notification group: a payload of stores followed by a flag write.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageGroup {
    /// Time to inject the payload stores into the fabric (µs) — bytes over
    /// bandwidth.
    pub payload_us: f64,
    /// One-way fabric latency (µs); an acknowledgement costs a full RTT.
    pub one_way_us: f64,
}

/// Ordering discipline at the sender/receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderingMode {
    /// Software fence: the sender drains in-flight stores (waits one RTT
    /// past the last store's injection) before issuing the flag, and the
    /// next group cannot start injecting until the flag is out.
    SenderFence,
    /// Hardware Region Acquire/Release: the receiver orders delivery; the
    /// flag is injected immediately after the payload and groups pipeline
    /// back-to-back.
    RegionAcquireRelease,
}

/// Timeline of a stream of groups under a discipline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderingOutcome {
    /// Time the receiver observes each group's flag (µs).
    pub flag_visible_us: Vec<f64>,
    /// Total stream completion (last flag visible).
    pub total_us: f64,
    /// Sender-side injection utilization (payload time / sender busy span).
    pub injection_utilization: f64,
}

/// Simulate `groups` identical message groups under `mode`.
///
/// # Panics
///
/// Panics if `groups` is empty or durations are negative.
#[must_use]
pub fn simulate(groups: &[MessageGroup], mode: OrderingMode) -> OrderingOutcome {
    assert!(!groups.is_empty(), "need at least one group");
    let mut sender_clock = 0f64;
    let mut flags = Vec::with_capacity(groups.len());
    let mut payload_total = 0f64;
    for g in groups {
        assert!(g.payload_us >= 0.0 && g.one_way_us >= 0.0, "negative duration");
        payload_total += g.payload_us;
        match mode {
            OrderingMode::SenderFence => {
                // Inject payload, wait for the ack of the last store (full
                // RTT), then inject the flag.
                let payload_done = sender_clock + g.payload_us;
                let fence_done = payload_done + 2.0 * g.one_way_us;
                let flag_injected = fence_done;
                flags.push(flag_injected + g.one_way_us);
                sender_clock = flag_injected;
            }
            OrderingMode::RegionAcquireRelease => {
                // Flag rides right behind the payload; receiver hardware
                // guarantees ordering.
                let payload_done = sender_clock + g.payload_us;
                flags.push(payload_done + g.one_way_us);
                sender_clock = payload_done;
            }
        }
    }
    let total_us = flags.last().copied().unwrap_or(0.0);
    OrderingOutcome {
        total_us,
        injection_utilization: payload_total / sender_clock.max(f64::MIN_POSITIVE),
        flag_visible_us: flags,
    }
}

/// Closed-form per-group overhead of the fence discipline: one RTT of stall
/// per notification.
#[must_use]
pub fn fence_overhead_per_group_us(one_way_us: f64) -> f64 {
    2.0 * one_way_us
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize) -> Vec<MessageGroup> {
        vec![MessageGroup { payload_us: 10.0, one_way_us: 3.7 }; n]
    }

    #[test]
    fn rar_pipelines_fence_stalls() {
        let s = stream(100);
        let fenced = simulate(&s, OrderingMode::SenderFence);
        let rar = simulate(&s, OrderingMode::RegionAcquireRelease);
        assert!(rar.total_us < fenced.total_us);
        // The gap is exactly one RTT per group.
        let gap = fenced.total_us - rar.total_us;
        assert!((gap - 100.0 * fence_overhead_per_group_us(3.7)).abs() < 1e-9, "{gap}");
    }

    #[test]
    fn rar_injection_is_fully_utilized() {
        let s = stream(50);
        let rar = simulate(&s, OrderingMode::RegionAcquireRelease);
        assert!((rar.injection_utilization - 1.0).abs() < 1e-9);
        let fenced = simulate(&s, OrderingMode::SenderFence);
        assert!(fenced.injection_utilization < 0.6, "{}", fenced.injection_utilization);
    }

    #[test]
    fn small_messages_suffer_most() {
        // §6.4's pain case: many small packets — the RTT dominates payload.
        let small = vec![MessageGroup { payload_us: 0.5, one_way_us: 3.7 }; 64];
        let f = simulate(&small, OrderingMode::SenderFence);
        let r = simulate(&small, OrderingMode::RegionAcquireRelease);
        assert!(f.total_us / r.total_us > 5.0, "{}", f.total_us / r.total_us);
    }

    #[test]
    fn flags_are_monotone() {
        for mode in [OrderingMode::SenderFence, OrderingMode::RegionAcquireRelease] {
            let o = simulate(&stream(10), mode);
            for w in o.flag_visible_us.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn single_group_latency() {
        let g = [MessageGroup { payload_us: 2.0, one_way_us: 3.0 }];
        let f = simulate(&g, OrderingMode::SenderFence);
        assert!((f.total_us - (2.0 + 6.0 + 3.0)).abs() < 1e-12);
        let r = simulate(&g, OrderingMode::RegionAcquireRelease);
        assert!((r.total_us - 5.0).abs() < 1e-12);
    }
}
